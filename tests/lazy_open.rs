//! Fidelity suite for the zero-copy snapshot open: across a datagen
//! benchmark, reclaiming every case must produce **byte-identical** CSV and
//! bit-identical EIS through four lake provenances —
//!
//! * **cold**  — built in memory from the suite tables (no snapshot),
//! * **lazy**  — v2 snapshot, tables decoded on first touch (the default),
//! * **eager** — the same v2 snapshot after `decode_all` (old behavior),
//! * **v1**    — a legacy v1 snapshot through the back-compat decoder —
//!
//! and the lazy lake must actually *be* lazy: zero tables decoded at open,
//! only the touched subset decoded after the full case sweep.

use gen_t::core::{GenT, GenTConfig};
use gen_t::datagen::suite::{build, BenchmarkId, SuiteConfig};
use gen_t::discovery::DataLake;
use gen_t::store::snapshot;
use gen_t::table::{csv, Table};
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gent-lazy-open-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// A table's CSV rendering, for byte-level comparison.
fn csv_bytes(t: &Table) -> Vec<u8> {
    let mut out = Vec::new();
    csv::write_csv(t, &mut out).expect("csv render");
    out
}

#[test]
fn lazy_eager_v1_and_cold_reclaims_are_byte_identical() {
    let suite = SuiteConfig { units: (20, 40, 60), ..Default::default() };
    let bench = build(BenchmarkId::TpTrSmall, &suite);
    // One table guaranteed to share no value with any source: it can never
    // gain a containment hit, so no reclaim may ever rank (or decode) it.
    let disjoint = Table::build(
        "never_touched",
        &["off_vocab"],
        &[],
        (0..50).map(|i| vec![gen_t::table::Value::Int(10_000_000 + i)]).collect(),
    )
    .expect("disjoint table");
    let mut lake_tables = bench.lake_tables.clone();
    lake_tables.push(disjoint);
    let cold = DataLake::from_tables(lake_tables);

    let v2_path = scratch("fidelity-v2.gentlake");
    let v1_path = scratch("fidelity-v1.gentlake");
    snapshot::save(&v2_path, &cold, None).expect("save v2");
    snapshot::save_legacy_v1(&v1_path, &cold, None).expect("save v1");

    let lazy = snapshot::load(&v2_path).expect("lazy open").lake;
    let eager = snapshot::load(&v2_path).expect("eager open").lake;
    eager.decode_all(2).expect("decode_all");
    let v1 = snapshot::load(&v1_path).expect("v1 open").lake;

    assert_eq!(lazy.tables_decoded(), 0, "v2 open must decode nothing");
    assert_eq!(eager.tables_decoded(), eager.len(), "decode_all materializes everything");
    assert_eq!(v1.tables_decoded(), v1.len(), "v1 decodes eagerly by construction");

    let gen_t = GenT::new(GenTConfig::default());
    let mut compared = 0usize;
    for case in &bench.cases {
        if !case.source.schema().has_key() {
            continue;
        }
        let baseline = gen_t.reclaim(&case.source, &cold).expect("cold reclaim");
        for (label, lake) in [("lazy", &lazy), ("eager", &eager), ("v1", &v1)] {
            let got = gen_t.reclaim(&case.source, lake).expect("reclaim");
            assert_eq!(
                csv_bytes(&got.reclaimed),
                csv_bytes(&baseline.reclaimed),
                "case {}: {label} reclaimed CSV diverges from cold",
                case.id
            );
            assert_eq!(
                got.eis.to_bits(),
                baseline.eis.to_bits(),
                "case {}: {label} EIS diverges from cold",
                case.id
            );
            let names = |r: &gen_t::core::ReclamationResult| -> Vec<String> {
                r.originating.iter().map(|t| t.name().to_string()).collect()
            };
            assert_eq!(
                names(&got),
                names(&baseline),
                "case {}: {label} originating tables diverge",
                case.id
            );
        }
        compared += 1;
    }
    assert!(compared >= 8, "only {compared} keyed cases — suite too small to be meaningful");

    // Laziness held across the whole sweep: the pipeline forces only the
    // tables it ranks, so the value-disjoint table survives a full
    // benchmark's worth of reclaims undecoded. (The check goes through slot
    // metadata — `get_by_name` would itself force the decode.)
    let touched = lazy.tables_decoded();
    assert!(touched > 0, "reclaims must have materialized their candidates");
    let slot =
        lazy.slots().iter().find(|s| s.name() == "never_touched").expect("disjoint table present");
    assert!(
        !slot.is_decoded(),
        "a table sharing no value with any source must never be decoded \
         ({touched}/{} decoded overall)",
        lazy.len()
    );
}
