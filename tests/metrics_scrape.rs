//! The CI scrape check: boot a real daemon over a real snapshot, drive
//! traffic at it, then fetch `GET /metrics` over the socket and hold the
//! output to the strict `gent_bench::promtext` parser — every line must
//! parse as Prometheus text exposition 0.0.4 and every metric family the
//! observability layer promises (pipeline stages, store opens, per-endpoint
//! HTTP counters, queue depth, decode gauges) must be present with samples.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use gen_t::core::GenTConfig;
use gen_t::serve::{Json, LakeService, ServeConfig, Server};
use gen_t::store::{LakeSource, SnapshotFile};
use gen_t::table::{csv, key::ensure_key};
use gent_bench::promtext;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gent-metrics-scrape-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn cli(args: &[&str]) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    gent_cli::run(&args, &mut out).expect("cli run");
}

/// One raw HTTP exchange; returns (status, headers, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut text = String::new();
    s.read_to_string(&mut text).expect("read response");
    let status: u16 =
        text.split_whitespace().nth(1).and_then(|t| t.parse().ok()).expect("status line");
    let (head, payload) = text.split_once("\r\n\r\n").unwrap_or((text.as_str(), ""));
    (status, head.to_string(), payload.to_string())
}

#[test]
fn metrics_endpoint_survives_the_strict_parser() {
    // A real snapshot with LSH, opened the way `gent serve` opens it.
    let gen_dir = scratch("suite");
    cli(&["generate", gen_dir.to_str().unwrap(), "--benchmark", "tp-tr-small", "--seed", "7"]);
    let snap = scratch("lake.gentlake");
    cli(&[
        "lake",
        "build",
        gen_dir.join("lake").to_str().unwrap(),
        "--out",
        snap.to_str().unwrap(),
        "--lsh",
    ]);

    let loaded = SnapshotFile(snap.clone()).load_lake().expect("open snapshot");
    let service = LakeService::new(loaded, GenTConfig::default(), snap.display().to_string());
    let cfg = ServeConfig { addr: "127.0.0.1:0".into(), threads: 2, ..ServeConfig::default() };
    let server = Server::bind(&cfg, service).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle().expect("handle");
    let runner = std::thread::spawn(move || server.run());

    // Traffic across every route class: success, reclaim (exercises the
    // pipeline spans feeding the global registry), and an error.
    let (status, _, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let (status, _, _) = http(addr, "GET", "/lake/stat", "");
    assert_eq!(status, 200);
    let mut source = csv::read_csv_file(&gen_dir.join("sources").join("S1.csv")).expect("source");
    assert!(ensure_key(&mut source));
    let body =
        Json::Object(vec![("source".to_string(), gen_t::serve::table_to_json(&source))]).render();
    let (status, _, reclaim_body) = http(addr, "POST", "/reclaim", &body);
    assert_eq!(status, 200, "{reclaim_body}");
    let batch = Json::Object(vec![(
        "sources".to_string(),
        Json::Array(vec![Json::Object(vec![(
            "source".to_string(),
            gen_t::serve::table_to_json(&source),
        )])]),
    )])
    .render();
    let (status, _, batch_body) = http(addr, "POST", "/reclaim/batch", &batch);
    assert_eq!(status, 200, "{batch_body}");
    let (status, _, _) = http(addr, "GET", "/lakes", "");
    assert_eq!(status, 200);
    let (status, _, _) = http(addr, "GET", "/no/such/route", "");
    assert_eq!(status, 404);

    // The scrape itself.
    let (status, head, text) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200, "{text}");
    assert!(
        head.lines().any(|l| l.to_ascii_lowercase().starts_with("content-type: text/plain")),
        "exposition must be served as text/plain: {head}"
    );

    // Every line parses, and the promised families are all present.
    let exp = promtext::parse_exposition(&text)
        .unwrap_or_else(|e| panic!("/metrics failed the parser: {e}"));
    exp.require_families(&[
        // pipeline (process-global registry, fed by the reclaim above)
        "gent_pipeline_stage_duration_us",
        "gent_pipeline_reclaims_total",
        "gent_traversal_rounds_total",
        "gent_traversal_rows_rescored_total",
        "gent_traversal_candidates_pruned_total",
        "gent_expand_paths_considered_total",
        "gent_expand_memo_hits_total",
        "gent_expand_candidates_dropped_total",
        "gent_expand_dedup_total",
        // store
        "gent_store_snapshot_opens_total",
        "gent_store_snapshot_open_bytes_total",
        "gent_store_snapshot_open_duration_us",
        // http (per-service registry)
        "gent_http_requests_total",
        "gent_http_errors_total",
        "gent_http_in_flight",
        "gent_http_request_duration_us",
        "gent_http_connections_total",
        "gent_http_keepalive_reuses_total",
        "gent_http_queue_depth",
        "gent_http_queue_depth_peak",
        "gent_http_shed_total",
        // batch reclaim (per-lake labels, fed by the batch above)
        "gent_batch_requests_total",
        "gent_batch_sources_total",
        "gent_batch_discovery_memo_hits_total",
        "gent_batch_discovery_memo_misses_total",
        "gent_batch_discovery_duration_us",
        // lake decode state (one series per hosted lake)
        "gent_lake_tables_decoded",
        "gent_lake_tables_total",
        "gent_lake_lsh_decoded",
        "gent_lake_quarantined_tables",
        "gent_uptime_seconds",
    ])
    .unwrap_or_else(|e| panic!("{e}\n--- exposition ---\n{text}"));

    // Spot-check the counters actually counted this test's traffic.
    assert_eq!(exp.value("gent_http_requests_total", &[("endpoint", "reclaim")]), Some(1.0));
    assert_eq!(exp.value("gent_http_requests_total", &[("endpoint", "reclaim_batch")]), Some(1.0));
    assert_eq!(exp.value("gent_http_requests_total", &[("endpoint", "lakes")]), Some(1.0));
    assert_eq!(exp.value("gent_http_errors_total", &[("endpoint", "other")]), Some(1.0));
    assert_eq!(exp.value("gent_pipeline_reclaims_total", &[]), Some(2.0));
    assert_eq!(exp.value("gent_batch_sources_total", &[("lake", "default")]), Some(1.0));
    assert!(
        exp.value("gent_pipeline_stage_duration_us_count", &[("stage", "traversal")])
            .is_some_and(|v| v >= 1.0),
        "the reclaim must have fed the traversal stage histogram"
    );
    assert!(
        exp.value("gent_store_snapshot_opens_total", &[]).is_some_and(|v| v >= 1.0),
        "the snapshot open must have been counted"
    );
    // The expand counters register with the pipeline instruments, so they
    // render even when this lake's reclaims never drop or dedup a
    // candidate — presence plus a parsable value is the contract.
    assert!(
        exp.value("gent_expand_paths_considered_total", &[]).is_some(),
        "expand search-effort counter must be exposed"
    );
    assert!(
        exp.value("gent_lake_tables_decoded", &[("lake", "default")]).is_some_and(|v| v >= 1.0),
        "the reclaim decoded at least one table (per-lake labelled series)"
    );
    assert_eq!(
        exp.value("gent_lake_quarantined_tables", &[("lake", "default")]),
        Some(0.0),
        "a cleanly opened lake quarantines nothing"
    );

    // And the scrape is traced like any other request.
    assert!(
        head.lines().any(|l| l.to_ascii_lowercase().starts_with("x-request-id:")),
        "/metrics must carry a request ID: {head}"
    );

    handle.stop();
    runner.join().unwrap().expect("server run");
}

/// A daemon booted `--degraded` over a snapshot with one corrupt table
/// section: the quarantine gauge counts it, its lookups answer a
/// structured 410, and every healthy table keeps serving.
#[test]
fn degraded_daemon_reports_quarantine_and_keeps_serving() {
    use gen_t::serve::Router;
    use gen_t::table::{Table, Value as V};

    let snap = scratch("degraded.gentlake");
    let rows = |tag: &str| (0..12).map(|i| vec![V::Int(i), V::str(format!("{tag}_{i}"))]).collect();
    let lake = gen_t::discovery::DataLake::from_tables(vec![
        Table::build("doomed", &["id", "val"], &["id"], rows("doomed")).unwrap(),
        Table::build("healthy", &["id", "val"], &["id"], rows("healthy")).unwrap(),
    ]);
    gen_t::store::snapshot::save(&snap, &lake, None).expect("save");

    // Flip a byte in the middle of `doomed`'s section (tables serialize in
    // lake order), leaving everything else intact.
    let mut bytes = std::fs::read(&snap).unwrap();
    let header = gen_t::store::snapshot::stat(&snap).unwrap().header;
    let (dir, _) =
        gen_t::store::SectionDirV3::decode(&bytes, header.n_tables as usize, header.has_lsh())
            .unwrap();
    let t0 = &dir.tables[0].range;
    bytes[(t0.offset + t0.len / 2) as usize] ^= 0x20;
    std::fs::write(&snap, &bytes).unwrap();

    let mut builder = Router::builder(GenTConfig::default());
    builder.set_degraded(true);
    builder.add_snapshot("deg", &snap).expect("degraded boot");
    let cfg = ServeConfig { addr: "127.0.0.1:0".into(), threads: 2, ..ServeConfig::default() };
    let server = Server::bind_router(&cfg, builder.build().unwrap()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle().expect("handle");
    let runner = std::thread::spawn(move || server.run());

    // The quarantined table answers a structured 410; the healthy one 200.
    let (status, _, body) =
        http(addr, "POST", "/reclaim", r#"{"source_name": "doomed", "key": ["id"]}"#);
    assert_eq!(status, 410, "{body}");
    let v = Json::parse(&body).expect("structured 410");
    assert_eq!(
        v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("quarantined"),
        "{body}"
    );
    // The daemon keeps serving: /lake/stat answers with the full table
    // count. (A full healthy-table reclaim — byte-identical to a clean
    // open — is asserted in serve_e2e.rs; a 200 reclaim here would bump
    // the process-global pipeline counters the sibling test pins.)

    // /lake/stat names the quarantined table; the gauge counts it.
    let (status, _, stat) = http(addr, "GET", "/lake/stat", "");
    assert_eq!(status, 200);
    assert!(stat.contains("quarantined") && stat.contains("doomed"), "{stat}");
    let (status, _, text) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let exp = promtext::parse_exposition(&text)
        .unwrap_or_else(|e| panic!("/metrics failed the parser: {e}"));
    assert_eq!(
        exp.value("gent_lake_quarantined_tables", &[("lake", "deg")]),
        Some(1.0),
        "--- exposition ---\n{text}"
    );

    handle.stop();
    runner.join().unwrap().expect("server run");
}
