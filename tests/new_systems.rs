//! Cross-crate integration tests for the extension systems: the SPJU query
//! engine driving source construction, LSH-based first-stage retrieval
//! feeding the pipeline, and explanation/verification over real
//! reclamations.

use gen_t::discovery::{LshConfig, LshRetriever, TableRetriever};
use gen_t::explain::{explain, verify_table, TupleStatus, VerificationVerdict, VerifyConfig};
use gen_t::prelude::*;
use gen_t::query::{
    rewrite, Catalog, Predicate, Query, QueryClass, QueryGenConfig, RandomQueryGen,
};
use gen_t::table::key::ensure_key;

fn v(i: i64) -> Value {
    Value::Int(i)
}

/// A miniature TPC-H-flavoured catalog of joinable base tables.
fn base_catalog() -> Catalog {
    let nation = Table::build(
        "nation",
        &["n_key", "n_name", "r_key"],
        &[],
        (0..8).map(|i| vec![v(i), Value::str(format!("nation{i}")), v(i % 2)]).collect(),
    )
    .unwrap();
    let region = Table::build(
        "region",
        &["r_key", "r_name"],
        &[],
        vec![vec![v(0), Value::str("east")], vec![v(1), Value::str("west")]],
    )
    .unwrap();
    let customer = Table::build(
        "customer",
        &["c_key", "n_key", "c_name"],
        &[],
        (0..12).map(|i| vec![v(i), v(i % 8), Value::str(format!("cust{i}"))]).collect(),
    )
    .unwrap();
    Catalog::from_tables(vec![nation, region, customer])
}

/// Build a source table by running an SPJU query over the base catalog —
/// exactly how the paper constructs its benchmark sources — then reclaim it
/// from a lake holding the base tables.
#[test]
fn query_built_sources_are_reclaimable_from_their_base_tables() {
    let cat = base_catalog();
    let q = Query::scan("customer")
        .inner_join(Query::scan("nation"))
        .select(Predicate::cmp("c_key", gen_t::query::CmpOp::Le, v(7)))
        .project(&["c_key", "c_name", "n_name"]);
    let mut source = q.eval(&cat).unwrap();
    source.set_name("S");
    assert!(ensure_key(&mut source));

    let lake = DataLake::from_tables(cat.tables().cloned().collect());
    let res = GenT::new(GenTConfig::default()).reclaim(&source, &lake).unwrap();
    assert!(res.report.perfect, "EIS {} reclaimed:\n{}", res.eis, res.reclaimed);
}

/// The Theorem 8 rewriting of a benchmark-style query evaluates to the same
/// rows as the query itself over the same catalog.
#[test]
fn random_benchmark_queries_survive_rewriting() {
    let cat = base_catalog();
    let mut g = RandomQueryGen::new(&cat, QueryGenConfig::default(), 11);
    let mut checked = 0;
    for class in [QueryClass::ProjectSelectUnion, QueryClass::OneJoin] {
        for _ in 0..3 {
            let Some(q) = g.generate(class) else { continue };
            let direct = q.eval(&cat).unwrap();
            let rep = rewrite(&q, &cat).unwrap();
            let via = rep.eval(&cat).unwrap();
            // Compare as row sets over the direct result's column order.
            let map: Vec<usize> =
                direct.schema().columns().map(|c| via.schema().column_index(c).unwrap()).collect();
            let via_rows: std::collections::HashSet<Vec<Value>> =
                via.rows().iter().map(|r| map.iter().map(|&j| r[j].clone()).collect()).collect();
            let direct_rows: std::collections::HashSet<Vec<Value>> =
                direct.rows().iter().cloned().collect();
            assert_eq!(via_rows, direct_rows, "query {q}");
            checked += 1;
        }
    }
    assert!(checked >= 4, "too few queries generated: {checked}");
}

/// The LSH retriever narrows a noisy lake to the fragments that matter, and
/// the pipeline reclaims from its output.
#[test]
fn lsh_first_stage_feeds_the_pipeline() {
    let source = Table::build(
        "S",
        &["id", "name", "score"],
        &["id"],
        (0..30).map(|i| vec![v(i), Value::str(format!("item{i}")), v(i * 7)]).collect(),
    )
    .unwrap();
    let names = Table::build(
        "names",
        &["id", "name"],
        &[],
        (0..30).map(|i| vec![v(i), Value::str(format!("item{i}"))]).collect(),
    )
    .unwrap();
    let scores = Table::build(
        "scores",
        &["id", "score"],
        &[],
        (0..30).map(|i| vec![v(i), v(i * 7)]).collect(),
    )
    .unwrap();
    let mut tables = vec![names, scores];
    for t in 0..40 {
        tables.push(
            Table::build(
                &format!("noise{t}"),
                &["a", "b"],
                &[],
                (0..20).map(|i| vec![v(10_000 + t * 100 + i), v(20_000 + i)]).collect(),
            )
            .unwrap(),
        );
    }
    let lake = DataLake::from_tables(tables);
    let retriever = LshRetriever::build(&lake, LshConfig::default(), 0.4);
    let top = retriever.retrieve(&lake, &source, 5);
    assert!(top.contains(&0) && top.contains(&1), "top: {top:?}");

    // Reclaim from the retrieved tables only.
    let candidates: Vec<Table> = {
        use gen_t::discovery::{set_similarity, SetSimilarityConfig};
        set_similarity(&lake, &source, Some(&top), &SetSimilarityConfig::default())
            .into_iter()
            .map(|c| c.table)
            .collect()
    };
    let res = GenT::default().reclaim_from_candidates(&source, &candidates).unwrap();
    assert!(res.report.perfect, "EIS {}", res.eis);
}

/// Explanation of a partially-reclaimable source names exactly the missing
/// and contested pieces, and verification classifies correctly.
#[test]
fn explanation_and_verification_agree_with_reclamation() {
    let source = Table::build(
        "S",
        &["id", "name", "age"],
        &["id"],
        vec![
            vec![v(0), Value::str("Smith"), v(27)],
            vec![v(1), Value::str("Brown"), v(24)],
            vec![v(2), Value::str("Ghost"), v(99)], // not in the lake
        ],
    )
    .unwrap();
    let frag = Table::build(
        "frag",
        &["id", "name", "age"],
        &[],
        vec![vec![v(0), Value::str("Smith"), v(27)], vec![v(1), Value::str("Brown"), v(24)]],
    )
    .unwrap();
    let lake = DataLake::from_tables(vec![frag]);
    let res = GenT::default().reclaim(&source, &lake).unwrap();

    let e = explain(&source, &res.reclaimed, &res.originating);
    assert_eq!(e.n_perfect(), 2);
    assert_eq!(e.n_missing(), 1);
    assert_eq!(e.tuples[2].status, TupleStatus::Missing);
    // Provenance: the fragment supports Smith's and Brown's cells.
    assert!(e.provenance.n_supported() >= 4);

    let (verdict, _) =
        verify_table(&source, &res.reclaimed, &res.originating, &VerifyConfig::default());
    match verdict {
        VerificationVerdict::PartiallyVerified { missing_tuples, .. } => {
            assert_eq!(missing_tuples, 1);
        }
        other => panic!("expected partial verification, got {other:?}"),
    }
}

/// Keyless + normalisation combine: a keyless, differently-cased source is
/// still reclaimed once both extensions are applied.
#[test]
fn keyless_and_normalized_paths_compose() {
    use gen_t::table::NormalizeConfig;
    let loud = Table::build(
        "loud",
        &["id", "name"],
        &[],
        vec![vec![v(0), Value::str("ALPHA")], vec![v(1), Value::str("BETA")]],
    )
    .unwrap();
    let lake = DataLake::from_tables(vec![loud]);
    // Key-less, lower-case source.
    let source = Table::build(
        "S",
        &["id", "name"],
        &[],
        vec![vec![v(0), Value::str("alpha")], vec![v(1), Value::str("beta")]],
    )
    .unwrap();
    // Normalise manually, then go through the keyless path.
    let norm = NormalizeConfig::default();
    let nsource = norm.table(&source);
    let nlake = DataLake::from_tables(lake.tables_iter().map(|t| norm.table(t)).collect());
    let out = GenT::default().reclaim_keyless(&nsource, &nlake).unwrap();
    assert!(out.keyless_similarity > 0.99, "sim {}", out.keyless_similarity);
    assert!(out.result.report.perfect);
}
