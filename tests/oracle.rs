//! Approximation quality against an exhaustive oracle.
//!
//! Gen-T is an *approximate* search (Definition 7 asks for the EIS-maximal
//! integration; matrix traversal is greedy). On lakes small enough to
//! enumerate, we can compute the true optimum: integrate every non-empty
//! subset of the candidate tables with Algorithm 2 and take the best EIS.
//! These tests pin down how close the greedy search gets on structured
//! cases shaped like the paper's benchmarks (complementary nullified
//! fragments plus corrupted distractors).

use gen_t::core::{integrate, GenT, GenTConfig};
use gen_t::metrics::eis;
use gen_t::table::{Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn v(i: i64) -> Value {
    Value::Int(i)
}

/// Exhaustive oracle: the best EIS over all non-empty candidate subsets.
fn oracle_eis(source: &Table, candidates: &[Table], cfg: &GenTConfig) -> (f64, u32) {
    assert!(candidates.len() <= 8, "oracle is exponential");
    let mut best = 0.0f64;
    let mut best_mask = 0u32;
    for mask in 1u32..(1 << candidates.len()) {
        let subset: Vec<Table> = (0..candidates.len())
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| candidates[i].clone())
            .collect();
        let reclaimed = integrate(&subset, source, cfg);
        let score = eis(source, &reclaimed);
        if score > best {
            best = score;
            best_mask = mask;
        }
    }
    (best, best_mask)
}

/// A seeded benchmark-shaped case: a keyed source, two complementary
/// nullified fragments (jointly covering the source), and `n_bad`
/// corrupted variants.
fn make_case(seed: u64, n_bad: usize) -> (Table, Vec<Table>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<Value>> = (0..12)
        .map(|i| {
            vec![v(i), v(rng.gen_range(0..50)), v(rng.gen_range(0..50)), v(rng.gen_range(0..50))]
        })
        .collect();
    let source = Table::build("S", &["k", "a", "b", "c"], &["k"], rows.clone()).unwrap();

    // Complementary nullified variants: variant 0 nulls odd rows' cells,
    // variant 1 nulls even rows' cells — together they cover everything.
    let mut candidates = Vec::new();
    for vi in 0..2 {
        let vrows: Vec<Vec<Value>> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                r.iter()
                    .enumerate()
                    .map(
                        |(j, cell)| {
                            if j != 0 && (i % 2 == vi) {
                                Value::Null
                            } else {
                                cell.clone()
                            }
                        },
                    )
                    .collect()
            })
            .collect();
        candidates
            .push(Table::build(&format!("null{vi}"), &["k", "a", "b", "c"], &[], vrows).unwrap());
    }
    // Corrupted variants: wrong values in half the cells.
    for bi in 0..n_bad {
        let brows: Vec<Vec<Value>> = rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(j, cell)| {
                        if j != 0 && rng.gen_bool(0.5) {
                            v(1000 + rng.gen_range(0..100))
                        } else {
                            cell.clone()
                        }
                    })
                    .collect()
            })
            .collect();
        candidates
            .push(Table::build(&format!("bad{bi}"), &["k", "a", "b", "c"], &[], brows).unwrap());
    }
    (source, candidates)
}

#[test]
fn greedy_matches_oracle_on_complementary_fragments() {
    let cfg = GenTConfig::default();
    let gen_t = GenT::new(cfg.clone());
    for seed in 0..6u64 {
        let (source, candidates) = make_case(seed, 2);
        let (best, best_mask) = oracle_eis(&source, &candidates, &cfg);
        let res = gen_t.reclaim_from_candidates(&source, &candidates).unwrap();
        assert!(
            res.eis + 1e-9 >= best,
            "seed {seed}: greedy {} < oracle {} (oracle subset mask {best_mask:#b})",
            res.eis,
            best
        );
        // The two nullified variants jointly cover the source exactly.
        assert!((best - 1.0).abs() < 1e-9, "seed {seed}: oracle should be perfect");
    }
}

#[test]
fn greedy_stays_within_five_percent_of_oracle_under_heavy_noise() {
    // More corrupted variants than good ones, and partially-corrupted
    // variants that *overlap* the good coverage — the regime where greedy
    // choices could in principle go wrong.
    let cfg = GenTConfig::default();
    let gen_t = GenT::new(cfg.clone());
    let mut worst_ratio = 1.0f64;
    for seed in 100..108u64 {
        let (source, candidates) = make_case(seed, 5);
        let (best, _) = oracle_eis(&source, &candidates, &cfg);
        let res = gen_t.reclaim_from_candidates(&source, &candidates).unwrap();
        let ratio = if best > 0.0 { res.eis / best } else { 1.0 };
        worst_ratio = worst_ratio.min(ratio);
    }
    assert!(worst_ratio >= 0.95, "greedy fell to {worst_ratio:.3} of the oracle");
}

#[test]
fn oracle_confirms_pruning_beats_integrate_everything_on_precision() {
    // EIS takes the *best* aligned tuple per source key, so integrating
    // every candidate (the ALITE-PS strategy) can still reach EIS 1 — the
    // corrupted variants' damage shows up as extra non-source tuples,
    // i.e. in precision (exactly Table II/III's story: Gen-T's precision
    // advantage comes from pruning). Verify that mechanism end to end.
    use gen_t::metrics::precision;
    let cfg = GenTConfig::default();
    let (source, candidates) = make_case(42, 3);
    let all = integrate(&candidates, &source, &cfg);
    let all_precision = precision(&source, &all);
    let res = GenT::new(cfg.clone()).reclaim_from_candidates(&source, &candidates).unwrap();
    let pruned_precision = precision(&source, &res.reclaimed);
    assert!(
        pruned_precision > all_precision + 0.01,
        "pruned {pruned_precision} vs integrate-all {all_precision}"
    );
    // And the greedy EIS still matches the oracle on this case.
    let (best, _) = oracle_eis(&source, &candidates, &cfg);
    assert!(res.eis + 1e-9 >= best);
}
