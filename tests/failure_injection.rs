//! Failure-injection tests: budgets, malformed inputs, and degenerate lakes
//! must produce errors or graceful degradation, never panics or silent
//! corruption.

use gen_t::core::{GenT, GenTConfig, GentError};
use gen_t::ops::{full_disjunction, saturating_complementation, FdBudget, OpError};
use gen_t::prelude::*;
use gen_t::query::{rewrite, Catalog, Query, QueryError};
use gen_t::table::csv;

fn v(i: i64) -> Value {
    Value::Int(i)
}

/// Tables whose full disjunction explodes combinatorially: many rows that
/// all complement each other through a shared column.
fn explosive_tables() -> Vec<Table> {
    // Each table has the shared column "s" constant and a private column —
    // complementation must merge every row of one with every row of the
    // other.
    (0..3)
        .map(|t| {
            let cols = ["s".to_string(), format!("p{t}")];
            let rows: Vec<Vec<Value>> = (0..20).map(|i| vec![v(1), v(100 * t + i)]).collect();
            Table::build(
                &format!("explosive{t}"),
                &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
                &[],
                rows,
            )
            .unwrap()
        })
        .collect()
}

#[test]
fn fd_budget_exhaustion_is_an_error_not_an_oom() {
    let tables = explosive_tables();
    let tight = FdBudget::with_max_tuples(50);
    match full_disjunction(&tables, &tight) {
        Err(OpError::BudgetExhausted { .. }) => {}
        other => panic!("expected budget exhaustion, got {other:?}"),
    }
    // A generous budget succeeds on the same input.
    let roomy = FdBudget::with_max_tuples(1_000_000);
    assert!(full_disjunction(&tables, &roomy).is_ok());
}

#[test]
fn saturating_complementation_respects_budget() {
    let t = {
        let rows: Vec<Vec<Value>> = (0..30)
            .map(|i| {
                if i % 2 == 0 {
                    vec![v(1), v(i), Value::Null]
                } else {
                    vec![v(1), Value::Null, v(i)]
                }
            })
            .collect();
        Table::build("t", &["s", "a", "b"], &[], rows).unwrap()
    };
    let tight = FdBudget::with_max_tuples(40);
    match saturating_complementation(&t, &tight) {
        Err(OpError::BudgetExhausted { .. }) => {}
        Ok(out) => {
            // Acceptable only if the result actually stayed within budget.
            assert!(out.n_rows() <= 40 + t.n_rows());
        }
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
fn rep_query_eval_propagates_budget_errors() {
    // κ* over the explosive union must surface the ops error as a
    // QueryError::Op, not panic.
    let tables = explosive_tables();
    let cat = Catalog::from_tables(tables);
    let q = Query::scan("explosive0").inner_join(Query::scan("explosive1"));
    let rep = rewrite(&q, &cat).unwrap();
    let tight = FdBudget::with_max_tuples(10);
    match rep.eval_with_budget(&cat, &tight) {
        Err(QueryError::Op(OpError::BudgetExhausted { .. })) => {}
        other => panic!("expected Op(BudgetExhausted), got {other:?}"),
    }
}

#[test]
fn malformed_csvs_error_with_line_numbers() {
    // Ragged row.
    let err = csv::read_csv("t", "a,b\n1,2\n3\n".as_bytes()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("expected 2 fields"), "{msg}");

    // Empty input.
    assert!(csv::read_csv("t", "".as_bytes()).is_err());

    // Unterminated quote (spans to EOF).
    let res = csv::read_csv("t", "a\n\"unterminated\n".as_bytes());
    // Either an error or a single string cell — but never a panic.
    if let Ok(t) = res {
        assert_eq!(t.n_cols(), 1);
    }
}

#[test]
fn keyless_source_is_rejected_loudly() {
    let s = Table::build("S", &["a", "b"], &[], vec![vec![v(1), v(2)]]).unwrap();
    let lake = DataLake::from_tables(vec![]);
    assert_eq!(GenT::default().reclaim(&s, &lake).unwrap_err(), GentError::SourceHasNoKey);
}

#[test]
fn source_with_zero_rows_reclaims_trivially() {
    let s = Table::build("S", &["id", "x"], &["id"], vec![]).unwrap();
    let lake =
        DataLake::from_tables(vec![
            Table::build("t", &["id", "x"], &[], vec![vec![v(1), v(2)]]).unwrap()
        ]);
    let res = GenT::default().reclaim(&s, &lake).unwrap();
    assert_eq!(res.eis, 0.0); // no tuples to reclaim → vacuous zero, not a crash
}

#[test]
fn all_null_value_columns_do_not_crash_discovery() {
    let s = Table::build(
        "S",
        &["id", "x"],
        &["id"],
        vec![vec![v(1), Value::Null], vec![v(2), Value::Null]],
    )
    .unwrap();
    let keys_only = Table::build("keys", &["id"], &[], vec![vec![v(1)], vec![v(2)]]).unwrap();
    let lake = DataLake::from_tables(vec![keys_only]);
    let res = GenT::default().reclaim(&s, &lake).unwrap();
    // Keys can be reclaimed; the null column is correctly reproduced as
    // nulls → perfect reclamation of what exists.
    assert!(res.eis > 0.9, "eis {}", res.eis);
}

#[test]
fn duplicate_lake_table_names_stay_addressable() {
    let a = Table::build("dup", &["id"], &[], vec![vec![v(1)]]).unwrap();
    let b = Table::build("dup", &["id"], &[], vec![vec![v(2)]]).unwrap();
    let lake = DataLake::from_tables(vec![a, b]);
    assert!(lake.get_by_name("dup").is_some());
    assert!(lake.get_by_name("dup#2").is_some());
    assert_eq!(lake.len(), 2);
}

#[test]
fn pathological_wide_source_is_handled() {
    // 30 columns, one row — wider than anything the paper tests (22 cols).
    let cols: Vec<String> = (0..30).map(|i| format!("c{i}")).collect();
    let row: Vec<Value> = (0..30).map(v).collect();
    let s = Table::build(
        "wide",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &["c0"],
        vec![row.clone()],
    )
    .unwrap();
    let mut lake_table = Table::build(
        "fragment",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &[],
        vec![row],
    )
    .unwrap();
    lake_table.set_name("fragment");
    let lake = DataLake::from_tables(vec![lake_table]);
    let res = GenT::default().reclaim(&s, &lake).unwrap();
    assert!(res.report.perfect);
}

#[test]
fn contradictory_lake_tables_do_not_poison_the_result() {
    // Correct fragment + an aggressively wrong twin: traversal must prefer
    // the correct one (Example 3's Table C scenario, stress version).
    let s = Table::build(
        "S",
        &["id", "x", "y"],
        &["id"],
        (0..10).map(|i| vec![v(i), v(i * 10), v(i * 100)]).collect(),
    )
    .unwrap();
    let good = Table::build(
        "good",
        &["id", "x", "y"],
        &[],
        (0..10).map(|i| vec![v(i), v(i * 10), v(i * 100)]).collect(),
    )
    .unwrap();
    let evil = Table::build(
        "evil",
        &["id", "x", "y"],
        &[],
        (0..10).map(|i| vec![v(i), v(i * 10 + 1), v(i * 100 + 1)]).collect(),
    )
    .unwrap();
    let lake = DataLake::from_tables(vec![evil, good]);
    let res = GenT::default().reclaim(&s, &lake).unwrap();
    assert!(res.report.perfect, "reclaimed:\n{}", res.reclaimed);
    assert!(res.report.precision > 0.99);
}

#[test]
fn zero_max_aligned_per_key_is_clamped_not_divide_by_zero() {
    let s = Table::build("S", &["id", "x"], &["id"], vec![vec![v(1), v(2)]]).unwrap();
    let t = Table::build("t", &["id", "x"], &[], vec![vec![v(1), v(2)]]).unwrap();
    let cfg = GenTConfig {
        max_aligned_per_key: 0, // pathological configuration
        ..GenTConfig::default()
    };
    // Must not panic; any EIS in [0,1] is acceptable.
    let res = GenT::new(cfg).reclaim_from_candidates(&s, &[t]).unwrap();
    assert!((0.0..=1.0).contains(&res.eis));
}
