//! End-to-end test of the `gent serve` daemon: boot it on an ephemeral
//! port over a real snapshot, fire concurrent `POST /reclaim` requests at
//! it, and require the answers to be *byte-for-byte identical* to the
//! one-shot `gent reclaim --lake` CLI path over the same snapshot.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use gen_t::core::GenTConfig;
use gen_t::serve::{Json, LakeService, ServeConfig, Server};
use gen_t::store::{LakeSource, SnapshotFile};
use gen_t::table::{csv, key::ensure_key};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gent-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// Run the `gent` CLI in-process, returning its stdout.
fn cli(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    gent_cli::run(&args, &mut out).expect("cli run");
    String::from_utf8(out).expect("utf8 cli output")
}

/// One raw HTTP request over a fresh connection; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut text = String::new();
    s.read_to_string(&mut text).expect("read response");
    let status: u16 =
        text.split_whitespace().nth(1).and_then(|t| t.parse().ok()).expect("status line");
    let payload = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, payload)
}

/// Send one request over an already-open connection, asking the daemon to
/// keep it alive, and read exactly one response (headers +
/// `Content-Length` bytes) — the socket stays usable for the next request.
/// Returns (status, connection-header-value, body).
fn http_keep_alive(
    stream: &TcpStream,
    reader: &mut std::io::BufReader<&TcpStream>,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String, String) {
    use std::io::BufRead;
    let mut w = stream;
    write!(
        w,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut head = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        reader.read_line(&mut line).expect("read header line");
        if line == "\r\n" || line.is_empty() {
            break;
        }
        head.push_str(&line);
    }
    let status: u16 =
        head.split_whitespace().nth(1).and_then(|t| t.parse().ok()).expect("status line");
    let connection = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("connection:").map(str::to_string))
        .map(|v| v.trim().to_string())
        .unwrap_or_default();
    let content_length: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_string))
        .and_then(|v| v.trim().parse().ok())
        .expect("content-length header");
    let mut payload = vec![0u8; content_length];
    reader.read_exact(&mut payload).expect("read body");
    (status, connection, String::from_utf8(payload).expect("utf8 body"))
}

/// Re-render a response body with the per-request `timings` field removed,
/// so deterministic payloads can be compared across requests.
fn without_timings(body: &str) -> String {
    match Json::parse(body).expect("response json") {
        Json::Object(fields) => {
            Json::Object(fields.into_iter().filter(|(k, _)| k != "timings").collect()).render()
        }
        other => other.render(),
    }
}

#[test]
fn daemon_matches_one_shot_cli_byte_for_byte() {
    // ── Build one snapshot both paths will use. ─────────────────────────
    let gen_dir = scratch("suite");
    cli(&["generate", gen_dir.to_str().unwrap(), "--benchmark", "tp-tr-small", "--seed", "7"]);
    let lake_dir = gen_dir.join("lake");
    let snap = scratch("lake.gentlake");
    cli(&["lake", "build", lake_dir.to_str().unwrap(), "--out", snap.to_str().unwrap()]);

    // The source: the first generated reclamation case, with the key the
    // CLI would mine — pinned explicitly so both paths align identically.
    let src_csv = gen_dir.join("sources").join("S1.csv");
    assert!(src_csv.is_file(), "generated suite must include sources/S1.csv");
    let mut source = csv::read_csv_file(&src_csv).expect("read source csv");
    assert!(ensure_key(&mut source), "a key must be minable from the generated source");
    let key_names: Vec<String> =
        source.schema().key_names().iter().map(|s| s.to_string()).collect();
    let key_spec = key_names.join(",");

    // ── One-shot CLI path: reclaim --lake, write the reclaimed CSV. ─────
    let cli_out = scratch("cli-reclaimed.csv");
    let stdout = cli(&[
        "reclaim",
        src_csv.to_str().unwrap(),
        "--lake",
        snap.to_str().unwrap(),
        "--key",
        &key_spec,
        "--out",
        cli_out.to_str().unwrap(),
    ]);
    let cli_bytes = std::fs::read(&cli_out).expect("cli reclaimed csv");
    let cli_eis: f64 = stdout
        .lines()
        .find_map(|l| l.trim().strip_prefix("EIS:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("EIS line in cli output");

    // ── Boot the daemon on an ephemeral port over the same snapshot. ────
    let loaded = SnapshotFile(snap.clone()).load_lake().expect("open snapshot");
    let service = LakeService::new(loaded, GenTConfig::default(), snap.display().to_string());
    let cfg = ServeConfig { addr: "127.0.0.1:0".into(), threads: 4, ..ServeConfig::default() };
    let server = Server::bind(&cfg, service).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle().expect("handle");
    let runner = std::thread::spawn(move || server.run());

    let (status, health) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "healthz: {health}");

    // ── ≥ 8 concurrent POST /reclaim requests with the same source. ─────
    let request_body =
        Json::Object(vec![("source".to_string(), gen_t::serve::table_to_json(&source))]).render();
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let body = request_body.clone();
            std::thread::spawn(move || http(addr, "POST", "/reclaim", &body))
        })
        .collect();
    let responses: Vec<(u16, String)> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    for (i, (status, body)) in responses.iter().enumerate() {
        assert_eq!(*status, 200, "request {i} failed: {body}");
        let v = Json::parse(body).expect("response json");

        // Every response carries the pipeline's wall-clock breakdown…
        let timings = v.get("timings").expect("reclaim response carries `timings`");
        for field in ["discovery_ms", "traversal_ms", "integration_ms", "total_ms"] {
            let val = timings.get(field).and_then(Json::as_f64);
            assert!(val.is_some_and(|v| v >= 0.0), "request {i}: bad timings.{field}: {val:?}");
        }
        // …and the traversal's greedy-round counters. On a real lake the
        // loop runs at least one round and fills its row cache, and the
        // counters are deterministic — identical across identical requests.
        for field in ["traversal_rounds", "rows_rescored", "candidates_pruned"] {
            let val = timings.get(field).and_then(Json::as_i64);
            assert!(val.is_some_and(|v| v >= 0), "request {i}: bad timings.{field}: {val:?}");
        }
        assert!(
            timings.get("traversal_rounds").and_then(Json::as_i64).unwrap() >= 1,
            "request {i}: the greedy loop must have run"
        );
        assert!(
            timings.get("rows_rescored").and_then(Json::as_i64).unwrap() >= 1,
            "request {i}: the row cache was never filled"
        );

        // Metrics agree with the CLI run (the CLI prints 3 decimals).
        let eis = v.get("metrics").unwrap().get("eis").and_then(Json::as_f64).expect("eis");
        assert!((eis - cli_eis).abs() < 5e-4, "request {i}: served EIS {eis} vs CLI EIS {cli_eis}");

        // The reclaimed table, rendered back to CSV, is byte-for-byte the
        // CLI's --out file.
        let reclaimed = gen_t::serve::table_from_json(v.get("reclaimed").expect("reclaimed table"))
            .expect("reclaimed parses back into a table");
        let served_csv = scratch(&format!("served-reclaimed-{i}.csv"));
        csv::write_csv_file(&reclaimed, Path::new(&served_csv)).expect("write served csv");
        let served_bytes = std::fs::read(&served_csv).expect("read served csv");
        assert_eq!(
            served_bytes, cli_bytes,
            "request {i}: served reclaimed table differs from the one-shot CLI output"
        );
    }

    // All concurrent responses are identical to each other, too — modulo
    // the per-request `timings` field, which genuinely varies run to run.
    let canonical = without_timings(&responses[0].1);
    for (status, body) in &responses[1..] {
        assert_eq!(*status, responses[0].0);
        assert_eq!(without_timings(body), canonical, "concurrent responses must not diverge");
    }

    // ── Keep-alive: one reused connection answers repeated reclaims, each
    //    byte-identical (modulo timings) to the fresh-connection responses,
    //    with the daemon advertising the reuse. ──────────────────────────
    let stream = TcpStream::connect(addr).expect("connect keep-alive client");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let mut reader = std::io::BufReader::new(&stream);
    for i in 0..3 {
        let (status, connection, body) =
            http_keep_alive(&stream, &mut reader, "POST", "/reclaim", &request_body);
        assert_eq!(status, 200, "keep-alive request {i}: {body}");
        assert_eq!(connection, "keep-alive", "keep-alive request {i} must advertise reuse");
        assert_eq!(
            without_timings(&body),
            canonical,
            "keep-alive request {i} diverged from the fresh-connection answer"
        );
    }
    // The same socket still serves other endpoints, then closes when the
    // client stops asking for keep-alive.
    let (status, connection, health) = http_keep_alive(&stream, &mut reader, "GET", "/healthz", "");
    assert_eq!(status, 200, "healthz on reused socket: {health}");
    assert_eq!(connection, "keep-alive");
    drop(reader);
    drop(stream);

    handle.stop();
    runner.join().unwrap().expect("server run");
}

/// Rename an inline-source JSON table, so one CSV can stand in for several
/// distinct batch entries (duplicate *names* are rejected by the batch
/// endpoint; duplicate *content* is exactly what makes the shared
/// discovery memo observable).
fn renamed(table: &Json, name: &str) -> Json {
    match table.clone() {
        Json::Object(fields) => Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| if k == "name" { (k, Json::str(name)) } else { (k, v) })
                .collect(),
        ),
        other => other,
    }
}

/// Batch ≡ sequential: a `POST /reclaim/batch` of N sources must answer,
/// per source, byte-identically (modulo timings) to N individual
/// `POST /reclaim` calls — and the shared discovery memo must actually
/// amortise work, observable in the response and in `/metrics`.
#[test]
fn batch_reclaim_matches_sequential_and_amortises_discovery() {
    let gen_dir = scratch("batch-suite");
    cli(&["generate", gen_dir.to_str().unwrap(), "--benchmark", "tp-tr-small", "--seed", "7"]);
    let snap = scratch("batch-lake.gentlake");
    cli(&[
        "lake",
        "build",
        gen_dir.join("lake").to_str().unwrap(),
        "--out",
        snap.to_str().unwrap(),
    ]);

    let mut source = csv::read_csv_file(&gen_dir.join("sources").join("S1.csv")).expect("source");
    assert!(ensure_key(&mut source));
    let table = gen_t::serve::table_to_json(&source);
    let names = ["batch_a", "batch_b", "batch_c"];

    let loaded = SnapshotFile(snap.clone()).load_lake().expect("open snapshot");
    let service = LakeService::new(loaded, GenTConfig::default(), snap.display().to_string());
    let cfg = ServeConfig { addr: "127.0.0.1:0".into(), threads: 2, ..ServeConfig::default() };
    let server = Server::bind(&cfg, service).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle().expect("handle");
    let runner = std::thread::spawn(move || server.run());

    // N individual reclaims…
    let sequential: Vec<String> = names
        .iter()
        .map(|name| {
            let body = Json::Object(vec![("source".to_string(), renamed(&table, name))]).render();
            let (status, payload) = http(addr, "POST", "/reclaim", &body);
            assert_eq!(status, 200, "sequential {name}: {payload}");
            payload
        })
        .collect();

    // …then the same N sources as one batch.
    let batch_body = Json::Object(vec![(
        "sources".to_string(),
        Json::Array(
            names
                .iter()
                .map(|name| Json::Object(vec![("source".to_string(), renamed(&table, name))]))
                .collect(),
        ),
    )])
    .render();
    let (status, payload) = http(addr, "POST", "/reclaim/batch", &batch_body);
    assert_eq!(status, 200, "batch: {payload}");
    let v = Json::parse(&payload).expect("batch json");
    assert_eq!(v.get("count").and_then(Json::as_i64), Some(names.len() as i64));
    let results = v.get("results").and_then(Json::as_array).expect("results array");
    assert_eq!(results.len(), names.len());

    // Per-source fidelity: each batch entry is the single-call response,
    // byte-for-byte once the genuinely-variable timings are stripped.
    for ((name, batch_result), single) in names.iter().zip(results).zip(&sequential) {
        assert_eq!(
            without_timings(&batch_result.render()),
            without_timings(single),
            "batch entry `{name}` diverged from its sequential twin"
        );
    }

    // Amortisation is observable: identical sources repeat identical
    // discovery probes, so the shared memo must have answered some.
    let disc = v.get("discovery").expect("batch responses report discovery stats");
    let hits = disc.get("memo_hits").and_then(Json::as_i64).expect("memo_hits");
    let misses = disc.get("memo_misses").and_then(Json::as_i64).expect("memo_misses");
    assert!(hits > 0, "identical batch sources must hit the shared memo: {payload}");
    assert!(misses > 0, "the first source always computes fresh: {payload}");
    assert!(disc.get("discovery_ms").and_then(Json::as_f64).is_some());

    // …and lands in /metrics: per-lake batch counters plus the
    // discovery-stage histogram that makes the amortised time visible.
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let sample = |name: &str| -> i64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no sample `{name}` in:\n{metrics}"))
    };
    assert_eq!(sample("gent_batch_requests_total{lake=\"default\"}"), 1);
    assert_eq!(sample("gent_batch_sources_total{lake=\"default\"}"), names.len() as i64);
    assert_eq!(sample("gent_batch_discovery_memo_hits_total{lake=\"default\"}"), hits);
    assert_eq!(sample("gent_batch_discovery_memo_misses_total{lake=\"default\"}"), misses);
    assert_eq!(sample("gent_batch_discovery_duration_us_count{lake=\"default\"}"), 1);

    handle.stop();
    runner.join().unwrap().expect("server run");
}

/// The zero-copy open acceptance for the daemon: `/healthz` and
/// `/lake/stat` answer without decoding a single table or LSH band, the
/// lazy-decode gauge and per-endpoint latency histograms are reported and
/// move, and a reclaim only materializes the tables it actually touched.
#[test]
fn stat_endpoints_decode_nothing_and_report_latency() {
    let gen_dir = scratch("lazy-suite");
    cli(&["generate", gen_dir.to_str().unwrap(), "--benchmark", "tp-tr-small", "--seed", "7"]);
    let snap = scratch("lazy-lake.gentlake");
    cli(&[
        "lake",
        "build",
        gen_dir.join("lake").to_str().unwrap(),
        "--out",
        snap.to_str().unwrap(),
        "--lsh",
    ]);

    let loaded = SnapshotFile(snap.clone()).load_lake().expect("open snapshot");
    assert_eq!(loaded.lake.tables_decoded(), 0, "open must decode nothing");
    let service = LakeService::new(loaded, GenTConfig::default(), snap.display().to_string());
    let cfg = ServeConfig { addr: "127.0.0.1:0".into(), threads: 2, ..ServeConfig::default() };
    let server = Server::bind(&cfg, service).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle().expect("handle");
    let runner = std::thread::spawn(move || server.run());

    let stat = |label: &str| -> Json {
        let (status, body) = http(addr, "GET", "/lake/stat", "");
        assert_eq!(status, 200, "{label}: {body}");
        Json::parse(&body).expect("stat json")
    };
    let gauge = |v: &Json, k: &str| v.get(k).and_then(Json::as_i64).expect("gauge");

    // Health + stat leave the lake fully undecoded.
    let (status, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let v = stat("fresh");
    let total = gauge(&v, "tables_total");
    assert!(total > 0);
    assert_eq!(gauge(&v, "tables_decoded"), 0, "stat endpoints must not decode tables");
    assert_eq!(v.get("lsh_decoded"), Some(&Json::Bool(false)), "stat must not decode bands");
    assert!(gauge(&v, "lsh_columns") > 0, "band metadata available without decode");

    // Latency histograms exist for every endpoint and already saw traffic.
    let latency = v.get("latency").expect("latency histograms in /lake/stat");
    for endpoint in ["healthz", "lake_stat", "reclaim", "other"] {
        let h = latency.get(endpoint).unwrap_or_else(|| panic!("latency.{endpoint}"));
        assert!(h.get("count").and_then(Json::as_i64).is_some(), "{endpoint}.count");
        assert!(h.get("mean_ms").and_then(Json::as_f64).is_some(), "{endpoint}.mean_ms");
        assert!(
            h.get("buckets").and_then(Json::as_array).is_some_and(|b| !b.is_empty()),
            "{endpoint}.buckets"
        );
    }
    let healthz_count =
        latency.get("healthz").unwrap().get("count").and_then(Json::as_i64).unwrap();
    assert!(healthz_count >= 1, "healthz request observed, got {healthz_count}");

    // One reclaim decodes the tables it touches — and only those.
    let mut source = csv::read_csv_file(&gen_dir.join("sources").join("S1.csv")).expect("source");
    assert!(ensure_key(&mut source));
    let body =
        Json::Object(vec![("source".to_string(), gen_t::serve::table_to_json(&source))]).render();
    let (status, reclaim_body) = http(addr, "POST", "/reclaim", &body);
    assert_eq!(status, 200, "{reclaim_body}");
    let v = stat("after reclaim");
    let decoded = gauge(&v, "tables_decoded");
    assert!(decoded > 0, "the reclaim materialized its candidates");
    assert!(decoded <= total);
    let reclaim_count = v
        .get("latency")
        .unwrap()
        .get("reclaim")
        .unwrap()
        .get("count")
        .and_then(Json::as_i64)
        .unwrap();
    assert_eq!(reclaim_count, 1, "reclaim latency observed");

    handle.stop();
    runner.join().unwrap().expect("server run");
}

/// Live ingest end-to-end: `POST /admin/ingest` appends tables to a
/// served snapshot as crash-safe delta frames, they become reclaimable
/// without a restart (generation bump observable), survive an explicit
/// compaction, and are still there when a *fresh* daemon reopens the file.
#[test]
fn ingest_goes_live_survives_compaction_and_reopen() {
    use gen_t::serve::Router;
    use gen_t::table::{Table, Value as V};

    let snap = scratch("ingest-live.gentlake");
    let rows = |tag: &str| (0..8).map(|i| vec![V::Int(i), V::str(format!("{tag}_{i}"))]).collect();
    let lake = gen_t::discovery::DataLake::from_tables(vec![
        Table::build("base_a", &["id", "val"], &["id"], rows("a")).unwrap(),
        Table::build("base_b", &["id", "val"], &["id"], rows("b")).unwrap(),
    ]);
    gen_t::store::snapshot::save(&snap, &lake, None).expect("save");

    let boot = |snap: &PathBuf| {
        let mut b = Router::builder(GenTConfig::default());
        b.add_snapshot("live", snap).expect("boot");
        let cfg = ServeConfig { addr: "127.0.0.1:0".into(), threads: 2, ..ServeConfig::default() };
        let server = Server::bind_router(&cfg, b.build().unwrap()).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.handle().expect("handle");
        let runner = std::thread::spawn(move || server.run());
        (addr, handle, runner)
    };
    let (addr, handle, runner) = boot(&snap);

    // Ingest one inline table; it must answer with a bumped generation.
    let ingest = r#"{"tables": [{"name": "fresh", "columns": ["id", "val"],
        "rows": [[0, "f_0"], [1, "f_1"], [2, "f_2"]]}]}"#;
    let (status, body) = http(addr, "POST", "/admin/ingest", ingest);
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).expect("ingest json");
    assert_eq!(v.get("appended").and_then(Json::as_i64), Some(1));
    assert_eq!(v.get("tables").and_then(Json::as_i64), Some(3));
    assert_eq!(v.get("generation").and_then(Json::as_i64), Some(1));
    assert_eq!(v.get("frames").and_then(Json::as_i64), Some(1));

    // The table is reclaimable immediately, without any restart.
    let reclaim = r#"{"source_name": "fresh", "key": ["id"]}"#;
    let (status, first) = http(addr, "POST", "/reclaim", reclaim);
    assert_eq!(status, 200, "{first}");

    // Compacting folds the frame log; the answer does not change.
    let (status, body) = http(addr, "POST", "/admin/compact", r#"{"lake": "live"}"#);
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).expect("compact json");
    assert_eq!(v.get("folded").and_then(Json::as_i64), Some(1));
    let (status, compacted) = http(addr, "POST", "/reclaim", reclaim);
    assert_eq!(status, 200, "{compacted}");
    assert_eq!(without_timings(&compacted), without_timings(&first));

    handle.stop();
    runner.join().unwrap().expect("server run");

    // A fresh daemon over the same file still serves the ingested table —
    // the append was durable, not a memory-only overlay.
    let (addr, handle, runner) = boot(&snap);
    let (status, reopened) = http(addr, "POST", "/reclaim", reclaim);
    assert_eq!(status, 200, "{reopened}");
    assert_eq!(without_timings(&reopened), without_timings(&first));
    handle.stop();
    runner.join().unwrap().expect("server run");
}

/// Degraded serving end-to-end: against a snapshot with one corrupt table
/// section, a `--degraded` daemon answers reclaims on unaffected tables
/// **byte-identically** to a clean daemon over the pristine file, while
/// the quarantined table's lookups answer a structured 410.
#[test]
fn degraded_daemon_serves_unaffected_tables_byte_identically() {
    use gen_t::serve::Router;
    use gen_t::table::{Table, Value as V};

    let pristine = scratch("degraded-pristine.gentlake");
    let damaged = scratch("degraded-damaged.gentlake");
    let rows = |tag: &str| (0..10).map(|i| vec![V::Int(i), V::str(format!("{tag}_{i}"))]).collect();
    let lake = gen_t::discovery::DataLake::from_tables(vec![
        Table::build("doomed", &["id", "val"], &["id"], rows("doomed")).unwrap(),
        Table::build("healthy", &["id", "val"], &["id"], rows("healthy")).unwrap(),
    ]);
    gen_t::store::snapshot::save(&pristine, &lake, None).expect("save");

    // Damage a copy: flip a byte mid-way through `doomed`'s section.
    let mut bytes = std::fs::read(&pristine).unwrap();
    let header = gen_t::store::snapshot::stat(&pristine).unwrap().header;
    let (dir, _) =
        gen_t::store::SectionDirV3::decode(&bytes, header.n_tables as usize, header.has_lsh())
            .unwrap();
    let t0 = &dir.tables[0].range;
    bytes[(t0.offset + t0.len / 2) as usize] ^= 0x08;
    std::fs::write(&damaged, &bytes).unwrap();

    let boot = |snap: &PathBuf, degraded: bool| {
        let mut b = Router::builder(GenTConfig::default());
        b.set_degraded(degraded);
        b.add_snapshot("lake", snap).expect("boot");
        let cfg = ServeConfig { addr: "127.0.0.1:0".into(), threads: 2, ..ServeConfig::default() };
        let server = Server::bind_router(&cfg, b.build().unwrap()).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.handle().expect("handle");
        let runner = std::thread::spawn(move || server.run());
        (addr, handle, runner)
    };
    let reclaim = r#"{"source_name": "healthy", "key": ["id"]}"#;

    // The clean daemon's answer over the pristine file is the oracle.
    let (addr, handle, runner) = boot(&pristine, false);
    let (status, clean_answer) = http(addr, "POST", "/reclaim", reclaim);
    assert_eq!(status, 200, "{clean_answer}");
    handle.stop();
    runner.join().unwrap().expect("server run");

    // A strict open of the damaged file succeeds (per-section checksums
    // verify on first decode, not at open) but forcing the corrupt table
    // must yield a structured error — never a silent wrong answer.
    {
        let strict = SnapshotFile(damaged.clone()).load_lake().expect("lazy open");
        assert!(
            strict.lake.decode_all(1).is_err(),
            "forcing the corrupt section must surface the checksum failure"
        );
    }

    // The degraded daemon serves the unaffected table byte-identically…
    let (addr, handle, runner) = boot(&damaged, true);
    let (status, degraded_answer) = http(addr, "POST", "/reclaim", reclaim);
    assert_eq!(status, 200, "{degraded_answer}");
    assert_eq!(
        without_timings(&degraded_answer),
        without_timings(&clean_answer),
        "degraded serving must not change unaffected answers"
    );
    // …and answers the quarantined table with a structured 410.
    let (status, body) =
        http(addr, "POST", "/reclaim", r#"{"source_name": "doomed", "key": ["id"]}"#);
    assert_eq!(status, 410, "{body}");
    let v = Json::parse(&body).expect("structured 410");
    assert_eq!(
        v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("quarantined"),
        "{body}"
    );
    handle.stop();
    runner.join().unwrap().expect("server run");
}

/// A `Write` sink shareable across threads, so the test can watch
/// `cmd_serve`'s boot lines while the daemon thread keeps running.
#[derive(Clone, Default)]
struct SharedOut(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl Write for SharedOut {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedOut {
    fn text(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
    }
}

/// The full multi-lake story through the real CLI surface: `gent serve`
/// with three repeated `--lake` flags (bare path and `name=path` forms),
/// per-request routing, a batch against a named lake, and a hot reload
/// driven by `gent admin reload` — plus its failure mode.
#[test]
fn three_lake_daemon_routes_batches_and_reloads_via_cli() {
    let gen_dir = scratch("trio-suite");
    cli(&["generate", gen_dir.to_str().unwrap(), "--benchmark", "tp-tr-small", "--seed", "7"]);
    let alpha = scratch("alpha.gentlake");
    cli(&[
        "lake",
        "build",
        gen_dir.join("lake").to_str().unwrap(),
        "--out",
        alpha.to_str().unwrap(),
    ]);
    let beta = scratch("beta-snap.gentlake");
    let gamma = scratch("gamma-snap.gentlake");
    std::fs::copy(&alpha, &beta).expect("copy beta");
    std::fs::copy(&alpha, &gamma).expect("copy gamma");

    // Boot the daemon exactly as an operator would, on an ephemeral port.
    let out = SharedOut::default();
    {
        let mut out = out.clone();
        let args: Vec<String> = [
            "serve",
            "--lake",
            alpha.to_str().unwrap(),
            "--lake",
            &format!("beta={}", beta.display()),
            "--lake",
            &format!("gamma={}", gamma.display()),
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        std::thread::spawn(move || gent_cli::run(&args, &mut out));
    }
    let addr: SocketAddr = {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let text = out.text();
            if let Some(line) = text.lines().find(|l| l.contains("serving 3 lake(s)")) {
                break line
                    .rsplit("http://")
                    .next()
                    .and_then(|a| a.trim().parse().ok())
                    .unwrap_or_else(|| panic!("unparseable serve banner: {line}"));
            }
            assert!(std::time::Instant::now() < deadline, "daemon never booted:\n{text}");
            std::thread::sleep(Duration::from_millis(20));
        }
    };

    // `GET /lakes`: all three routes, bare path named from its file stem,
    // the first flag the default.
    let (status, body) = http(addr, "GET", "/lakes", "");
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).expect("lakes json");
    assert_eq!(v.get("default").and_then(Json::as_str), Some("alpha"));
    let names: Vec<&str> = v
        .get("lakes")
        .and_then(Json::as_array)
        .expect("lakes array")
        .iter()
        .filter_map(|l| l.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, ["alpha", "beta", "gamma"]);

    // Route a reclaim and a batch at a *named* (non-default) lake.
    let mut source = csv::read_csv_file(&gen_dir.join("sources").join("S1.csv")).expect("source");
    assert!(ensure_key(&mut source));
    let table = gen_t::serve::table_to_json(&source);
    let body = Json::Object(vec![
        ("lake".to_string(), Json::str("gamma")),
        ("source".to_string(), table.clone()),
    ])
    .render();
    let (status, routed) = http(addr, "POST", "/reclaim", &body);
    assert_eq!(status, 200, "{routed}");
    let batch = Json::Object(vec![
        ("lake".to_string(), Json::str("beta")),
        (
            "sources".to_string(),
            Json::Array(vec![Json::Object(vec![("source".to_string(), table)])]),
        ),
    ])
    .render();
    let (status, batched) = http(addr, "POST", "/reclaim/batch", &batch);
    assert_eq!(status, 200, "{batched}");
    let v = Json::parse(&batched).unwrap();
    assert_eq!(v.get("lake").and_then(Json::as_str), Some("beta"));

    // Hot-reload lake beta through the operator command; the daemon answers
    // with the bumped generation and `/lakes` agrees.
    let reload_out = cli(&[
        "admin",
        "reload",
        beta.to_str().unwrap(),
        "--addr",
        &addr.to_string(),
        "--lake",
        "beta",
    ]);
    // The first stdout line is the daemon's raw response body; the retrying
    // client may append parenthesised operator notes after it.
    let reload_body = reload_out.lines().next().expect("reload output");
    let v = Json::parse(reload_body.trim()).expect("reload response json");
    assert_eq!(v.get("lake").and_then(Json::as_str), Some("beta"));
    assert_eq!(v.get("generation").and_then(Json::as_i64), Some(1));
    assert!(
        reload_out.contains("(lake generation is now 1)"),
        "operator note missing: {reload_out}"
    );
    let (_, body) = http(addr, "GET", "/lakes", "");
    let generations: Vec<i64> = Json::parse(&body)
        .unwrap()
        .get("lakes")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(|l| l.get("generation").and_then(Json::as_i64))
        .collect();
    assert_eq!(generations, [0, 1, 0], "only beta reloaded");

    // The failure mode: a missing snapshot answers 422, the CLI surfaces
    // the structured error and exits non-zero — and the daemon stays up.
    let mut err_out = Vec::new();
    let args: Vec<String> =
        ["admin", "reload", "/nonexistent/nope.gentlake", "--addr", &addr.to_string()]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let err = gent_cli::run(&args, &mut err_out).expect_err("reload of a missing file must fail");
    assert!(err.to_string().contains("422"), "{err}");
    assert!(String::from_utf8_lossy(&err_out).contains("reload_failed"));
    let (status, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "daemon must survive a failed reload");
}
