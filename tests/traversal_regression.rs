//! Regression suite for the flat-arena Matrix Traversal: on the datagen
//! benchmark, the optimized pipeline (arena matrices, fused combine–score,
//! winner-only materialization) must produce **byte-identical** output to
//! the pre-refactor algorithm — re-run here against the retained
//! nested-vector reference implementation (`gent_core::matrix::reference`),
//! which is the old code verbatim.

use gen_t::core::matrix::reference::NestedMatrix;
use gen_t::core::{expand, integrate, matrix_traversal, GenT, GenTConfig};
use gen_t::datagen::suite::{build, BenchmarkId, SuiteConfig};
use gen_t::discovery::{set_similarity, DataLake};
use gen_t::table::{csv, Table};

/// Algorithm 1 exactly as it ran before the arena refactor: nested-vector
/// matrices, and a *materialized* `Combine` per candidate per greedy round.
fn reference_traversal(
    source: &Table,
    candidates: &[Table],
    cfg: &GenTConfig,
) -> (Vec<Table>, f64) {
    let key_names: Vec<&str> = source.schema().key_names();
    let expanded = expand(candidates, &key_names, cfg.expand_max_depth);
    let mut tables: Vec<Table> = Vec::new();
    let mut matrices: Vec<NestedMatrix> = Vec::new();
    for t in expanded {
        if let Some(m) = NestedMatrix::build(source, &t, cfg.three_valued, cfg.max_aligned_per_key)
        {
            tables.push(t);
            matrices.push(m);
        }
    }
    if tables.is_empty() {
        return (Vec::new(), 0.0);
    }
    let (start, _) = matrices
        .iter()
        .enumerate()
        .map(|(i, m)| (i, m.net_score()))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("score finite").then(b.0.cmp(&a.0)))
        .expect("non-empty");
    let mut chosen = vec![start];
    let mut combined = matrices[start].clone();
    let mut most_correct = combined.net_score();
    loop {
        let mut best: Option<(usize, NestedMatrix, f64)> = None;
        for (i, m) in matrices.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let c = combined.combine(m, cfg.max_aligned_per_key);
            let score = c.net_score();
            let better = match &best {
                None => score > most_correct,
                Some((_, _, bs)) => score > *bs,
            };
            if better {
                best = Some((i, c, score));
            }
        }
        match best {
            Some((i, c, score)) if score > most_correct => {
                chosen.push(i);
                combined = c;
                most_correct = score;
            }
            _ => break,
        }
        if chosen.len() == tables.len() {
            break;
        }
    }
    (chosen.into_iter().map(|i| tables[i].clone()).collect(), combined.eis())
}

/// A table's CSV rendering, for byte-level comparison.
fn csv_bytes(t: &Table) -> Vec<u8> {
    let mut out = Vec::new();
    csv::write_csv(t, &mut out).expect("csv render");
    out
}

#[test]
fn reclaim_output_is_byte_identical_to_pre_refactor_algorithm() {
    // A mid-sized TP-TR suite: big enough for multi-round traversals with
    // expansions and conflicts, small enough to run both algorithms over
    // every case.
    let suite = SuiteConfig { units: (20, 40, 60), ..Default::default() };
    let bench = build(BenchmarkId::TpTrSmall, &suite);
    let lake = DataLake::from_tables(bench.lake_tables.clone());
    let cfg = GenTConfig::default();
    let gen_t = GenT::new(cfg.clone());

    let mut nonempty = 0usize;
    let mut multi_round = 0usize;
    for case in &bench.cases {
        if !case.source.schema().has_key() {
            continue;
        }
        let candidates: Vec<Table> = set_similarity(&lake, &case.source, None, &cfg.set_similarity)
            .into_iter()
            .map(|c| c.table)
            .collect();

        // Optimized path: arena matrices, fused scoring, winner-only
        // materialization — the code the pipeline actually runs.
        let outcome = matrix_traversal(&case.source, &candidates, &cfg);
        // Pre-refactor path: nested matrices, materialize-per-candidate.
        let (ref_originating, ref_eis) = reference_traversal(&case.source, &candidates, &cfg);

        // Same selections, in the same order, with the same matrix EIS.
        let names: Vec<&str> = outcome.originating.iter().map(|t| t.name()).collect();
        let ref_names: Vec<&str> = ref_originating.iter().map(|t| t.name()).collect();
        assert_eq!(names, ref_names, "case {}: different originating tables", case.id);
        assert_eq!(
            outcome.estimated_eis.to_bits(),
            ref_eis.to_bits(),
            "case {}: estimated EIS diverges",
            case.id
        );
        for (a, b) in outcome.originating.iter().zip(&ref_originating) {
            assert_eq!(csv_bytes(a), csv_bytes(b), "case {}: originating table bytes", case.id);
        }

        // Same reclaimed table, byte for byte, and the same reported EIS
        // through the full pipeline entry point.
        let result = gen_t.reclaim_from_candidates(&case.source, &candidates).expect("keyed");
        let ref_reclaimed = integrate(&ref_originating, &case.source, &cfg);
        assert_eq!(
            csv_bytes(&result.reclaimed),
            csv_bytes(&ref_reclaimed),
            "case {}: reclaimed CSV diverges",
            case.id
        );
        assert_eq!(
            result.eis.to_bits(),
            gen_t::metrics::eis(&case.source, &ref_reclaimed).to_bits(),
            "case {}: pipeline EIS diverges",
            case.id
        );

        if !outcome.originating.is_empty() {
            nonempty += 1;
        }
        if outcome.originating.len() > 1 {
            multi_round += 1;
        }
    }
    // The comparison is only meaningful if the suite actually exercised
    // the greedy loop: most cases must reclaim something, several across
    // multiple rounds.
    assert!(nonempty >= bench.cases.len() / 2, "only {nonempty} non-empty traversals");
    assert!(multi_round >= 3, "only {multi_round} multi-round traversals");
}
