//! Cross-crate integration tests: the full pipeline from generated
//! benchmarks through discovery, traversal and integration to evaluation.

use gen_t::baselines::{AlitePs, GenTMethod, Reclaimer};
use gen_t::datagen::suite::{build, BenchmarkId, SuiteConfig};
use gen_t::datagen::webgen::WebCorpusConfig;
use gen_t::prelude::*;
use std::time::Duration;

fn small_suite() -> SuiteConfig {
    SuiteConfig {
        units: (40, 60, 90),
        santos_noise_tables: 60,
        wdc_noise_tables: 60,
        web: WebCorpusConfig {
            n_base_tables: 12,
            n_reclaimable: 3,
            n_duplicates: 2,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn figure3_pipeline_is_perfect() {
    let source = Table::build(
        "S",
        &["ID", "Name", "Age", "Gender", "Education Level"],
        &["ID"],
        vec![
            vec![
                Value::Int(0),
                Value::str("Smith"),
                Value::Int(27),
                Value::Null,
                Value::str("Bachelors"),
            ],
            vec![
                Value::Int(1),
                Value::str("Brown"),
                Value::Int(24),
                Value::str("Male"),
                Value::str("Masters"),
            ],
            vec![
                Value::Int(2),
                Value::str("Wang"),
                Value::Int(32),
                Value::str("Female"),
                Value::str("High School"),
            ],
        ],
    )
    .unwrap();
    let lake = DataLake::from_tables(vec![
        Table::build(
            "A",
            &["id", "nm", "edu"],
            &[],
            vec![
                vec![Value::Int(0), Value::str("Smith"), Value::str("Bachelors")],
                vec![Value::Int(1), Value::str("Brown"), Value::Null],
                vec![Value::Int(2), Value::str("Wang"), Value::str("High School")],
            ],
        )
        .unwrap(),
        Table::build(
            "B",
            &["who", "age"],
            &[],
            vec![
                vec![Value::str("Smith"), Value::Int(27)],
                vec![Value::str("Brown"), Value::Int(24)],
                vec![Value::str("Wang"), Value::Int(32)],
            ],
        )
        .unwrap(),
        Table::build(
            "D",
            &["id", "nm", "age", "sex", "edu"],
            &[],
            vec![
                vec![
                    Value::Int(0),
                    Value::str("Smith"),
                    Value::Int(27),
                    Value::Null,
                    Value::str("Bachelors"),
                ],
                vec![
                    Value::Int(1),
                    Value::str("Brown"),
                    Value::Int(24),
                    Value::str("Male"),
                    Value::str("Masters"),
                ],
                vec![
                    Value::Int(2),
                    Value::str("Wang"),
                    Value::Int(32),
                    Value::str("Female"),
                    Value::Null,
                ],
            ],
        )
        .unwrap(),
    ]);
    let res = GenT::new(GenTConfig::default()).reclaim(&source, &lake).unwrap();
    assert!(res.report.perfect);
    assert!((res.eis - 1.0).abs() < 1e-9);
}

#[test]
fn tp_tr_project_select_sources_reclaim_perfectly() {
    // Class A sources must be fully reclaimable from the two nullified
    // variants — the core TP-TR construction guarantee.
    let bench = build(BenchmarkId::TpTrSmall, &small_suite());
    let lake = DataLake::from_tables(bench.lake_tables.clone());
    let gen_t = GenT::default();
    let class_a: Vec<_> = bench
        .cases
        .iter()
        .filter(|c| c.class == Some(gen_t::datagen::QueryClass::ProjectSelectUnion))
        .collect();
    assert_eq!(class_a.len(), 9);
    let mut perfect = 0;
    for case in &class_a {
        let res = gen_t.reclaim(&case.source, &lake).unwrap();
        if res.report.perfect {
            perfect += 1;
        }
    }
    assert!(perfect >= 8, "only {perfect}/9 class-A sources perfectly reclaimed");
}

#[test]
fn gen_t_beats_alite_ps_on_precision() {
    let bench = build(BenchmarkId::TpTrSmall, &small_suite());
    let lake = DataLake::from_tables(bench.lake_tables.clone());
    let gen_t = GenTMethod::default();
    let alite_ps = AlitePs::default();
    let budget = Duration::from_secs(20);
    let mut gent_pre = 0.0;
    let mut alite_pre = 0.0;
    let mut n = 0.0;
    for case in bench.cases.iter().take(10) {
        let candidates: Vec<Table> =
            gen_t::discovery::set_similarity(&lake, &case.source, None, &Default::default())
                .into_iter()
                .map(|c| c.table)
                .collect();
        if let Ok(out) = gen_t.reclaim(&case.source, &candidates, budget) {
            gent_pre += precision(&case.source, &out);
        }
        if let Ok(out) = alite_ps.reclaim(&case.source, &candidates, budget) {
            alite_pre += precision(&case.source, &out);
        }
        n += 1.0;
    }
    assert!(n > 0.0);
    assert!(
        gent_pre / n >= alite_pre / n,
        "Gen-T precision {:.3} must be ≥ ALITE-PS {:.3}",
        gent_pre / n,
        alite_pre / n
    );
}

#[test]
fn noise_never_reaches_originating_tables() {
    let bench = build(BenchmarkId::SantosLargeTpTrMed, &small_suite());
    let lake = DataLake::from_tables(bench.lake_tables.clone());
    let gen_t = GenT::default();
    for case in bench.cases.iter().take(5) {
        let res = gen_t.reclaim(&case.source, &lake).unwrap();
        assert!(
            res.originating.iter().all(|t| !t.name().starts_with("noise_")),
            "noise table selected for S{}",
            case.id
        );
    }
}

#[test]
fn web_corpus_duplicates_are_rediscovered() {
    let bench = build(BenchmarkId::T2dGold, &small_suite());
    let lake = DataLake::from_tables(bench.lake_tables.clone());
    let gen_t = GenT::default();
    // The duplicated bases must reclaim perfectly from their twins.
    let corpus = gen_t::datagen::webgen::generate_web_corpus(&small_suite().web);
    let mut found = 0;
    for (base, _) in &corpus.duplicates {
        let case = bench
            .cases
            .iter()
            .find(|c| c.source.name() == base.as_str())
            .expect("duplicate base is a case");
        let excl: Vec<&str> = case.exclude.iter().map(|s| s.as_str()).collect();
        let res = gen_t.reclaim_excluding(&case.source, &lake, &excl).unwrap();
        if res.report.perfect {
            found += 1;
        }
    }
    assert!(found >= 1, "no duplicate rediscovered");
}

#[test]
fn eis_is_bounded_and_consistent_across_pipeline() {
    let bench = build(BenchmarkId::TpTrSmall, &small_suite());
    let lake = DataLake::from_tables(bench.lake_tables.clone());
    let gen_t = GenT::default();
    for case in bench.cases.iter().take(8) {
        let res = gen_t.reclaim(&case.source, &lake).unwrap();
        assert!((0.0..=1.0 + 1e-9).contains(&res.eis), "eis {} out of range", res.eis);
        // Reclaimed table always conforms to the source schema.
        assert_eq!(
            res.reclaimed.schema().columns().collect::<Vec<_>>(),
            case.source.schema().columns().collect::<Vec<_>>()
        );
        // EIS from the result must equal recomputing it.
        let recomputed = eis(&case.source, &res.reclaimed);
        assert!((res.eis - recomputed).abs() < 1e-9);
    }
}
