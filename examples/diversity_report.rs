//! The paper's motivating scenario (§I, Figure 1): a news article reports
//! employee demographics for top tech companies; an analyst holding one
//! company's own diversity report wants to know whether *any* combination
//! of tables in her lake reproduces the article's numbers — and which
//! tables those are.
//!
//! Run with: `cargo run --example diversity_report`

use gen_t::prelude::*;

fn pct(v: i64) -> Value {
    Value::Int(v)
}

fn main() {
    // The news article's table (the Source). Key: company name.
    let article = Table::build(
        "news_article",
        &["Company", "% White", "% Asian", "% Black", "% Hispanic", "# Total Emps"],
        &["Company"],
        vec![
            vec![Value::str("Microsoft"), pct(54), pct(21), pct(13), pct(7), Value::Int(181_000)],
            vec![Value::str("Amazon"), pct(54), pct(21), pct(12), pct(9), Value::Int(1_608_000)],
            vec![Value::str("Google"), pct(51), pct(24), pct(7), pct(12), Value::Int(156_500)],
        ],
    )
    .expect("static schema");

    // The analyst's data lake: worldwide ethnicity splits, a worldwide
    // headcount table, the (contradicting, US-only) internal report, and an
    // unrelated gender table.
    let world_ethnicity = Table::build(
        "World_Ethnicity",
        &["company_name", "white", "asian", "black", "hispanic"],
        &[],
        vec![
            vec![Value::str("Microsoft"), pct(54), pct(21), pct(13), pct(7)],
            vec![Value::str("Amazon"), pct(54), pct(21), pct(12), pct(9)],
            vec![Value::str("Google"), pct(51), pct(24), pct(7), pct(12)],
        ],
    )
    .expect("static schema");
    let world_employees = Table::build(
        "World_Employees",
        &["company_name", "total_employees"],
        &[],
        vec![
            vec![Value::str("Microsoft"), Value::Int(181_000)],
            vec![Value::str("Amazon"), Value::Int(1_608_000)],
            vec![Value::str("Google"), Value::Int(156_500)],
        ],
    )
    .expect("static schema");
    // US-only numbers that *contradict* the article — reclamation must not
    // pull these in.
    let us_report = Table::build(
        "MS_US_Diversity_Report",
        &["company_name", "white", "asian", "black", "hispanic", "total_employees"],
        &[],
        vec![vec![Value::str("Microsoft"), pct(49), pct(35), pct(6), pct(7), Value::Int(103_000)]],
    )
    .expect("static schema");
    let gender = Table::build(
        "Gender_Demographics",
        &["company_name", "male", "female"],
        &[],
        vec![
            vec![Value::str("Microsoft"), pct(61), pct(39)],
            vec![Value::str("Amazon"), pct(55), pct(45)],
        ],
    )
    .expect("static schema");

    let lake = DataLake::from_tables(vec![world_ethnicity, world_employees, us_report, gender]);
    let result =
        GenT::new(GenTConfig::default()).reclaim(&article, &lake).expect("article table has a key");

    println!("Reclaimed article table:\n{}", result.reclaimed);
    println!(
        "Originating tables: {:?}",
        result.originating.iter().map(|t| t.name()).collect::<Vec<_>>()
    );
    println!("Recall = {:.3}, Precision = {:.3}", result.report.recall, result.report.precision);

    // The analyst's takeaway: the article is reclaimable from the *world*
    // tables — so the discrepancy with the US report is a US-vs-world scope
    // difference, not an error.
    assert!(result.report.recall >= 0.99, "article must be reclaimable from world tables");
    assert!(
        result.originating.iter().all(|t| !t.name().contains("US_Diversity")),
        "the contradicting US report must be filtered out"
    );
    println!("=> The article's numbers come from the worldwide tables; the US report only *seems* to contradict it.");
}
