//! Cross-lake (iterative) reclamation — §VII: embedding the originating
//! tables of a partial reclamation into a *second* data lake to complete
//! it.
//!
//! The corporate lake knows employees' ids, names and ages; the public lake
//! knows cities, but only keyed by name. Neither lake alone reclaims the
//! source. Visiting them in sequence — carrying the first round's
//! originating tables into the second round's index — does.
//!
//! Run with: `cargo run --example federated_lakes`

use gen_t::prelude::*;

fn main() {
    let source = Table::build(
        "employees",
        &["id", "name", "age", "city"],
        &["id"],
        vec![
            vec![Value::Int(0), Value::str("Smith"), Value::Int(27), Value::str("Boston")],
            vec![Value::Int(1), Value::str("Brown"), Value::Int(24), Value::str("Berlin")],
            vec![Value::Int(2), Value::str("Wang"), Value::Int(32), Value::str("Tokyo")],
        ],
    )
    .expect("static schema");

    let corporate = DataLake::from_tables(vec![Table::build(
        "hr_people",
        &["id", "name", "age"],
        &[],
        vec![
            vec![Value::Int(0), Value::str("Smith"), Value::Int(27)],
            vec![Value::Int(1), Value::str("Brown"), Value::Int(24)],
            vec![Value::Int(2), Value::str("Wang"), Value::Int(32)],
        ],
    )
    .expect("static schema")]);

    let public = DataLake::from_tables(vec![Table::build(
        "city_registry",
        &["name", "city"],
        &[],
        vec![
            vec![Value::str("Smith"), Value::str("Boston")],
            vec![Value::str("Brown"), Value::str("Berlin")],
            vec![Value::str("Wang"), Value::str("Tokyo")],
        ],
    )
    .expect("static schema")]);

    let gen_t = GenT::new(GenTConfig::default());

    // Each lake alone is partial.
    let solo_corp = gen_t.reclaim(&source, &corporate).expect("keyed source");
    println!("corporate lake alone: EIS = {:.3}", solo_corp.eis);

    // Across both lakes: round 2 embeds round 1's originating tables.
    let out = gen_t.reclaim_across(&source, &[&corporate, &public]).expect("keyed source");
    for (i, r) in out.rounds.iter().enumerate() {
        println!(
            "round {i}: EIS = {:.3} (originating: {:?})",
            r.eis,
            r.originating.iter().map(|t| t.name()).collect::<Vec<_>>()
        );
    }
    let best = out.best_result();
    println!("\nbest round: {} — perfect = {}", out.best, best.report.perfect);
    println!("{}", best.reclaimed);

    assert!(out.improved_over_first());
    assert!(best.report.perfect, "the two lakes jointly reclaim the source");
}
