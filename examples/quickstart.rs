//! Quickstart: reclaim a source table from a small data lake.
//!
//! Reproduces the paper's running example (Figure 3): a source table of
//! applicants and a lake of four fragments A–D, one of which (C) contains
//! values that contradict the source. Gen-T discovers the candidates,
//! prunes C via matrix traversal, integrates the rest, and hands back both
//! the reclaimed table and the originating tables.
//!
//! Run with: `cargo run --example quickstart`

use gen_t::prelude::*;

fn main() {
    // The Source Table the analyst wants to verify (key column: ID).
    let source = Table::build(
        "applicants",
        &["ID", "Name", "Age", "Gender", "Education Level"],
        &["ID"],
        vec![
            vec![
                Value::Int(0),
                Value::str("Smith"),
                Value::Int(27),
                Value::Null,
                Value::str("Bachelors"),
            ],
            vec![
                Value::Int(1),
                Value::str("Brown"),
                Value::Int(24),
                Value::str("Male"),
                Value::str("Masters"),
            ],
            vec![
                Value::Int(2),
                Value::str("Wang"),
                Value::Int(32),
                Value::str("Female"),
                Value::str("High School"),
            ],
        ],
    )
    .expect("static schema");

    // The data lake: four tables with their own (messy) column names.
    let a = Table::build(
        "A",
        &["id", "applicant", "degree"],
        &[],
        vec![
            vec![Value::Int(0), Value::str("Smith"), Value::str("Bachelors")],
            vec![Value::Int(1), Value::str("Brown"), Value::Null],
            vec![Value::Int(2), Value::str("Wang"), Value::str("High School")],
        ],
    )
    .expect("static schema");
    let b = Table::build(
        "B",
        &["person", "years_old"],
        &[],
        vec![
            vec![Value::str("Smith"), Value::Int(27)],
            vec![Value::str("Brown"), Value::Int(24)],
            vec![Value::str("Wang"), Value::Int(32)],
        ],
    )
    .expect("static schema");
    // Table C claims everyone is male — it contradicts the source and must
    // be filtered out by the matrix traversal (Example 3 of the paper).
    let c = Table::build(
        "C",
        &["person", "sex"],
        &[],
        vec![
            vec![Value::str("Smith"), Value::str("Male")],
            vec![Value::str("Brown"), Value::str("Male")],
            vec![Value::str("Wang"), Value::str("Male")],
        ],
    )
    .expect("static schema");
    let d = Table::build(
        "D",
        &["id", "name", "age", "gender", "education"],
        &[],
        vec![
            vec![
                Value::Int(0),
                Value::str("Smith"),
                Value::Int(27),
                Value::Null,
                Value::str("Bachelors"),
            ],
            vec![
                Value::Int(1),
                Value::str("Brown"),
                Value::Int(24),
                Value::str("Male"),
                Value::str("Masters"),
            ],
            vec![
                Value::Int(2),
                Value::str("Wang"),
                Value::Int(32),
                Value::str("Female"),
                Value::Null,
            ],
        ],
    )
    .expect("static schema");

    let lake = DataLake::from_tables(vec![a, b, c, d]);
    let gen_t = GenT::new(GenTConfig::default());
    let result = gen_t.reclaim(&source, &lake).expect("source has a key");

    println!("Reclaimed table:\n{}", result.reclaimed);
    println!(
        "Originating tables: {:?}",
        result.originating.iter().map(|t| t.name()).collect::<Vec<_>>()
    );
    println!("EIS        = {:.3}", result.eis);
    println!("Recall     = {:.3}", result.report.recall);
    println!("Precision  = {:.3}", result.report.precision);
    println!("Perfect    = {}", result.report.perfect);
    println!(
        "Timing: discovery {:?}, traversal {:?}, integration {:?}",
        result.timings.discovery, result.timings.traversal, result.timings.integration
    );
    assert!(result.report.perfect, "Figure 3 must reclaim perfectly");
}
