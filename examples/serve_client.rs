//! A minimal, std-only client driving the `gent serve` daemon end to end:
//! build a lake, snapshot it, boot the daemon on an ephemeral port, then
//! talk to it two ways — through the retrying [`RetryClient`] (jittered
//! backoff on 429/503/socket faults, generation tracking across
//! `/admin/reload` swaps) and over one raw kept-alive connection.
//!
//! ```text
//! cargo run --release --example serve_client
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use gen_t::core::GenTConfig;
use gen_t::prelude::*;
use gen_t::serve::{LakeService, RetryClient, RetryPolicy, ServeConfig, Server};
use gen_t::store::{snapshot, LakeSource, SnapshotFile};

/// A persistent client: one TCP connection, many requests. Asking for
/// `Connection: keep-alive` makes the daemon hand the socket back after
/// each response, so a reclaim loop pays TCP setup once instead of per
/// request. Because the connection stays open, responses are framed by
/// `Content-Length` rather than EOF.
struct KeepAliveClient {
    /// One buffered reader for the connection's whole life (writes go
    /// through `get_mut()`), mirroring how the daemon reads its side.
    reader: std::io::BufReader<TcpStream>,
}

impl KeepAliveClient {
    fn connect(addr: SocketAddr) -> KeepAliveClient {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        KeepAliveClient { reader: std::io::BufReader::new(stream) }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> String {
        use std::io::BufRead;
        write!(
            self.reader.get_mut(),
            "{method} {path} HTTP/1.1\r\nHost: demo\r\nConnection: keep-alive\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send request");
        let mut content_length = 0usize;
        let mut line = String::new();
        loop {
            line.clear();
            self.reader.read_line(&mut line).expect("read header");
            if line == "\r\n" || line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("content-length");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("read body");
        String::from_utf8(body).expect("utf8 body")
    }
}

fn main() {
    // ── A small lake: two fragments of a people table, snapshotted. ─────
    let ages = Table::build(
        "ages",
        &["name", "age"],
        &[],
        vec![
            vec![Value::str("Smith"), Value::Int(27)],
            vec![Value::str("Brown"), Value::Int(24)],
            vec![Value::str("Wang"), Value::Int(32)],
        ],
    )
    .unwrap();
    let ids = Table::build(
        "ids",
        &["id", "name"],
        &[],
        vec![
            vec![Value::Int(0), Value::str("Smith")],
            vec![Value::Int(1), Value::str("Brown")],
            vec![Value::Int(2), Value::str("Wang")],
        ],
    )
    .unwrap();
    let snap = std::env::temp_dir().join("serve_client_demo.gentlake");
    snapshot::save(&snap, &DataLake::from_tables(vec![ages, ids]), None).expect("save snapshot");

    // ── Boot the daemon exactly as `gent serve --lake` does. ────────────
    let loaded = SnapshotFile(snap.clone()).load_lake().expect("open snapshot");
    let service = LakeService::new(loaded, GenTConfig::default(), snap.display().to_string());
    let cfg = ServeConfig { addr: "127.0.0.1:0".into(), threads: 2, ..ServeConfig::default() };
    let server = Server::bind(&cfg, service).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle().expect("handle");
    let runner = std::thread::spawn(move || server.run());
    println!("daemon up on http://{addr}");

    // ── Drive it through the retrying client: transient faults (socket
    //    resets, 429 shed, 503 drain) are retried with jittered backoff,
    //    and the X-Gent-Generation header tracks reload swaps. ───────────
    let mut client = RetryClient::new(addr);
    let health = client.get("/healthz").expect("healthz");
    println!("GET /healthz   → {}", health.body);
    let stat = client.get("/lake/stat").expect("lake/stat");
    println!("GET /lake/stat → {} (generation {:?})", stat.body, stat.generation);

    let request = r#"{"source": {
        "name": "S",
        "columns": ["id", "name", "age"],
        "key": ["id"],
        "rows": [[0, "Smith", 27], [1, "Brown", 24], [2, "Wang", 32]]}}"#;
    let response = client.post("/reclaim", request).expect("reclaim");
    println!("POST /reclaim  → {} (attempt {})", response.body, response.attempts);

    // The served answer carries the reclaimed table; a perfect lake must
    // reclaim this source perfectly.
    assert_eq!(response.status, 200);
    assert!(response.body.contains("\"eis\":1"), "expected a perfect EIS, got: {response:?}");

    // ── The same, over one kept-alive connection: repeated reclaims skip
    //    the per-request TCP handshake entirely. ─────────────────────────
    let mut pooled = KeepAliveClient::connect(addr);
    for i in 0..3 {
        let reused = pooled.request("POST", "/reclaim", request);
        assert!(reused.contains("\"eis\":1"), "keep-alive reclaim {i}: {reused}");
        println!("keep-alive #{i} → eis 1.0 (same socket)");
    }
    drop(pooled);

    // Errors are structured, and the daemon survives them.
    let bad = client.post("/reclaim", "{not json").expect("bad request still answers");
    println!("bad request    → {} (status {})", bad.body, bad.status);
    assert_eq!(bad.status, 400);
    println!("GET /healthz   → {}", client.get("/healthz").expect("healthz").body);

    // ── Graceful drain: readiness flips to 503 + Retry-After while
    //    liveness stays green, then the daemon stops. ────────────────────
    handle.begin_drain();
    // A deliberate 503 is the *point* here — probe without retries, or the
    // client would dutifully honour Retry-After a few times first.
    let mut probe =
        RetryClient::with_policy(addr, RetryPolicy { max_attempts: 1, ..RetryPolicy::default() });
    let ready = probe.get("/healthz/ready").expect("readiness probe");
    println!(
        "draining       → /healthz/ready {} (Retry-After: {})",
        ready.status,
        ready.header("retry-after").unwrap_or("-")
    );
    assert_eq!(ready.status, 503);
    assert_eq!(probe.get("/healthz/live").expect("liveness probe").status, 200);

    handle.stop();
    runner.join().unwrap().expect("server run");
    let _ = std::fs::remove_file(&snap);
    println!("daemon stopped cleanly");
}
