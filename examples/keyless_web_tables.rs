//! Keyless + normalised reclamation — the paper's §VII future work, on a
//! web-table-flavoured scenario: the source declares no key, and the lake
//! spells values differently (case, whitespace).
//!
//! Run with: `cargo run --example keyless_web_tables`

use gen_t::core::KeyStrategy;
use gen_t::prelude::*;
use gen_t::table::NormalizeConfig;

fn main() {
    // A scraped web table: no declared key, title-cased, padded strings.
    let source = Table::build(
        "scraped",
        &["City", "Country", "Population"],
        &[], // no key!
        vec![
            vec![Value::str("Boston"), Value::str("United States"), Value::Int(650_000)],
            vec![Value::str("Toronto"), Value::str("Canada"), Value::Int(2_800_000)],
            vec![Value::str("Berlin"), Value::str("Germany"), Value::Int(3_700_000)],
        ],
    )
    .expect("static schema");

    // The lake stores the same facts in SHOUTING CASE with stray spaces.
    let cities = Table::build(
        "cities_db",
        &["City", "Country"],
        &[],
        vec![
            vec![Value::str(" BOSTON "), Value::str("UNITED  STATES")],
            vec![Value::str("TORONTO"), Value::str("CANADA")],
            vec![Value::str("BERLIN"), Value::str("GERMANY")],
        ],
    )
    .expect("static schema");
    let populations = Table::build(
        "populations_db",
        &["City", "Population"],
        &[],
        vec![
            vec![Value::str("boston"), Value::Int(650_000)],
            vec![Value::str("toronto"), Value::Int(2_800_000)],
            vec![Value::str("berlin"), Value::Int(3_700_000)],
        ],
    )
    .expect("static schema");
    let lake = DataLake::from_tables(vec![cities, populations]);
    let gen_t = GenT::new(GenTConfig::default());

    // Plain reclamation finds almost nothing: the values don't align
    // syntactically, and the source has no key.
    let norm = NormalizeConfig::default();
    let nsource = norm.table(&source);
    let nlake = DataLake::from_tables(lake.tables_iter().map(|t| norm.table(t)).collect());

    // Keyless path: Gen-T mines a key (City is unique) and reports the
    // key-free greedy instance similarity alongside the usual metrics.
    let outcome = gen_t
        .reclaim_keyless(&nsource, &nlake)
        .expect("keyless path never requires a declared key");

    match &outcome.strategy {
        KeyStrategy::Declared => println!("key: declared by the source"),
        KeyStrategy::Mined(cols) => println!("key: mined → {cols:?}"),
        KeyStrategy::Surrogate(cols) => println!("key: surrogate → {cols:?}"),
    }
    println!("keyless instance similarity = {:.3}", outcome.keyless_similarity);
    println!("EIS                         = {:.3}", outcome.result.eis);
    println!("perfect                     = {}", outcome.result.report.perfect);
    println!("\nreclaimed (normalised space):\n{}", outcome.result.reclaimed);

    assert!(matches!(outcome.strategy, KeyStrategy::Mined(_)));
    assert!(outcome.result.report.perfect, "normalisation closes the gap");
}
