//! The SPJU query engine and the Theorem 8 rewriter, end to end:
//!
//! 1. build a source table by running an SPJU query over base tables
//!    (exactly how the paper constructs its TP-TR benchmark sources),
//! 2. rewrite the query into the five representative operators
//!    `{⊎, σ, π, κ, β}` (Theorem 8 / Appendix A) and check the equivalence,
//! 3. reclaim the query result from a lake holding the base tables.
//!
//! Run with: `cargo run --example query_workbench`

use gen_t::prelude::*;
use gen_t::query::{rewrite, Catalog, CmpOp, Predicate, Query};
use gen_t::table::key::ensure_key;

fn main() {
    // Base tables (a two-table slice of a TPC-H-like schema).
    let nation = Table::build(
        "nation",
        &["n_key", "n_name", "r_key"],
        &[],
        (0..6)
            .map(|i| vec![Value::Int(i), Value::str(format!("nation{i}")), Value::Int(i % 2)])
            .collect(),
    )
    .expect("static schema");
    let region = Table::build(
        "region",
        &["r_key", "r_name"],
        &[],
        vec![vec![Value::Int(0), Value::str("east")], vec![Value::Int(1), Value::str("west")]],
    )
    .expect("static schema");
    let catalog = Catalog::from_tables(vec![nation.clone(), region.clone()]);

    // σ(r_name = "east", nation ⋈ region), keeping the join column in the
    // projection (sources that drop the foreign key leave the dimension
    // table joinable only by Expand's heuristics — see DESIGN.md's "known
    // limitations").
    let q = Query::scan("nation")
        .inner_join(Query::scan("region"))
        .select(Predicate::cmp("r_name", CmpOp::Eq, Value::str("east")))
        .project(&["n_key", "n_name", "r_key", "r_name"]);
    println!("query:      {q}");
    println!("class:      {}", q.complexity_class());
    println!("operators:  {}", q.n_ops());

    // Theorem 8: the same query over only {⊎, σ, π, κ, β}.
    let rep = rewrite(&q, &catalog).expect("rewritable");
    println!("rewritten:  {rep}");
    let counts = rep.op_counts();
    println!(
        "rep ops:    {} σ, {} π, {} ⊎, {} β, {} κ",
        counts.selections,
        counts.projections,
        counts.unions,
        counts.subsumptions,
        counts.complementations
    );

    let direct = q.eval(&catalog).expect("valid plan");
    let via_rep = rep.eval(&catalog).expect("valid plan");
    assert_eq!(direct.row_set().len(), via_rep.row_set().len(), "Theorem 8 equivalence");
    println!("\nquery result ({} rows):\n{direct}", direct.n_rows());

    // Use the query result as a Source Table and reclaim it from the lake
    // of base tables — the benchmark-construction loop in miniature.
    let mut source = direct;
    source.set_name("S");
    assert!(ensure_key(&mut source), "query output has a key column");
    let lake = DataLake::from_tables(vec![nation, region]);
    let result =
        GenT::new(GenTConfig::default()).reclaim(&source, &lake).expect("source has a key");
    println!("reclaimed with EIS = {:.3} (perfect = {})", result.eis, result.report.perfect);
    assert!(result.report.perfect);
}
