//! Data-lake audit — the §VI-D generalizability protocol in miniature.
//!
//! Iterate over every table of a web-table corpus as a potential source and
//! ask: can it be reclaimed from the *other* tables in the corpus? Tables
//! that can are redundant (fragments or duplicates of other content) — a
//! storage/consistency signal a lake steward can act on.
//!
//! Run with: `cargo run --release --example data_lake_audit`

use gen_t::datagen::suite::SuiteConfig;
use gen_t::datagen::webgen::{generate_web_corpus, WebCorpusConfig};
use gen_t::prelude::*;

fn main() {
    let _ = SuiteConfig::default(); // suite defaults documented in gent-datagen
    let corpus = generate_web_corpus(&WebCorpusConfig {
        n_base_tables: 30,
        n_reclaimable: 5,
        n_duplicates: 4,
        ..Default::default()
    });
    let lake = DataLake::from_tables(corpus.tables.clone());
    let gen_t = GenT::new(GenTConfig::default());

    let mut reclaimed = Vec::new();
    for name in &corpus.source_names {
        let source = lake.get_by_name(name).expect("base in corpus").clone();
        let result =
            gen_t.reclaim_excluding(&source, &lake, &[name.as_str()]).expect("bases have keys");
        if result.report.perfect && !result.reclaimed.is_empty() {
            reclaimed.push((name.clone(), result.originating.len()));
        }
    }

    println!("corpus: {} tables ({} sources audited)", lake.len(), corpus.source_names.len());
    println!(
        "ground truth: {} fragment-reclaimable, {} duplicated",
        corpus.reclaimable.len(),
        corpus.duplicates.len()
    );
    println!("perfectly reclaimable from the rest of the lake:");
    for (name, n_orig) in &reclaimed {
        let kind = if corpus.reclaimable.contains(name) {
            "fragments"
        } else if corpus.duplicates.iter().any(|(a, _)| a == name) {
            "duplicate"
        } else {
            "organic"
        };
        println!("  {name} (from {n_orig} originating tables, ground truth: {kind})");
    }
    // Every ground-truth duplicate must be rediscovered; fragment cases
    // should mostly be (the corpus is adversarial by construction).
    let dup_found =
        corpus.duplicates.iter().filter(|(a, _)| reclaimed.iter().any(|(n, _)| n == a)).count();
    println!("duplicates rediscovered: {dup_found}/{}", corpus.duplicates.len());
    assert!(dup_found >= corpus.duplicates.len() / 2);
}
