//! Reclamation under noise — the SANTOS-Large experiment in miniature.
//!
//! Embed the TP-TR variant tables in a lake of hundreds of distractor
//! tables and show that the two-stage discovery (first-stage overlap
//! retrieval → Set Similarity → matrix traversal) still pins down the
//! right originating tables, with the same quality as the clean lake.
//!
//! Run with: `cargo run --release --example noisy_lake`

use gen_t::datagen::suite::{build, BenchmarkId, SuiteConfig};
use gen_t::prelude::*;

fn main() {
    let cfg = SuiteConfig { units: (40, 60, 90), santos_noise_tables: 400, ..Default::default() };
    let clean = build(BenchmarkId::TpTrSmall, &cfg);
    let noisy = build(BenchmarkId::SantosLargeTpTrMed, &cfg); // med + noise

    let gen_t = GenT::new(GenTConfig::default());

    let clean_lake = DataLake::from_tables(clean.lake_tables.clone());
    let noisy_lake = DataLake::from_tables(noisy.lake_tables.clone());
    println!("clean lake: {} tables; noisy lake: {} tables", clean_lake.len(), noisy_lake.len());

    let mut clean_eis = 0.0;
    let mut noisy_eis = 0.0;
    let mut leaked = 0usize;
    let n = 6.min(clean.cases.len());
    for i in 0..n {
        let r_clean = gen_t.reclaim(&clean.cases[i].source, &clean_lake).expect("keyed");
        let r_noisy = gen_t.reclaim(&noisy.cases[i].source, &noisy_lake).expect("keyed");
        println!(
            "S{i}: clean eis {:.3} ({} originating) | noisy eis {:.3} ({} originating, {} candidates)",
            r_clean.eis,
            r_clean.originating.len(),
            r_noisy.eis,
            r_noisy.originating.len(),
            r_noisy.candidates_considered,
        );
        clean_eis += r_clean.eis;
        noisy_eis += r_noisy.eis;
        // Count noise tables surviving into the originating set. The noise
        // generator plants *distractors* with overlapping vocabulary, so a
        // rare leak on small sources is genuine value overlap — but it
        // must stay rare.
        leaked += r_noisy.originating.iter().filter(|t| t.name().starts_with("noise_")).count();
    }
    println!(
        "avg EIS: clean {:.3} vs noisy {:.3}; distractors leaked into originating sets: {leaked}",
        clean_eis / n as f64,
        noisy_eis / n as f64
    );
    assert!(leaked <= 2, "too many distractors selected: {leaked}");
}
