//! Persistent data lakes: build once, reclaim forever.
//!
//! The Gen-T pipeline assumes a long-lived lake queried by many source
//! tables, but an in-memory [`DataLake`] pays the full indexing cost on
//! every process start. `gent-store` fixes that: ingest once (in parallel),
//! snapshot the lake *with* its inverted index and LSH bands, and every
//! later run reopens it at memory-copy speed.
//!
//! ```text
//! cargo run --release --example persistent_lake
//! ```

use std::time::Instant;

use gen_t::datagen::suite::{build, BenchmarkId, SuiteConfig};
use gen_t::discovery::LshConfig;
use gen_t::prelude::*;
use gen_t::store::{ingest_tables, snapshot, IngestOptions, LakeSource, SnapshotFile};

fn main() {
    // A TPC-H-style benchmark lake (32 tables) plus its reclamation tasks.
    let bench = build(BenchmarkId::TpTrSmall, &SuiteConfig::default());
    let snap = std::env::temp_dir().join("persistent_lake_demo.gentlake");

    // ── Ingest once: parallel scans + LSH signatures, then snapshot. ────
    let t0 = Instant::now();
    let ingested = ingest_tables(
        bench.lake_tables.clone(),
        &IngestOptions { threads: 0, lsh: Some(LshConfig::default()) },
    );
    snapshot::save(&snap, &ingested.lake, ingested.lsh.as_ref()).expect("save snapshot");
    let build_time = t0.elapsed();

    let stat = snapshot::stat(&snap).expect("stat");
    println!(
        "built + saved: {} tables, {} rows, {} indexed values, {} LSH columns ({} bytes) in {:?}",
        stat.header.n_tables,
        stat.header.total_rows,
        stat.header.n_index_entries,
        stat.header.n_lsh_columns,
        stat.file_bytes,
        build_time,
    );

    // ── Every later run: reopen warm. ───────────────────────────────────
    let t1 = Instant::now();
    let warm = SnapshotFile(snap.clone()).load_lake().expect("open snapshot");
    let open_time = t1.elapsed();
    println!(
        "reopened in {open_time:?} ({:.1}× faster than the build)",
        build_time.as_secs_f64() / open_time.as_secs_f64().max(1e-9),
    );

    // The reopened lake is retrieval-identical: reclaim a source against it.
    let gen_t = GenT::new(gen_t::core::GenTConfig::default());
    let case = &bench.cases[0];
    let cold = gen_t.reclaim(&case.source, &ingested.lake).expect("cold reclaim");
    let warm_result = gen_t.reclaim(&case.source, &warm.lake).expect("warm reclaim");
    println!(
        "reclaimed S{} cold: EIS {:.3} from {:?}",
        case.id,
        cold.eis,
        cold.originating.iter().map(|t| t.name().to_string()).collect::<Vec<_>>(),
    );
    println!(
        "reclaimed S{} warm: EIS {:.3} from {:?}",
        case.id,
        warm_result.eis,
        warm_result.originating.iter().map(|t| t.name().to_string()).collect::<Vec<_>>(),
    );
    assert_eq!(cold.eis, warm_result.eis, "snapshot must be retrieval-identical");

    let _ = std::fs::remove_file(&snap);
}
