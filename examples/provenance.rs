//! Cell-level provenance of a reclamation: which originating tables
//! support each source value, and which contradict it.
//!
//! This is the Example 1/2 analysis from the paper's introduction — "the
//! user can analyze the originating tables … to understand these
//! differences" — as a runnable program.
//!
//! Run with: `cargo run --example provenance`

use gen_t::explain::explain;
use gen_t::prelude::*;

fn main() {
    let source = Table::build(
        "article_numbers",
        &["Company", "PctHispanic", "TotalEmps"],
        &["Company"],
        vec![
            vec![Value::str("Microsoft"), Value::Int(7), Value::Int(181_000)],
            vec![Value::str("Google"), Value::Int(12), Value::Int(156_500)],
        ],
    )
    .expect("static schema");

    // A US-based report that *disagrees* on Microsoft's numbers, and a
    // world report that agrees; Google's Hispanic share is missing from
    // both (the "European tables do not report protected categories"
    // story of Example 2).
    let us_report = Table::build(
        "us_diversity_report",
        &["Company", "PctHispanic", "TotalEmps"],
        &[],
        vec![vec![Value::str("Microsoft"), Value::Int(7), Value::Int(103_000)]],
    )
    .expect("static schema");
    let world_report = Table::build(
        "world_report",
        &["Company", "PctHispanic", "TotalEmps"],
        &[],
        vec![
            vec![Value::str("Microsoft"), Value::Int(7), Value::Int(181_000)],
            vec![Value::str("Google"), Value::Null, Value::Int(156_500)],
        ],
    )
    .expect("static schema");

    let lake = DataLake::from_tables(vec![us_report, world_report]);
    let result =
        GenT::new(GenTConfig::default()).reclaim(&source, &lake).expect("source has a key");

    println!("Reclaimed:\n{}", result.reclaimed);

    let e = explain(&source, &result.reclaimed, &result.originating);
    print!("{}", e.render());

    // Drill into one cell: Microsoft's TotalEmps.
    let col = 2;
    let support = &e.provenance.support[0][col];
    println!("\nProvenance of Microsoft.TotalEmps = 181,000:");
    for &i in &support.supporters {
        println!("  supported by   `{}`", e.provenance.table_names[i]);
    }
    for &i in &support.conflicters {
        println!("  contradicted by `{}`", e.provenance.table_names[i]);
    }

    // Google's Hispanic share could not be reclaimed (nullified).
    let google = &e.tuples[1];
    println!("\nGoogle row status: {:?}; lake lacks {:?}", google.status, google.nullified);
}
