//! Verifying an LLM-generated table against a trusted data lake — the §VII
//! use case: "Table reclamation can also be used to verify the tabular
//! results of generative AI or large language models."
//!
//! A model produced a demographics summary (the paper's Figure 1 scenario).
//! We reclaim that claimed table from a lake of trusted reports; the
//! verification verdict tells us which claims the lake confirms, which it
//! cannot derive, and which it contradicts.
//!
//! Run with: `cargo run --example llm_verification`

use gen_t::prelude::*;

fn main() {
    // The table a model generated (a claim to be checked). Key: Company.
    let claimed = Table::build(
        "llm_summary",
        &["Company", "PctWhite", "PctAsian", "TotalEmps"],
        &["Company"],
        vec![
            vec![Value::str("Microsoft"), Value::Int(54), Value::Int(21), Value::Int(181_000)],
            vec![Value::str("Amazon"), Value::Int(54), Value::Int(21), Value::Int(1_608_000)],
            // The model hallucinated Google's Asian percentage (20 vs 24).
            vec![Value::str("Google"), Value::Int(51), Value::Int(20), Value::Int(156_500)],
            // And invented a company the lake knows nothing about.
            vec![Value::str("Initech"), Value::Int(40), Value::Int(30), Value::Int(5_000)],
        ],
    )
    .expect("static schema");

    // The trusted lake: separate ethnicity and headcount reports.
    let ethnicity = Table::build(
        "world_ethnicity_2021",
        &["org", "white_pct", "asian_pct"],
        &[],
        vec![
            vec![Value::str("Microsoft"), Value::Int(54), Value::Int(21)],
            vec![Value::str("Amazon"), Value::Int(54), Value::Int(21)],
            vec![Value::str("Google"), Value::Int(51), Value::Int(24)],
        ],
    )
    .expect("static schema");
    let headcount = Table::build(
        "world_headcount_2021",
        &["org", "employees"],
        &[],
        vec![
            vec![Value::str("Microsoft"), Value::Int(181_000)],
            vec![Value::str("Amazon"), Value::Int(1_608_000)],
            vec![Value::str("Google"), Value::Int(156_500)],
        ],
    )
    .expect("static schema");
    let lake = DataLake::from_tables(vec![ethnicity, headcount]);

    // Reclaim the claimed table, then verify.
    let result =
        GenT::new(GenTConfig::default()).reclaim(&claimed, &lake).expect("claimed table has a key");
    let (verdict, explanation) =
        verify_table(&claimed, &result.reclaimed, &result.originating, &VerifyConfig::default());

    match &verdict {
        VerificationVerdict::Verified { coverage } => {
            println!("VERIFIED ({:.0}% of cells confirmed)", coverage * 100.0)
        }
        VerificationVerdict::PartiallyVerified { coverage, unconfirmed_cells, missing_tuples } => {
            println!(
                "PARTIALLY VERIFIED ({:.0}% confirmed, {unconfirmed_cells} unconfirmed cells, {missing_tuples} underivable rows)",
                coverage * 100.0
            )
        }
        VerificationVerdict::Contradicted { coverage, contradicted_cells } => {
            println!(
                "CONTRADICTED ({contradicted_cells} cells disagree; {:.0}% confirmed)",
                coverage * 100.0
            )
        }
    }
    println!();
    print!("{}", explanation.render());

    // The lake contradicts the hallucinated 20% (it says 24%), so the
    // verdict must be Contradicted — silence about Initech alone would
    // only have been a partial verification.
    assert!(matches!(verdict, VerificationVerdict::Contradicted { .. }));
}
