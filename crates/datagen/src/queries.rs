//! The 26 seeded SPJU source queries of the TP-TR benchmarks (§VI-A).
//!
//! The paper generates 26 random queries over the eight original TPC-H
//! tables using `{π, σ, ⋈, ⟕, ⟗, ∪, ⊎}`, with 2–9 operators, at most 4
//! unioned tables and at most 3 joined tables, and runs the *same* queries
//! at every scale. We reproduce that with three complexity classes matching
//! Figure 6's x-axis:
//!
//! * **A — Project/Select + Union 0–4 tables**: a single relation, sliced,
//! * **B — One Join + Union 1–4 tables**: spine ⋈ one dimension,
//! * **C — Multiple Joins + Union 0–4 tables**: spine ⋈ two dimensions.
//!
//! Unions are realised as unions of disjoint selection slices of the same
//! join expression — this keeps the spine key a valid key of the result
//! (the paper's standing assumption that sources have keys) while still
//! exercising the union reclamation path. Selections are *fractional*
//! windows over the spine-key domain so one spec scales from TP-TR Small
//! to TP-TR Large unchanged.

use gent_ops::{inner_join, project_named};
use gent_table::{Table, TableError, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Query complexity class (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Project/Select + Union 0–4 tables.
    ProjectSelectUnion,
    /// One Join + Union 1–4 tables.
    OneJoinUnion,
    /// Multiple Joins + Union 0–4 tables.
    MultiJoinUnion,
}

impl QueryClass {
    /// Display label matching the paper's figure.
    pub fn label(&self) -> &'static str {
        match self {
            QueryClass::ProjectSelectUnion => "Project/Select + Union 0-4 Tables",
            QueryClass::OneJoinUnion => "One Join + Union 1-4 Tables",
            QueryClass::MultiJoinUnion => "Multiple Joins + Union 0-4 Tables",
        }
    }
}

/// A source-table query over the original relations.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Query id (0..26) — the S0..S25 of Figure 9.
    pub id: usize,
    /// Complexity class.
    pub class: QueryClass,
    /// Base (spine) relation; its key becomes the source key.
    pub spine: &'static str,
    /// Dimension relations naturally joined onto the spine, in order.
    pub joins: Vec<&'static str>,
    /// Column names projected (always includes the spine key columns).
    pub projected: Vec<String>,
    /// Disjoint fractional windows `[lo, hi)` over the sorted spine-key
    /// domain; their slices are unioned.
    pub windows: Vec<(f64, f64)>,
}

impl QuerySpec {
    /// Number of unioned slices.
    pub fn union_parts(&self) -> usize {
        self.windows.len()
    }
}

/// (spine, joins) pools per class. All joins follow the FK graph so natural
/// joins are N:1 and the spine key remains a key of the result.
const CLASS_A_SPINES: [&str; 7] =
    ["customer", "orders", "supplier", "part", "nation", "lineitem", "partsupp"];
const CLASS_B_COMBOS: [(&str, &str); 7] = [
    ("customer", "nation"),
    ("supplier", "nation"),
    ("orders", "customer"),
    ("lineitem", "orders"),
    ("lineitem", "part"),
    ("partsupp", "part"),
    ("nation", "region"),
];
const CLASS_C_COMBOS: [(&str, [&str; 2]); 6] = [
    ("customer", ["nation", "region"]),
    ("supplier", ["nation", "region"]),
    ("orders", ["customer", "nation"]),
    ("lineitem", ["part", "supplier"]),
    ("lineitem", ["orders", "customer"]),
    ("partsupp", ["part", "supplier"]),
];

/// Key column names of each relation (the source key).
pub fn key_of(table: &str) -> &'static [&'static str] {
    match table {
        "region" => &["regionkey"],
        "nation" => &["nationkey"],
        "supplier" => &["suppkey"],
        "customer" => &["custkey"],
        "part" => &["partkey"],
        "partsupp" => &["partkey", "suppkey"],
        "orders" => &["orderkey"],
        "lineitem" => &["orderkey", "linenumber"],
        other => panic!("unknown relation {other}"),
    }
}

/// Draw `k` disjoint fractional windows of total mass ≈ `total`.
fn draw_windows(rng: &mut StdRng, k: usize, total: f64) -> Vec<(f64, f64)> {
    let width = total / k as f64;
    // k starts in [0,1) with gaps.
    let mut starts: Vec<f64> =
        (0..k).map(|i| (i as f64 + rng.gen_range(0.05..0.6)) / k as f64).collect();
    starts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    starts.iter().map(|&s| (s, (s + width).min(1.0))).collect()
}

/// Generate the 26 query specs (9 class A, 9 class B, 8 class C).
///
/// `columns_of` supplies each relation's column names (from the generated
/// tables), so the projection can sample real columns.
pub fn generate_specs(seed: u64, columns_of: impl Fn(&str) -> Vec<String>) -> Vec<QuerySpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut specs = Vec::with_capacity(26);
    let mut id = 0;
    let push = |spec: QuerySpec, specs: &mut Vec<QuerySpec>| {
        specs.push(spec);
    };

    // Per-spine target fraction of rows for TP-TR Small (~15–40 rows at
    // u = 82): fraction = target / approx_rows(u=82).
    let frac_for = |spine: &str, rng: &mut StdRng| -> f64 {
        let approx = match spine {
            "region" => 5.0,
            "nation" => 25.0,
            "supplier" => 164.0,
            "customer" => 492.0,
            "part" => 656.0,
            "partsupp" => 984.0,
            "orders" => 1312.0,
            "lineitem" => 2624.0,
            _ => 500.0,
        };
        let target: f64 = rng.gen_range(15.0..40.0);
        (target / approx).min(0.9)
    };

    let make_projection = |spine: &str, joins: &[&str], rng: &mut StdRng| -> Vec<String> {
        let mut cols: Vec<String> = key_of(spine).iter().map(|s| s.to_string()).collect();
        let mut pool: Vec<String> = Vec::new();
        for t in std::iter::once(spine).chain(joins.iter().copied()) {
            for c in columns_of(t) {
                if !cols.contains(&c) && !pool.contains(&c) {
                    pool.push(c);
                }
            }
        }
        pool.shuffle(rng);
        // Aim for the paper's ~9 columns per source (fewer if unavailable).
        let extra = rng.gen_range(4..=8).min(pool.len());
        cols.extend(pool.into_iter().take(extra));
        cols
    };

    // Class A — 9 queries.
    for q in 0..9 {
        let spine = CLASS_A_SPINES[q % CLASS_A_SPINES.len()];
        let parts = rng.gen_range(1..=4usize);
        let frac = frac_for(spine, &mut rng);
        let spec = QuerySpec {
            id,
            class: QueryClass::ProjectSelectUnion,
            spine,
            joins: Vec::new(),
            projected: make_projection(spine, &[], &mut rng),
            windows: draw_windows(&mut rng, parts, frac),
        };
        id += 1;
        push(spec, &mut specs);
    }
    // Class B — 9 queries.
    for q in 0..9 {
        let (spine, dim) = CLASS_B_COMBOS[q % CLASS_B_COMBOS.len()];
        let parts = rng.gen_range(1..=4usize).max(1);
        let frac = frac_for(spine, &mut rng);
        let spec = QuerySpec {
            id,
            class: QueryClass::OneJoinUnion,
            spine,
            joins: vec![dim],
            projected: make_projection(spine, &[dim], &mut rng),
            windows: draw_windows(&mut rng, parts, frac),
        };
        id += 1;
        push(spec, &mut specs);
    }
    // Class C — 8 queries.
    for q in 0..8 {
        let (spine, dims) = CLASS_C_COMBOS[q % CLASS_C_COMBOS.len()];
        let parts = rng.gen_range(1..=4usize);
        let frac = frac_for(spine, &mut rng);
        let spec = QuerySpec {
            id,
            class: QueryClass::MultiJoinUnion,
            spine,
            joins: dims.to_vec(),
            projected: make_projection(spine, &dims, &mut rng),
            windows: draw_windows(&mut rng, parts, frac),
        };
        id += 1;
        push(spec, &mut specs);
    }
    specs
}

/// Execute a query spec over the original relations, producing the Source
/// Table `S{id}` with the spine key installed.
pub fn execute(spec: &QuerySpec, tables: &[Table]) -> Result<Table, TableError> {
    let by_name = |n: &str| -> &Table {
        tables.iter().find(|t| t.name() == n).unwrap_or_else(|| panic!("relation {n} missing"))
    };
    // Join chain.
    let mut joined = by_name(spec.spine).clone();
    for dim in &spec.joins {
        joined = inner_join(&joined, by_name(dim)).expect("FK joins share columns");
    }
    // Selection windows over the sorted first-key-column domain.
    let key_cols = key_of(spec.spine);
    let k0 = joined.schema().column_index(key_cols[0]).expect("spine key in result");
    let mut domain: Vec<Value> = joined.distinct_values(k0).into_iter().collect();
    domain.sort();
    let n = domain.len();
    let selected_keys: gent_table::FxHashSet<&Value> = spec
        .windows
        .iter()
        .flat_map(|&(lo, hi)| {
            let a = ((n as f64) * lo).floor() as usize;
            let b = (((n as f64) * hi).ceil() as usize).min(n);
            domain[a.min(n)..b].iter()
        })
        .collect();
    let mut sliced = gent_ops::select(&joined, |row| selected_keys.contains(&row[k0]));
    if sliced.is_empty() && !joined.is_empty() {
        // Degenerate windows (tiny domains): fall back to the first rows so
        // every query yields a non-empty source.
        sliced = gent_ops::select(&joined, |row| row[k0] <= domain[(n / 4).min(n - 1)]);
    }
    // Projection (spine keys guaranteed present).
    let projected: Vec<&str> =
        spec.projected.iter().map(|s| s.as_str()).filter(|c| sliced.schema().contains(c)).collect();
    let mut out = project_named(&sliced, &projected).expect("columns exist");
    out.dedup_rows();
    out.set_name(format!("S{}", spec.id));
    out.schema_mut().set_key(key_cols.iter().copied()).expect("key projected");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{generate_tpch, TpchConfig};

    fn tables() -> Vec<Table> {
        generate_tpch(&TpchConfig { scale_unit: 20, seed: 7 })
    }

    fn specs(ts: &[Table]) -> Vec<QuerySpec> {
        let cols = |n: &str| -> Vec<String> {
            ts.iter()
                .find(|t| t.name() == n)
                .unwrap()
                .schema()
                .columns()
                .map(str::to_string)
                .collect()
        };
        generate_specs(123, cols)
    }

    #[test]
    fn twenty_six_specs_in_three_classes() {
        let ts = tables();
        let ss = specs(&ts);
        assert_eq!(ss.len(), 26);
        let a = ss.iter().filter(|s| s.class == QueryClass::ProjectSelectUnion).count();
        let b = ss.iter().filter(|s| s.class == QueryClass::OneJoinUnion).count();
        let c = ss.iter().filter(|s| s.class == QueryClass::MultiJoinUnion).count();
        assert_eq!((a, b, c), (9, 9, 8));
        // Paper: at most 4 unioned tables, at most 3 joined tables.
        assert!(ss.iter().all(|s| s.union_parts() <= 4));
        assert!(ss.iter().all(|s| s.joins.len() <= 2));
    }

    #[test]
    fn execution_yields_keyed_nonempty_sources() {
        let ts = tables();
        for spec in specs(&ts) {
            let s = execute(&spec, &ts).unwrap();
            assert!(!s.is_empty(), "S{} empty", spec.id);
            assert!(s.schema().has_key(), "S{} keyless", spec.id);
            assert!(s.key_is_valid(), "S{} key invalid (class {:?})", spec.id, spec.class);
            assert!(s.n_cols() >= 3, "S{} too narrow", spec.id);
        }
    }

    #[test]
    fn deterministic_execution() {
        let ts = tables();
        let ss = specs(&ts);
        let a = execute(&ss[0], &ts).unwrap();
        let b = execute(&ss[0], &ts).unwrap();
        assert_eq!(a.rows(), b.rows());
    }

    #[test]
    fn class_c_sources_contain_join_columns() {
        let ts = tables();
        let ss = specs(&ts);
        let c_spec = ss.iter().find(|s| s.class == QueryClass::MultiJoinUnion).unwrap();
        let s = execute(c_spec, &ts).unwrap();
        // At least one projected column must come from a joined dimension.
        let spine_cols: Vec<String> = ts
            .iter()
            .find(|t| t.name() == c_spec.spine)
            .unwrap()
            .schema()
            .columns()
            .map(str::to_string)
            .collect();
        let has_dim_col = s.schema().columns().any(|c| !spine_cols.contains(&c.to_string()));
        // Projection is random; at minimum the query executed with joins.
        assert!(has_dim_col || s.n_cols() >= 3);
    }

    #[test]
    fn sources_scale_with_lake_size() {
        let small = generate_tpch(&TpchConfig { scale_unit: 20, seed: 7 });
        let large = generate_tpch(&TpchConfig { scale_unit: 80, seed: 7 });
        let ss = specs(&small);
        let spec = &ss[0];
        let s_small = execute(spec, &small).unwrap();
        let s_large = execute(spec, &large).unwrap();
        assert!(
            s_large.n_rows() > s_small.n_rows(),
            "{} vs {}",
            s_large.n_rows(),
            s_small.n_rows()
        );
    }
}
