//! Web-table corpus generator — the T2D Gold / WDC stand-ins.
//!
//! T2D Gold is a benchmark of 515 real web tables; the WDC sample adds 15K
//! more. The paper's generalizability experiment (§VI-D) iterates over
//! every table as a potential source and asks whether it can be reclaimed
//! from the *other* tables — finding a handful of multi-table reclamations
//! and several duplicate pairs. What the experiment needs from the corpus
//! is therefore: (a) small entity tables, (b) an organic subset that *is*
//! reclaimable because its fragments also live in the corpus, (c) exact
//! duplicates, (d) plenty of unrelated tables. This generator produces
//! exactly that, with known ground truth:
//!
//! * `web_<i>` — base entity tables (string key + mixed attributes),
//! * `web_<i>_frag<j>` — for *reclaimable* bases: 4–6 vertical fragments
//!   whose column sets cover the base (join on the key reproduces it),
//! * `web_<i>_dup` — exact duplicates for a few bases,
//! * plus per-table-unique vocabulary for everything else so unrelated
//!   tables stay unrelated.

use gent_table::{Table, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Corpus parameters.
#[derive(Debug, Clone)]
pub struct WebCorpusConfig {
    /// Number of base entity tables (515 in T2D Gold; scale down for CI).
    pub n_base_tables: usize,
    /// How many bases get covering fragments (reclaimable ground truth).
    pub n_reclaimable: usize,
    /// How many bases get an exact duplicate.
    pub n_duplicates: usize,
    /// Row-count range of base tables (T2D avg is 74).
    pub rows: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebCorpusConfig {
    fn default() -> Self {
        WebCorpusConfig {
            n_base_tables: 100,
            n_reclaimable: 6,
            n_duplicates: 6,
            rows: (20, 80),
            seed: 47,
        }
    }
}

/// A generated corpus with ground truth.
#[derive(Debug, Clone)]
pub struct WebCorpus {
    /// Every table in the corpus (bases, fragments, duplicates).
    pub tables: Vec<Table>,
    /// Names of the base tables — the sources §VI-D iterates over.
    pub source_names: Vec<String>,
    /// Names of bases that are reclaimable from their fragments.
    pub reclaimable: Vec<String>,
    /// (base, duplicate) name pairs.
    pub duplicates: Vec<(String, String)>,
}

/// Per-table vocabulary so unrelated tables share no values.
fn entity(rng: &mut StdRng, table: usize, kind: &str, i: usize) -> Value {
    let salt: u32 = rng.gen();
    Value::str(format!("{kind}{table}_{i}_{salt:04x}"))
}

/// Generate the corpus.
pub fn generate_web_corpus(cfg: &WebCorpusConfig) -> WebCorpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut tables = Vec::new();
    let mut source_names = Vec::new();
    let mut reclaimable = Vec::new();
    let mut duplicates = Vec::new();

    for bi in 0..cfg.n_base_tables {
        let name = format!("web_{bi:04}");
        let n_rows = rng.gen_range(cfg.rows.0..=cfg.rows.1);
        let n_attrs = rng.gen_range(3..=6usize);
        let mut cols = vec!["entity".to_string()];
        cols.extend((0..n_attrs).map(|a| format!("attr{a}")));
        let rows: Vec<Vec<Value>> = (0..n_rows)
            .map(|r| {
                let mut row = vec![entity(&mut rng, bi, "e", r)];
                for a in 0..n_attrs {
                    row.push(if a % 2 == 0 {
                        entity(&mut rng, bi, "v", r * 10 + a)
                    } else {
                        Value::Int(rng.gen_range(0..100_000))
                    });
                }
                row
            })
            .collect();
        let base = Table::build(&name, &cols, &["entity"], rows).expect("generated arity");

        // Fragments for reclaimable bases: vertical slices whose column
        // sets cover every attribute (each fragment = key + 1–3 attrs).
        if bi < cfg.n_reclaimable {
            let mut attr_idx: Vec<usize> = (1..=n_attrs).collect();
            attr_idx.shuffle(&mut rng);
            let mut fragments: Vec<Vec<usize>> = Vec::new();
            let mut cursor = 0;
            while cursor < attr_idx.len() {
                let take = rng.gen_range(1..=2usize).min(attr_idx.len() - cursor);
                fragments.push(attr_idx[cursor..cursor + take].to_vec());
                cursor += take;
            }
            // Ensure 4–6 fragments: split or duplicate coverage with
            // overlapping extras.
            while fragments.len() < 4 {
                let a = attr_idx[rng.gen_range(0..attr_idx.len())];
                fragments.push(vec![a]);
            }
            for (fi, frag_cols) in fragments.iter().enumerate() {
                let mut indices = vec![0usize];
                indices.extend(frag_cols.iter().copied());
                let frag = base
                    .take_columns(&indices, &format!("{name}_frag{fi}"))
                    .expect("columns in range");
                tables.push(frag);
            }
            reclaimable.push(name.clone());
        }

        // Duplicates for the next few bases.
        if bi >= cfg.n_reclaimable && bi < cfg.n_reclaimable + cfg.n_duplicates {
            let mut dup = base.clone();
            let dup_name = format!("{name}_dup");
            dup.set_name(&dup_name);
            duplicates.push((name.clone(), dup_name));
            tables.push(dup);
        }

        source_names.push(name);
        tables.push(base);
    }

    WebCorpus { tables, source_names, reclaimable, duplicates }
}

/// Tiny WDC-style web tables (avg ~14 rows) to immerse the corpus in.
pub fn generate_wdc_noise(n_tables: usize, seed: u64) -> Vec<Table> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_tables)
        .map(|ti| {
            let n_rows = rng.gen_range(5..=25usize);
            let n_cols = rng.gen_range(2..=6usize);
            let cols: Vec<String> = (0..n_cols).map(|c| format!("c{c}")).collect();
            let rows: Vec<Vec<Value>> = (0..n_rows)
                .map(|_| {
                    (0..n_cols)
                        .map(|_| {
                            if rng.gen_bool(0.4) {
                                Value::Int(rng.gen_range(0..100_000))
                            } else {
                                Value::str(format!("wdc-{:06x}", rng.gen::<u32>() & 0xFFFFFF))
                            }
                        })
                        .collect()
                })
                .collect();
            Table::build(&format!("wdc_{ti:05}"), &cols, &[], rows).expect("generated arity")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_ops::{full_disjunction, FdBudget};
    use gent_table::FxHashSet;

    #[test]
    fn corpus_structure() {
        let c = generate_web_corpus(&WebCorpusConfig::default());
        assert_eq!(c.source_names.len(), 100);
        assert_eq!(c.reclaimable.len(), 6);
        assert_eq!(c.duplicates.len(), 6);
        // fragments exist for reclaimable bases
        for r in &c.reclaimable {
            let frags =
                c.tables.iter().filter(|t| t.name().starts_with(&format!("{r}_frag"))).count();
            assert!((4..=6).contains(&frags), "{r} has {frags} fragments");
        }
    }

    #[test]
    fn fragments_cover_their_base() {
        let c = generate_web_corpus(&WebCorpusConfig {
            n_base_tables: 8,
            n_reclaimable: 3,
            n_duplicates: 2,
            ..Default::default()
        });
        for r in &c.reclaimable {
            let base = c.tables.iter().find(|t| t.name() == r).unwrap();
            let frags: Vec<Table> = c
                .tables
                .iter()
                .filter(|t| t.name().starts_with(&format!("{r}_frag")))
                .cloned()
                .collect();
            let covered: FxHashSet<&str> =
                frags.iter().flat_map(|f| f.schema().columns()).collect();
            for col in base.schema().columns() {
                assert!(covered.contains(col), "{r}.{col} uncovered");
            }
            // Integrating the fragments (FD on the shared key) reproduces
            // the base exactly.
            let fd = full_disjunction(&frags, &FdBudget::default()).unwrap().unwrap();
            assert_eq!(gent_metrics_recall(base, &fd), 1.0);
        }
    }

    /// Local tuple-recall check (gent-metrics is not a dependency of this
    /// crate; the full metric suite lives there).
    fn gent_metrics_recall(source: &Table, out: &Table) -> f64 {
        let map: Vec<usize> = source
            .schema()
            .columns()
            .map(|c| out.schema().column_index(c).expect("covered"))
            .collect();
        let set: FxHashSet<Vec<gent_table::Value>> =
            out.rows().iter().map(|r| map.iter().map(|&j| r[j].clone()).collect()).collect();
        source.rows().iter().filter(|r| set.contains(*r)).count() as f64 / source.n_rows() as f64
    }

    #[test]
    fn duplicates_are_exact() {
        let c = generate_web_corpus(&WebCorpusConfig::default());
        for (a, b) in &c.duplicates {
            let ta = c.tables.iter().find(|t| t.name() == a).unwrap();
            let tb = c.tables.iter().find(|t| t.name() == b).unwrap();
            assert_eq!(ta.rows(), tb.rows());
        }
    }

    #[test]
    fn unrelated_bases_share_no_values() {
        let c = generate_web_corpus(&WebCorpusConfig::default());
        let t50 = c.tables.iter().find(|t| t.name() == "web_0050").unwrap();
        let t51 = c.tables.iter().find(|t| t.name() == "web_0051").unwrap();
        let v50 = t50.all_values();
        let v51 = t51.all_values();
        let shared = v50.intersection(&v51).filter(|v| matches!(v, Value::Str(_))).count();
        assert_eq!(shared, 0, "string vocabularies must be per-table");
    }

    #[test]
    fn wdc_noise_is_small_and_deterministic() {
        let a = generate_wdc_noise(30, 5);
        let b = generate_wdc_noise(30, 5);
        assert_eq!(a.len(), 30);
        assert_eq!(a[7].rows(), b[7].rows());
        assert!(a.iter().all(|t| t.n_rows() <= 25));
    }
}
