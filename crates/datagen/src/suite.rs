//! Benchmark-suite assembly — the six data lakes of Table I.
//!
//! | Benchmark                 | Paper                         | Here (defaults)                     |
//! |---------------------------|-------------------------------|-------------------------------------|
//! | TP-TR Small               | 32 tables, avg 782 rows       | u = 82 → same shape                 |
//! | TP-TR Med                 | 32 tables, avg 10.8K rows     | u = 300 (scaled; `--scale` raises)  |
//! | TP-TR Large               | 32 tables, avg 1M rows        | u = 1200 (scaled)                   |
//! | SANTOS Large + TP-TR Med  | 11K tables                    | TP-TR Med + synthetic noise lake    |
//! | T2D Gold                  | 515 web tables                | synthetic web corpus                |
//! | WDC Sample + T2D Gold     | 15K web tables                | corpus + WDC-style noise            |
//!
//! Row counts are configurable; the defaults keep the full suite runnable
//! in CI while preserving every relative comparison (see DESIGN.md,
//! substitution 2).

use crate::noise::{generate_noise_lake, NoiseConfig};
use crate::queries::{execute, generate_specs, QueryClass, QuerySpec};
use crate::tpch::{generate_tpch, TpchConfig};
use crate::variants::{make_variants, VariantConfig};
use crate::webgen::{generate_wdc_noise, generate_web_corpus, WebCorpusConfig};
use gent_table::Table;

/// The six benchmarks of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkId {
    /// TP-TR Small.
    TpTrSmall,
    /// TP-TR Med.
    TpTrMed,
    /// TP-TR Large.
    TpTrLarge,
    /// TP-TR Med embedded in a SANTOS-Large-style noise lake.
    SantosLargeTpTrMed,
    /// The T2D Gold web corpus.
    T2dGold,
    /// T2D Gold immersed in a WDC-style sample.
    WdcT2dGold,
}

impl BenchmarkId {
    /// Display name as in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            BenchmarkId::TpTrSmall => "TP-TR Small",
            BenchmarkId::TpTrMed => "TP-TR Med",
            BenchmarkId::TpTrLarge => "TP-TR Large",
            BenchmarkId::SantosLargeTpTrMed => "SANTOS Large+TP-TR Med",
            BenchmarkId::T2dGold => "T2D Gold",
            BenchmarkId::WdcT2dGold => "WDC Sample+T2D Gold",
        }
    }
}

/// One source table to reclaim, with ground truth.
#[derive(Debug, Clone)]
pub struct SourceCase {
    /// Case id (S0..S25 for TP-TR).
    pub id: usize,
    /// Query complexity class (TP-TR only).
    pub class: Option<QueryClass>,
    /// The source table (key installed).
    pub source: Table,
    /// Names of the lake tables whose variants could rebuild the source —
    /// the "integrating set" handed to the `w/ int. set` method variants.
    pub integrating_set: Vec<String>,
    /// For web benchmarks: lake tables to exclude when reclaiming this
    /// source (the source itself).
    pub exclude: Vec<String>,
}

/// A benchmark: a lake plus its source cases.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Which benchmark this is.
    pub id: BenchmarkId,
    /// The data-lake tables.
    pub lake_tables: Vec<Table>,
    /// The sources to reclaim.
    pub cases: Vec<SourceCase>,
}

/// Suite-wide generation parameters.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Master seed.
    pub seed: u64,
    /// TPC-H scale units per TP-TR benchmark (Small, Med, Large).
    pub units: (usize, usize, usize),
    /// Noise-lake size for SANTOS Large (paper: ~11K tables).
    pub santos_noise_tables: usize,
    /// WDC noise size (paper: 15K tables).
    pub wdc_noise_tables: usize,
    /// Variant (nullify/corrupt) parameters.
    pub variants: VariantConfig,
    /// Web corpus parameters.
    pub web: WebCorpusConfig,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            seed: 7,
            units: (82, 300, 1200),
            santos_noise_tables: 1500,
            wdc_noise_tables: 2000,
            variants: VariantConfig::default(),
            web: WebCorpusConfig::default(),
        }
    }
}

/// Build one TP-TR benchmark: generate the originals, run the 26 queries on
/// them, put only the 4 variants of each original in the lake (plus
/// optional noise).
pub fn build_tp_tr(
    id: BenchmarkId,
    scale_unit: usize,
    noise_tables: usize,
    cfg: &SuiteConfig,
) -> Benchmark {
    let originals = generate_tpch(&TpchConfig { scale_unit, seed: cfg.seed });
    let columns_of = |n: &str| -> Vec<String> {
        originals
            .iter()
            .find(|t| t.name() == n)
            .map(|t| t.schema().columns().map(str::to_string).collect())
            .unwrap_or_default()
    };
    let specs: Vec<QuerySpec> = generate_specs(cfg.seed ^ 0x5EED, columns_of);
    let cases: Vec<SourceCase> = specs
        .iter()
        .map(|spec| {
            let source = execute(spec, &originals).expect("query executes");
            let mut integrating_set = Vec::new();
            for t in std::iter::once(spec.spine).chain(spec.joins.iter().copied()) {
                for suffix in ["n1", "n2", "e1", "e2"] {
                    integrating_set.push(format!("{t}_{suffix}"));
                }
            }
            SourceCase {
                id: spec.id,
                class: Some(spec.class),
                source,
                integrating_set,
                exclude: Vec::new(),
            }
        })
        .collect();

    let mut lake_tables = Vec::with_capacity(originals.len() * 4 + noise_tables);
    for t in &originals {
        lake_tables.extend(make_variants(t, &cfg.variants));
    }
    if noise_tables > 0 {
        lake_tables.extend(generate_noise_lake(&NoiseConfig {
            n_tables: noise_tables,
            seed: cfg.seed ^ 0xA0A0,
            ..Default::default()
        }));
    }
    Benchmark { id, lake_tables, cases }
}

/// Build a web benchmark (T2D Gold, optionally immersed in WDC noise).
pub fn build_web(id: BenchmarkId, cfg: &SuiteConfig) -> Benchmark {
    let corpus = generate_web_corpus(&cfg.web);
    let mut lake_tables = corpus.tables.clone();
    if id == BenchmarkId::WdcT2dGold {
        lake_tables.extend(generate_wdc_noise(cfg.wdc_noise_tables, cfg.seed ^ 0xBEEF));
    }
    let cases: Vec<SourceCase> = corpus
        .source_names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let source =
                corpus.tables.iter().find(|t| t.name() == name).expect("base in corpus").clone();
            SourceCase {
                id: i,
                class: None,
                source,
                integrating_set: Vec::new(),
                exclude: vec![name.clone()],
            }
        })
        .collect();
    Benchmark { id, lake_tables, cases }
}

/// Build a benchmark by id with the suite defaults.
pub fn build(id: BenchmarkId, cfg: &SuiteConfig) -> Benchmark {
    match id {
        BenchmarkId::TpTrSmall => build_tp_tr(id, cfg.units.0, 0, cfg),
        BenchmarkId::TpTrMed => build_tp_tr(id, cfg.units.1, 0, cfg),
        BenchmarkId::TpTrLarge => build_tp_tr(id, cfg.units.2, 0, cfg),
        BenchmarkId::SantosLargeTpTrMed => {
            build_tp_tr(id, cfg.units.1, cfg.santos_noise_tables, cfg)
        }
        BenchmarkId::T2dGold | BenchmarkId::WdcT2dGold => build_web(id, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::stats::lake_stats;

    fn tiny() -> SuiteConfig {
        SuiteConfig {
            units: (12, 24, 48),
            santos_noise_tables: 30,
            wdc_noise_tables: 30,
            web: WebCorpusConfig {
                n_base_tables: 10,
                n_reclaimable: 2,
                n_duplicates: 2,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn tp_tr_small_shape() {
        let b = build(BenchmarkId::TpTrSmall, &tiny());
        assert_eq!(b.lake_tables.len(), 32, "8 relations × 4 variants");
        assert_eq!(b.cases.len(), 26);
        for c in &b.cases {
            assert!(c.source.schema().has_key());
            assert!(!c.integrating_set.is_empty());
            // integrating set names exist in the lake
            for n in &c.integrating_set {
                assert!(b.lake_tables.iter().any(|t| t.name() == n), "{n} missing from lake");
            }
        }
    }

    #[test]
    fn santos_adds_noise() {
        let cfg = tiny();
        let med = build(BenchmarkId::TpTrMed, &cfg);
        let santos = build(BenchmarkId::SantosLargeTpTrMed, &cfg);
        assert_eq!(santos.lake_tables.len(), med.lake_tables.len() + 30);
        // identical sources (the paper uses the same 26 sources for both)
        assert_eq!(santos.cases.len(), med.cases.len());
        for (a, b) in santos.cases.iter().zip(med.cases.iter()) {
            assert_eq!(a.source.rows(), b.source.rows());
        }
    }

    #[test]
    fn scales_differ() {
        let cfg = tiny();
        let s = build(BenchmarkId::TpTrSmall, &cfg);
        let m = build(BenchmarkId::TpTrMed, &cfg);
        assert!(lake_stats(&m.lake_tables).avg_rows > lake_stats(&s.lake_tables).avg_rows);
    }

    #[test]
    fn web_benchmarks() {
        let cfg = tiny();
        let t2d = build(BenchmarkId::T2dGold, &cfg);
        assert_eq!(t2d.cases.len(), 10);
        for c in &t2d.cases {
            assert_eq!(c.exclude.len(), 1);
        }
        let wdc = build(BenchmarkId::WdcT2dGold, &cfg);
        assert_eq!(wdc.lake_tables.len(), t2d.lake_tables.len() + 30);
    }

    #[test]
    fn deterministic() {
        let cfg = tiny();
        let a = build(BenchmarkId::TpTrSmall, &cfg);
        let b = build(BenchmarkId::TpTrSmall, &cfg);
        assert_eq!(a.cases[5].source.rows(), b.cases[5].source.rows());
        assert_eq!(a.lake_tables[9].rows(), b.lake_tables[9].rows());
    }
}
