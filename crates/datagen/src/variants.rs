//! The TP-TR variant construction (§VI-A): for each original relation,
//! four data-lake versions — two *nullified* (random cells → null) and two
//! *erroneous* (random cells → fresh random strings).
//!
//! Mask policy: the two masks of a kind are drawn **disjoint-first** — the
//! second mask prefers cells the first mask did not touch, overlapping only
//! when `2·p > 1`. At the paper's default p = 50% the nullified pair
//! partitions the cells, so their union recovers every original value;
//! this is what makes perfect reclamation achievable (the paper perfectly
//! reclaims 15–17 of 26 sources) while the ablation's p > 50% produces
//! irrecoverable cells and the precision drop of Figure 7.
//!
//! Masks never touch the original relation's **key columns**: reclamation
//! aligns tuples by key, so a nullified/corrupted key cell would sever the
//! whole row from alignment and make perfect reclamation statistically
//! impossible at any injection rate — the paper's perfect-reclamation
//! counts imply its variants preserve tuple identity too. The injected
//! fraction is therefore over the non-key cells.

use gent_table::{Table, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Variant generation parameters.
#[derive(Debug, Clone)]
pub struct VariantConfig {
    /// Fraction of cells nullified in each nullified version.
    pub null_frac: f64,
    /// Fraction of cells corrupted in each erroneous version.
    pub err_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VariantConfig {
    fn default() -> Self {
        VariantConfig { null_frac: 0.5, err_frac: 0.5, seed: 11 }
    }
}

/// Two disjoint-first masks over the maskable cells (`eligible[i]`), each
/// covering `frac` of them: the first takes a random ⌈frac·m⌉ cells; the
/// second takes the complement first and tops up from the first mask when
/// `2·frac > 1`.
fn disjoint_first_masks(eligible: &[bool], frac: f64, rng: &mut StdRng) -> (Vec<bool>, Vec<bool>) {
    let n = eligible.len();
    let mut order: Vec<usize> = (0..n).filter(|&i| eligible[i]).collect();
    let k = ((order.len() as f64) * frac).round() as usize;
    order.shuffle(rng);
    let mut m1 = vec![false; n];
    for &i in order.iter().take(k) {
        m1[i] = true;
    }
    // Second mask: complement cells first (shuffled), then spill into m1's
    // cells if more are needed.
    let mut m2 = vec![false; n];
    let mut complement: Vec<usize> = order.iter().copied().skip(k).collect();
    complement.shuffle(rng);
    let mut taken = 0;
    for &i in &complement {
        if taken == k {
            break;
        }
        m2[i] = true;
        taken += 1;
    }
    if taken < k {
        let mut spill: Vec<usize> = order.iter().copied().take(k).collect();
        spill.shuffle(rng);
        for &i in &spill {
            if taken == k {
                break;
            }
            m2[i] = true;
            taken += 1;
        }
    }
    (m1, m2)
}

/// Apply a mask to a table, replacing masked cells via `repl(row, col, rng)`.
fn apply_mask(
    t: &Table,
    name: &str,
    mask: &[bool],
    rng: &mut StdRng,
    mut repl: impl FnMut(&mut StdRng) -> Value,
) -> Table {
    let ncols = t.n_cols();
    let rows: Vec<Vec<Value>> = t
        .rows()
        .iter()
        .enumerate()
        .map(|(i, row)| {
            row.iter()
                .enumerate()
                .map(|(j, v)| if mask[i * ncols + j] { repl(rng) } else { v.clone() })
                .collect()
        })
        .collect();
    // Variants lose the key designation: data-lake tables aren't assumed to
    // have keys, and injected nulls/errors generally break uniqueness.
    let schema = gent_table::Schema::new(t.schema().columns()).expect("valid names");
    Table::from_rows(name, schema, rows).expect("same arity")
}

/// Build the four TP-TR versions of `t`:
/// `[{name}_n1, {name}_n2, {name}_e1, {name}_e2]`.
pub fn make_variants(t: &Table, cfg: &VariantConfig) -> Vec<Table> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ hash_name(t.name()));
    let ncols = t.n_cols();
    // Key cells are never masked (see module docs).
    let key = t.schema().key();
    let eligible: Vec<bool> =
        (0..t.n_rows() * ncols).map(|i| !key.contains(&(i % ncols))).collect();
    let (nm1, nm2) = disjoint_first_masks(&eligible, cfg.null_frac, &mut rng);
    let (em1, em2) = disjoint_first_masks(&eligible, cfg.err_frac, &mut rng);
    let null_repl = |_: &mut StdRng| Value::Null;
    let err_repl = |rng: &mut StdRng| Value::str(format!("err-{:08x}", rng.gen::<u32>()));
    vec![
        apply_mask(t, &format!("{}_n1", t.name()), &nm1, &mut rng, null_repl),
        apply_mask(t, &format!("{}_n2", t.name()), &nm2, &mut rng, null_repl),
        apply_mask(t, &format!("{}_e1", t.name()), &em1, &mut rng, err_repl),
        apply_mask(t, &format!("{}_e2", t.name()), &em2, &mut rng, err_repl),
    ]
}

/// Stable tiny hash so each table gets its own stream from one seed.
fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::Value as V;

    fn base() -> Table {
        let rows: Vec<Vec<V>> =
            (0..40).map(|i| vec![V::Int(i), V::str(format!("v{i}")), V::Int(i * 10)]).collect();
        Table::build("base", &["k", "a", "b"], &["k"], rows).unwrap()
    }

    #[test]
    fn key_columns_never_masked() {
        let b = base();
        for v in make_variants(&b, &VariantConfig { null_frac: 0.9, err_frac: 0.9, seed: 2 }) {
            for (i, row) in v.rows().iter().enumerate() {
                assert_eq!(row[0], *b.cell(i, 0).unwrap(), "{} row {i}", v.name());
            }
        }
    }

    #[test]
    fn four_variants_with_expected_names() {
        let vs = make_variants(&base(), &VariantConfig::default());
        let names: Vec<&str> = vs.iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["base_n1", "base_n2", "base_e1", "base_e2"]);
        for v in &vs {
            assert_eq!(v.n_rows(), 40);
            assert_eq!(v.n_cols(), 3);
            assert!(!v.schema().has_key());
        }
    }

    #[test]
    fn null_fractions_respected() {
        let vs = make_variants(&base(), &VariantConfig { null_frac: 0.5, err_frac: 0.5, seed: 3 });
        // 40 rows × 2 non-key columns are maskable; half get nulled.
        for v in &vs[..2] {
            let nulls = v.rows().iter().flatten().filter(|x| x.is_null()).count();
            assert_eq!(nulls, 40, "{}", v.name());
        }
    }

    #[test]
    fn nullified_pair_partitions_at_half() {
        // At p = 0.5 the two null masks are complementary: every original
        // value survives in at least one version.
        let b = base();
        let vs = make_variants(&b, &VariantConfig::default());
        let (n1, n2) = (&vs[0], &vs[1]);
        for i in 0..b.n_rows() {
            for j in 0..b.n_cols() {
                let survives =
                    !n1.cell(i, j).unwrap().is_null() || !n2.cell(i, j).unwrap().is_null();
                assert!(survives, "cell ({i},{j}) lost in both nullified versions");
            }
        }
    }

    #[test]
    fn high_null_fraction_overlaps() {
        let b = base();
        let vs = make_variants(&b, &VariantConfig { null_frac: 0.9, err_frac: 0.5, seed: 5 });
        let lost = (0..b.n_rows())
            .flat_map(|i| (1..b.n_cols()).map(move |j| (i, j))) // non-key cols
            .filter(|&(i, j)| {
                vs[0].cell(i, j).unwrap().is_null() && vs[1].cell(i, j).unwrap().is_null()
            })
            .count();
        // 2·0.9 − 1 = 0.8 of maskable cells must be lost in both.
        let frac = lost as f64 / (b.n_rows() * (b.n_cols() - 1)) as f64;
        assert!((frac - 0.8).abs() < 0.05, "lost fraction {frac}");
    }

    #[test]
    fn erroneous_cells_are_fresh_strings() {
        let b = base();
        let vs = make_variants(&b, &VariantConfig::default());
        let e1 = &vs[2];
        let mut corrupted = 0;
        for (i, row) in e1.rows().iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                if v != b.cell(i, j).unwrap() {
                    corrupted += 1;
                    match v {
                        V::Str(s) => assert!(s.starts_with("err-")),
                        other => panic!("unexpected corruption {other:?}"),
                    }
                }
            }
        }
        assert_eq!(corrupted, 40); // half of the 80 non-key cells
    }

    #[test]
    fn deterministic_per_seed_and_name() {
        let a = make_variants(&base(), &VariantConfig::default());
        let b = make_variants(&base(), &VariantConfig::default());
        assert_eq!(a[0].rows(), b[0].rows());
        let c = make_variants(&base(), &VariantConfig { seed: 99, ..Default::default() });
        assert_ne!(a[0].rows(), c[0].rows());
    }
}
