//! TPC-H-style relational generator.
//!
//! Eight relations mirroring the TPC-H schema graph. Foreign-key columns
//! carry the *referenced key's* column name (`custkey`, `nationkey`, …) so
//! the natural joins of `gent-ops` follow the schema graph exactly — the
//! role TPC-H's FK structure plays for the paper's query generator.
//!
//! Row counts scale with a single `scale_unit` (u):
//! region 5, nation 25, supplier 2u, customer 6u, part 8u, partsupp 12u,
//! orders 16u, lineitem 32u — compressed versions of TPC-H's ratios that
//! keep the full benchmark runnable at laptop scale while preserving the
//! "dimension table ≪ fact table" shape.

use gent_table::{Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Scale unit u (see module docs). u = 82 ≈ the paper's TP-TR Small
    /// (avg ~780 rows/table); u = 1100 ≈ TP-TR Med.
    pub scale_unit: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig { scale_unit: 82, seed: 7 }
    }
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const STATUSES: [&str; 3] = ["F", "O", "P"];
const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
const PART_ADJ: [&str; 10] = [
    "antique",
    "burnished",
    "chocolate",
    "dim",
    "floral",
    "honeydew",
    "ivory",
    "lace",
    "metallic",
    "navy",
];
const PART_NOUN: [&str; 10] = [
    "almond",
    "brass",
    "copper",
    "drab",
    "frosted",
    "gainsboro",
    "linen",
    "olive",
    "peru",
    "tomato",
];
const PART_TYPES: [&str; 6] = [
    "ECONOMY ANODIZED",
    "LARGE BRUSHED",
    "MEDIUM BURNISHED",
    "PROMO PLATED",
    "SMALL POLISHED",
    "STANDARD TIN",
];
const MFGRS: [&str; 5] = ["Mfgr#1", "Mfgr#2", "Mfgr#3", "Mfgr#4", "Mfgr#5"];

fn money(rng: &mut StdRng, lo: f64, hi: f64) -> Value {
    let cents = (rng.gen_range(lo..hi) * 100.0).round() / 100.0;
    Value::Float(cents)
}

fn date(rng: &mut StdRng) -> Value {
    let y = rng.gen_range(1992..=1998);
    let m = rng.gen_range(1..=12);
    let d = rng.gen_range(1..=28);
    Value::str(format!("{y:04}-{m:02}-{d:02}"))
}

fn phone(rng: &mut StdRng, nation: i64) -> Value {
    Value::str(format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nation,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    ))
}

fn address(rng: &mut StdRng) -> Value {
    Value::str(format!(
        "{} {} St Apt {}",
        rng.gen_range(1..9999),
        PART_NOUN[rng.gen_range(0..PART_NOUN.len())],
        rng.gen_range(1..500)
    ))
}

/// Generate the eight relations, each with its primary key declared.
pub fn generate_tpch(cfg: &TpchConfig) -> Vec<Table> {
    let u = cfg.scale_unit.max(1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_supplier = 2 * u;
    let n_customer = 6 * u;
    let n_part = 8 * u;
    let n_partsupp = 12 * u;
    let n_orders = 16 * u;
    let n_lineitem = 32 * u;

    // region ------------------------------------------------------------
    let region = Table::build(
        "region",
        &["regionkey", "r_name", "r_comment"],
        &["regionkey"],
        REGIONS
            .iter()
            .enumerate()
            .map(|(i, r)| {
                vec![
                    Value::Int(i as i64),
                    Value::str(*r),
                    Value::str(format!("the {} region", r.to_lowercase())),
                ]
            })
            .collect(),
    )
    .expect("static schema");

    // nation --------------------------------------------------------------
    let nation = Table::build(
        "nation",
        &["nationkey", "n_name", "regionkey", "n_comment"],
        &["nationkey"],
        NATIONS
            .iter()
            .enumerate()
            .map(|(i, (n, r))| {
                vec![
                    Value::Int(i as i64),
                    Value::str(*n),
                    Value::Int(*r),
                    Value::str(format!("nation {} in region {}", n.to_lowercase(), r)),
                ]
            })
            .collect(),
    )
    .expect("static schema");

    // supplier --------------------------------------------------------------
    let supplier = Table::build(
        "supplier",
        &["suppkey", "s_name", "s_address", "nationkey", "s_phone", "s_acctbal"],
        &["suppkey"],
        (0..n_supplier)
            .map(|i| {
                let nk = rng.gen_range(0..25i64);
                vec![
                    Value::Int(i as i64),
                    Value::str(format!("Supplier#{i:06}")),
                    address(&mut rng),
                    Value::Int(nk),
                    phone(&mut rng, nk),
                    money(&mut rng, -999.0, 9999.0),
                ]
            })
            .collect(),
    )
    .expect("static schema");

    // customer ---------------------------------------------------------------
    let customer = Table::build(
        "customer",
        &["custkey", "c_name", "c_address", "nationkey", "c_phone", "c_acctbal", "c_mktsegment"],
        &["custkey"],
        (0..n_customer)
            .map(|i| {
                let nk = rng.gen_range(0..25i64);
                vec![
                    Value::Int(i as i64),
                    Value::str(format!("Customer#{i:06}")),
                    address(&mut rng),
                    Value::Int(nk),
                    phone(&mut rng, nk),
                    money(&mut rng, -999.0, 9999.0),
                    Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                ]
            })
            .collect(),
    )
    .expect("static schema");

    // part -----------------------------------------------------------------
    let part = Table::build(
        "part",
        &["partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size", "p_retailprice"],
        &["partkey"],
        (0..n_part)
            .map(|i| {
                let mfgr = rng.gen_range(0..MFGRS.len());
                vec![
                    Value::Int(i as i64),
                    Value::str(format!(
                        "{} {} #{i}",
                        PART_ADJ[rng.gen_range(0..PART_ADJ.len())],
                        PART_NOUN[rng.gen_range(0..PART_NOUN.len())]
                    )),
                    Value::str(MFGRS[mfgr]),
                    Value::str(format!("Brand#{}{}", mfgr + 1, rng.gen_range(1..6))),
                    Value::str(PART_TYPES[rng.gen_range(0..PART_TYPES.len())]),
                    Value::Int(rng.gen_range(1..51)),
                    money(&mut rng, 900.0, 2100.0),
                ]
            })
            .collect(),
    )
    .expect("static schema");

    // partsupp — composite key (partkey, suppkey) -----------------------
    let mut ps_rows = Vec::with_capacity(n_partsupp);
    let mut ps_seen = gent_table::FxHashSet::default();
    while ps_rows.len() < n_partsupp {
        let pk = rng.gen_range(0..n_part as i64);
        let sk = rng.gen_range(0..n_supplier as i64);
        if ps_seen.insert((pk, sk)) {
            ps_rows.push(vec![
                Value::Int(pk),
                Value::Int(sk),
                Value::Int(rng.gen_range(1..10000)),
                money(&mut rng, 1.0, 1000.0),
            ]);
        }
    }
    let partsupp = Table::build(
        "partsupp",
        &["partkey", "suppkey", "ps_availqty", "ps_supplycost"],
        &["partkey", "suppkey"],
        ps_rows,
    )
    .expect("static schema");

    // orders ------------------------------------------------------------------
    let orders = Table::build(
        "orders",
        &["orderkey", "custkey", "o_orderstatus", "o_totalprice", "o_orderdate", "o_orderpriority"],
        &["orderkey"],
        (0..n_orders)
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::Int(rng.gen_range(0..n_customer as i64)),
                    Value::str(STATUSES[rng.gen_range(0..STATUSES.len())]),
                    money(&mut rng, 800.0, 500000.0),
                    date(&mut rng),
                    Value::str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
                ]
            })
            .collect(),
    )
    .expect("static schema");

    // lineitem — composite key (orderkey, linenumber) --------------------
    let mut li_rows = Vec::with_capacity(n_lineitem);
    let mut line_of_order: gent_table::FxHashMap<i64, i64> = gent_table::FxHashMap::default();
    for _ in 0..n_lineitem {
        let ok = rng.gen_range(0..n_orders as i64);
        let ln = line_of_order.entry(ok).or_insert(0);
        *ln += 1;
        li_rows.push(vec![
            Value::Int(ok),
            Value::Int(*ln),
            Value::Int(rng.gen_range(0..n_part as i64)),
            Value::Int(rng.gen_range(0..n_supplier as i64)),
            Value::Int(rng.gen_range(1..51)),
            money(&mut rng, 900.0, 105000.0),
            Value::Float((rng.gen_range(0..11) as f64) / 100.0),
            Value::str(RETURN_FLAGS[rng.gen_range(0..RETURN_FLAGS.len())]),
            date(&mut rng),
        ]);
    }
    let lineitem = Table::build(
        "lineitem",
        &[
            "orderkey",
            "linenumber",
            "partkey",
            "suppkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_returnflag",
            "l_shipdate",
        ],
        &["orderkey", "linenumber"],
        li_rows,
    )
    .expect("static schema");

    vec![region, nation, supplier, customer, part, partsupp, orders, lineitem]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = generate_tpch(&TpchConfig { scale_unit: 5, seed: 42 });
        let b = generate_tpch(&TpchConfig { scale_unit: 5, seed: 42 });
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.rows(), y.rows(), "{} differs", x.name());
        }
        let c = generate_tpch(&TpchConfig { scale_unit: 5, seed: 43 });
        assert_ne!(a[3].rows(), c[3].rows(), "different seed → different data");
    }

    #[test]
    fn all_tables_have_valid_keys() {
        for t in generate_tpch(&TpchConfig { scale_unit: 4, seed: 1 }) {
            assert!(t.key_is_valid(), "{} key invalid", t.name());
        }
    }

    #[test]
    fn row_counts_scale() {
        let ts = generate_tpch(&TpchConfig { scale_unit: 10, seed: 1 });
        let by_name = |n: &str| ts.iter().find(|t| t.name() == n).unwrap().n_rows();
        assert_eq!(by_name("region"), 5);
        assert_eq!(by_name("nation"), 25);
        assert_eq!(by_name("supplier"), 20);
        assert_eq!(by_name("customer"), 60);
        assert_eq!(by_name("part"), 80);
        assert_eq!(by_name("partsupp"), 120);
        assert_eq!(by_name("orders"), 160);
        assert_eq!(by_name("lineitem"), 320);
    }

    #[test]
    fn fk_columns_join_naturally() {
        let ts = generate_tpch(&TpchConfig { scale_unit: 4, seed: 1 });
        let customer = ts.iter().find(|t| t.name() == "customer").unwrap();
        let nation = ts.iter().find(|t| t.name() == "nation").unwrap();
        let j = gent_ops::inner_join(customer, nation).unwrap();
        assert_eq!(j.n_rows(), customer.n_rows(), "every customer has a nation");
        let orders = ts.iter().find(|t| t.name() == "orders").unwrap();
        let oj = gent_ops::inner_join(orders, customer).unwrap();
        assert_eq!(oj.n_rows(), orders.n_rows());
    }

    #[test]
    fn fk_values_in_range() {
        let ts = generate_tpch(&TpchConfig { scale_unit: 3, seed: 9 });
        let nation = ts.iter().find(|t| t.name() == "nation").unwrap();
        let rk = nation.schema().column_index("regionkey").unwrap();
        for row in nation.rows() {
            if let Value::Int(r) = row[rk] {
                assert!((0..5).contains(&r));
            } else {
                panic!("regionkey not int");
            }
        }
    }
}
