//! # gent-datagen — benchmark generators for the Gen-T evaluation (§VI-A)
//!
//! The paper evaluates on six benchmarks built from TPC-H, SANTOS Large,
//! T2D Gold and the WDC web-table corpus. None of those datasets ship with
//! this offline reproduction, so this crate generates seeded synthetic
//! equivalents that preserve the properties each experiment exercises (the
//! substitutions are itemised in DESIGN.md):
//!
//! * [`tpch`] — a TPC-H-style relational generator: the 8 relations with
//!   their key/foreign-key graph, scalable row counts, realistic value
//!   domains. FK columns share the referenced key's column name so natural
//!   joins follow the schema graph.
//! * [`variants`] — the TP-TR construction: 4 versions of each relation
//!   (2 *nullified*, 2 *erroneous*), with masks drawn disjoint-first so
//!   that at ≤50% injection the union of the two nullified versions
//!   recovers the original (the paper's perfect-reclamation counts require
//!   this).
//! * [`queries`] — the 26 seeded SPJU queries over the original relations
//!   in the paper's three complexity classes (Figure 6), producing the
//!   Source Tables plus their known integrating sets.
//! * [`noise`] — the SANTOS-Large stand-in: thousands of distractor tables
//!   with partially overlapping vocabulary.
//! * [`webgen`] — the T2D-Gold / WDC stand-ins: a web-table corpus where a
//!   controlled subset of tables is reclaimable from fragments that are
//!   also in the corpus, plus duplicates and noise.
//! * [`suite`] — assembly of the six named benchmarks of Table I.
//!
//! Everything is deterministic in the seed.

#![warn(missing_docs)]

pub mod noise;
pub mod queries;
pub mod suite;
pub mod tpch;
pub mod variants;
pub mod webgen;

pub use queries::{QueryClass, QuerySpec};
pub use suite::{Benchmark, BenchmarkId, SourceCase};
pub use tpch::{generate_tpch, TpchConfig};
pub use variants::{make_variants, VariantConfig};
