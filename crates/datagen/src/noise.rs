//! Noise-lake generator — the SANTOS-Large stand-in.
//!
//! SANTOS Large is a real lake of ~11K open-data tables the paper embeds
//! TP-TR Med into, to test discovery precision under noise. Its role in the
//! experiment is purely adversarial: thousands of tables that are
//! irrelevant to the sources but must be filtered by retrieval + Set
//! Similarity. This generator reproduces that role with:
//!
//! * pure-noise tables over a disjoint vocabulary (`noise-…` tokens),
//! * *distractor* tables that embed overlapping value ranges (small
//!   integers, TPC-H-like nation/region names and key ranges) so that the
//!   inverted index returns false candidates that Set Similarity and the
//!   matrix traversal must reject.

use gent_table::{Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Noise-lake parameters.
#[derive(Debug, Clone)]
pub struct NoiseConfig {
    /// Number of noise tables.
    pub n_tables: usize,
    /// Row-count range per table.
    pub rows: (usize, usize),
    /// Column-count range per table.
    pub cols: (usize, usize),
    /// Fraction of tables that are distractors (overlapping vocabulary).
    pub distractor_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            n_tables: 1000,
            rows: (10, 120),
            cols: (3, 8),
            distractor_frac: 0.15,
            seed: 31,
        }
    }
}

const DISTRACTOR_WORDS: [&str; 12] = [
    "AMERICA",
    "EUROPE",
    "ASIA",
    "FRANCE",
    "GERMANY",
    "CHINA",
    "JAPAN",
    "BRAZIL",
    "CANADA",
    "AUTOMOBILE",
    "BUILDING",
    "MACHINERY",
];

/// Generate the noise lake.
pub fn generate_noise_lake(cfg: &NoiseConfig) -> Vec<Table> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.n_tables);
    for ti in 0..cfg.n_tables {
        let n_rows = rng.gen_range(cfg.rows.0..=cfg.rows.1);
        let n_cols = rng.gen_range(cfg.cols.0..=cfg.cols.1);
        let distractor = rng.gen_bool(cfg.distractor_frac);
        let cols: Vec<String> = (0..n_cols).map(|c| format!("col{c}")).collect();
        let rows: Vec<Vec<Value>> = (0..n_rows)
            .map(|r| {
                (0..n_cols)
                    .map(|c| {
                        if distractor {
                            // Overlapping vocabulary: small ints and
                            // TPC-H-ish words.
                            if c == 0 {
                                Value::Int(r as i64) // key-like run of ints
                            } else if rng.gen_bool(0.5) {
                                Value::str(
                                    DISTRACTOR_WORDS[rng.gen_range(0..DISTRACTOR_WORDS.len())],
                                )
                            } else {
                                Value::Int(rng.gen_range(0..2000))
                            }
                        } else if rng.gen_bool(0.3) {
                            Value::Int(rng.gen_range(1_000_000..9_000_000))
                        } else {
                            Value::str(format!("noise-{:06x}", rng.gen::<u32>() & 0xFFFFFF))
                        }
                    })
                    .collect()
            })
            .collect();
        out.push(
            Table::build(&format!("noise_{ti:05}"), &cols, &[], rows).expect("generated arity"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let lake = generate_noise_lake(&NoiseConfig { n_tables: 50, ..Default::default() });
        assert_eq!(lake.len(), 50);
        for t in &lake {
            assert!(t.n_rows() >= 10 && t.n_rows() <= 120);
            assert!(t.n_cols() >= 3 && t.n_cols() <= 8);
        }
    }

    #[test]
    fn deterministic() {
        let cfg = NoiseConfig { n_tables: 10, ..Default::default() };
        let a = generate_noise_lake(&cfg);
        let b = generate_noise_lake(&cfg);
        assert_eq!(a[3].rows(), b[3].rows());
    }

    #[test]
    fn contains_distractors_and_pure_noise() {
        let lake = generate_noise_lake(&NoiseConfig { n_tables: 200, ..Default::default() });
        let distractors =
            lake.iter()
                .filter(|t| {
                    t.rows().iter().flatten().any(
                        |v| matches!(v, Value::Str(s) if DISTRACTOR_WORDS.contains(&s.as_ref())),
                    )
                })
                .count();
        assert!(distractors > 10, "{distractors} distractors");
        assert!(distractors < 100, "{distractors} distractors");
    }
}
