//! The TCP accept loop and worker thread pool.
//!
//! One `TcpListener`, N workers: the accept loop pushes connections into a
//! *bounded* channel; workers pull from the shared receiver (guarded by a
//! `parking_lot::Mutex`), serve the connection, and close. All workers
//! borrow the same [`LakeService`] through an `Arc` — the warm lake is
//! opened exactly once, no matter how many requests run concurrently.
//!
//! A connection serves one request by default; a client sending
//! `Connection: keep-alive` may reuse it for up to
//! [`MAX_REQUESTS_PER_CONNECTION`] requests, each under its own read
//! deadline — and with the *wait for the next request* phase under the
//! much shorter [`KEEP_ALIVE_IDLE_TIMEOUT`], closed silently when it
//! expires. That removes the per-request TCP setup from repeated reclaims
//! while bounding how long an idle pooled client can pin a worker thread
//! (the remaining cost of the thread-per-in-flight-connection design).
//!
//! The bounded queue is the backpressure mechanism: when every worker is
//! busy and [`ServeConfig::queue_depth`] connections are already waiting,
//! the accept loop **sheds** further connections with `429 Too Many
//! Requests` + a parseable `Retry-After` header instead of stalling — the
//! daemon keeps accepting, answers overload explicitly, and never
//! accumulates file descriptors without bound. The queue-depth gauge and
//! its high-water mark (`gent_http_queue_depth_peak`), plus the shed
//! counter (`gent_http_shed_total`), make the whole episode observable in
//! `/metrics`.
//!
//! The pool runs inside a `crossbeam::thread::scope`, so `run()` owns every
//! worker and cannot leak threads; [`ServerHandle::stop`] unblocks the
//! accept loop for a clean shutdown (used by tests and benches).

use std::collections::HashMap;
use std::io::{BufReader, ErrorKind};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::http::{read_request_buffered, DeadlineStream, HttpError, Response};
use crate::json::Json;
use crate::routing::Router;
use crate::service::LakeService;

/// Default bound on accepted-but-unserved connections held by the daemon
/// before the accept loop sheds load (per-connection cost: one fd + one
/// `TcpStream`). Override with [`ServeConfig::queue_depth`].
pub const QUEUE_DEPTH: usize = 128;

/// Requests one kept-alive connection may carry before the daemon closes it
/// anyway — the bound that keeps a single chatty client from monopolising a
/// worker. The final response advertises `Connection: close`, so
/// well-behaved clients reconnect instead of timing out.
pub const MAX_REQUESTS_PER_CONNECTION: usize = 64;

/// How long a kept-alive connection may sit **idle** between requests
/// before the daemon closes it (silently — writing anything to an idle
/// socket would be consumed as the answer to the client's *next* request).
/// Deliberately much shorter than the per-request read deadline: with one
/// thread per in-flight connection, idle pooled clients would otherwise
/// pin workers for the full request budget.
pub const KEEP_ALIVE_IDLE_TIMEOUT: Duration = Duration::from_secs(2);

/// Default ceiling on the drain phase of a shutdown: after
/// [`ServerHandle::stop`], in-flight and already-queued requests get this
/// long to finish before the remaining sockets are force-closed. Override
/// with [`ServeConfig::drain_deadline`].
pub const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads (0 → all available cores).
    pub threads: usize,
    /// Overall time budget for reading one request (head + body). A client
    /// stalling — or trickling bytes to reset a naive per-read timeout —
    /// gets a structured `timeout`/`truncated_body` error when the budget
    /// runs out instead of pinning a worker.
    pub read_timeout: Duration,
    /// Bound on accepted-but-unserved connections. When every worker is
    /// busy and this many connections are queued, further connections are
    /// answered `429 Too Many Requests` + `Retry-After` from the accept
    /// loop (0 falls back to [`QUEUE_DEPTH`]).
    pub queue_depth: usize,
    /// How long a shutdown waits for in-flight (and already-queued)
    /// requests to finish before force-closing their sockets. Bounds the
    /// gap between [`ServerHandle::stop`] and [`Server::run`] returning
    /// even when a peer stalls mid-request (0 falls back to
    /// [`DRAIN_DEADLINE`]).
    pub drain_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7744".to_string(),
            threads: 0,
            read_timeout: Duration::from_secs(10),
            queue_depth: QUEUE_DEPTH,
            drain_deadline: DRAIN_DEADLINE,
        }
    }
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    router: Arc<Router>,
    threads: usize,
    read_timeout: Duration,
    queue_depth: usize,
    drain_deadline: Duration,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
}

/// A handle that can stop a running [`Server`] from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Withdraw readiness without stopping: `GET /healthz/ready` starts
    /// answering 503 + `Retry-After` and every response advertises
    /// `Connection: close`, but the listener keeps accepting and serving.
    /// The graceful-restart dance is `begin_drain()` → wait for the load
    /// balancer to route away → [`ServerHandle::stop`]. Idempotent.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Ask the server to stop: readiness is withdrawn, the accept loop
    /// exits, queued and in-flight requests drain under the configured
    /// deadline, and whatever is still open afterwards is force-closed.
    /// Idempotent.
    pub fn stop(&self) {
        self.begin_drain();
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; poke it awake. A wildcard
        // bind (0.0.0.0 / ::) is not connectable as-is — poke loopback on
        // the bound port instead.
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(match poke.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&poke, Duration::from_millis(500));
    }
}

impl Server {
    /// Bind `cfg.addr` and prepare a single-lake `service` for serving.
    /// The lake inside `service` is shared — wrapped in an `Arc` here,
    /// borrowed by every worker, never cloned per request. (This is
    /// [`Server::bind_router`] over [`Router::single`].)
    pub fn bind(cfg: &ServeConfig, service: LakeService) -> std::io::Result<Server> {
        Server::bind_router(cfg, Router::single(service))
    }

    /// Bind `cfg.addr` and serve a multi-lake [`Router`]: per-request lake
    /// routing, batch reclaim, and atomic snapshot hot-reload behind one
    /// address.
    pub fn bind_router(cfg: &ServeConfig, router: Router) -> std::io::Result<Server> {
        let listener = TcpListener::bind(resolve(&cfg.addr)?)?;
        let threads = if cfg.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            cfg.threads
        };
        let draining = router.draining_flag();
        Ok(Server {
            listener,
            router: Arc::new(router),
            threads: threads.max(1),
            read_timeout: cfg.read_timeout,
            queue_depth: if cfg.queue_depth == 0 { QUEUE_DEPTH } else { cfg.queue_depth },
            drain_deadline: if cfg.drain_deadline.is_zero() {
                DRAIN_DEADLINE
            } else {
                cfg.drain_deadline
            },
            shutdown: Arc::new(AtomicBool::new(false)),
            draining,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
            draining: Arc::clone(&self.draining),
        })
    }

    /// Serve until [`ServerHandle::stop`] is called. Blocks the calling
    /// thread; connections are handled on the worker pool.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            router,
            threads,
            read_timeout,
            queue_depth: bound,
            drain_deadline,
            shutdown,
            draining: _,
        } = self;
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(bound);
        let rx = Arc::new(Mutex::new(rx));
        // The queue-depth gauge brackets the channel: incremented when the
        // accept loop enqueues a connection, decremented when a worker
        // dequeues it — `/metrics` shows how far behind the pool is. The
        // peak gauge records the deepest it ever got.
        let queue_depth = Arc::clone(&router.http_metrics().queue_depth);
        let queue_peak = Arc::clone(&router.http_metrics().queue_depth_peak);
        let shed_total = Arc::clone(&router.http_metrics().shed_total);
        let worker_panics = Arc::clone(&router.http_metrics().worker_panics);
        // Sockets currently being served, by connection id. The drain
        // supervisor force-closes whatever is still here when the deadline
        // expires, so a stalled peer cannot hold shutdown hostage.
        let in_flight: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let next_id = AtomicU64::new(0);
        // Flipped when the drain deadline expires: workers stop starting
        // new work and drop still-queued connections instead.
        let aborting = Arc::new(AtomicBool::new(false));

        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                let rx = Arc::clone(&rx);
                let router = Arc::clone(&router);
                let queue_depth = Arc::clone(&queue_depth);
                let worker_panics = Arc::clone(&worker_panics);
                let in_flight = Arc::clone(&in_flight);
                let aborting = Arc::clone(&aborting);
                let next_id = &next_id;
                scope.spawn(move |_| loop {
                    // Take the receiver lock only to pull the next job, so
                    // idle workers queue on the channel, not on each other.
                    let next = rx.lock().recv();
                    match next {
                        Ok(stream) => {
                            queue_depth.dec();
                            // Past the drain deadline: the connection was
                            // queued but never started; dropping it (a
                            // reset) beats a half-served request.
                            if aborting.load(Ordering::SeqCst) {
                                drop(stream);
                                continue;
                            }
                            let id = next_id.fetch_add(1, Ordering::Relaxed);
                            if let Ok(clone) = stream.try_clone() {
                                in_flight.lock().insert(id, clone);
                            }
                            // A panicking handler must cost one connection,
                            // never a worker: catch it, count it, keep
                            // serving — the pool is effectively respawned
                            // in place instead of silently shrinking.
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                serve_connection(&router, stream, read_timeout)
                            }));
                            in_flight.lock().remove(&id);
                            if let Err(panic) = outcome {
                                worker_panics.inc();
                                let detail = panic
                                    .downcast_ref::<&str>()
                                    .map(|s| s.to_string())
                                    .or_else(|| panic.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "non-string panic payload".into());
                                gent_obs::log(
                                    gent_obs::Level::Error,
                                    "gent_serve",
                                    "worker_panic",
                                    &[("detail", detail.as_str().into())],
                                );
                            }
                        }
                        Err(_) => break, // accept loop gone: drain done
                    }
                });
            }

            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        queue_depth.inc();
                        match tx.try_send(stream) {
                            Ok(()) => queue_peak.set_max(queue_depth.get()),
                            // Queue full: shed with an explicit 429 instead
                            // of blocking the accept loop — overload answers
                            // fast, it doesn't stall the daemon.
                            Err(mpsc::TrySendError::Full(stream)) => {
                                queue_depth.dec();
                                shed_total.inc();
                                shed_connection(stream);
                            }
                            Err(mpsc::TrySendError::Disconnected(_)) => {
                                queue_depth.dec();
                                break;
                            }
                        }
                    }
                    // Transient accept errors (aborted handshakes) must not
                    // kill the daemon.
                    Err(e) if e.kind() == ErrorKind::ConnectionAborted => continue,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    // Persistent errors (e.g. EMFILE when the process is out
                    // of fds) would otherwise busy-spin this loop at 100%
                    // CPU; back off briefly so in-flight requests can finish
                    // and release descriptors.
                    Err(_) => std::thread::sleep(Duration::from_millis(50)),
                }
            }
            // Dropping the sender ends every worker's recv loop once the
            // queue is empty.
            drop(tx);

            // Drain phase: queued and in-flight requests get until the
            // deadline to finish. Past it, force-close every socket still
            // being served and tell workers to drop queued ones — shutdown
            // stays bounded even against a peer stalling mid-request.
            let deadline = Instant::now() + drain_deadline;
            loop {
                if in_flight.lock().is_empty() && queue_depth.get() == 0 {
                    break;
                }
                if Instant::now() >= deadline {
                    aborting.store(true, Ordering::SeqCst);
                    for stream in in_flight.lock().values() {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                    }
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
        .expect("serve scope");
        Ok(())
    }
}

/// Answer an over-quota connection with `429 Too Many Requests` straight
/// from the accept loop: structured `overloaded` error body, `Retry-After`
/// header, its own request ID. The response is written *before* reading
/// the request (the client may still be sending); afterwards the socket is
/// drained briefly so closing with unread bytes in the receive buffer
/// doesn't RST the answer away before the client reads it.
fn shed_connection(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    let trace_id = gent_obs::gen_trace_id();
    let body = Json::Object(vec![(
        "error".into(),
        Json::Object(vec![
            ("kind".into(), Json::str("overloaded")),
            (
                "message".into(),
                Json::str("worker queue full; retry after the Retry-After interval"),
            ),
            ("trace_id".into(), Json::str(trace_id.clone())),
        ]),
    )])
    .render();
    let response = Response { status: 429, body, headers: Vec::new() }
        .with_header("Retry-After", "1")
        .with_header("X-Request-Id", trace_id);
    if response.write_with(&mut (&stream), false).is_ok() {
        use std::io::Read;
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let mut sink = [0u8; 4096];
        let mut reader = &stream;
        for _ in 0..16 {
            match reader.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Handle one connection: read requests, answer them, close — looping only
/// for clients that asked for `Connection: keep-alive`, and never past
/// [`MAX_REQUESTS_PER_CONNECTION`].
fn serve_connection(router: &Router, stream: TcpStream, read_timeout: Duration) {
    router.http_metrics().connections.inc();
    // Failpoints at the socket boundary (no-ops unless the fault layer is
    // armed — soak runs and the fault-injection tests): a connection reset
    // before any byte is served, and a handler panic that must be contained
    // by the worker loop.
    if gent_faults::failpoint!("serve.conn.reset") {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return;
    }
    if gent_faults::failpoint!("serve.worker.panic") {
        panic!("injected worker panic (serve.worker.panic)");
    }
    let _ = stream.set_write_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    // One BufReader for the connection's whole life (read-ahead bytes may
    // belong to the next pipelined request), wrapping a resettable
    // DeadlineStream: every request gets its own full time budget, and a
    // client trickling bytes cannot reset the clock mid-request.
    let mut reader = BufReader::new(DeadlineStream::new(&stream, read_timeout));
    for served in 1..=MAX_REQUESTS_PER_CONNECTION {
        // Idle phase (reused connections only): wait for the first byte of
        // the next request under the short keep-alive deadline. A peer
        // that hangs up or stays idle past it gets a *silent* close — an
        // unsolicited error response here would sit in the socket buffer
        // and be misread as the answer to the client's next request.
        if served > 1 {
            use std::io::BufRead;
            reader.get_mut().reset(KEEP_ALIVE_IDLE_TIMEOUT.min(read_timeout));
            match reader.fill_buf() {
                Ok([]) => return, // clean EOF
                Ok(_) => {}       // next request underway
                Err(_) => return, // idle timeout / io error
            }
        }
        reader.get_mut().reset(read_timeout);
        let mut write_half = &stream;
        let request = read_request_buffered(&mut reader, &mut write_half);
        // A peer that closed instead of sending a(nother) request is normal
        // socket teardown, not an error: nothing to answer, nothing to log.
        if matches!(request, Err(HttpError::ConnectionClosed)) {
            return;
        }
        if served > 1 && request.is_ok() {
            router.http_metrics().keepalive_reuses.inc();
        }
        // Keep the socket only for well-formed requests that asked for it —
        // after a read error the stream's framing can't be trusted. A
        // draining daemon answers but always advertises `Connection:
        // close`, so pooled clients migrate instead of riding a socket
        // that is about to be force-closed.
        let keep_alive = served < MAX_REQUESTS_PER_CONNECTION
            && !router.is_draining()
            && matches!(&request, Ok(req) if req.wants_keep_alive());
        let response: Response = router.respond(request);
        // Write-side failpoints: a server-side stall (exercises client
        // read patience) and a mid-frame truncation + reset (the response
        // head goes out, the body never finishes).
        if gent_faults::failpoint!("serve.write.stall") {
            std::thread::sleep(Duration::from_millis(150));
        }
        if gent_faults::failpoint!("serve.write.truncate") {
            use std::io::Write;
            let mut frame = Vec::new();
            if response.write_with(&mut frame, keep_alive).is_ok() {
                let half = frame.len() / 2;
                let mut out = &stream;
                let _ = out.write_all(&frame[..half]).and_then(|()| out.flush());
            }
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
        // The client may already be gone; a failed write only loses its
        // answer (and ends the connection's loop).
        if response.write_with(&mut (&stream), keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Resolve `addr`, preferring IPv4 loopback results for predictability.
fn resolve(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(ErrorKind::InvalidInput, format!("`{addr}` resolves to no address"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_core::GenTConfig;
    use gent_store::{InMemory, LakeSource};
    use gent_table::{Table, Value as V};
    use std::io::{Read, Write};

    fn test_server() -> Server {
        let tables = vec![Table::build(
            "t",
            &["id", "v"],
            &[],
            vec![vec![V::Int(1), V::str("a")], vec![V::Int(2), V::str("b")]],
        )
        .unwrap()];
        let loaded = InMemory::new(tables).load_lake().unwrap();
        let service = LakeService::new(loaded, GenTConfig::default(), "unit test");
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            read_timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        };
        Server::bind(&cfg, service).unwrap()
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        let status: u16 =
            text.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status");
        let body = text.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    }

    #[test]
    fn serves_healthz_and_stops_cleanly() {
        let server = test_server();
        let addr = server.local_addr().unwrap();
        let handle = server.handle().unwrap();
        let runner = std::thread::spawn(move || server.run());

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200, "body: {body}");
        assert!(body.contains("\"ok\""));

        handle.stop();
        runner.join().unwrap().unwrap();
    }

    /// Read exactly one HTTP response from a kept-alive socket: status
    /// line, headers, then `Content-Length` bytes of body.
    fn read_one_response(reader: &mut std::io::BufReader<&TcpStream>) -> (u16, String, String) {
        use std::io::BufRead;
        let mut head = String::new();
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line.is_empty() {
                break;
            }
            head.push_str(&line);
        }
        let status: u16 =
            head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status");
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_string)
            })
            .and_then(|v| v.trim().parse().ok())
            .expect("content-length");
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, head, String::from_utf8(body).unwrap())
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_socket() {
        let server = test_server();
        let addr = server.local_addr().unwrap();
        let handle = server.handle().unwrap();
        let runner = std::thread::spawn(move || server.run());

        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = std::io::BufReader::new(&stream);
        for i in 0..3 {
            let mut w = &stream;
            write!(w, "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: keep-alive\r\n\r\n")
                .unwrap();
            let (status, head, body) = read_one_response(&mut reader);
            assert_eq!(status, 200, "request {i}: {body}");
            assert!(
                head.contains("Connection: keep-alive"),
                "request {i} must advertise reuse: {head}"
            );
            assert!(body.contains("\"ok\""));
        }
        // Dropping Connection: keep-alive closes the socket after the
        // response, exactly as advertised.
        let mut w = &stream;
        write!(w, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let (status, head, _) = read_one_response(&mut reader);
        assert_eq!(status, 200);
        assert!(head.contains("Connection: close"), "{head}");
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty(), "server must close after a non-keep-alive request");

        handle.stop();
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn idle_keep_alive_socket_is_closed_silently() {
        // After a completed keep-alive exchange, a client that goes idle
        // past the keep-alive deadline must see a plain close — no
        // unsolicited 408 that would be misread as the next response.
        let server = test_server();
        let addr = server.local_addr().unwrap();
        let handle = server.handle().unwrap();
        let runner = std::thread::spawn(move || server.run());

        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = std::io::BufReader::new(&stream);
        let mut w = &stream;
        write!(w, "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: keep-alive\r\n\r\n").unwrap();
        let (status, _, _) = read_one_response(&mut reader);
        assert_eq!(status, 200);
        // Idle past the (test-config 500 ms) keep-alive window: the server
        // must close without writing another byte.
        std::thread::sleep(Duration::from_millis(900));
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, "", "idle teardown must not write an unsolicited response");

        handle.stop();
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn concurrent_requests_all_answered() {
        let server = test_server();
        let addr = server.local_addr().unwrap();
        let handle = server.handle().unwrap();
        let runner = std::thread::spawn(move || server.run());

        let fetches: Vec<_> =
            (0..6).map(|_| std::thread::spawn(move || get(addr, "/lake/stat"))).collect();
        for f in fetches {
            let (status, body) = f.join().unwrap();
            assert_eq!(status, 200, "body: {body}");
        }

        handle.stop();
        runner.join().unwrap().unwrap();
    }
}
