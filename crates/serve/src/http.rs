//! A hand-rolled HTTP/1.1 layer over `std::net`.
//!
//! The daemon needs exactly enough HTTP to answer JSON requests from `curl`
//! and the bundled client: request-line + headers + `Content-Length` body in,
//! status + JSON body out. No chunked encoding, no TLS — and no network
//! crates, per the workspace's offline constraint.
//!
//! Connections close after one exchange by default, but a client that sends
//! `Connection: keep-alive` gets the socket back for further requests
//! (bounded per connection, each under its own read deadline — see
//! `crate::server`), so repeated reclaims stop paying per-request TCP
//! setup. Because requests on a kept-alive socket are framed by
//! `Content-Length`, the server reads through **one persistent
//! [`BufReader`]** ([`read_request_buffered`]) — bytes a read-ahead
//! buffered past the current body belong to the next request and must not
//! be dropped between requests.
//!
//! Every malformed input maps to a *structured* failure ([`HttpError`]) that
//! the server turns into a 4xx JSON response; nothing a client sends can
//! bring the daemon down.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Maximum accepted request-line + header bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum accepted body size (a reclamation source is a small table; a
/// larger body is a mistake, not a workload).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The HTTP method, as sent (e.g. `GET`, `POST`).
    pub method: String,
    /// The request path (query strings are not used by the API and are kept
    /// attached verbatim).
    pub path: String,
    /// Lower-cased header names with their values.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// Did the client ask to keep the connection open after this response?
    /// `Connection` is a comma-separated token list; only an explicit
    /// `keep-alive` token opts in — the daemon's default stays one request
    /// per connection, so clients that read responses to EOF keep working.
    pub fn wants_keep_alive(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case("keep-alive")))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection cleanly before sending any byte of a
    /// request — normal teardown for a kept-alive socket (or a bare TCP
    /// probe), not a protocol violation. The server drops the connection
    /// without answering.
    ConnectionClosed,
    /// The bytes on the wire are not an HTTP/1.1 request.
    Malformed(String),
    /// The head or body exceeds the configured limits.
    TooLarge(String),
    /// The connection ended (or timed out) before `Content-Length` bytes of
    /// body arrived.
    Truncated {
        /// Bytes promised by `Content-Length`.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// The client stalled before finishing the request line or headers
    /// (read timeout with no `Content-Length` in play yet).
    Timeout,
    /// An I/O failure on the socket.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => {
                write!(f, "connection closed before a request was sent")
            }
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
            HttpError::Truncated { expected, got } => {
                write!(f, "truncated body: Content-Length promised {expected} bytes, got {got}")
            }
            HttpError::Timeout => write!(f, "timed out waiting for the request head"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A `Read` adapter enforcing an *overall* deadline on a `TcpStream`.
///
/// A plain socket read timeout resets on every successful read, so a client
/// trickling one byte per interval can hold a worker forever (slowloris).
/// This wrapper gives the whole request a fixed time budget: each read gets
/// only the time remaining, and an exhausted budget reads as `TimedOut`.
pub struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
}

impl<'a> DeadlineStream<'a> {
    /// Wrap `stream`, allowing `budget` for everything read through this
    /// adapter.
    pub fn new(stream: &'a TcpStream, budget: Duration) -> Self {
        DeadlineStream { stream, deadline: Instant::now() + budget }
    }

    /// Restart the clock with a fresh `budget` — called by the server
    /// between requests on a kept-alive connection, so every request gets
    /// its own full deadline while the buffered reader (and any read-ahead
    /// bytes it holds) survives across them.
    pub fn reset(&mut self, budget: Duration) {
        self.deadline = Instant::now() + budget;
    }
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(ErrorKind::TimedOut, "request deadline exhausted"));
        }
        self.stream.set_read_timeout(Some(remaining))?;
        let mut inner = self.stream;
        inner.read(buf)
    }
}

/// Read one request from `stream` (any `Read`) — the **one-shot** entry
/// point, for callers that will not reuse the stream: it wraps a private
/// `BufReader` whose read-ahead is discarded on return, so on a kept-alive
/// socket it could swallow the first bytes of the next request. The daemon
/// uses [`read_request_buffered`] instead. A timeout mid-head surfaces as
/// [`HttpError::Timeout`], mid-body as [`HttpError::Truncated`].
pub fn read_request<R: Read>(stream: R) -> Result<Request, HttpError> {
    read_request_inner(&mut BufReader::new(stream), None)
}

/// Like [`read_request`], but through a caller-owned [`BufReader`] that
/// can persist across requests — required for keep-alive (read-ahead bytes
/// belonging to the next pipelined request survive in the reader) — and
/// answering `Expect: 100-continue` on `sink` before reading the body:
/// without that interim response, `curl -d` with a body over 1 KiB stalls
/// ~1 s waiting for the go-ahead.
pub fn read_request_buffered<R: Read>(
    reader: &mut BufReader<R>,
    sink: &mut dyn Write,
) -> Result<Request, HttpError> {
    read_request_inner(reader, Some(sink))
}

fn read_request_inner<R: Read>(
    reader: &mut BufReader<R>,
    continue_sink: Option<&mut dyn Write>,
) -> Result<Request, HttpError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| HttpError::Malformed(format!("bad request line `{request_line}`")))?
        .to_string();
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or_else(|| HttpError::Malformed(format!("bad request line `{request_line}`")))?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        other => {
            return Err(HttpError::Malformed(format!(
                "expected an HTTP/1.x version, got `{}`",
                other.unwrap_or("")
            )))
        }
    }

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        // EOF here is mid-request (the request line already arrived), so a
        // clean close no longer counts as "no request sent".
        let line = read_line(reader).map_err(|e| match e {
            HttpError::ConnectionClosed => {
                HttpError::Malformed("connection closed mid-headers".into())
            }
            other => other,
        })?;
        head_bytes += line.len() + 2;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!("headers exceed {MAX_HEAD_BYTES} bytes")));
        }
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("header line without `:`: `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length `{v}`")))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "Content-Length {content_length} exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }

    // `curl -d` sends `Expect: 100-continue` for bodies over 1 KiB and
    // waits up to a second for the go-ahead before transmitting the body.
    if content_length > 0 {
        let expects_continue =
            headers.iter().any(|(n, v)| n == "expect" && v.eq_ignore_ascii_case("100-continue"));
        if expects_continue {
            if let Some(sink) = continue_sink {
                let _ =
                    sink.write_all(b"HTTP/1.1 100 Continue\r\n\r\n").and_then(|()| sink.flush());
            }
        }
    }

    // Grow the buffer as bytes actually arrive — never allocate the full
    // Content-Length up front, or headers alone could pin 64 MiB per
    // stalled connection.
    let mut body = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    while body.len() < content_length {
        let want = chunk.len().min(content_length - body.len());
        match reader.read(&mut chunk[..want]) {
            Ok(0) => {
                return Err(HttpError::Truncated { expected: content_length, got: body.len() })
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(HttpError::Truncated { expected: content_length, got: body.len() })
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }

    Ok(Request { method, path, headers, body })
}

/// Read one CRLF- (or LF-) terminated line as UTF-8, without the terminator.
fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    loop {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!("header line exceeds {MAX_HEAD_BYTES} bytes")));
        }
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(HttpError::ConnectionClosed);
                }
                return Err(HttpError::Malformed("connection closed mid-line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 bytes in head".into()));
                }
                buf.push(byte[0]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(HttpError::Timeout)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// A response ready to be written; the body is JSON unless an explicit
/// `Content-Type` header says otherwise (the `/metrics` exposition).
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body text.
    pub body: String,
    /// Extra headers (name, value). A `Content-Type` entry here overrides
    /// the default `application/json`.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A 200 with the given JSON body.
    pub fn ok(body: String) -> Response {
        Response { status: 200, body, headers: Vec::new() }
    }

    /// Append a header (builder-style).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The standard reason phrase for the status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "",
        }
    }

    /// Serialize head + body to `out`, closing the connection afterwards
    /// (the non-keep-alive path; see [`Response::write_with`]).
    pub fn write(&self, out: &mut impl Write) -> std::io::Result<()> {
        self.write_with(out, false)
    }

    /// Serialize head + body to `out`, advertising whether the server will
    /// keep the connection open (`Connection: keep-alive`) or close it.
    /// The advertisement must match what the server actually does — a
    /// keep-alive client decides whether to reuse the socket from it.
    pub fn write_with(&self, out: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let has_content_type =
            self.headers.iter().any(|(n, _)| n.eq_ignore_ascii_case("content-type"));
        write!(out, "HTTP/1.1 {} {}\r\n", self.status, self.reason())?;
        if !has_content_type {
            write!(out, "Content-Type: application/json\r\n")?;
        }
        for (name, value) in &self.headers {
            write!(out, "{name}: {value}\r\n")?;
        }
        write!(
            out,
            "Content-Length: {}\r\nConnection: {}\r\n\r\n",
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        out.write_all(self.body.as_bytes())?;
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_line_strips_crlf() {
        let mut c = Cursor::new(b"GET / HTTP/1.1\r\nrest".to_vec());
        assert_eq!(read_line(&mut c).unwrap(), "GET / HTTP/1.1");
    }

    #[test]
    fn response_serializes_with_content_length() {
        let mut out = Vec::new();
        Response::ok("{\"a\":1}".into()).write(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"a\":1}"));
    }

    #[test]
    fn keep_alive_header_is_honored_token_wise() {
        let req = |conn: Option<&str>| Request {
            method: "GET".into(),
            path: "/healthz".into(),
            headers: conn.map(|v| ("connection".to_string(), v.to_string())).into_iter().collect(),
            body: vec![],
        };
        assert!(!req(None).wants_keep_alive(), "no header → one-shot default");
        assert!(req(Some("keep-alive")).wants_keep_alive());
        assert!(req(Some("Keep-Alive")).wants_keep_alive(), "case-insensitive");
        assert!(req(Some("TE, keep-alive")).wants_keep_alive(), "token list");
        assert!(!req(Some("close")).wants_keep_alive());
        assert!(!req(Some("keep-alives")).wants_keep_alive(), "whole-token match only");
    }

    #[test]
    fn write_with_advertises_the_connection_mode() {
        let mut out = Vec::new();
        Response::ok("{}".into()).write_with(&mut out, true).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("Connection: keep-alive\r\n"));
        let mut out = Vec::new();
        Response::ok("{}".into()).write_with(&mut out, false).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("Connection: close\r\n"));
    }

    #[test]
    fn eof_before_any_byte_is_connection_closed_not_malformed() {
        let mut reader = BufReader::new(Cursor::new(Vec::<u8>::new()));
        let err = read_request_buffered(&mut reader, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, HttpError::ConnectionClosed), "{err:?}");
        // …but EOF after the request line is still a malformed request.
        let mut reader = BufReader::new(Cursor::new(b"GET / HTTP/1.1\r\n".to_vec()));
        let err = read_request_buffered(&mut reader, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn persistent_bufreader_preserves_pipelined_bytes() {
        // Two back-to-back requests in one stream: the shared BufReader
        // must hand the second one over intact after the first is read.
        let wire = b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n\
                     POST /reclaim HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}"
            .to_vec();
        let mut reader = BufReader::new(Cursor::new(wire));
        let first = read_request_buffered(&mut reader, &mut Vec::new()).unwrap();
        assert_eq!((first.method.as_str(), first.path.as_str()), ("GET", "/healthz"));
        assert!(first.wants_keep_alive());
        let second = read_request_buffered(&mut reader, &mut Vec::new()).unwrap();
        assert_eq!((second.method.as_str(), second.path.as_str()), ("POST", "/reclaim"));
        assert_eq!(second.body, b"{}");
        let done = read_request_buffered(&mut reader, &mut Vec::new()).unwrap_err();
        assert!(matches!(done, HttpError::ConnectionClosed));
    }

    #[test]
    fn reason_phrases_cover_api_statuses() {
        for (status, phrase) in [
            (200, "OK"),
            (400, "Bad Request"),
            (404, "Not Found"),
            (405, "Method Not Allowed"),
            (429, "Too Many Requests"),
        ] {
            assert_eq!(Response { status, body: String::new(), headers: vec![] }.reason(), phrase);
        }
    }
}
