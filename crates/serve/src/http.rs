//! A hand-rolled HTTP/1.1 layer over `std::net`.
//!
//! The daemon needs exactly enough HTTP to answer JSON requests from `curl`
//! and the bundled client: request-line + headers + `Content-Length` body in,
//! status + JSON body out, one request per connection (`Connection: close`).
//! No chunked encoding, no keep-alive, no TLS — and no network crates, per
//! the workspace's offline constraint.
//!
//! Every malformed input maps to a *structured* failure ([`HttpError`]) that
//! the server turns into a 4xx JSON response; nothing a client sends can
//! bring the daemon down.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Maximum accepted request-line + header bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum accepted body size (a reclamation source is a small table; a
/// larger body is a mistake, not a workload).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The HTTP method, as sent (e.g. `GET`, `POST`).
    pub method: String,
    /// The request path (query strings are not used by the API and are kept
    /// attached verbatim).
    pub path: String,
    /// Lower-cased header names with their values.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire are not an HTTP/1.1 request.
    Malformed(String),
    /// The head or body exceeds the configured limits.
    TooLarge(String),
    /// The connection ended (or timed out) before `Content-Length` bytes of
    /// body arrived.
    Truncated {
        /// Bytes promised by `Content-Length`.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// The client stalled before finishing the request line or headers
    /// (read timeout with no `Content-Length` in play yet).
    Timeout,
    /// An I/O failure on the socket.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
            HttpError::Truncated { expected, got } => {
                write!(f, "truncated body: Content-Length promised {expected} bytes, got {got}")
            }
            HttpError::Timeout => write!(f, "timed out waiting for the request head"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A `Read` adapter enforcing an *overall* deadline on a `TcpStream`.
///
/// A plain socket read timeout resets on every successful read, so a client
/// trickling one byte per interval can hold a worker forever (slowloris).
/// This wrapper gives the whole request a fixed time budget: each read gets
/// only the time remaining, and an exhausted budget reads as `TimedOut`.
pub struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
}

impl<'a> DeadlineStream<'a> {
    /// Wrap `stream`, allowing `budget` for everything read through this
    /// adapter.
    pub fn new(stream: &'a TcpStream, budget: Duration) -> Self {
        DeadlineStream { stream, deadline: Instant::now() + budget }
    }
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(ErrorKind::TimedOut, "request deadline exhausted"));
        }
        self.stream.set_read_timeout(Some(remaining))?;
        let mut inner = self.stream;
        inner.read(buf)
    }
}

/// Read one request from `stream` (any `Read`; in the daemon, a
/// [`DeadlineStream`] over the `TcpStream`). A timeout mid-head surfaces as
/// [`HttpError::Timeout`], mid-body as [`HttpError::Truncated`].
pub fn read_request<R: Read>(stream: R) -> Result<Request, HttpError> {
    read_request_inner(stream, None)
}

/// Like [`read_request`], but answers `Expect: 100-continue` on `sink`
/// before reading the body — without this, `curl -d` with a body over 1 KiB
/// stalls ~1 s waiting for the interim response.
pub fn read_request_answering_expect<R: Read>(
    stream: R,
    sink: &mut dyn Write,
) -> Result<Request, HttpError> {
    read_request_inner(stream, Some(sink))
}

fn read_request_inner<R: Read>(
    stream: R,
    continue_sink: Option<&mut dyn Write>,
) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);

    let request_line = read_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| HttpError::Malformed(format!("bad request line `{request_line}`")))?
        .to_string();
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or_else(|| HttpError::Malformed(format!("bad request line `{request_line}`")))?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        other => {
            return Err(HttpError::Malformed(format!(
                "expected an HTTP/1.x version, got `{}`",
                other.unwrap_or("")
            )))
        }
    }

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        let line = read_line(&mut reader)?;
        head_bytes += line.len() + 2;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!("headers exceed {MAX_HEAD_BYTES} bytes")));
        }
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("header line without `:`: `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length `{v}`")))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "Content-Length {content_length} exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }

    // `curl -d` sends `Expect: 100-continue` for bodies over 1 KiB and
    // waits up to a second for the go-ahead before transmitting the body.
    if content_length > 0 {
        let expects_continue =
            headers.iter().any(|(n, v)| n == "expect" && v.eq_ignore_ascii_case("100-continue"));
        if expects_continue {
            if let Some(sink) = continue_sink {
                let _ =
                    sink.write_all(b"HTTP/1.1 100 Continue\r\n\r\n").and_then(|()| sink.flush());
            }
        }
    }

    // Grow the buffer as bytes actually arrive — never allocate the full
    // Content-Length up front, or headers alone could pin 64 MiB per
    // stalled connection.
    let mut body = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    while body.len() < content_length {
        let want = chunk.len().min(content_length - body.len());
        match reader.read(&mut chunk[..want]) {
            Ok(0) => {
                return Err(HttpError::Truncated { expected: content_length, got: body.len() })
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(HttpError::Truncated { expected: content_length, got: body.len() })
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }

    Ok(Request { method, path, headers, body })
}

/// Read one CRLF- (or LF-) terminated line as UTF-8, without the terminator.
fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    loop {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!("header line exceeds {MAX_HEAD_BYTES} bytes")));
        }
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(HttpError::Malformed("connection closed before request".into()));
                }
                return Err(HttpError::Malformed("connection closed mid-line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 bytes in head".into()));
                }
                buf.push(byte[0]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(HttpError::Timeout)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// A response ready to be written; the body is always JSON.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body text.
    pub body: String,
}

impl Response {
    /// A 200 with the given JSON body.
    pub fn ok(body: String) -> Response {
        Response { status: 200, body }
    }

    /// The standard reason phrase for the status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            _ => "",
        }
    }

    /// Serialize head + body to `out` (one request per connection, so the
    /// response always closes).
    pub fn write(&self, out: &mut impl Write) -> std::io::Result<()> {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.body.len()
        )?;
        out.write_all(self.body.as_bytes())?;
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_line_strips_crlf() {
        let mut c = Cursor::new(b"GET / HTTP/1.1\r\nrest".to_vec());
        assert_eq!(read_line(&mut c).unwrap(), "GET / HTTP/1.1");
    }

    #[test]
    fn response_serializes_with_content_length() {
        let mut out = Vec::new();
        Response::ok("{\"a\":1}".into()).write(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"a\":1}"));
    }

    #[test]
    fn reason_phrases_cover_api_statuses() {
        for (status, phrase) in
            [(200, "OK"), (400, "Bad Request"), (404, "Not Found"), (405, "Method Not Allowed")]
        {
            assert_eq!(Response { status, body: String::new() }.reason(), phrase);
        }
    }
}
