//! A retrying HTTP client for the daemon's API.
//!
//! The serve tier answers overload and drain with *structured backpressure*
//! (`429` / `503` + `Retry-After`), and `/admin/reload` can swap a lake's
//! snapshot between two attempts of the same logical request. This module
//! is the client-side half of that contract, shared by `gent admin`, the
//! bundled example client, and the soak harness:
//!
//! * **jittered exponential backoff** — seeded, so a failing run replays
//!   its exact retry schedule; the jitter keeps a fleet of clients from
//!   retrying in lockstep;
//! * **`Retry-After` honored** — when the daemon says how long to wait
//!   (shed, drain), that wins over the computed backoff;
//! * **generation awareness** — slot-routed responses carry an
//!   `X-Gent-Generation` header; the client records it and flags a
//!   response whose generation differs from the last one it observed, so
//!   callers know a retried request may have been answered by a *different
//!   snapshot* than its first attempt.
//!
//! Retries re-send the whole request, so callers should only route
//! idempotent traffic through [`RetryClient`] — every endpoint the daemon
//! exposes qualifies (`/reclaim` is read-only; re-`/admin/reload`ing the
//! same path converges to the same snapshot, one generation later).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Retry/backoff knobs for a [`RetryClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep (also caps `Retry-After`).
    pub max_backoff: Duration,
    /// Per-attempt socket budget (connect, read, write).
    pub request_timeout: Duration,
    /// Seed for the jitter stream — same seed, same retry schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            request_timeout: Duration::from_secs(60),
            seed: 0x9157_2e6a_01c4_88d7,
        }
    }
}

/// One fully-read HTTP response, plus what the retry loop learned along
/// the way.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Lower-cased header names with their values.
    pub headers: Vec<(String, String)>,
    /// The body, decoded as UTF-8.
    pub body: String,
    /// Attempts spent (1 = first try succeeded).
    pub attempts: u32,
    /// The snapshot generation that answered (`X-Gent-Generation`), when
    /// the endpoint is slot-routed.
    pub generation: Option<u64>,
    /// True when `generation` differs from the last generation this client
    /// observed — a `/admin/reload` swap happened since, so a retried
    /// request may have been answered by a different snapshot than its
    /// first attempt would have been.
    pub generation_changed: bool,
}

impl ClientResponse {
    /// Header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// A connection-per-request client with seeded, jittered retries — see the
/// module docs for the contract.
#[derive(Debug)]
pub struct RetryClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    rng: u64,
    last_generation: Option<u64>,
}

impl RetryClient {
    /// A client for the daemon at `addr` with the default policy.
    pub fn new(addr: SocketAddr) -> RetryClient {
        RetryClient::with_policy(addr, RetryPolicy::default())
    }

    /// A client with an explicit [`RetryPolicy`].
    pub fn with_policy(addr: SocketAddr, policy: RetryPolicy) -> RetryClient {
        let rng = splitmix64(policy.seed ^ 0x5bd1_e995);
        RetryClient { addr, policy, rng, last_generation: None }
    }

    /// The last snapshot generation this client observed, if any.
    pub fn last_generation(&self) -> Option<u64> {
        self.last_generation
    }

    /// `GET path`, with retries.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, "")
    }

    /// `POST path` with a JSON body, with retries.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, body)
    }

    /// Issue `method path` until it yields a non-retryable answer or the
    /// attempt budget runs out. Connection failures, socket errors,
    /// unparseable/truncated responses, and `408`/`429`/`503` statuses are
    /// retried (honoring `Retry-After` on the statuses); every other
    /// status — success or structured client error — is returned as-is.
    /// When the budget ends on a retryable *status* the response is
    /// returned (it carries the daemon's structured error body); when it
    /// ends on an IO failure the last error is returned.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<ClientResponse> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last_err: Option<std::io::Error> = None;
        let mut sleep_override: Option<Duration> = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                let wait = sleep_override.take().unwrap_or_else(|| self.backoff_delay(attempt - 1));
                std::thread::sleep(wait);
            }
            match self.try_once(method, path, body, attempt) {
                Ok(mut response) => {
                    self.note_generation(&mut response);
                    if !matches!(response.status, 408 | 429 | 503) || attempt == attempts {
                        return Ok(response);
                    }
                    // Structured backpressure: the daemon's Retry-After
                    // (capped) overrides the computed backoff before the
                    // next attempt.
                    sleep_override = response
                        .header("retry-after")
                        .and_then(|v| v.trim().parse::<u64>().ok())
                        .map(|s| Duration::from_secs(s).min(self.policy.max_backoff));
                    last_err = None;
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::other(format!(
                "{method} {path}: retry budget ({attempts} attempts) exhausted on backpressure"
            ))
        }))
    }

    fn note_generation(&mut self, response: &mut ClientResponse) {
        response.generation =
            response.header("x-gent-generation").and_then(|v| v.trim().parse::<u64>().ok());
        if let Some(generation) = response.generation {
            response.generation_changed =
                self.last_generation.is_some_and(|last| last != generation);
            self.last_generation = Some(generation);
        }
    }

    /// One attempt: fresh connection, full request, full response.
    fn try_once(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        attempt: u32,
    ) -> std::io::Result<ClientResponse> {
        let timeout = self.policy.request_timeout;
        let stream = TcpStream::connect_timeout(&self.addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let mut out = &stream;
        write!(
            out,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            self.addr,
            body.len()
        )?;
        out.write_all(body.as_bytes())?;
        out.flush()?;

        let mut reader = BufReader::new(&stream);
        let status_line = read_line(&mut reader)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad_wire(format!("bad status line `{status_line}`")))?;
        let mut headers = Vec::new();
        loop {
            let line = read_line(&mut reader)?;
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad_wire(format!("header line without `:`: `{line}`")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let content_length = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .map(|(_, v)| {
                v.parse::<usize>().map_err(|_| bad_wire(format!("bad Content-Length `{v}`")))
            })
            .transpose()?;
        let mut raw = Vec::new();
        match content_length {
            Some(n) => {
                raw.resize(n, 0);
                reader.read_exact(&mut raw)?;
            }
            None => {
                reader.read_to_end(&mut raw)?;
            }
        }
        let body = String::from_utf8(raw).map_err(|_| bad_wire("non-UTF-8 response body"))?;
        Ok(ClientResponse {
            status,
            headers,
            body,
            attempts: attempt,
            generation: None,
            generation_changed: false,
        })
    }

    /// The sleep before retry number `retry` (1-based): exponential from
    /// the base, multiplied by a seeded jitter in `[0.5, 1.5)`, capped.
    fn backoff_delay(&mut self, retry: u32) -> Duration {
        let exp = self
            .policy
            .base_backoff
            .saturating_mul(1u32.checked_shl(retry.saturating_sub(1)).unwrap_or(u32::MAX));
        self.rng = splitmix64(self.rng);
        let unit = ((self.rng >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        let jittered = exp.mul_f64(0.5 + unit);
        jittered.min(self.policy.max_backoff)
    }
}

fn bad_wire(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

/// Read one CRLF-terminated line (terminator stripped).
fn read_line(reader: &mut impl BufRead) -> std::io::Result<String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(seed: u64) -> RetryClient {
        RetryClient::with_policy(
            "127.0.0.1:1".parse().unwrap(),
            RetryPolicy { seed, ..RetryPolicy::default() },
        )
    }

    #[test]
    fn backoff_is_exponential_jittered_and_capped() {
        let mut c = client(7);
        let d1 = c.backoff_delay(1);
        let d2 = c.backoff_delay(2);
        let base = c.policy.base_backoff;
        assert!(d1 >= base / 2 && d1 < base * 3 / 2, "retry 1 jitters around base: {d1:?}");
        assert!(d2 >= base && d2 < base * 3, "retry 2 jitters around 2x base: {d2:?}");
        for retry in 1..32 {
            assert!(c.backoff_delay(retry) <= c.policy.max_backoff);
        }
    }

    #[test]
    fn backoff_schedule_is_seed_deterministic() {
        let schedule = |seed| {
            let mut c = client(seed);
            (1..6).map(|r| c.backoff_delay(r)).collect::<Vec<_>>()
        };
        assert_eq!(schedule(8), schedule(8));
        assert_ne!(schedule(8), schedule(9), "different seeds should jitter differently");
    }

    #[test]
    fn generation_tracking_flags_swaps() {
        let mut c = client(1);
        let resp = |generation: Option<u64>| ClientResponse {
            status: 200,
            headers: generation
                .map(|g| ("x-gent-generation".to_string(), g.to_string()))
                .into_iter()
                .collect(),
            body: String::new(),
            attempts: 1,
            generation: None,
            generation_changed: false,
        };
        let mut first = resp(Some(3));
        c.note_generation(&mut first);
        assert_eq!(first.generation, Some(3));
        assert!(!first.generation_changed, "nothing observed before the first response");
        let mut same = resp(Some(3));
        c.note_generation(&mut same);
        assert!(!same.generation_changed);
        let mut swapped = resp(Some(4));
        c.note_generation(&mut swapped);
        assert!(swapped.generation_changed, "generation 3 → 4 is a reload swap");
        let mut unrouted = resp(None);
        c.note_generation(&mut unrouted);
        assert!(!unrouted.generation_changed);
        assert_eq!(c.last_generation(), Some(4), "non-slot responses don't clear the memory");
    }

    #[test]
    fn connect_failure_surfaces_after_retries() {
        // Port 1 on loopback refuses: every attempt fails fast, and the
        // final error is the IO failure, not a panic or a hang.
        let mut c = RetryClient::with_policy(
            "127.0.0.1:1".parse().unwrap(),
            RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                request_timeout: Duration::from_millis(200),
                seed: 8,
            },
        );
        assert!(c.get("/healthz").is_err());
    }
}
