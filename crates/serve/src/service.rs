//! Request routing and the reclamation service over one warm lake.
//!
//! A [`LakeService`] owns the lake exactly once — tables, inverted index
//! (usually a `FrozenIndex` straight from a snapshot) and any LSH bands —
//! and every request borrows it. Nothing is re-derived or cloned per
//! request: the server wraps the service in an `Arc` and all worker threads
//! reclaim against the same handle, which is what makes warm serving cheap
//! (see `crates/bench/benches/serve_smoke.rs`).

use std::borrow::Cow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gent_core::{GenT, GenTConfig, GentError, ReclamationResult};
use gent_discovery::{DataLake, DiscoveryCache, LshEnsembleIndex};
use gent_obs::{Counter, Gauge, Histogram, Registry, LATENCY_BOUNDS_US};
use gent_store::{LoadedLake, LshSlot, StoreError};
use gent_table::key::ensure_key;
use gent_table::Table;

use crate::http::{HttpError, Request, Response};
use crate::json::Json;

/// Server-side ceiling for the `max_candidates` per-request override —
/// requests asking for more are clamped, not rejected (the knob tunes
/// quality/latency, it must not become a memory amplifier).
pub const MAX_CANDIDATES_CAP: usize = 200;

/// Per-endpoint instruments: request/error counters, an in-flight gauge,
/// and the latency histogram that backs **both** views — the `/lake/stat`
/// JSON rendering ([`latency_json`]) and the Prometheus exposition behind
/// `GET /metrics`. One `gent_obs::Histogram` per endpoint is the single
/// source of truth, so the two views cannot drift (pinned by the
/// `stat_and_metrics_views_agree` regression test).
#[derive(Debug)]
struct EndpointMetrics {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    in_flight: Arc<Gauge>,
    latency: Arc<Histogram>,
}

impl EndpointMetrics {
    fn new(reg: &Registry, endpoint: &'static str) -> EndpointMetrics {
        let labels: &[(&'static str, &str)] = &[("endpoint", endpoint)];
        EndpointMetrics {
            requests: reg.counter(
                "gent_http_requests_total",
                "Requests answered, by endpoint",
                labels,
            ),
            errors: reg.counter(
                "gent_http_errors_total",
                "Requests answered with a 4xx/5xx status, by endpoint",
                labels,
            ),
            in_flight: reg.gauge(
                "gent_http_in_flight",
                "Requests currently being handled, by endpoint",
                labels,
            ),
            latency: reg.histogram(
                "gent_http_request_duration_us",
                "Wall-clock time answering requests (microseconds), by endpoint",
                labels,
                LATENCY_BOUNDS_US,
            ),
        }
    }
}

/// The daemon's HTTP metrics, registered in a **service-owned**
/// [`Registry`]: every [`LakeService`] gets its own, so concurrent daemons
/// in one process (the test suite boots several) never pool counts.
/// `GET /metrics` renders this registry after the process-global one
/// (pipeline stages, store opens), giving one exposition for the whole
/// daemon.
#[derive(Debug)]
pub(crate) struct HttpMetrics {
    registry: Registry,
    healthz: EndpointMetrics,
    lake_stat: EndpointMetrics,
    reclaim: EndpointMetrics,
    metrics: EndpointMetrics,
    lakes: EndpointMetrics,
    reclaim_batch: EndpointMetrics,
    admin_reload: EndpointMetrics,
    admin_ingest: EndpointMetrics,
    admin_compact: EndpointMetrics,
    other: EndpointMetrics,
    /// `gent_http_connections_total` — TCP connections served.
    pub(crate) connections: Arc<Counter>,
    /// `gent_http_keepalive_reuses_total` — requests after the first on a
    /// kept-alive connection.
    pub(crate) keepalive_reuses: Arc<Counter>,
    /// `gent_http_queue_depth` — accepted connections waiting for a worker.
    pub(crate) queue_depth: Arc<Gauge>,
    /// `gent_http_queue_depth_peak` — high-water mark of the bounded queue,
    /// raised with [`Gauge::set_max`] at every successful enqueue. Under the
    /// backpressure test this pins the bound itself.
    pub(crate) queue_depth_peak: Arc<Gauge>,
    /// `gent_http_shed_total` — connections answered `429 Too Many
    /// Requests` from the accept loop because the queue was full.
    pub(crate) shed_total: Arc<Counter>,
    /// `gent_worker_panics_total` — connections whose handler panicked.
    /// The worker catches the panic, drops the socket, and keeps serving
    /// (the pool never shrinks); this counter is the only visible scar.
    pub(crate) worker_panics: Arc<Counter>,
    /// `gent_uptime_seconds` — set at scrape time by whoever renders.
    pub(crate) uptime_seconds: Arc<Gauge>,
}

impl HttpMetrics {
    fn new() -> HttpMetrics {
        let reg = Registry::new();
        HttpMetrics {
            healthz: EndpointMetrics::new(&reg, "healthz"),
            lake_stat: EndpointMetrics::new(&reg, "lake_stat"),
            reclaim: EndpointMetrics::new(&reg, "reclaim"),
            metrics: EndpointMetrics::new(&reg, "metrics"),
            lakes: EndpointMetrics::new(&reg, "lakes"),
            reclaim_batch: EndpointMetrics::new(&reg, "reclaim_batch"),
            admin_reload: EndpointMetrics::new(&reg, "admin_reload"),
            admin_ingest: EndpointMetrics::new(&reg, "admin_ingest"),
            admin_compact: EndpointMetrics::new(&reg, "admin_compact"),
            other: EndpointMetrics::new(&reg, "other"),
            connections: reg.counter(
                "gent_http_connections_total",
                "TCP connections served by the daemon",
                &[],
            ),
            keepalive_reuses: reg.counter(
                "gent_http_keepalive_reuses_total",
                "Requests served after the first on a kept-alive connection",
                &[],
            ),
            queue_depth: reg.gauge(
                "gent_http_queue_depth",
                "Accepted connections waiting for a worker thread",
                &[],
            ),
            queue_depth_peak: reg.gauge(
                "gent_http_queue_depth_peak",
                "Highest queue depth reached since the daemon started",
                &[],
            ),
            shed_total: reg.counter(
                "gent_http_shed_total",
                "Connections answered 429 because the worker queue was full",
                &[],
            ),
            worker_panics: reg.counter(
                "gent_worker_panics_total",
                "Connections whose handler panicked; the worker was respawned in place",
                &[],
            ),
            uptime_seconds: reg.gauge(
                "gent_uptime_seconds",
                "Seconds since the service was constructed",
                &[],
            ),
            registry: reg,
        }
    }

    fn for_path(&self, path: Option<&str>) -> &EndpointMetrics {
        match path {
            // The liveness/readiness splits share /healthz's instruments:
            // same probe traffic, no extra families to scrape.
            Some("/healthz" | "/healthz/live" | "/healthz/ready") => &self.healthz,
            Some("/lake/stat") => &self.lake_stat,
            Some("/reclaim") => &self.reclaim,
            Some("/metrics") => &self.metrics,
            Some("/lakes") => &self.lakes,
            Some("/reclaim/batch") => &self.reclaim_batch,
            Some("/admin/reload") => &self.admin_reload,
            Some("/admin/ingest") => &self.admin_ingest,
            Some("/admin/compact") => &self.admin_compact,
            _ => &self.other,
        }
    }

    /// The lazy-decode gauges for one named lake, labelled `{lake="…"}` —
    /// registered on first use, shared on every later lookup, so hosting N
    /// lakes behind one address yields one family with N labelled series
    /// instead of N colliding unlabelled ones.
    pub(crate) fn lake_gauges(&self, lake: &str) -> LakeGauges {
        let labels: &[(&'static str, &str)] = &[("lake", lake)];
        LakeGauges {
            tables_decoded: self.registry.gauge(
                "gent_lake_tables_decoded",
                "Lake tables whose cells have been materialized, by lake",
                labels,
            ),
            tables_total: self.registry.gauge(
                "gent_lake_tables_total",
                "Tables in the warm lake, by lake",
                labels,
            ),
            lsh_decoded: self.registry.gauge(
                "gent_lake_lsh_decoded",
                "1 once the snapshot's LSH bands have been decoded, by lake",
                labels,
            ),
            quarantined_tables: self.registry.gauge(
                "gent_lake_quarantined_tables",
                "Tables quarantined by a degraded open (checksum failures), by lake",
                labels,
            ),
        }
    }

    /// `gent_lake_reloads_total{lake=…}` — successful atomic snapshot swaps.
    pub(crate) fn reloads(&self, lake: &str) -> Arc<Counter> {
        self.registry.counter(
            "gent_lake_reloads_total",
            "Successful atomic snapshot hot-reloads, by lake",
            &[("lake", lake)],
        )
    }

    /// `gent_lake_ingests_total{lake=…}` — delta frames accepted through
    /// `POST /admin/ingest`.
    pub(crate) fn ingests(&self, lake: &str) -> Arc<Counter> {
        self.registry.counter(
            "gent_lake_ingests_total",
            "Delta-frame ingests accepted and made live, by lake",
            &[("lake", lake)],
        )
    }

    /// `gent_lake_compactions_total{lake=…}` — frame logs folded into a
    /// clean base (explicit `POST /admin/compact` or the ingest threshold).
    pub(crate) fn lake_compactions(&self, lake: &str) -> Arc<Counter> {
        self.registry.counter(
            "gent_lake_compactions_total",
            "Delta-frame logs folded into a clean base snapshot, by lake",
            &[("lake", lake)],
        )
    }

    /// The batch-reclaim instruments for one lake: request/source counters,
    /// the discovery-memo hit/miss counters that make the amortisation
    /// observable, and the per-batch discovery-stage histogram.
    pub(crate) fn batch(&self, lake: &str) -> BatchInstruments {
        let labels: &[(&'static str, &str)] = &[("lake", lake)];
        BatchInstruments {
            requests: self.registry.counter(
                "gent_batch_requests_total",
                "Batch reclaim requests answered, by lake",
                labels,
            ),
            sources: self.registry.counter(
                "gent_batch_sources_total",
                "Source tables processed inside batch reclaims, by lake",
                labels,
            ),
            memo_hits: self.registry.counter(
                "gent_batch_discovery_memo_hits_total",
                "Discovery-stage probes answered from the shared batch memo, by lake",
                labels,
            ),
            memo_misses: self.registry.counter(
                "gent_batch_discovery_memo_misses_total",
                "Discovery-stage probes computed fresh inside batches, by lake",
                labels,
            ),
            discovery_us: self.registry.histogram(
                "gent_batch_discovery_duration_us",
                "Total discovery-stage wall-clock per batch (microseconds), by lake",
                labels,
                LATENCY_BOUNDS_US,
            ),
        }
    }

    /// The `/lake/stat` latency block: the original four endpoints, in the
    /// original JSON shape (clients predate `/metrics` and parse this).
    fn latency_json(&self) -> Json {
        Json::Object(vec![
            ("healthz".into(), latency_json(&self.healthz.latency)),
            ("lake_stat".into(), latency_json(&self.lake_stat.latency)),
            ("reclaim".into(), latency_json(&self.reclaim.latency)),
            ("other".into(), latency_json(&self.other.latency)),
        ])
    }
}

/// The three per-lake lazy-decode gauges (see [`HttpMetrics::lake_gauges`]).
#[derive(Debug)]
pub(crate) struct LakeGauges {
    pub(crate) tables_decoded: Arc<Gauge>,
    pub(crate) tables_total: Arc<Gauge>,
    pub(crate) lsh_decoded: Arc<Gauge>,
    pub(crate) quarantined_tables: Arc<Gauge>,
}

/// Per-lake batch-reclaim instruments (see [`HttpMetrics::batch`]).
#[derive(Debug)]
pub(crate) struct BatchInstruments {
    pub(crate) requests: Arc<Counter>,
    pub(crate) sources: Arc<Counter>,
    pub(crate) memo_hits: Arc<Counter>,
    pub(crate) memo_misses: Arc<Counter>,
    pub(crate) discovery_us: Arc<Histogram>,
}

/// Render one latency histogram in the `/lake/stat` wire shape: count,
/// mean/max in milliseconds, and per-bucket counts with `le_ms` upper
/// bounds (`"+inf"` for the overflow bucket) — byte-identical to the
/// pre-`gent-obs` `LatencyHistogram::to_json`.
fn latency_json(h: &Histogram) -> Json {
    let count = h.count();
    let mean_ms = if count == 0 { 0.0 } else { h.sum() as f64 / count as f64 / 1e3 };
    let buckets: Vec<Json> = h
        .bucket_counts()
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let le = match h.bounds().get(i) {
                Some(&us) => Json::Float(us as f64 / 1e3),
                None => Json::str("+inf"),
            };
            Json::Object(vec![("le_ms".into(), le), ("count".into(), Json::Int(c as i64))])
        })
        .collect();
    Json::Object(vec![
        ("count".into(), Json::Int(count as i64)),
        ("mean_ms".into(), Json::Float(mean_ms)),
        ("max_ms".into(), Json::Float(h.max() as f64 / 1e3)),
        ("buckets".into(), Json::Array(buckets)),
    ])
}

/// Is `id` acceptable as a client-supplied `X-Request-Id`? Bounded and
/// shell/log-safe: 1–64 ASCII alphanumerics, `-` or `_`. Anything else is
/// replaced by a generated ID rather than echoed back verbatim.
fn valid_trace_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// An API failure: an HTTP status plus a machine-readable error kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status to answer with (always 4xx/5xx).
    pub status: u16,
    /// Stable, machine-readable kind (e.g. `unknown_table`).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// Build an error with an HTTP status, stable kind, and free-form detail.
    pub fn new(status: u16, kind: &'static str, message: impl Into<String>) -> ApiError {
        ApiError { status, kind, message: message.into() }
    }

    /// Render as the wire-format error response. When a trace ID is
    /// installed (every request handled through [`LakeService::respond`]
    /// installs one), the error body carries it too, so a client that
    /// discarded the `X-Request-Id` header can still correlate the failure
    /// with the daemon's logs.
    pub fn to_response(&self) -> Response {
        let mut error = vec![
            ("kind".into(), Json::str(self.kind)),
            ("message".into(), Json::str(self.message.clone())),
        ];
        if let Some(id) = gent_obs::current_trace_id() {
            error.push(("trace_id".into(), Json::str(id)));
        }
        let body = Json::Object(vec![("error".into(), Json::Object(error))]);
        Response { status: self.status, body: body.render(), headers: Vec::new() }
    }
}

/// The reclamation service: one warm lake, shared by every request.
pub struct LakeService {
    lake: DataLake,
    /// Kept alive so the (possibly still undecoded) bands survive for the
    /// daemon's whole life; retrieval warm starts decode-once and reuse
    /// them instead of rehashing.
    lsh: LshSlot,
    gen_t: GenT,
    origin: String,
    lake_label: String,
    total_rows: u64,
    total_cols: u64,
    /// Names of tables a degraded open quarantined (empty placeholders in
    /// the lake). Requests naming one answer a structured `410
    /// quarantined` instead of reclaiming against an empty stand-in.
    quarantined: std::collections::HashSet<String>,
    /// Delta frames the snapshot carried when this service was built.
    n_frames: usize,
    started: Instant,
    served: AtomicU64,
    metrics: Arc<HttpMetrics>,
}

impl LakeService {
    /// Build the service around an already-loaded lake (typically from
    /// [`gent_store::SnapshotFile`]); `origin` describes where it came from
    /// for `/lake/stat`. Construction touches only slot metadata — a
    /// lazily-opened snapshot stays fully undecoded until the first
    /// reclaim needs a table. The lake registers under the routing label
    /// `default`; multi-lake daemons share one registry via `with_shared`.
    pub fn new(loaded: LoadedLake, config: GenTConfig, origin: impl Into<String>) -> LakeService {
        LakeService::with_shared(loaded, config, origin, "default", Arc::new(HttpMetrics::new()))
    }

    /// Build a service that shares the daemon-wide [`HttpMetrics`] with its
    /// sibling lakes and registers its decode gauges under
    /// `{lake="<label>"}`. This is what the multi-lake router constructs —
    /// one shared registry means one Prometheus family per metric no matter
    /// how many lakes (or reload generations) the daemon has seen.
    pub(crate) fn with_shared(
        loaded: LoadedLake,
        config: GenTConfig,
        origin: impl Into<String>,
        lake_label: impl Into<String>,
        metrics: Arc<HttpMetrics>,
    ) -> LakeService {
        let total_rows = loaded.lake.slots().iter().map(|s| s.n_rows() as u64).sum();
        let total_cols = loaded.lake.slots().iter().map(|s| s.n_cols() as u64).sum();
        LakeService {
            lake: loaded.lake,
            lsh: loaded.lsh,
            gen_t: GenT::new(config),
            origin: origin.into(),
            lake_label: lake_label.into(),
            total_rows,
            total_cols,
            quarantined: loaded.quarantined.iter().map(|q| q.name.clone()).collect(),
            n_frames: loaded.n_frames,
            started: Instant::now(),
            served: AtomicU64::new(0),
            metrics,
        }
    }

    /// Names of the tables quarantined by a degraded open, sorted.
    pub fn quarantined_tables(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.quarantined.iter().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Delta frames the snapshot carried when this service went live.
    pub fn n_frames(&self) -> usize {
        self.n_frames
    }

    /// A shareable handle to the same instruments, for the router.
    pub(crate) fn metrics_arc(&self) -> Arc<HttpMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A fresh daemon-wide instrument set, for routers built from scratch.
    pub(crate) fn fresh_metrics() -> Arc<HttpMetrics> {
        Arc::new(HttpMetrics::new())
    }

    /// The routing label this lake's per-lake metrics register under.
    pub(crate) fn lake_label(&self) -> &str {
        &self.lake_label
    }

    /// Where the lake came from, as reported by `/lake/stat`.
    pub(crate) fn origin(&self) -> &str {
        &self.origin
    }

    /// The pipeline configuration this service was built with — the base
    /// that per-request overrides are applied on top of.
    pub(crate) fn base_config(&self) -> &GenTConfig {
        self.gen_t.config()
    }

    /// The warm-started LSH index carried by the snapshot, if any —
    /// decoding it on first call (the daemon's stat endpoints report its
    /// presence without paying for this).
    pub fn lsh(&self) -> Result<Option<&LshEnsembleIndex>, StoreError> {
        self.lsh.force()
    }

    /// The shared lake (borrowed — the service owns the only copy).
    pub fn lake(&self) -> &DataLake {
        &self.lake
    }

    /// Requests answered so far.
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Answer one connection's worth of input: either a parsed request or
    /// the read error it failed with. Never panics outward — a panicking
    /// handler answers 500 and the daemon lives on. Every answer lands in
    /// the per-endpoint instruments (latency histogram, request/error
    /// counters, in-flight gauge), carries the request's trace ID back in
    /// an `X-Request-Id` header — propagated from the client's header when
    /// it sent a well-formed one, generated otherwise — and is logged as
    /// one structured line with that same ID.
    pub fn respond(&self, input: Result<Request, HttpError>) -> Response {
        self.served.fetch_add(1, Ordering::Relaxed);
        respond_enveloped(&self.metrics, input, |request| self.route(request))
    }

    fn route(&self, request: &Request) -> Result<Response, ApiError> {
        let path = request.path.split('?').next().unwrap_or("");
        match (request.method.as_str(), path) {
            ("GET", "/healthz") => Ok(self.healthz()),
            ("GET", "/lake/stat") => Ok(self.lake_stat()),
            ("GET", "/metrics") => Ok(self.metrics_exposition()),
            ("POST", "/reclaim") => self.reclaim(request),
            (_, "/healthz" | "/lake/stat" | "/metrics") => Err(ApiError::new(
                405,
                "bad_method",
                format!("{} does not accept {}; use GET", path, request.method),
            )),
            (_, "/reclaim") => Err(ApiError::new(
                405,
                "bad_method",
                format!("/reclaim does not accept {}; use POST", request.method),
            )),
            _ => Err(ApiError::new(404, "unknown_path", format!("no such endpoint `{path}`"))),
        }
    }

    fn healthz(&self) -> Response {
        Response::ok(
            Json::Object(vec![
                ("status".into(), Json::str("ok")),
                ("tables".into(), Json::Int(self.lake.len() as i64)),
                ("uptime_secs".into(), Json::Float(self.started.elapsed().as_secs_f64())),
                ("requests_served".into(), Json::Int(self.requests_served() as i64)),
            ])
            .render(),
        )
    }

    /// `/lake/stat`: counts come from slot metadata and the header-derived
    /// totals, the decode gauges from `OnceLock` states — the endpoint
    /// itself never forces a table or band decode, so statting a lazily
    /// opened TB-scale lake stays O(tables), not O(cells).
    pub(crate) fn lake_stat(&self) -> Response {
        Response::ok(
            Json::Object(vec![
                ("origin".into(), Json::str(self.origin.clone())),
                ("tables".into(), Json::Int(self.lake.len() as i64)),
                ("rows".into(), Json::Int(self.total_rows as i64)),
                ("columns".into(), Json::Int(self.total_cols as i64)),
                ("index_values".into(), Json::Int(self.lake.index_len() as i64)),
                ("lsh_columns".into(), Json::Int(self.lsh.n_columns() as i64)),
                ("lsh_decoded".into(), Json::Bool(self.lsh.is_decoded())),
                // Lazy-decode observability: how much of the snapshot has
                // actually been materialized so far.
                ("tables_decoded".into(), Json::Int(self.lake.tables_decoded() as i64)),
                ("tables_total".into(), Json::Int(self.lake.len() as i64)),
                // Durable-lake observability: the frame log's length and
                // whatever a degraded open had to quarantine.
                ("frames".into(), Json::Int(self.n_frames as i64)),
                (
                    "quarantined".into(),
                    Json::Array(self.quarantined_tables().into_iter().map(Json::str).collect()),
                ),
                ("latency".into(), self.metrics.latency_json()),
            ])
            .render(),
        )
    }

    /// `GET /metrics`: Prometheus text exposition (format 0.0.4) — the
    /// process-global registry (pipeline stages, traversal counters, store
    /// opens) followed by this service's HTTP registry. The lake-decode
    /// gauges are sampled here, at scrape time, from the same `OnceLock`
    /// states `/lake/stat` reads — no table or band decode is forced.
    fn metrics_exposition(&self) -> Response {
        self.sample_lake_gauges();
        self.set_uptime();
        render_metrics(&self.metrics)
    }

    /// Refresh this lake's `{lake=…}` decode gauges from the `OnceLock`
    /// states. The router calls this on every slot before rendering a
    /// multi-lake scrape.
    pub(crate) fn sample_lake_gauges(&self) {
        let g = self.metrics.lake_gauges(&self.lake_label);
        g.tables_decoded.set(self.lake.tables_decoded() as i64);
        g.tables_total.set(self.lake.len() as i64);
        g.lsh_decoded.set(i64::from(self.lsh.is_decoded()));
        g.quarantined_tables.set(self.quarantined.len() as i64);
    }

    /// Refresh the shared uptime gauge from this service's start time.
    pub(crate) fn set_uptime(&self) {
        self.metrics
            .uptime_seconds
            .set(i64::try_from(self.started.elapsed().as_secs()).unwrap_or(i64::MAX));
    }

    fn reclaim(&self, request: &Request) -> Result<Response, ApiError> {
        let body = parse_json_body(&request.body)?;
        self.reclaim_body(&body)
    }

    /// Handle one parsed `/reclaim` body against this lake: parse the
    /// source, apply any per-request overrides, run the pipeline, render.
    /// The router calls this directly after resolving the `lake` field.
    pub(crate) fn reclaim_body(&self, body: &Json) -> Result<Response, ApiError> {
        let source = self.parse_source(body)?;
        let cfg = effective_config(self.gen_t.config(), body)?;
        let result = self
            .run_reclaim(&source, cfg.as_ref(), None)
            .map_err(|e| ApiError::new(422, pipeline_error_kind(&e), e.to_string()))?;
        Ok(Response::ok(reclamation_json(source.name(), &result, cfg.as_ref()).render()))
    }

    /// Run one reclamation with an optional config override and an optional
    /// shared discovery memo (batch requests thread one cache through every
    /// source in the batch). With a fresh cache the cached path is
    /// bit-identical to the uncached one, which is what makes batch ≡
    /// sequential hold.
    pub(crate) fn run_reclaim(
        &self,
        source: &Table,
        cfg: Option<&GenTConfig>,
        cache: Option<&mut DiscoveryCache>,
    ) -> Result<ReclamationResult, GentError> {
        let overridden;
        let engine = match cfg {
            Some(c) => {
                overridden = GenT::new(c.clone());
                &overridden
            }
            None => &self.gen_t,
        };
        match cache {
            Some(cache) => engine.reclaim_with_cache(source, &self.lake, cache),
            None => engine.reclaim(source, &self.lake),
        }
    }

    /// Build the source table from the request body: either an inline
    /// `"source"` object or a `"source_name"` naming a lake table. A lake
    /// table is *borrowed* from the warm lake; it is cloned only when the
    /// request forces a schema change (a `key` override, or key mining) —
    /// no per-request table copy on the already-keyed path.
    pub(crate) fn parse_source(&self, body: &Json) -> Result<Cow<'_, Table>, ApiError> {
        let mut source: Cow<'_, Table> = match (body.get("source"), body.get("source_name")) {
            (Some(inline), None) => Cow::Owned(table_from_json(inline)?),
            (None, Some(name)) => {
                let name = name.as_str().ok_or_else(|| {
                    ApiError::new(400, "bad_json", "`source_name` must be a string")
                })?;
                if self.quarantined.contains(name) {
                    return Err(ApiError::new(
                        410,
                        "quarantined",
                        format!(
                            "table `{name}` is quarantined: its snapshot section failed its \
                             checksum; restore from a replica or run `gent lake fsck --repair`"
                        ),
                    ));
                }
                Cow::Borrowed(self.lake.get_by_name(name).ok_or_else(|| {
                    ApiError::new(404, "unknown_table", format!("lake has no table named `{name}`"))
                })?)
            }
            (Some(_), Some(_)) => {
                return Err(ApiError::new(
                    400,
                    "bad_json",
                    "pass either `source` or `source_name`, not both",
                ))
            }
            (None, None) => {
                return Err(ApiError::new(
                    400,
                    "bad_json",
                    "body must carry `source` (inline table) or `source_name` (lake table)",
                ))
            }
        };
        if let Some(key) = body.get("key") {
            let cols = string_array(key).ok_or_else(|| {
                ApiError::new(400, "bad_json", "`key` must be an array of column names")
            })?;
            source
                .to_mut()
                .schema_mut()
                .set_key(cols.iter().map(|s| s.as_str()))
                .map_err(|e| ApiError::new(422, "bad_key", e.to_string()))?;
        } else if !source.schema().has_key() && !ensure_key(source.to_mut()) {
            return Err(ApiError::new(
                422,
                "no_key",
                "no key column could be mined from the source; pass one in `key`",
            ));
        }
        Ok(source)
    }
}

/// Milliseconds as a float, for the wire.
fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The request envelope shared by the single-lake service and the
/// multi-lake router: trace-ID install (echoed from a well-formed client
/// `X-Request-Id`, generated otherwise), per-endpoint instruments
/// (request/error counters, in-flight gauge, latency histogram), panic
/// containment (a panicking handler answers 500 and the daemon lives on),
/// one structured log line, and the `X-Request-Id` response header.
pub(crate) fn respond_enveloped(
    metrics: &HttpMetrics,
    input: Result<Request, HttpError>,
    handler: impl FnOnce(&Request) -> Result<Response, ApiError>,
) -> Response {
    let trace_id = input
        .as_ref()
        .ok()
        .and_then(|r| r.header("x-request-id"))
        .filter(|id| valid_trace_id(id))
        .map(str::to_string)
        .unwrap_or_else(gent_obs::gen_trace_id);
    let prev = gent_obs::set_trace_id(Some(trace_id.clone()));
    let t0 = Instant::now();
    let (path, method) = match &input {
        Ok(r) => (Some(r.path.split('?').next().unwrap_or("").to_string()), r.method.clone()),
        Err(_) => (None, String::new()),
    };
    let ep = metrics.for_path(path.as_deref());
    ep.requests.inc();
    ep.in_flight.inc();
    let response = match input {
        Ok(request) => {
            let result = catch_unwind(AssertUnwindSafe(|| handler(&request)));
            match result {
                Ok(Ok(response)) => response,
                Ok(Err(api)) => api.to_response(),
                Err(_) => ApiError::new(
                    500,
                    "internal_error",
                    "request handler panicked; the lake is read-only and unaffected",
                )
                .to_response(),
            }
        }
        Err(e) => read_error_response(&e),
    };
    ep.in_flight.dec();
    if response.status >= 400 {
        ep.errors.inc();
    }
    let elapsed = t0.elapsed();
    ep.latency.observe_duration(elapsed);
    gent_obs::log(
        gent_obs::Level::Info,
        "gent_serve",
        "request",
        &[
            ("method", if method.is_empty() { "-" } else { &method }.into()),
            ("path", path.as_deref().unwrap_or("-").into()),
            ("status", u64::from(response.status).into()),
            ("elapsed_us", u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX).into()),
        ],
    );
    gent_obs::set_trace_id(prev);
    response.with_header("X-Request-Id", trace_id)
}

/// Apply the request's `overrides` block — if any — to the service's base
/// configuration. Shape errors (not an object, unknown key, wrong type)
/// answer 400; a `tau` outside `[0, 1]` answers 422; `max_candidates` is
/// clamped server-side to `[1, MAX_CANDIDATES_CAP]` rather than rejected.
/// Returns `None` when the request carries no overrides, so the untouched
/// fast path keeps serving byte-identical responses.
pub(crate) fn effective_config(
    base: &GenTConfig,
    body: &Json,
) -> Result<Option<GenTConfig>, ApiError> {
    let Some(overrides) = body.get("overrides") else { return Ok(None) };
    let Json::Object(fields) = overrides else {
        return Err(ApiError::new(400, "bad_override", "`overrides` must be an object"));
    };
    let mut cfg = base.clone();
    for (key, value) in fields {
        match key.as_str() {
            "tau" => {
                let tau = value.as_f64().ok_or_else(|| {
                    ApiError::new(422, "bad_override", "`overrides.tau` must be a number")
                })?;
                if !tau.is_finite() || !(0.0..=1.0).contains(&tau) {
                    return Err(ApiError::new(
                        422,
                        "bad_override",
                        format!("`overrides.tau` must be within [0, 1], got {tau}"),
                    ));
                }
                cfg.set_similarity.tau = tau;
            }
            "max_candidates" => {
                let m = value.as_i64().ok_or_else(|| {
                    ApiError::new(
                        422,
                        "bad_override",
                        "`overrides.max_candidates` must be an integer",
                    )
                })?;
                cfg.set_similarity.max_candidates =
                    usize::try_from(m.max(1)).unwrap_or(1).min(MAX_CANDIDATES_CAP);
            }
            other => {
                return Err(ApiError::new(
                    400,
                    "bad_override",
                    format!("unknown override `{other}`; supported: tau, max_candidates"),
                ))
            }
        }
    }
    Ok(Some(cfg))
}

/// Render one reclamation result in the `/reclaim` wire shape. When the
/// request overrode the configuration, a `config` block echoes the
/// effective (clamped) values; requests without overrides get the exact
/// pre-override response bytes.
pub(crate) fn reclamation_json(
    source_name: &str,
    result: &ReclamationResult,
    overridden: Option<&GenTConfig>,
) -> Json {
    let originating: Vec<Json> = result
        .originating
        .iter()
        .map(|t| {
            Json::Object(vec![
                ("name".into(), Json::str(t.name())),
                ("rows".into(), Json::Int(t.n_rows() as i64)),
                ("columns".into(), Json::Int(t.n_cols() as i64)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("source".into(), Json::str(source_name)),
        (
            "metrics".into(),
            Json::Object(vec![
                ("eis".into(), Json::Float(result.eis)),
                ("recall".into(), Json::Float(result.report.recall)),
                ("precision".into(), Json::Float(result.report.precision)),
                ("f1".into(), Json::Float(result.report.f1)),
                ("inst_div".into(), Json::Float(result.report.inst_div)),
                ("perfect".into(), Json::Bool(result.report.perfect)),
            ]),
        ),
        ("candidates_considered".into(), Json::Int(result.candidates_considered as i64)),
        // The pipeline's wall-clock breakdown: where this request's
        // time went (per request, so it varies run to run — clients
        // comparing responses must compare everything *but* this).
        (
            "timings".into(),
            Json::Object(vec![
                ("discovery_ms".into(), Json::Float(ms(result.timings.discovery))),
                ("traversal_ms".into(), Json::Float(ms(result.timings.traversal))),
                ("integration_ms".into(), Json::Float(ms(result.timings.integration))),
                ("total_ms".into(), Json::Float(ms(result.timings.total()))),
                // The traversal's incremental-round breakdown: how many
                // greedy rounds ran, how many dirty rows were rescored,
                // and how many candidate scorings the admissible bound
                // skipped outright.
                ("traversal_rounds".into(), Json::Int(i64::from(result.timings.traversal_rounds))),
                (
                    "rows_rescored".into(),
                    Json::Int(i64::try_from(result.timings.rows_rescored).unwrap_or(i64::MAX)),
                ),
                (
                    "candidates_pruned".into(),
                    Json::Int(i64::try_from(result.timings.candidates_pruned).unwrap_or(i64::MAX)),
                ),
                // The Expand engine's counters: best-first search effort,
                // suffix-memo reuse, dropped keyless candidates, and
                // deduplicated expansions.
                (
                    "expand_paths_considered".into(),
                    Json::Int(
                        i64::try_from(result.timings.expand_paths_considered).unwrap_or(i64::MAX),
                    ),
                ),
                (
                    "expand_memo_hits".into(),
                    Json::Int(i64::try_from(result.timings.expand_memo_hits).unwrap_or(i64::MAX)),
                ),
                (
                    "expand_candidates_dropped".into(),
                    Json::Int(
                        i64::try_from(result.timings.expand_candidates_dropped).unwrap_or(i64::MAX),
                    ),
                ),
                (
                    "expand_dedup".into(),
                    Json::Int(i64::try_from(result.timings.expand_dedup).unwrap_or(i64::MAX)),
                ),
            ]),
        ),
        ("originating".into(), Json::Array(originating)),
        ("reclaimed".into(), table_to_json(&result.reclaimed)),
    ];
    if let Some(cfg) = overridden {
        fields.push((
            "config".into(),
            Json::Object(vec![
                ("tau".into(), Json::Float(cfg.set_similarity.tau)),
                ("max_candidates".into(), Json::Int(cfg.set_similarity.max_candidates as i64)),
            ]),
        ));
    }
    Json::Object(fields)
}

/// Decode and parse a request body as JSON, with the structured 400s every
/// POST endpoint answers for non-UTF-8 or malformed bodies.
/// The structured error kind for a failed reclamation: corrupt-index
/// failures get their own kind so clients can tell data damage from a bad
/// request.
pub(crate) fn pipeline_error_kind(e: &GentError) -> &'static str {
    match e {
        GentError::IndexCorrupt(_) => "corrupt_snapshot",
        _ => "pipeline",
    }
}

pub(crate) fn parse_json_body(body: &[u8]) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::new(400, "bad_json", "request body is not UTF-8"))?;
    Json::parse(text).map_err(|e| ApiError::new(400, "bad_json", format!("request body: {e}")))
}

/// Render the full Prometheus exposition: the process-global registry
/// (pipeline stages, traversal counters, store opens) followed by the
/// daemon's shared HTTP registry.
pub(crate) fn render_metrics(metrics: &HttpMetrics) -> Response {
    let mut text = gent_obs::registry().render_prometheus();
    text.push_str(&metrics.registry.render_prometheus());
    Response::ok(text).with_header("Content-Type", "text/plain; version=0.0.4")
}

fn read_error_response(e: &HttpError) -> Response {
    let (status, kind) = match e {
        // Normally never rendered: the server drops cleanly-closed
        // connections without answering. Kept total so `respond` stays
        // usable with any read result.
        HttpError::ConnectionClosed => (400, "connection_closed"),
        HttpError::Malformed(_) => (400, "malformed_request"),
        HttpError::TooLarge(_) => (413, "too_large"),
        HttpError::Truncated { .. } => (400, "truncated_body"),
        HttpError::Timeout => (408, "timeout"),
        HttpError::Io(_) => (400, "io"),
    };
    ApiError::new(status, kind, e.to_string()).to_response()
}

/// Serialize a table for the wire.
pub fn table_to_json(t: &Table) -> Json {
    let columns: Vec<Json> = t.schema().columns().map(Json::str).collect();
    let key: Vec<Json> = t.schema().key_names().into_iter().map(Json::str).collect();
    let rows: Vec<Json> =
        t.rows().iter().map(|r| Json::Array(r.iter().map(Json::from_value).collect())).collect();
    Json::Object(vec![
        ("name".into(), Json::str(t.name())),
        ("columns".into(), Json::Array(columns)),
        ("key".into(), Json::Array(key)),
        ("rows".into(), Json::Array(rows)),
    ])
}

/// Deserialize an inline source table: `{"name"?, "columns", "key"?,
/// "rows"}` with scalar cells.
pub fn table_from_json(v: &Json) -> Result<Table, ApiError> {
    let bad = |m: String| ApiError::new(400, "bad_json", m);
    let name = match v.get("name") {
        None => "source",
        Some(n) => n.as_str().ok_or_else(|| bad("`source.name` must be a string".into()))?,
    };
    let columns = v
        .get("columns")
        .and_then(string_array)
        .ok_or_else(|| bad("`source.columns` must be an array of strings".into()))?;
    let rows_json = v
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("`source.rows` must be an array of rows".into()))?;
    let mut rows = Vec::with_capacity(rows_json.len());
    for (i, row) in rows_json.iter().enumerate() {
        let cells =
            row.as_array().ok_or_else(|| bad(format!("`source.rows[{i}]` must be an array")))?;
        let mut out = Vec::with_capacity(cells.len());
        for cell in cells {
            out.push(cell.to_value().map_err(|m| bad(format!("`source.rows[{i}]`: {m}")))?);
        }
        rows.push(out);
    }
    let key = match v.get("key") {
        None => Vec::new(),
        Some(k) => {
            string_array(k).ok_or_else(|| bad("`source.key` must be an array of strings".into()))?
        }
    };
    let key_refs: Vec<&str> = key.iter().map(|s| s.as_str()).collect();
    Table::build(name, &columns, &key_refs, rows)
        .map_err(|e| ApiError::new(422, "bad_source", e.to_string()))
}

fn string_array(v: &Json) -> Option<Vec<String>> {
    v.as_array()?.iter().map(|s| s.as_str().map(str::to_string)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_store::{InMemory, LakeSource};
    use gent_table::Value as V;

    fn service() -> LakeService {
        let tables = vec![
            Table::build(
                "people",
                &["id", "name", "age"],
                &[],
                vec![
                    vec![V::Int(0), V::str("Smith"), V::Int(27)],
                    vec![V::Int(1), V::str("Brown"), V::Int(24)],
                ],
            )
            .unwrap(),
            Table::build(
                "ids",
                &["id", "name"],
                &[],
                vec![vec![V::Int(0), V::str("Smith")], vec![V::Int(1), V::str("Brown")]],
            )
            .unwrap(),
        ];
        let loaded = InMemory::new(tables).load_lake().unwrap();
        LakeService::new(loaded, GenTConfig::default(), "test lake")
    }

    fn post(body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: "/reclaim".into(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn healthz_reports_ok() {
        let s = service();
        let r = s.respond(Ok(Request {
            method: "GET".into(),
            path: "/healthz".into(),
            headers: vec![],
            body: vec![],
        }));
        assert_eq!(r.status, 200);
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(v.get("tables").and_then(Json::as_i64), Some(2));
    }

    #[test]
    fn lake_stat_reports_counts() {
        let s = service();
        let r = s.respond(Ok(Request {
            method: "GET".into(),
            path: "/lake/stat".into(),
            headers: vec![],
            body: vec![],
        }));
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(v.get("tables").and_then(Json::as_i64), Some(2));
        assert_eq!(v.get("rows").and_then(Json::as_i64), Some(4));
        assert!(v.get("index_values").and_then(Json::as_i64).unwrap() > 0);
    }

    #[test]
    fn reclaim_inline_source_round_trips() {
        let s = service();
        let body = r#"{"source": {"name": "S", "columns": ["id", "name", "age"],
            "key": ["id"],
            "rows": [[0, "Smith", 27], [1, "Brown", 24]]}}"#;
        let r = s.respond(Ok(post(body)));
        assert_eq!(r.status, 200, "body: {}", r.body);
        let v = Json::parse(&r.body).unwrap();
        let eis = v.get("metrics").unwrap().get("eis").and_then(Json::as_f64).unwrap();
        assert!(eis > 0.99, "eis {eis}");
        let reclaimed = v.get("reclaimed").unwrap();
        assert_eq!(reclaimed.get("columns").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(reclaimed.get("rows").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn reclaim_reports_pipeline_timings() {
        let s = service();
        let body = r#"{"source": {"name": "S", "columns": ["id", "name", "age"],
            "key": ["id"],
            "rows": [[0, "Smith", 27], [1, "Brown", 24]]}}"#;
        let r = s.respond(Ok(post(body)));
        assert_eq!(r.status, 200, "body: {}", r.body);
        let v = Json::parse(&r.body).unwrap();
        let t = v.get("timings").expect("reclaim responses carry a timings breakdown");
        let field = |k: &str| t.get(k).and_then(Json::as_f64).unwrap_or_else(|| panic!("{k}"));
        let (d, tr, int) = (field("discovery_ms"), field("traversal_ms"), field("integration_ms"));
        let total = field("total_ms");
        assert!(d >= 0.0 && tr >= 0.0 && int >= 0.0);
        assert!((total - (d + tr + int)).abs() < 1e-6, "total {total} vs {d}+{tr}+{int}");
        // The greedy-round counters ride along (this tiny lake may align
        // only one candidate, so zero rounds is legitimate here; the e2e
        // suite asserts they actually move on a real lake).
        let counter = |k: &str| t.get(k).and_then(Json::as_i64).unwrap_or_else(|| panic!("{k}"));
        for k in [
            "traversal_rounds",
            "rows_rescored",
            "candidates_pruned",
            "expand_paths_considered",
            "expand_memo_hits",
            "expand_candidates_dropped",
            "expand_dedup",
        ] {
            assert!(counter(k) >= 0, "{k} must be a non-negative counter");
        }
    }

    #[test]
    fn reclaim_by_lake_name() {
        let s = service();
        let r = s.respond(Ok(post(r#"{"source_name": "ids", "key": ["id"]}"#)));
        assert_eq!(r.status, 200, "body: {}", r.body);
    }

    #[test]
    fn unknown_table_is_404() {
        let s = service();
        let r = s.respond(Ok(post(r#"{"source_name": "nope"}"#)));
        assert_eq!(r.status, 404);
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Json::as_str),
            Some("unknown_table")
        );
    }

    #[test]
    fn bad_json_is_400() {
        let s = service();
        let r = s.respond(Ok(post("{not json")));
        assert_eq!(r.status, 400);
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(v.get("error").unwrap().get("kind").and_then(Json::as_str), Some("bad_json"));
    }

    #[test]
    fn wrong_method_is_405_and_unknown_path_404() {
        let s = service();
        let get_reclaim = Request {
            method: "GET".into(),
            path: "/reclaim".into(),
            headers: vec![],
            body: vec![],
        };
        assert_eq!(s.respond(Ok(get_reclaim)).status, 405);
        let nowhere = Request {
            method: "GET".into(),
            path: "/nowhere".into(),
            headers: vec![],
            body: vec![],
        };
        assert_eq!(s.respond(Ok(nowhere)).status, 404);
    }

    #[test]
    fn read_errors_map_to_structured_responses() {
        let s = service();
        let r = s.respond(Err(HttpError::Truncated { expected: 10, got: 3 }));
        assert_eq!(r.status, 400);
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Json::as_str),
            Some("truncated_body")
        );
        assert_eq!(s.respond(Err(HttpError::TooLarge("x".into()))).status, 413);
        assert_eq!(s.respond(Err(HttpError::Timeout)).status, 408);
    }

    /// A `source_name` request with no `key` override against an
    /// already-keyed lake table must borrow it, not clone it.
    #[test]
    fn keyed_lake_source_is_borrowed() {
        let keyed = Table::build(
            "keyed",
            &["id", "v"],
            &["id"],
            vec![vec![V::Int(1), V::str("a")], vec![V::Int(2), V::str("b")]],
        )
        .unwrap();
        assert!(keyed.key_is_valid());
        let loaded = InMemory::new(vec![keyed.clone()]).load_lake().unwrap();
        let s = LakeService::new(loaded, GenTConfig::default(), "borrow test");
        let body = Json::parse(r#"{"source_name": "keyed"}"#).unwrap();
        let source = s.parse_source(&body).unwrap();
        assert!(
            matches!(source, std::borrow::Cow::Borrowed(_)),
            "already-keyed lake table must not be cloned per request"
        );
        // A key override forces the (correct) copy-on-write.
        let body = Json::parse(r#"{"source_name": "keyed", "key": ["v"]}"#).unwrap();
        let source = s.parse_source(&body).unwrap();
        assert!(matches!(source, std::borrow::Cow::Owned(_)));
    }

    /// `/lake/stat` reports the lazy-decode gauge and per-endpoint latency
    /// histograms, and the histograms actually accumulate observations.
    #[test]
    fn lake_stat_reports_decode_gauge_and_latency() {
        let s = service();
        let stat = |s: &LakeService| {
            let r = s.respond(Ok(Request {
                method: "GET".into(),
                path: "/lake/stat".into(),
                headers: vec![],
                body: vec![],
            }));
            assert_eq!(r.status, 200);
            Json::parse(&r.body).unwrap()
        };
        let v = stat(&s);
        // In-memory lakes are fully materialized by construction.
        assert_eq!(v.get("tables_decoded").and_then(Json::as_i64), Some(2));
        assert_eq!(v.get("tables_total").and_then(Json::as_i64), Some(2));
        assert_eq!(v.get("lsh_decoded"), Some(&Json::Bool(true)));
        let lat = v.get("latency").expect("latency histograms");
        for endpoint in ["healthz", "lake_stat", "reclaim", "other"] {
            let h = lat.get(endpoint).unwrap_or_else(|| panic!("latency.{endpoint}"));
            assert!(h.get("count").and_then(Json::as_i64).is_some());
            assert!(h.get("mean_ms").and_then(Json::as_f64).is_some());
            let buckets = h.get("buckets").and_then(Json::as_array).expect("buckets");
            assert_eq!(buckets.len(), super::LATENCY_BOUNDS_US.len() + 1);
        }
        // The first stat call was recorded before the second reads it; a
        // reclaim and a read error land in their own histograms.
        s.respond(Ok(post("{}")));
        s.respond(Err(HttpError::Timeout));
        let v = stat(&s);
        let count = |ep: &str| {
            v.get("latency").unwrap().get(ep).unwrap().get("count").and_then(Json::as_i64).unwrap()
        };
        assert!(count("lake_stat") >= 1, "stat requests observed");
        assert_eq!(count("reclaim"), 1, "reclaim observed");
        assert_eq!(count("other"), 1, "read error observed");
        let reclaim = v.get("latency").unwrap().get("reclaim").unwrap();
        let bucket_sum: i64 = reclaim
            .get("buckets")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|b| b.get("count").and_then(Json::as_i64).unwrap())
            .sum();
        assert_eq!(bucket_sum, 1, "every observation lands in exactly one bucket");
    }

    #[test]
    fn request_counter_increments() {
        let s = service();
        assert_eq!(s.requests_served(), 0);
        s.respond(Ok(post("{}")));
        s.respond(Err(HttpError::Malformed("x".into())));
        assert_eq!(s.requests_served(), 2);
    }

    fn get(path: &str) -> Request {
        Request { method: "GET".into(), path: path.into(), headers: vec![], body: vec![] }
    }

    fn request_id(r: &Response) -> String {
        r.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("x-request-id"))
            .map(|(_, v)| v.clone())
            .expect("every response carries X-Request-Id")
    }

    #[test]
    fn metrics_exposition_serves_prometheus_text() {
        let s = service();
        s.respond(Ok(get("/healthz")));
        s.respond(Ok(post("{}"))); // bad JSON → reclaim error
        let r = s.respond(Ok(get("/metrics")));
        assert_eq!(r.status, 200);
        assert!(
            r.headers
                .iter()
                .any(|(n, v)| n.eq_ignore_ascii_case("content-type")
                    && v.starts_with("text/plain")),
            "{:?}",
            r.headers
        );
        for family in [
            "gent_http_requests_total",
            "gent_http_errors_total",
            "gent_http_in_flight",
            "gent_http_request_duration_us",
            "gent_http_connections_total",
            "gent_http_queue_depth",
            "gent_lake_tables_decoded",
            "gent_lake_tables_total",
            "gent_uptime_seconds",
        ] {
            assert!(r.body.contains(&format!("# TYPE {family} ")), "{family} missing");
        }
        assert!(r.body.contains("gent_http_requests_total{endpoint=\"healthz\"} 1"), "{}", r.body);
        assert!(r.body.contains("gent_http_errors_total{endpoint=\"reclaim\"} 1"), "{}", r.body);
        // The in-memory test lake is fully decoded by construction; the
        // decode gauges carry the routing label of their lake.
        assert!(r.body.contains("gent_lake_tables_decoded{lake=\"default\"} 2"), "{}", r.body);
        // The scrape itself is the one request mid-flight while rendering.
        assert!(r.body.contains("gent_http_in_flight{endpoint=\"metrics\"} 1"), "{}", r.body);
        assert!(r.body.contains("gent_http_in_flight{endpoint=\"healthz\"} 0"), "{}", r.body);
    }

    #[test]
    fn responses_echo_or_generate_request_ids() {
        let s = service();
        // A well-formed client ID is echoed verbatim.
        let r = s.respond(Ok(Request {
            method: "GET".into(),
            path: "/healthz".into(),
            headers: vec![("x-request-id".into(), "client-id-42".into())],
            body: vec![],
        }));
        assert_eq!(request_id(&r), "client-id-42");
        // No header → a generated 16-hex-char ID.
        let r = s.respond(Ok(get("/healthz")));
        let id = request_id(&r);
        assert_eq!(id.len(), 16, "{id}");
        assert!(id.bytes().all(|b| b.is_ascii_hexdigit()), "{id}");
        // A hostile header value (spaces, quotes) is replaced, not echoed.
        let r = s.respond(Ok(Request {
            method: "GET".into(),
            path: "/healthz".into(),
            headers: vec![("x-request-id".into(), "bad id \"quoted\"".into())],
            body: vec![],
        }));
        assert_ne!(request_id(&r), "bad id \"quoted\"");
        // Error paths carry the ID too: in the header *and* the error body.
        let r = s.respond(Ok(Request {
            method: "POST".into(),
            path: "/reclaim".into(),
            headers: vec![("x-request-id".into(), "err-trace-1".into())],
            body: b"{not json".to_vec(),
        }));
        assert_eq!(r.status, 400);
        assert_eq!(request_id(&r), "err-trace-1");
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("trace_id").and_then(Json::as_str),
            Some("err-trace-1")
        );
        // Even a request that never parsed gets a (generated) ID.
        let r = s.respond(Err(HttpError::Timeout));
        let id = request_id(&r);
        assert_eq!(id.len(), 16);
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("trace_id").and_then(Json::as_str),
            Some(id.as_str())
        );
    }

    /// The re-homing regression test: `/lake/stat`'s JSON histograms and
    /// `/metrics`' Prometheus exposition render the *same* underlying
    /// buckets — counts, per-bucket tallies and sums must agree exactly.
    #[test]
    fn stat_and_metrics_views_agree() {
        let s = service();
        for _ in 0..3 {
            s.respond(Ok(get("/healthz")));
        }
        s.respond(Ok(post("{}")));
        s.respond(Err(HttpError::Timeout));

        // Scrape `/metrics` first: a request's latency is observed *after*
        // its body renders, so the later `/lake/stat` call sees exactly the
        // observations the scrape saw (its own is not yet recorded either
        // way), keeping the two snapshots comparable.
        let prom = s.respond(Ok(get("/metrics"))).body;
        let stat = Json::parse(&s.respond(Ok(get("/lake/stat"))).body).unwrap();
        let sample = |line_start: &str| -> i64 {
            prom.lines()
                .find(|l| {
                    l.starts_with(line_start)
                        && l.len() > line_start.len()
                        && l.as_bytes()[line_start.len()] == b' '
                })
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("no sample `{line_start}` in:\n{prom}"))
        };
        for endpoint in ["healthz", "lake_stat", "reclaim", "other"] {
            let h = stat.get("latency").unwrap().get(endpoint).unwrap();
            let stat_count = h.get("count").and_then(Json::as_i64).unwrap();
            let prom_count =
                sample(&format!("gent_http_request_duration_us_count{{endpoint=\"{endpoint}\"}}"));
            assert_eq!(stat_count, prom_count, "{endpoint} count");
            // Stat buckets are per-bucket, Prometheus buckets cumulative:
            // the running sum of the former must reproduce the latter.
            let buckets = h.get("buckets").and_then(Json::as_array).unwrap();
            let mut cumulative = 0i64;
            for (i, b) in buckets.iter().enumerate() {
                cumulative += b.get("count").and_then(Json::as_i64).unwrap();
                let le = match LATENCY_BOUNDS_US.get(i) {
                    Some(us) => us.to_string(),
                    None => "+Inf".into(),
                };
                let prom_bucket = sample(&format!(
                    "gent_http_request_duration_us_bucket{{endpoint=\"{endpoint}\",le=\"{le}\"}}"
                ));
                assert_eq!(cumulative, prom_bucket, "{endpoint} bucket le={le}");
            }
        }
    }
}
