//! A minimal JSON codec for the serve wire format.
//!
//! The build image has no network crates, so the daemon speaks JSON through
//! this self-contained recursive-descent parser and writer. The value model
//! keeps integers and floats apart ([`Json::Int`] vs [`Json::Float`]) so
//! that 64-bit table keys survive a round trip without losing precision to
//! an f64 — the same distinction [`gent_table::Value`] makes.
//!
//! ```
//! use gent_serve::json::Json;
//! let v = Json::parse(r#"{"eis": 1.0, "rows": [[0, "Smith"]]}"#).unwrap();
//! assert_eq!(v.get("eis").and_then(Json::as_f64), Some(1.0));
//! assert_eq!(Json::parse(&v.render()).unwrap(), v);
//! ```

use std::fmt;

use gent_table::Value;

/// Maximum nesting depth accepted by the parser (a hostile body must not be
/// able to overflow the stack).
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved (render is deterministic).
    Object(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field by key (first match), `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Numeric payload widened to f64 (ints included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convert a table cell to its wire form. Labeled nulls are an internal
    /// integration device and never appear in served tables; they degrade to
    /// `null` defensively.
    pub fn from_value(v: &Value) -> Json {
        match v {
            Value::Null | Value::LabeledNull(_) => Json::Null,
            Value::Bool(b) => Json::Bool(*b),
            Value::Int(i) => Json::Int(*i),
            Value::Float(f) => Json::Float(*f),
            Value::Str(s) => Json::Str(s.to_string()),
        }
    }

    /// Convert a wire cell back to a table cell.
    pub fn to_value(&self) -> Result<Value, String> {
        match self {
            Json::Null => Ok(Value::Null),
            Json::Bool(b) => Ok(Value::Bool(*b)),
            Json::Int(i) => Ok(Value::Int(*i)),
            Json::Float(f) => Ok(Value::Float(*f)),
            Json::Str(s) => Ok(Value::str(s)),
            Json::Array(_) | Json::Object(_) => {
                Err("cells must be scalars (null, bool, number or string)".to_string())
            }
        }
    }

    /// Serialize to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // Keep floats recognisable as floats across a round trip.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { at: self.pos, message: message.into() }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Array(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `]` in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Object(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `}` in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe via chars()).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    /// Consume a run of ASCII digits, returning how many were eaten.
    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let _ = self.eat(b'-');
        // JSON requires digits before the point and after the point and
        // exponent — `1.`, `-.5` and `1e` are errors, not f64-parser food.
        if self.digits() == 0 {
            return Err(self.err("number must have an integer part"));
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            if self.digits() == 0 {
                return Err(self.err("number must have digits after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("number must have digits in the exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            // `1e999` parses to infinity, which `render` would then emit as
            // null — reject out-of-range literals instead of corrupting the
            // value in transit.
            Ok(f) if f.is_finite() => Ok(Json::Float(f)),
            Ok(_) => Err(JsonError {
                at: start,
                message: format!("number `{text}` is out of f64 range"),
            }),
            Err(_) => Err(JsonError { at: start, message: format!("invalid number `{text}`") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "round trip of `{text}`");
        }
        assert_eq!(Json::parse("9223372036854775807").unwrap(), Json::Int(i64::MAX));
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a": [1, 2.5, "x", null, true], "b": {"c": []}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("quote \" back\\slash \n tab\t unicode €".to_string());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(r#""é€""#).unwrap(), Json::str("é€"));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("😀"));
    }

    #[test]
    fn malformed_inputs_rejected() {
        for text in
            ["", "{", "[1,", "{\"a\"}", "tru", "\"unterminated", "01x", "[1]extra", "{\"a\":}"]
        {
            assert!(Json::parse(text).is_err(), "`{text}` must not parse");
        }
    }

    #[test]
    fn non_json_number_shapes_rejected() {
        for text in ["1.", "-.5", ".5", "1e", "1e+", "-", "1e999", "-1e999"] {
            assert!(Json::parse(text).is_err(), "`{text}` must not parse");
        }
        // Valid shapes still parse, exponents included.
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("-0.5").unwrap(), Json::Float(-0.5));
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn value_conversion_round_trips() {
        for v in
            [Value::Null, Value::Bool(true), Value::Int(-5), Value::Float(2.25), Value::str("s")]
        {
            assert_eq!(Json::from_value(&v).to_value().unwrap(), v);
        }
        // Labeled nulls degrade to plain null.
        assert_eq!(Json::from_value(&Value::LabeledNull(7)), Json::Null);
        assert!(Json::Array(vec![]).to_value().is_err());
    }

    #[test]
    fn floats_stay_floats() {
        // A float that happens to be integral must not decay to an int.
        assert_eq!(Json::parse(&Json::Float(3.0).render()).unwrap(), Json::Float(3.0));
    }
}
