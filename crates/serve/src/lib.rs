//! # gent-serve — the `gent serve` warm-lake reclamation daemon
//!
//! The Gen-T pipeline is a batch algorithm, but the workloads it targets are
//! not: a data lake is built once and queried by many source tables over a
//! long lifetime. `gent-store` makes the lake *reopenable* in milliseconds
//! (`*.gentlake` snapshots persist the inverted index in its serving layout
//! plus the LSH bands); this crate makes it *servable* — a long-running
//! daemon that opens one snapshot once and answers reclamation requests
//! against the warm lake over HTTP:
//!
//! ```text
//! gent lake build lake-dir/ --out lake.gentlake     # ingest + index once
//! gent serve --lake lake.gentlake --addr 127.0.0.1:7744
//! curl -s localhost:7744/healthz
//! curl -s -X POST localhost:7744/reclaim -d '{"source": {...}}'
//! ```
//!
//! Everything is built on `std::net` — the build image has no network
//! crates, so the HTTP/1.1 layer ([`http`]) and the JSON codec ([`json`])
//! are hand-rolled, and the worker pool ([`server`]) uses the vendored
//! `crossbeam` scoped threads and `parking_lot` mutex.
//!
//! ## Endpoints
//!
//! | Endpoint | Body | Answer |
//! |---|---|---|
//! | `GET /healthz` | — | liveness, uptime, request count, hosted-lake count |
//! | `GET /lakes` | — | the hosted lakes: name, origin, generation, default route |
//! | `GET /lake/stat` | `?lake=name` | table/row/index counts + latency histograms of one warm lake |
//! | `GET /metrics` | — | Prometheus text exposition (pipeline, store and HTTP metrics) |
//! | `POST /reclaim` | `{"source": {...}}` or `{"source_name": "t"}`, optional `"lake"`, `"overrides"` | metrics + reclaimed table + originating tables |
//! | `POST /reclaim/batch` | `{"sources": [...]}` — N reclaim bodies sharing one lake | per-source results + discovery-memo stats |
//! | `POST /admin/reload` | `{"lake": "n", "path": "new.gentlake"}` | atomic snapshot hot-swap; generation bump |
//! | `POST /admin/ingest` | `{"lake": "n", "tables": [{...}, …]}` | crash-safe delta append + hot-swap; generation bump |
//! | `POST /admin/compact` | `{"lake": "n"}` | fold the delta-frame log into a clean base |
//!
//! A daemon hosts one or many lakes ([`routing::Router`]): requests route
//! with a `"lake"` body field / `?lake=` query parameter and fall back to
//! the first (default) lake, `POST /reclaim/batch` amortises the discovery
//! stage across sources sharing a lake, and `POST /admin/reload` swaps a
//! slot's snapshot without dropping in-flight requests (they finish on the
//! buffer they started on). `POST /admin/ingest` makes the lake *live*:
//! new tables append to the snapshot file as fsynced, commit-marked delta
//! frames (acknowledged writes survive any crash), become reclaimable via
//! the same off-lock load + pointer swap as a reload, and fold into a
//! clean base automatically once the frame log reaches
//! [`routing::COMPACT_FRAME_THRESHOLD`]. When the bounded worker queue is
//! full the accept loop sheds load with `429 Too Many Requests` +
//! `Retry-After` instead of stalling — see `docs/serving.md`.
//!
//! With `gent serve --degraded` ([`RouterBuilder::set_degraded`]) a
//! snapshot that fails some per-section checksums still boots: corrupt
//! tables are quarantined — lookups answer a structured `410 quarantined`,
//! the `gent_lake_quarantined_tables` gauge counts them — while every
//! healthy table keeps serving byte-identical answers.
//!
//! Errors are structured: every 4xx/5xx body is
//! `{"error": {"kind": "...", "message": "...", "trace_id": "..."}}`, and no
//! client input can kill the daemon (malformed HTTP, bad JSON, truncated
//! bodies and panicking handlers all map to error responses).
//!
//! ## Observability
//!
//! Every response carries an `X-Request-Id` header — propagated from the
//! client's header when it sent a well-formed one, generated otherwise —
//! and the same ID tags the daemon's structured JSON log line for the
//! request (enable with `GENT_LOG=info` or `gent serve --log-level info`).
//! Instruments live in a per-service `gent_obs::Registry` (per-endpoint
//! request/error counters, in-flight gauges, latency histograms,
//! connection/keep-alive/queue-depth stats) rendered by `GET /metrics`
//! together with the process-global registry (pipeline stage histograms,
//! store open metrics). See `docs/observability.md` for the full catalog.
//!
//! Connections close after one exchange by default; clients that send
//! `Connection: keep-alive` may reuse the socket for up to
//! [`server::MAX_REQUESTS_PER_CONNECTION`] requests, each under its own
//! read deadline — repeated reclaims stop paying per-request TCP setup
//! (see `examples/serve_client.rs` for a persistent client).
//!
//! ## The sharing contract
//!
//! The daemon's whole point is that concurrent requests share one lake
//! handle: [`service::LakeService`] owns the `DataLake` (and its
//! `FrozenIndex` + LSH ensemble) exactly once, the server wraps it in an
//! `Arc`, and request handlers *borrow* it — `GenT::reclaim` takes
//! `&DataLake`, so serving N concurrent requests re-derives and copies
//! nothing per request.
//!
//! # Examples
//!
//! Boot a daemon on an ephemeral port and query it:
//!
//! ```no_run
//! use gent_serve::{LakeService, ServeConfig, Server};
//! use gent_core::GenTConfig;
//! use gent_store::{LakeSource, SnapshotFile};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let loaded = SnapshotFile("lake.gentlake".into()).load_lake()?;
//! let service = LakeService::new(loaded, GenTConfig::default(), "lake.gentlake");
//! let server = Server::bind(&ServeConfig::default(), service)?;
//! println!("serving on http://{}", server.local_addr()?);
//! server.run()?; // blocks until ServerHandle::stop
//! # Ok(()) }
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod routing;
pub mod server;
pub mod service;

pub use client::{ClientResponse, RetryClient, RetryPolicy};
pub use http::{DeadlineStream, HttpError, Request, Response};
pub use json::{Json, JsonError};
pub use routing::{Router, RouterBuilder};
pub use server::{ServeConfig, Server, ServerHandle};
pub use service::{table_from_json, table_to_json, ApiError, LakeService};
