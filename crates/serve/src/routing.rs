//! Multi-lake routing: many `*.gentlake` snapshots behind one address.
//!
//! A [`Router`] owns a fixed set of named lake *slots*. Each slot holds an
//! `Arc<LakeService>` behind a reader-writer lock:
//!
//! * **request path** — handlers clone the `Arc` under a read lock and run
//!   against that snapshot to completion, so a request always answers from
//!   the buffer it started on;
//! * **reload path** — `POST /admin/reload` loads the replacement snapshot
//!   entirely *off*-lock, then swaps the pointer under a brief write lock
//!   and bumps the slot's generation. In-flight requests keep their old
//!   `Arc`; the retired snapshot is freed when the last of them finishes.
//!
//! Requests pick their lake with a `"lake"` field in the body (POST) or a
//! `?lake=` query parameter (GET); the first registered lake is the default
//! when the field is absent, which keeps single-lake clients — and every
//! pre-router test — working unchanged. `GET /lakes` lists the slots.
//!
//! All slots share one `HttpMetrics` registry: per-endpoint instruments
//! are daemon-wide, per-lake instruments (`gent_lake_tables_decoded`,
//! `gent_lake_reloads_total`, the batch family) carry a `{lake="…"}` label.
//! Reloading never re-registers a family, so scrapes stay collision-free
//! across generations.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gent_core::GenTConfig;
use gent_discovery::DiscoveryCache;
use gent_store::{LakeSource, LoadedLake, SnapshotFile};
use gent_table::Table;
use parking_lot::{Mutex, RwLock};

use crate::http::{HttpError, Request, Response};
use crate::json::Json;
use crate::service::{
    effective_config, parse_json_body, pipeline_error_kind, reclamation_json, render_metrics,
    respond_enveloped, table_from_json, ApiError, HttpMetrics, LakeService,
};

/// Ingest folds the delta log back into a clean base once it reaches this
/// many frames, so open cost and tail-scan time stay bounded no matter how
/// long the daemon keeps accepting deltas.
pub const COMPACT_FRAME_THRESHOLD: usize = 8;

/// One hosted lake: its routing name, the snapshot path it can hot-reload
/// from, the live service, and a monotonically increasing generation.
struct LakeSlot {
    name: String,
    path: RwLock<Option<PathBuf>>,
    current: RwLock<Arc<LakeService>>,
    generation: AtomicU64,
    /// Serializes writers to the slot's snapshot file (ingest appends and
    /// compactions). Request traffic never takes this — reads answer from
    /// the in-memory service while an append runs.
    ingest: Mutex<()>,
}

impl LakeSlot {
    fn new(name: &str, path: Option<PathBuf>, service: LakeService) -> LakeSlot {
        LakeSlot {
            name: name.to_string(),
            path: RwLock::new(path),
            current: RwLock::new(Arc::new(service)),
            generation: AtomicU64::new(0),
            ingest: Mutex::new(()),
        }
    }

    /// Clone the live service handle. The read lock is held only for the
    /// clone — the request then runs lock-free against its snapshot, and a
    /// concurrent reload cannot invalidate it.
    fn service(&self) -> Arc<LakeService> {
        Arc::clone(&self.current.read())
    }
}

/// Is `name` acceptable as a lake routing name? Same alphabet as
/// [`gent_store::default_lake_name`] produces: 1–64 alphanumerics, `-`, `_`.
fn valid_lake_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.chars().all(|c| c.is_alphanumeric() || c == '-' || c == '_')
}

/// Builds a [`Router`] slot by slot. The first lake added becomes the
/// default route.
pub struct RouterBuilder {
    config: GenTConfig,
    metrics: Arc<HttpMetrics>,
    slots: Vec<LakeSlot>,
    degraded: bool,
}

impl RouterBuilder {
    /// Open snapshots in **degraded mode** (`gent serve --degraded`):
    /// corrupt tables are quarantined instead of failing the boot or
    /// reload, and quarantined names answer `410 quarantined`. Call before
    /// [`Self::add_snapshot`] — the flag applies to boot-time opens as
    /// well as every later reload and ingest swap.
    pub fn set_degraded(&mut self, on: bool) {
        self.degraded = on;
    }

    fn open_snapshot(&self, path: &Path) -> Result<LoadedLake, gent_store::StoreError> {
        if self.degraded {
            gent_store::load_degraded(path)
        } else {
            SnapshotFile(path.to_path_buf()).load_lake()
        }
    }
    fn check_name(&self, name: &str) -> Result<(), String> {
        if !valid_lake_name(name) {
            return Err(format!("invalid lake name `{name}`: use 1-64 alphanumerics, `-` or `_`"));
        }
        if self.slots.iter().any(|s| s.name == name) {
            return Err(format!("duplicate lake name `{name}`"));
        }
        Ok(())
    }

    /// Register a snapshot file under `name`. The snapshot opens lazily —
    /// registration costs header metadata, not a cell decode — and the slot
    /// remembers `path` so `POST /admin/reload` can re-read it without
    /// being told where.
    pub fn add_snapshot(&mut self, name: &str, path: &Path) -> Result<(), String> {
        self.check_name(name)?;
        let loaded = self
            .open_snapshot(path)
            .map_err(|e| format!("lake `{name}`: cannot open `{}`: {e}", path.display()))?;
        let service = LakeService::with_shared(
            loaded,
            self.config.clone(),
            path.display().to_string(),
            name,
            Arc::clone(&self.metrics),
        );
        self.slots.push(LakeSlot::new(name, Some(path.to_path_buf()), service));
        Ok(())
    }

    /// Register a lake the caller already opened from `path` — e.g. after
    /// an eager pre-decode pass. Behaves like [`Self::add_snapshot`]
    /// (the slot remembers `path` for reloads) without re-reading the file.
    pub fn add_loaded_snapshot(
        &mut self,
        name: &str,
        loaded: LoadedLake,
        path: &Path,
    ) -> Result<(), String> {
        self.check_name(name)?;
        let service = LakeService::with_shared(
            loaded,
            self.config.clone(),
            path.display().to_string(),
            name,
            Arc::clone(&self.metrics),
        );
        self.slots.push(LakeSlot::new(name, Some(path.to_path_buf()), service));
        Ok(())
    }

    /// Register an already-loaded lake (tests, in-process embedding). The
    /// slot has no snapshot path, so reloading it requires an explicit
    /// `path` in the reload request.
    pub fn add_loaded(
        &mut self,
        name: &str,
        loaded: LoadedLake,
        origin: &str,
    ) -> Result<(), String> {
        self.check_name(name)?;
        let service = LakeService::with_shared(
            loaded,
            self.config.clone(),
            origin,
            name,
            Arc::clone(&self.metrics),
        );
        self.slots.push(LakeSlot::new(name, None, service));
        Ok(())
    }

    /// Finish the build. Fails on an empty router — a daemon must host at
    /// least one lake.
    pub fn build(self) -> Result<Router, String> {
        if self.slots.is_empty() {
            return Err("a router needs at least one lake".into());
        }
        Ok(Router {
            slots: self.slots,
            base_config: self.config,
            metrics: self.metrics,
            started: Instant::now(),
            served: AtomicU64::new(0),
            draining: Arc::new(AtomicBool::new(false)),
            degraded: self.degraded,
        })
    }
}

/// The multi-lake request router — see the module docs for the locking
/// story. The server holds one of these in an `Arc` shared by every worker.
pub struct Router {
    slots: Vec<LakeSlot>,
    base_config: GenTConfig,
    metrics: Arc<HttpMetrics>,
    started: Instant,
    served: AtomicU64,
    /// Set by [`crate::ServerHandle::begin_drain`]/`stop`: readiness
    /// (`GET /healthz/ready`) answers 503 and every response advertises
    /// `Connection: close`, steering load balancers and pooled clients
    /// away while in-flight work completes. Liveness is unaffected.
    draining: Arc<AtomicBool>,
    /// Open snapshots in degraded (quarantining) mode on reload and
    /// ingest swaps — see [`RouterBuilder::set_degraded`].
    degraded: bool,
}

impl Router {
    /// Start building a router whose lakes all reclaim with `config` (the
    /// base that per-request overrides are applied on top of).
    pub fn builder(config: GenTConfig) -> RouterBuilder {
        RouterBuilder {
            config,
            metrics: LakeService::fresh_metrics(),
            slots: Vec::new(),
            degraded: false,
        }
    }

    /// Wrap a single pre-built service — the compatibility path behind
    /// [`crate::Server::bind`], and the cheapest way to serve one lake.
    pub fn single(service: LakeService) -> Router {
        let metrics = service.metrics_arc();
        let base_config = service.base_config().clone();
        let name = service.lake_label().to_string();
        Router {
            slots: vec![LakeSlot::new(&name, None, service)],
            base_config,
            metrics,
            started: Instant::now(),
            served: AtomicU64::new(0),
            draining: Arc::new(AtomicBool::new(false)),
            degraded: false,
        }
    }

    /// The routing names of the hosted lakes, default first.
    pub fn lake_names(&self) -> Vec<String> {
        self.slots.iter().map(|s| s.name.clone()).collect()
    }

    /// Requests answered so far, across all lakes.
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    pub(crate) fn http_metrics(&self) -> &HttpMetrics {
        &self.metrics
    }

    /// The drain flag shared with the server's [`crate::ServerHandle`].
    pub(crate) fn draining_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.draining)
    }

    /// Is the daemon draining (readiness withdrawn, connections closing)?
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn slot(&self, name: Option<&str>) -> Result<&LakeSlot, ApiError> {
        match name {
            None => Ok(&self.slots[0]),
            Some(n) => self.slots.iter().find(|s| s.name == n).ok_or_else(|| {
                ApiError::new(
                    404,
                    "unknown_lake",
                    format!("no lake named `{n}`; GET /lakes lists the hosted lakes"),
                )
            }),
        }
    }

    /// Answer one connection's worth of input (see
    /// [`LakeService::respond`] for the envelope guarantees — same
    /// envelope, shared implementation).
    pub fn respond(&self, input: Result<Request, HttpError>) -> Response {
        self.served.fetch_add(1, Ordering::Relaxed);
        respond_enveloped(&self.metrics, input, |request| self.route(request))
    }

    fn route(&self, request: &Request) -> Result<Response, ApiError> {
        let (path, query) = match request.path.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (request.path.as_str(), None),
        };
        match (request.method.as_str(), path) {
            ("GET", "/healthz") => Ok(self.healthz()),
            ("GET", "/healthz/live") => Ok(self.liveness()),
            ("GET", "/healthz/ready") => Ok(self.readiness()),
            ("GET", "/lakes") => Ok(self.list_lakes()),
            ("GET", "/lake/stat") => {
                let slot = self.slot(query_param(query, "lake"))?;
                Ok(with_generation(slot.service().lake_stat(), slot))
            }
            ("GET", "/metrics") => Ok(self.metrics_all()),
            ("POST", "/reclaim") => {
                let body = parse_json_body(&request.body)?;
                let slot = self.slot(body_lake(&body)?)?;
                slot.service().reclaim_body(&body).map(|r| with_generation(r, slot))
            }
            ("POST", "/reclaim/batch") => {
                let body = parse_json_body(&request.body)?;
                self.reclaim_batch(&body)
            }
            ("POST", "/admin/reload") => {
                let body = parse_json_body(&request.body)?;
                self.admin_reload(&body)
            }
            ("POST", "/admin/ingest") => {
                let body = parse_json_body(&request.body)?;
                self.admin_ingest(&body)
            }
            ("POST", "/admin/compact") => {
                let body = parse_json_body(&request.body)?;
                self.admin_compact(&body)
            }
            (
                _,
                "/healthz" | "/healthz/live" | "/healthz/ready" | "/lakes" | "/lake/stat"
                | "/metrics",
            ) => Err(ApiError::new(
                405,
                "bad_method",
                format!("{} does not accept {}; use GET", path, request.method),
            )),
            (
                _,
                "/reclaim" | "/reclaim/batch" | "/admin/reload" | "/admin/ingest"
                | "/admin/compact",
            ) => Err(ApiError::new(
                405,
                "bad_method",
                format!("{} does not accept {}; use POST", path, request.method),
            )),
            _ => Err(ApiError::new(404, "unknown_path", format!("no such endpoint `{path}`"))),
        }
    }

    /// `GET /healthz/live`: is the process able to answer at all? Always
    /// 200 while the daemon runs — draining does not affect liveness, so
    /// orchestrators keep the process alive while it finishes its work.
    fn liveness(&self) -> Response {
        Response::ok(Json::Object(vec![("status".into(), Json::str("live"))]).render())
    }

    /// `GET /healthz/ready`: should new traffic be sent here? 200 while
    /// serving; 503 + `Retry-After` once draining begins, so load
    /// balancers route away *before* the listener closes.
    fn readiness(&self) -> Response {
        if self.is_draining() {
            return ApiError::new(
                503,
                "draining",
                "daemon is draining; in-flight requests finish, new traffic should go elsewhere",
            )
            .to_response()
            .with_header("Retry-After", "1");
        }
        Response::ok(
            Json::Object(vec![
                ("status".into(), Json::str("ready")),
                ("lakes".into(), Json::Int(self.slots.len() as i64)),
            ])
            .render(),
        )
    }

    fn healthz(&self) -> Response {
        let default = self.slots[0].service();
        Response::ok(
            Json::Object(vec![
                ("status".into(), Json::str("ok")),
                ("tables".into(), Json::Int(default.lake().len() as i64)),
                ("uptime_secs".into(), Json::Float(self.started.elapsed().as_secs_f64())),
                ("requests_served".into(), Json::Int(self.requests_served() as i64)),
                ("lakes".into(), Json::Int(self.slots.len() as i64)),
            ])
            .render(),
        )
    }

    fn list_lakes(&self) -> Response {
        let lakes: Vec<Json> = self
            .slots
            .iter()
            .map(|slot| {
                let service = slot.service();
                Json::Object(vec![
                    ("name".into(), Json::str(slot.name.clone())),
                    ("origin".into(), Json::str(service.origin())),
                    ("tables".into(), Json::Int(service.lake().len() as i64)),
                    (
                        "generation".into(),
                        Json::Int(slot.generation.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "path".into(),
                        match &*slot.path.read() {
                            Some(p) => Json::str(p.display().to_string()),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect();
        Response::ok(
            Json::Object(vec![
                ("default".into(), Json::str(self.slots[0].name.clone())),
                ("lakes".into(), Json::Array(lakes)),
            ])
            .render(),
        )
    }

    /// `GET /metrics` for the whole daemon: refresh every slot's labelled
    /// decode gauges, stamp uptime from the router's start, render the
    /// process-global registry followed by the shared HTTP registry.
    fn metrics_all(&self) -> Response {
        for slot in &self.slots {
            slot.service().sample_lake_gauges();
        }
        self.metrics
            .uptime_seconds
            .set(i64::try_from(self.started.elapsed().as_secs()).unwrap_or(i64::MAX));
        render_metrics(&self.metrics)
    }

    /// `POST /reclaim/batch`: N sources against one lake, validated
    /// upfront (any malformed entry fails the whole batch before work
    /// starts), then run sequentially through **one shared
    /// [`DiscoveryCache`]** — sources from the same lake region repeat the
    /// same containment probes, and the memo answers repeats instead of
    /// rescanning the inverted index. Per-source results are rendered by
    /// the same code as single `/reclaim` responses, so batch ≡ sequential
    /// byte-for-byte (modulo timings). Runtime pipeline failures degrade to
    /// per-source error objects; the batch itself still answers 200.
    fn reclaim_batch(&self, body: &Json) -> Result<Response, ApiError> {
        let batch_slot = self.slot(body_lake(body)?)?;
        let service = batch_slot.service();
        let sources_json = body.get("sources").and_then(Json::as_array).ok_or_else(|| {
            ApiError::new(400, "bad_json", "`sources` must be an array of reclaim requests")
        })?;
        if sources_json.is_empty() {
            return Err(ApiError::new(400, "empty_batch", "`sources` must not be empty"));
        }
        let cfg = effective_config(service.base_config(), body)?;
        let mut parsed = Vec::with_capacity(sources_json.len());
        let mut seen = std::collections::HashSet::new();
        for (i, item) in sources_json.iter().enumerate() {
            let source = service.parse_source(item).map_err(|e| {
                ApiError::new(e.status, e.kind, format!("sources[{i}]: {}", e.message))
            })?;
            if !seen.insert(source.name().to_string()) {
                return Err(ApiError::new(
                    400,
                    "duplicate_source",
                    format!(
                        "sources[{i}] duplicates source name `{}`; batch entries must be distinct",
                        source.name()
                    ),
                ));
            }
            parsed.push(source);
        }

        let mut cache = DiscoveryCache::new();
        let mut discovery = std::time::Duration::ZERO;
        let mut results = Vec::with_capacity(parsed.len());
        for source in &parsed {
            let source: &Table = source;
            match service.run_reclaim(source, cfg.as_ref(), Some(&mut cache)) {
                Ok(result) => {
                    discovery += result.timings.discovery;
                    results.push(reclamation_json(source.name(), &result, cfg.as_ref()));
                }
                Err(e) => results.push(Json::Object(vec![
                    ("source".into(), Json::str(source.name())),
                    (
                        "error".into(),
                        Json::Object(vec![
                            ("kind".into(), Json::str(pipeline_error_kind(&e))),
                            ("message".into(), Json::str(e.to_string())),
                        ]),
                    ),
                ])),
            }
        }

        let instruments = self.metrics.batch(service.lake_label());
        instruments.requests.inc();
        instruments.sources.add(parsed.len() as u64);
        instruments.memo_hits.add(cache.hits());
        instruments.memo_misses.add(cache.misses());
        instruments.discovery_us.observe(u64::try_from(discovery.as_micros()).unwrap_or(u64::MAX));

        Ok(with_generation(
            Response::ok(
                Json::Object(vec![
                    ("lake".into(), Json::str(service.lake_label())),
                    ("count".into(), Json::Int(parsed.len() as i64)),
                    ("results".into(), Json::Array(results)),
                    (
                        "discovery".into(),
                        Json::Object(vec![
                            ("memo_hits".into(), Json::Int(cache.hits() as i64)),
                            ("memo_misses".into(), Json::Int(cache.misses() as i64)),
                            ("discovery_ms".into(), Json::Float(discovery.as_secs_f64() * 1e3)),
                        ]),
                    ),
                ])
                .render(),
            ),
            batch_slot,
        ))
    }

    /// `POST /admin/reload`: atomically replace one lake's snapshot. The
    /// replacement loads entirely off-lock (a corrupt or missing file
    /// answers 422 and leaves the live snapshot untouched); only the
    /// pointer swap takes the write lock. In-flight requests complete
    /// against the snapshot they cloned at dispatch.
    fn admin_reload(&self, body: &Json) -> Result<Response, ApiError> {
        let slot = self.slot(body_lake(body)?)?;
        let path = match body.get("path") {
            Some(p) => PathBuf::from(
                p.as_str()
                    .ok_or_else(|| ApiError::new(400, "bad_json", "`path` must be a string"))?,
            ),
            None => slot.path.read().clone().ok_or_else(|| {
                ApiError::new(
                    400,
                    "bad_json",
                    format!("lake `{}` was not loaded from a snapshot; pass `path`", slot.name),
                )
            })?,
        };
        let (service, generation) = self.swap_in(slot, &path)?;
        self.metrics.reloads(&slot.name).inc();
        Ok(Response::ok(
            Json::Object(vec![
                ("lake".into(), Json::str(slot.name.clone())),
                ("path".into(), Json::str(path.display().to_string())),
                ("generation".into(), Json::Int(generation as i64)),
                ("tables".into(), Json::Int(service.lake().len() as i64)),
            ])
            .render(),
        )
        .with_header("X-Gent-Generation", generation.to_string()))
    }

    /// Load `path` (honouring degraded mode), swap it into `slot` under a
    /// brief write lock, and bump the generation. The load runs entirely
    /// off-lock: a corrupt file answers 422 and the live snapshot is
    /// untouched.
    fn swap_in(&self, slot: &LakeSlot, path: &Path) -> Result<(Arc<LakeService>, u64), ApiError> {
        let loaded = if self.degraded {
            gent_store::load_degraded(path)
        } else {
            SnapshotFile(path.to_path_buf()).load_lake()
        }
        .map_err(|e| {
            ApiError::new(422, "reload_failed", format!("cannot load `{}`: {e}", path.display()))
        })?;
        let service = Arc::new(LakeService::with_shared(
            loaded,
            self.base_config.clone(),
            path.display().to_string(),
            &slot.name,
            Arc::clone(&self.metrics),
        ));
        *slot.current.write() = Arc::clone(&service);
        *slot.path.write() = Some(path.to_path_buf());
        let generation = slot.generation.fetch_add(1, Ordering::SeqCst) + 1;
        Ok((service, generation))
    }

    /// `POST /admin/ingest`: `{"lake"?, "tables": [<inline table>, …]}` —
    /// append the tables to the lake's snapshot as one crash-safe delta
    /// frame, then make them live with the same off-lock load +
    /// pointer-swap as `/admin/reload`. The append itself holds only the
    /// slot's ingest mutex: request traffic keeps answering from the
    /// in-memory snapshot the whole time, and the frame is fsynced +
    /// commit-marked before the swap, so an acknowledged ingest survives
    /// any crash. Once the frame log reaches
    /// [`COMPACT_FRAME_THRESHOLD`], the log is folded into a clean base
    /// inline before the swap.
    fn admin_ingest(&self, body: &Json) -> Result<Response, ApiError> {
        let slot = self.slot(body_lake(body)?)?;
        let path = slot.path.read().clone().ok_or_else(|| {
            ApiError::new(
                400,
                "bad_json",
                format!(
                    "lake `{}` was not loaded from a snapshot; ingest needs a durable file",
                    slot.name
                ),
            )
        })?;
        let tables_json = body.get("tables").and_then(Json::as_array).ok_or_else(|| {
            ApiError::new(400, "bad_json", "`tables` must be an array of inline tables")
        })?;
        if tables_json.is_empty() {
            return Err(ApiError::new(400, "empty_ingest", "`tables` must not be empty"));
        }
        let mut tables = Vec::with_capacity(tables_json.len());
        let mut seen = std::collections::HashSet::new();
        let live = slot.service();
        for (i, item) in tables_json.iter().enumerate() {
            let t = table_from_json(item).map_err(|e| {
                ApiError::new(e.status, e.kind, format!("tables[{i}]: {}", e.message))
            })?;
            if live.lake().get_by_name(t.name()).is_some() || !seen.insert(t.name().to_string()) {
                return Err(ApiError::new(
                    409,
                    "duplicate_table",
                    format!("tables[{i}]: the lake already has a table named `{}`", t.name()),
                ));
            }
            tables.push(t);
        }

        // Serialize writers; readers never wait on this lock.
        let guard = slot.ingest.lock();
        let outcome = gent_store::append_tables(&path, &tables).map_err(|e| {
            ApiError::new(422, "ingest_failed", format!("append to `{}`: {e}", path.display()))
        })?;
        // The frame is durable from here on — compaction or swap failures
        // can no longer lose it.
        let compacted = if outcome.frames_after >= COMPACT_FRAME_THRESHOLD {
            match gent_store::compact(&path) {
                Ok(folded) => folded > 0,
                Err(e) => {
                    gent_obs::log(
                        gent_obs::Level::Warn,
                        "gent_serve::ingest",
                        "inline compaction failed; frames remain on disk",
                        &[("lake", slot.name.as_str().into()), ("error", e.to_string().into())],
                    );
                    false
                }
            }
        } else {
            false
        };
        let (service, generation) = self.swap_in(slot, &path)?;
        drop(guard);

        self.metrics.ingests(&slot.name).inc();
        if compacted {
            self.metrics.lake_compactions(&slot.name).inc();
        }
        Ok(Response::ok(
            Json::Object(vec![
                ("lake".into(), Json::str(slot.name.clone())),
                ("appended".into(), Json::Int(tables.len() as i64)),
                ("tables".into(), Json::Int(service.lake().len() as i64)),
                ("frames".into(), Json::Int(service.n_frames() as i64)),
                ("compacted".into(), Json::Bool(compacted)),
                ("recovered_torn_tail".into(), Json::Bool(outcome.truncated_torn_tail)),
                ("generation".into(), Json::Int(generation as i64)),
            ])
            .render(),
        )
        .with_header("X-Gent-Generation", generation.to_string()))
    }

    /// `POST /admin/compact`: fold the lake's delta-frame log into a clean
    /// base file and swap the compacted snapshot live. A frameless lake
    /// answers 200 with `folded: 0` and no swap.
    fn admin_compact(&self, body: &Json) -> Result<Response, ApiError> {
        let slot = self.slot(body_lake(body)?)?;
        let path = slot.path.read().clone().ok_or_else(|| {
            ApiError::new(
                400,
                "bad_json",
                format!("lake `{}` was not loaded from a snapshot; nothing to compact", slot.name),
            )
        })?;
        let guard = slot.ingest.lock();
        let folded = gent_store::compact(&path).map_err(|e| {
            ApiError::new(422, "compact_failed", format!("compact `{}`: {e}", path.display()))
        })?;
        let (service, generation) = if folded > 0 {
            let swapped = self.swap_in(slot, &path)?;
            self.metrics.lake_compactions(&slot.name).inc();
            swapped
        } else {
            (slot.service(), slot.generation.load(Ordering::SeqCst))
        };
        drop(guard);
        Ok(Response::ok(
            Json::Object(vec![
                ("lake".into(), Json::str(slot.name.clone())),
                ("folded".into(), Json::Int(folded as i64)),
                ("tables".into(), Json::Int(service.lake().len() as i64)),
                ("generation".into(), Json::Int(generation as i64)),
            ])
            .render(),
        )
        .with_header("X-Gent-Generation", generation.to_string()))
    }
}

/// Stamp a slot-routed response with the snapshot generation it answered
/// from, so retrying clients can tell when a `/admin/reload` swap happened
/// between attempts (see [`crate::client::RetryClient`]).
fn with_generation(response: Response, slot: &LakeSlot) -> Response {
    let generation = slot.generation.load(Ordering::SeqCst);
    response.with_header("X-Gent-Generation", generation.to_string())
}

/// Pull the optional `"lake"` routing field out of a POST body.
fn body_lake(body: &Json) -> Result<Option<&str>, ApiError> {
    match body.get("lake") {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| ApiError::new(400, "bad_json", "`lake` must be a string")),
    }
}

/// Find `key=` in a raw query string. No percent-decoding: lake names are
/// restricted to an alphabet that never needs it.
fn query_param<'a>(query: Option<&'a str>, key: &str) -> Option<&'a str> {
    query?.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_store::{InMemory, LakeSource};
    use gent_table::Value as V;

    fn lake_tables(tag: &str) -> Vec<Table> {
        vec![
            Table::build(
                &format!("{tag}_people"),
                &["id", "name", "age"],
                &[],
                vec![
                    vec![V::Int(0), V::str("Smith"), V::Int(27)],
                    vec![V::Int(1), V::str("Brown"), V::Int(24)],
                ],
            )
            .unwrap(),
            Table::build(
                &format!("{tag}_ids"),
                &["id", "name"],
                &[],
                vec![vec![V::Int(0), V::str("Smith")], vec![V::Int(1), V::str("Brown")]],
            )
            .unwrap(),
        ]
    }

    fn router() -> Router {
        let mut b = Router::builder(GenTConfig::default());
        for name in ["alpha", "beta"] {
            let loaded = InMemory::new(lake_tables(name)).load_lake().unwrap();
            b.add_loaded(name, loaded, &format!("{name} origin")).unwrap();
        }
        b.build().unwrap()
    }

    fn get(path: &str) -> Request {
        Request { method: "GET".into(), path: path.into(), headers: vec![], body: vec![] }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn builder_rejects_bad_names() {
        let mut b = Router::builder(GenTConfig::default());
        let loaded = InMemory::new(lake_tables("x")).load_lake().unwrap();
        b.add_loaded("ok-name", loaded, "o").unwrap();
        let loaded = InMemory::new(lake_tables("x")).load_lake().unwrap();
        assert!(b.add_loaded("ok-name", loaded, "o").unwrap_err().contains("duplicate"));
        let loaded = InMemory::new(lake_tables("x")).load_lake().unwrap();
        assert!(b.add_loaded("bad name!", loaded, "o").unwrap_err().contains("invalid"));
        assert!(Router::builder(GenTConfig::default()).build().is_err());
    }

    #[test]
    fn lakes_listing_and_healthz_count() {
        let r = router();
        let resp = r.respond(Ok(get("/lakes")));
        assert_eq!(resp.status, 200);
        let v = Json::parse(&resp.body).unwrap();
        assert_eq!(v.get("default").and_then(Json::as_str), Some("alpha"));
        let lakes = v.get("lakes").and_then(Json::as_array).unwrap();
        assert_eq!(lakes.len(), 2);
        assert_eq!(lakes[1].get("name").and_then(Json::as_str), Some("beta"));
        assert_eq!(lakes[1].get("origin").and_then(Json::as_str), Some("beta origin"));
        let health = Json::parse(&r.respond(Ok(get("/healthz"))).body).unwrap();
        assert_eq!(health.get("lakes").and_then(Json::as_i64), Some(2));
    }

    #[test]
    fn reclaim_routes_by_lake_field() {
        let r = router();
        // Default route: alpha's tables resolve, beta's don't.
        let ok = r.respond(Ok(post("/reclaim", r#"{"source_name": "alpha_ids", "key": ["id"]}"#)));
        assert_eq!(ok.status, 200, "{}", ok.body);
        let routed = r.respond(Ok(post(
            "/reclaim",
            r#"{"lake": "beta", "source_name": "beta_ids", "key": ["id"]}"#,
        )));
        assert_eq!(routed.status, 200, "{}", routed.body);
        let wrong =
            r.respond(Ok(post("/reclaim", r#"{"source_name": "beta_ids", "key": ["id"]}"#)));
        assert_eq!(wrong.status, 404, "beta's table must not resolve on alpha");
        let unknown = r.respond(Ok(post("/reclaim", r#"{"lake": "nope", "source_name": "x"}"#)));
        assert_eq!(unknown.status, 404);
        let v = Json::parse(&unknown.body).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Json::as_str),
            Some("unknown_lake")
        );
    }

    #[test]
    fn stat_routes_by_query_param() {
        let r = router();
        let v = Json::parse(&r.respond(Ok(get("/lake/stat?lake=beta"))).body).unwrap();
        assert_eq!(v.get("origin").and_then(Json::as_str), Some("beta origin"));
        assert_eq!(r.respond(Ok(get("/lake/stat?lake=nope"))).status, 404);
    }

    #[test]
    fn overrides_are_validated_and_echoed() {
        let r = router();
        let body = r#"{"source_name": "alpha_ids", "key": ["id"],
            "overrides": {"tau": 0.5, "max_candidates": 100000}}"#;
        let resp = r.respond(Ok(post("/reclaim", body)));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        let cfg = v.get("config").expect("overridden requests echo the effective config");
        assert_eq!(cfg.get("tau").and_then(Json::as_f64), Some(0.5));
        // Clamped server-side, not rejected.
        assert_eq!(
            cfg.get("max_candidates").and_then(Json::as_i64),
            Some(crate::service::MAX_CANDIDATES_CAP as i64)
        );
        // No overrides → no config block (pre-override responses unchanged).
        let plain =
            r.respond(Ok(post("/reclaim", r#"{"source_name": "alpha_ids", "key": ["id"]}"#)));
        assert!(Json::parse(&plain.body).unwrap().get("config").is_none());
        // Out-of-range tau is a structured 422.
        let bad = r.respond(Ok(post(
            "/reclaim",
            r#"{"source_name": "alpha_ids", "key": ["id"], "overrides": {"tau": 1.5}}"#,
        )));
        assert_eq!(bad.status, 422, "{}", bad.body);
        let v = Json::parse(&bad.body).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Json::as_str),
            Some("bad_override")
        );
    }

    #[test]
    fn batch_validates_and_answers_per_source() {
        let r = router();
        let empty = r.respond(Ok(post("/reclaim/batch", r#"{"sources": []}"#)));
        assert_eq!(empty.status, 400);
        let v = Json::parse(&empty.body).unwrap();
        assert_eq!(v.get("error").unwrap().get("kind").and_then(Json::as_str), Some("empty_batch"));
        let dup = r.respond(Ok(post(
            "/reclaim/batch",
            r#"{"sources": [{"source_name": "alpha_ids", "key": ["id"]},
                            {"source_name": "alpha_ids", "key": ["id"]}]}"#,
        )));
        assert_eq!(dup.status, 400);
        let v = Json::parse(&dup.body).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Json::as_str),
            Some("duplicate_source")
        );
        let ok = r.respond(Ok(post(
            "/reclaim/batch",
            r#"{"lake": "beta",
                "sources": [{"source_name": "beta_ids", "key": ["id"]},
                            {"source_name": "beta_people", "key": ["id"]}]}"#,
        )));
        assert_eq!(ok.status, 200, "{}", ok.body);
        let v = Json::parse(&ok.body).unwrap();
        assert_eq!(v.get("lake").and_then(Json::as_str), Some("beta"));
        assert_eq!(v.get("count").and_then(Json::as_i64), Some(2));
        let results = v.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 2);
        for res in results {
            assert!(res.get("reclaimed").is_some(), "{}", ok.body);
        }
        let disc = v.get("discovery").expect("batch responses report memo effectiveness");
        assert!(disc.get("memo_hits").and_then(Json::as_i64).unwrap() >= 0);
        assert!(disc.get("memo_misses").and_then(Json::as_i64).unwrap() > 0);
    }

    #[test]
    fn reload_swaps_snapshot_and_bumps_generation() {
        let dir = std::env::temp_dir().join(format!("gent-routing-reload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let v1 = dir.join("v1.gentlake");
        let v2 = dir.join("v2.gentlake");
        let lake1 = gent_discovery::DataLake::from_tables(lake_tables("one"));
        let lake2 = gent_discovery::DataLake::from_tables(lake_tables("two"));
        gent_store::snapshot::save(&v1, &lake1, None).unwrap();
        gent_store::snapshot::save(&v2, &lake2, None).unwrap();

        let mut b = Router::builder(GenTConfig::default());
        b.add_snapshot("main", &v1).unwrap();
        let r = b.build().unwrap();

        // v1 serves one_ids; v2's tables don't exist yet.
        assert_eq!(
            r.respond(Ok(post("/reclaim", r#"{"source_name": "one_ids", "key": ["id"]}"#))).status,
            200
        );
        // Reload to v2 (explicit path), generation bumps.
        let swap = r.respond(Ok(post(
            "/admin/reload",
            &format!(r#"{{"lake": "main", "path": "{}"}}"#, v2.display()),
        )));
        assert_eq!(swap.status, 200, "{}", swap.body);
        let v = Json::parse(&swap.body).unwrap();
        assert_eq!(v.get("generation").and_then(Json::as_i64), Some(1));
        assert_eq!(
            r.respond(Ok(post("/reclaim", r#"{"source_name": "two_ids", "key": ["id"]}"#))).status,
            200,
            "after reload the new snapshot's tables resolve"
        );
        assert_eq!(
            r.respond(Ok(post("/reclaim", r#"{"source_name": "one_ids", "key": ["id"]}"#))).status,
            404,
            "after reload the old snapshot's tables are gone"
        );
        // Pathless reload re-reads the remembered path.
        let again = r.respond(Ok(post("/admin/reload", r#"{"lake": "main"}"#)));
        assert_eq!(again.status, 200, "{}", again.body);
        assert_eq!(
            Json::parse(&again.body).unwrap().get("generation").and_then(Json::as_i64),
            Some(2)
        );
        // A missing file is a structured 422 and the live snapshot survives.
        let bad = r.respond(Ok(post(
            "/admin/reload",
            &format!(r#"{{"lake": "main", "path": "{}"}}"#, dir.join("nope.gentlake").display()),
        )));
        assert_eq!(bad.status, 422, "{}", bad.body);
        let v = Json::parse(&bad.body).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Json::as_str),
            Some("reload_failed")
        );
        assert_eq!(
            r.respond(Ok(post("/reclaim", r#"{"source_name": "two_ids", "key": ["id"]}"#))).status,
            200,
            "failed reload must not disturb the live snapshot"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_appends_swaps_and_compacts_at_threshold() {
        let dir = std::env::temp_dir().join(format!("gent-routing-ingest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("live.gentlake");
        let lake = gent_discovery::DataLake::from_tables(lake_tables("one"));
        gent_store::snapshot::save(&snap, &lake, None).unwrap();

        let mut b = Router::builder(GenTConfig::default());
        b.add_snapshot("main", &snap).unwrap();
        let r = b.build().unwrap();

        let ingest_body = |name: &str| {
            format!(
                r#"{{"lake": "main", "tables": [{{"name": "{name}",
                    "columns": ["id", "tag"],
                    "rows": [[1, "x"], [2, "y"]]}}]}}"#
            )
        };

        // A memory-only lake (no snapshot path) cannot ingest.
        let memless = router().respond(Ok(post("/admin/ingest", &ingest_body("t"))));
        assert_eq!(memless.status, 404, "{}", memless.body); // router() has no "main"

        // First ingest: table appears, generation bumps, frame count is 1.
        let first = r.respond(Ok(post("/admin/ingest", &ingest_body("fresh_a"))));
        assert_eq!(first.status, 200, "{}", first.body);
        let v = Json::parse(&first.body).unwrap();
        assert_eq!(v.get("appended").and_then(Json::as_i64), Some(1));
        assert_eq!(v.get("tables").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("frames").and_then(Json::as_i64), Some(1));
        assert_eq!(v.get("compacted").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("generation").and_then(Json::as_i64), Some(1));
        assert!(
            first.headers.iter().any(|(k, v)| k == "X-Gent-Generation" && v == "1"),
            "{:?}",
            first.headers
        );
        assert_eq!(
            r.respond(Ok(post("/reclaim", r#"{"source_name": "fresh_a", "key": ["id"]}"#))).status,
            200,
            "ingested table must be reclaimable immediately"
        );

        // Duplicate names are rejected without touching the file.
        let dup = r.respond(Ok(post("/admin/ingest", &ingest_body("fresh_a"))));
        assert_eq!(dup.status, 409, "{}", dup.body);
        let v = Json::parse(&dup.body).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Json::as_str),
            Some("duplicate_table")
        );
        let empty = r.respond(Ok(post("/admin/ingest", r#"{"lake": "main", "tables": []}"#)));
        assert_eq!(empty.status, 400, "{}", empty.body);

        // Keep ingesting until the frame log hits the threshold: the
        // response that crosses it reports compacted=true and frames resets.
        let mut compacted_seen = false;
        for i in 0..COMPACT_FRAME_THRESHOLD {
            let resp = r.respond(Ok(post("/admin/ingest", &ingest_body(&format!("fresh_b{i}")))));
            assert_eq!(resp.status, 200, "{}", resp.body);
            let v = Json::parse(&resp.body).unwrap();
            if v.get("compacted").and_then(Json::as_bool) == Some(true) {
                assert_eq!(v.get("frames").and_then(Json::as_i64), Some(0));
                compacted_seen = true;
            }
        }
        assert!(compacted_seen, "crossing the frame threshold must auto-compact");
        let (frames, _) = gent_store::frame_count(&snap).unwrap();
        assert!(frames < COMPACT_FRAME_THRESHOLD, "on-disk frame log was folded");

        // Explicit compact folds whatever is left and is a no-op when clean.
        let c = r.respond(Ok(post("/admin/compact", r#"{"lake": "main"}"#)));
        assert_eq!(c.status, 200, "{}", c.body);
        assert_eq!(gent_store::frame_count(&snap).unwrap().0, 0);
        let again = r.respond(Ok(post("/admin/compact", r#"{"lake": "main"}"#)));
        let v = Json::parse(&again.body).unwrap();
        assert_eq!(v.get("folded").and_then(Json::as_i64), Some(0));

        // Everything ingested survives the compactions.
        for name in ["one_ids", "fresh_a", "fresh_b0"] {
            let body = format!(r#"{{"source_name": "{name}", "key": ["id"]}}"#);
            assert_eq!(r.respond(Ok(post("/reclaim", &body))).status, 200, "{name}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_scrape_labels_every_lake() {
        let r = router();
        r.respond(Ok(post("/reclaim", r#"{"source_name": "alpha_ids", "key": ["id"]}"#)));
        let body = r.respond(Ok(get("/metrics"))).body;
        assert!(body.contains("gent_lake_tables_decoded{lake=\"alpha\"}"), "{body}");
        assert!(body.contains("gent_lake_tables_decoded{lake=\"beta\"}"), "{body}");
        assert!(body.contains("gent_http_requests_total{endpoint=\"reclaim\"} 1"), "{body}");
    }
}
