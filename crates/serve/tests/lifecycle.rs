//! Lifecycle suite: liveness/readiness split, graceful drain, bounded
//! shutdown, and worker-panic containment under injected faults.
//!
//! Fault state (`gent_faults`) is process-global, so every test here —
//! including the ones that never arm a site — serializes on one lock;
//! otherwise a site armed for one daemon could fire inside its neighbour.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gent_core::GenTConfig;
use gent_serve::{Json, LakeService, ServeConfig, Server, ServerHandle};
use gent_store::{InMemory, LakeSource};
use gent_table::{Table, Value as V};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn test_server(threads: usize, drain_deadline: Duration) -> Server {
    let tables = vec![Table::build(
        "t",
        &["id", "v"],
        &[],
        vec![vec![V::Int(1), V::str("a")], vec![V::Int(2), V::str("b")]],
    )
    .unwrap()];
    let loaded = InMemory::new(tables).load_lake().unwrap();
    let service = LakeService::new(loaded, GenTConfig::default(), "lifecycle lake");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        read_timeout: Duration::from_secs(10),
        drain_deadline,
        ..ServeConfig::default()
    };
    Server::bind(&cfg, service).unwrap()
}

fn boot(
    threads: usize,
    drain_deadline: Duration,
) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = test_server(threads, drain_deadline);
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

/// One exchange, returning (status, full head, body).
fn exchange(addr: SocketAddr, request: &str) -> std::io::Result<(u16, String, String)> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(10)))?;
    s.write_all(request.as_bytes())?;
    let mut text = String::new();
    s.read_to_string(&mut text)?;
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("no status line in: {text:?}")))?;
    let (head, body) = text.split_once("\r\n\r\n").unwrap_or((text.as_str(), ""));
    Ok((status, head.to_string(), body.to_string()))
}

fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String, String)> {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

#[test]
fn readiness_splits_from_liveness_and_drain_closes_connections() {
    let _g = locked();
    gent_faults::reset();
    let (addr, handle, runner) = boot(2, Duration::from_secs(5));

    // Serving: both probes answer 200, with distinct payloads.
    let (status, _, body) = get(addr, "/healthz/live").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"live\""), "{body}");
    let (status, _, body) = get(addr, "/healthz/ready").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ready\""), "{body}");
    // Probe methods are guarded like every other endpoint.
    let (status, _, _) =
        exchange(addr, "POST /healthz/ready HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
    assert_eq!(status, 405);

    // Drain begins: readiness is withdrawn with a structured, dated 503 —
    // but the daemon is still alive and still answering.
    handle.begin_drain();
    let (status, head, body) = get(addr, "/healthz/ready").unwrap();
    assert_eq!(status, 503, "{body}");
    assert!(head.contains("Retry-After:"), "503 must carry Retry-After: {head}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("error").unwrap().get("kind").and_then(Json::as_str), Some("draining"));
    let (status, _, body) = get(addr, "/healthz/live").unwrap();
    assert_eq!(status, 200, "liveness is not affected by draining: {body}");
    // Regular traffic still served, but keep-alive is refused so pooled
    // clients migrate off the dying daemon.
    let (status, head, body) =
        exchange(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n")
            .unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("Connection: close"), "draining responses must advertise close: {head}");

    handle.stop();
    runner.join().unwrap().unwrap();
}

/// A peer stalled mid-request cannot hold shutdown hostage: the drain
/// deadline force-closes its socket and `run()` returns promptly.
#[test]
fn drain_deadline_bounds_shutdown_with_a_stalled_peer() {
    let _g = locked();
    gent_faults::reset();
    let (addr, handle, runner) = boot(1, Duration::from_millis(300));

    // A slow-loris peer: opens the connection, sends half a request head,
    // then stalls. The single worker is now blocked reading it (its read
    // deadline is 10 s — far beyond the 300 ms drain budget).
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(b"GET /healthz HT").unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let begun = Instant::now();
    handle.stop();
    runner.join().unwrap().unwrap();
    let elapsed = begun.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "shutdown must be bounded by the drain deadline, took {elapsed:?}"
    );
    drop(loris);
}

/// An injected handler panic costs one connection, never a worker: with a
/// single-thread pool, the very next request is still answered, and the
/// scar shows up in `gent_worker_panics_total`.
#[test]
fn worker_panic_is_contained_respawned_and_counted() {
    let _g = locked();
    gent_faults::reset();
    let (addr, handle, runner) = boot(1, Duration::from_secs(5));

    gent_faults::arm("serve.worker.panic", gent_faults::Trigger::NthHit(1));
    gent_faults::set_enabled(true);

    // The panicking connection dies without an answer: either a reset
    // (Err) or an empty read — both are fine, a body is not.
    if let Ok((_, _, body)) = get(addr, "/healthz") {
        assert!(body.is_empty(), "panicked connection must not answer: {body}");
    }
    assert_eq!(gent_faults::fired("serve.worker.panic"), 1);
    gent_faults::reset();

    // Same (only) worker keeps serving.
    let (status, _, body) = get(addr, "/healthz").unwrap();
    assert_eq!(status, 200, "the pool must survive a handler panic: {body}");
    let (status, _, metrics) = get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("gent_worker_panics_total 1"), "the panic must be counted: {metrics}");

    handle.stop();
    runner.join().unwrap().unwrap();
}

/// Socket-boundary faults (connection reset before serving, mid-frame
/// truncation) cost only the connection they hit; the daemon stays
/// healthy and the next exchange is clean.
#[test]
fn injected_socket_faults_cost_one_connection_each() {
    let _g = locked();
    gent_faults::reset();
    let (addr, handle, runner) = boot(2, Duration::from_secs(5));

    gent_faults::arm("serve.conn.reset", gent_faults::Trigger::NthHit(1));
    gent_faults::set_enabled(true);
    if let Ok((_, _, body)) = get(addr, "/healthz") {
        assert!(body.is_empty(), "reset connection must not answer: {body}");
    }
    assert_eq!(gent_faults::fired("serve.conn.reset"), 1);

    gent_faults::arm("serve.write.truncate", gent_faults::Trigger::NthHit(1));
    // A truncated frame is unparseable as a full response; Ok or Err,
    // whatever arrived must be a prefix, not a complete exchange.
    let _ = get(addr, "/healthz");
    assert_eq!(gent_faults::fired("serve.write.truncate"), 1);
    gent_faults::reset();

    let (status, _, body) = get(addr, "/healthz").unwrap();
    assert_eq!(status, 200, "daemon must be clean after socket faults: {body}");

    handle.stop();
    runner.join().unwrap().unwrap();
}
