//! The hot-reload race suite: hammer a multi-lake daemon with concurrent
//! reclaims while `POST /admin/reload` swaps the snapshot under them —
//! against the same lake the traffic targets, and against a sibling lake.
//!
//! Invariants pinned here:
//! * zero 5xx (and in fact zero non-200) answers under the race;
//! * zero worker deaths — every client thread completes and the daemon
//!   still answers afterwards;
//! * every response is byte-valid JSON in the `/reclaim` wire shape;
//! * **snapshot atomicity** — each response's reclaimed rows come entirely
//!   from one snapshot generation (all `v1` or all `v2`, never a mix): an
//!   in-flight request finishes on the buffer it started on.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gent_core::GenTConfig;
use gent_discovery::DataLake;
use gent_serve::{Json, Router, ServeConfig, Server};
use gent_table::{Table, Value as V};

/// A lake whose every cell carries `tag`, so any response row reveals
/// which snapshot produced it.
fn tagged_lake(tag: &str) -> DataLake {
    let rows =
        |t: &str| (0..8).map(|i| vec![V::Int(i), V::str(format!("{t}_{i}"))]).collect::<Vec<_>>();
    DataLake::from_tables(vec![
        Table::build("marker", &["id", "val"], &["id"], rows(tag)).unwrap(),
        Table::build("aux", &["id", "val"], &["id"], rows(tag)).unwrap(),
    ])
}

fn save_snapshot(dir: &std::path::Path, name: &str, tag: &str) -> PathBuf {
    let path = dir.join(name);
    gent_store::snapshot::save(&path, &tagged_lake(tag), None).unwrap();
    path
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut text = String::new();
    s.read_to_string(&mut text).expect("read");
    let status: u16 =
        text.split_whitespace().nth(1).and_then(|t| t.parse().ok()).expect("status line");
    let payload = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("").to_string();
    (status, payload)
}

/// Every `val` cell of the reclaimed table must carry the same snapshot
/// tag; return it.
fn response_tag(body: &str) -> String {
    let v = Json::parse(body).unwrap_or_else(|e| panic!("unparseable response ({e}): {body}"));
    let rows = v
        .get("reclaimed")
        .and_then(|r| r.get("rows"))
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("response lacks reclaimed.rows: {body}"));
    assert!(!rows.is_empty(), "reclaimed table must not be empty: {body}");
    let mut tag: Option<String> = None;
    for row in rows {
        let cell = row.as_array().and_then(|r| r.get(1)).and_then(Json::as_str).unwrap();
        let row_tag = cell.split('_').next().unwrap().to_string();
        match &tag {
            None => tag = Some(row_tag),
            Some(t) => assert_eq!(
                t, &row_tag,
                "rows from two snapshot generations in one response: {body}"
            ),
        }
    }
    tag.unwrap()
}

#[test]
fn concurrent_reclaims_survive_hot_reloads() {
    let dir = std::env::temp_dir().join(format!("gent-reload-race-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v1 = save_snapshot(&dir, "v1.gentlake", "v1");
    let v2 = save_snapshot(&dir, "v2.gentlake", "v2");
    let other = save_snapshot(&dir, "other.gentlake", "other");

    let mut builder = Router::builder(GenTConfig::default());
    builder.add_snapshot("main", &v1).unwrap();
    builder.add_snapshot("other", &other).unwrap();
    let cfg = ServeConfig { addr: "127.0.0.1:0".into(), threads: 4, ..ServeConfig::default() };
    let server = Server::bind_router(&cfg, builder.build().unwrap()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let runner = std::thread::spawn(move || server.run());

    let stop = Arc::new(AtomicBool::new(false));
    // Four hammer threads on the reloading lake, two on the sibling: every
    // response must be a 200 from exactly one snapshot generation, and the
    // sibling lake must be completely unaffected by main's reloads.
    let hammers: Vec<_> = (0..6)
        .map(|i| {
            let stop = Arc::clone(&stop);
            let lake = if i < 4 { "main" } else { "other" };
            std::thread::spawn(move || {
                let body = format!(r#"{{"lake": "{lake}", "source_name": "marker"}}"#);
                let mut tags = std::collections::BTreeSet::new();
                let mut served = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let (status, payload) = http(addr, "POST", "/reclaim", &body);
                    assert_eq!(status, 200, "lake {lake}: {payload}");
                    tags.insert(response_tag(&payload));
                    served += 1;
                }
                (lake, tags, served)
            })
        })
        .collect();

    // Interleave 20 reload swaps (v1 ↔ v2) with the hammer traffic.
    let mut generations = Vec::new();
    for swap in 0..20u32 {
        let target = if swap % 2 == 0 { &v2 } else { &v1 };
        let body = format!(r#"{{"lake": "main", "path": "{}"}}"#, target.display());
        let (status, payload) = http(addr, "POST", "/admin/reload", &body);
        assert_eq!(status, 200, "swap {swap}: {payload}");
        let v = Json::parse(&payload).unwrap();
        generations.push(v.get("generation").and_then(Json::as_i64).unwrap());
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(generations, (1..=20).collect::<Vec<i64>>(), "generations must be monotone");

    stop.store(true, Ordering::Relaxed);
    let mut total = 0;
    for h in hammers {
        let (lake, tags, served) = h.join().expect("hammer thread must not die");
        assert!(served > 0, "lake {lake}: hammer never got a response in");
        total += served;
        match lake {
            // Main traffic raced 20 swaps: only the two snapshot tags may
            // ever appear, and with 20 swaps both almost surely do.
            "main" => assert!(
                tags.iter().all(|t| t == "v1" || t == "v2"),
                "main answered from an impossible snapshot: {tags:?}"
            ),
            _ => assert_eq!(
                tags.iter().collect::<Vec<_>>(),
                ["other"],
                "sibling lake must be untouched by main's reloads"
            ),
        }
    }

    // Daemon alive and accounting for the whole episode: 20 reloads on
    // `main`, zero on `other`, and a healthy scrape.
    let (status, health) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{health}");
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("gent_lake_reloads_total{lake=\"main\"} 20"),
        "reload counter: {metrics}"
    );
    assert!(!metrics.contains("gent_lake_reloads_total{lake=\"other\"}"), "{metrics}");
    assert!(total > 20, "the hammer actually overlapped the swaps (served {total})");

    handle.stop();
    runner.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
