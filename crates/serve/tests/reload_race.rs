//! The hot-reload race suite: hammer a multi-lake daemon with concurrent
//! reclaims while `POST /admin/reload` swaps the snapshot under them —
//! against the same lake the traffic targets, and against a sibling lake.
//!
//! Invariants pinned here:
//! * zero 5xx (and in fact zero non-200) answers under the race;
//! * zero worker deaths — every client thread completes and the daemon
//!   still answers afterwards;
//! * every response is byte-valid JSON in the `/reclaim` wire shape;
//! * **snapshot atomicity** — each response's reclaimed rows come entirely
//!   from one snapshot generation (all `v1` or all `v2`, never a mix): an
//!   in-flight request finishes on the buffer it started on.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gent_core::GenTConfig;
use gent_discovery::DataLake;
use gent_serve::{Json, Router, ServeConfig, Server};
use gent_table::{Table, Value as V};

/// Fault state is process-global; the fault-injected test below must not
/// overlap the hammer test (whose reloads would eat an armed trigger).
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// A lake whose every cell carries `tag`, so any response row reveals
/// which snapshot produced it.
fn tagged_lake(tag: &str) -> DataLake {
    let rows =
        |t: &str| (0..8).map(|i| vec![V::Int(i), V::str(format!("{t}_{i}"))]).collect::<Vec<_>>();
    DataLake::from_tables(vec![
        Table::build("marker", &["id", "val"], &["id"], rows(tag)).unwrap(),
        Table::build("aux", &["id", "val"], &["id"], rows(tag)).unwrap(),
    ])
}

fn save_snapshot(dir: &std::path::Path, name: &str, tag: &str) -> PathBuf {
    let path = dir.join(name);
    gent_store::snapshot::save(&path, &tagged_lake(tag), None).unwrap();
    path
}

fn http_full(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut text = String::new();
    s.read_to_string(&mut text).expect("read");
    let status: u16 =
        text.split_whitespace().nth(1).and_then(|t| t.parse().ok()).expect("status line");
    let (head, payload) = text.split_once("\r\n\r\n").unwrap_or((text.as_str(), ""));
    (status, head.to_string(), payload.to_string())
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, payload) = http_full(addr, method, path, body);
    (status, payload)
}

fn generation_header(head: &str) -> Option<i64> {
    head.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.eq_ignore_ascii_case("x-gent-generation").then(|| value.trim().parse().ok())?
    })
}

/// Every `val` cell of the reclaimed table must carry the same snapshot
/// tag; return it.
fn response_tag(body: &str) -> String {
    let v = Json::parse(body).unwrap_or_else(|e| panic!("unparseable response ({e}): {body}"));
    let rows = v
        .get("reclaimed")
        .and_then(|r| r.get("rows"))
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("response lacks reclaimed.rows: {body}"));
    assert!(!rows.is_empty(), "reclaimed table must not be empty: {body}");
    let mut tag: Option<String> = None;
    for row in rows {
        let cell = row.as_array().and_then(|r| r.get(1)).and_then(Json::as_str).unwrap();
        let row_tag = cell.split('_').next().unwrap().to_string();
        match &tag {
            None => tag = Some(row_tag),
            Some(t) => assert_eq!(
                t, &row_tag,
                "rows from two snapshot generations in one response: {body}"
            ),
        }
    }
    tag.unwrap()
}

#[test]
fn concurrent_reclaims_survive_hot_reloads() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!("gent-reload-race-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v1 = save_snapshot(&dir, "v1.gentlake", "v1");
    let v2 = save_snapshot(&dir, "v2.gentlake", "v2");
    let other = save_snapshot(&dir, "other.gentlake", "other");

    let mut builder = Router::builder(GenTConfig::default());
    builder.add_snapshot("main", &v1).unwrap();
    builder.add_snapshot("other", &other).unwrap();
    let cfg = ServeConfig { addr: "127.0.0.1:0".into(), threads: 4, ..ServeConfig::default() };
    let server = Server::bind_router(&cfg, builder.build().unwrap()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let runner = std::thread::spawn(move || server.run());

    let stop = Arc::new(AtomicBool::new(false));
    // Four hammer threads on the reloading lake, two on the sibling: every
    // response must be a 200 from exactly one snapshot generation, and the
    // sibling lake must be completely unaffected by main's reloads.
    let hammers: Vec<_> = (0..6)
        .map(|i| {
            let stop = Arc::clone(&stop);
            let lake = if i < 4 { "main" } else { "other" };
            std::thread::spawn(move || {
                let body = format!(r#"{{"lake": "{lake}", "source_name": "marker"}}"#);
                let mut tags = std::collections::BTreeSet::new();
                let mut served = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let (status, payload) = http(addr, "POST", "/reclaim", &body);
                    assert_eq!(status, 200, "lake {lake}: {payload}");
                    tags.insert(response_tag(&payload));
                    served += 1;
                }
                (lake, tags, served)
            })
        })
        .collect();

    // Interleave 20 reload swaps (v1 ↔ v2) with the hammer traffic.
    let mut generations = Vec::new();
    for swap in 0..20u32 {
        let target = if swap % 2 == 0 { &v2 } else { &v1 };
        let body = format!(r#"{{"lake": "main", "path": "{}"}}"#, target.display());
        let (status, payload) = http(addr, "POST", "/admin/reload", &body);
        assert_eq!(status, 200, "swap {swap}: {payload}");
        let v = Json::parse(&payload).unwrap();
        generations.push(v.get("generation").and_then(Json::as_i64).unwrap());
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(generations, (1..=20).collect::<Vec<i64>>(), "generations must be monotone");

    stop.store(true, Ordering::Relaxed);
    let mut total = 0;
    for h in hammers {
        let (lake, tags, served) = h.join().expect("hammer thread must not die");
        assert!(served > 0, "lake {lake}: hammer never got a response in");
        total += served;
        match lake {
            // Main traffic raced 20 swaps: only the two snapshot tags may
            // ever appear, and with 20 swaps both almost surely do.
            "main" => assert!(
                tags.iter().all(|t| t == "v1" || t == "v2"),
                "main answered from an impossible snapshot: {tags:?}"
            ),
            _ => assert_eq!(
                tags.iter().collect::<Vec<_>>(),
                ["other"],
                "sibling lake must be untouched by main's reloads"
            ),
        }
    }

    // Daemon alive and accounting for the whole episode: 20 reloads on
    // `main`, zero on `other`, and a healthy scrape.
    let (status, health) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{health}");
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("gent_lake_reloads_total{lake=\"main\"} 20"),
        "reload counter: {metrics}"
    );
    assert!(!metrics.contains("gent_lake_reloads_total{lake=\"other\"}"), "{metrics}");
    assert!(total > 20, "the hammer actually overlapped the swaps (served {total})");

    handle.stop();
    runner.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// An IO fault injected mid-reload must leave the live slot exactly as it
/// was: same generation (on the `X-Gent-Generation` header), same snapshot
/// answering `/reclaim`, and a structured `422 reload_failed` to the admin
/// — then succeed cleanly once the fault clears.
#[test]
fn fault_injected_reload_leaves_live_slot_untouched() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    gent_faults::reset();
    let dir = std::env::temp_dir().join(format!("gent-reload-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v1 = save_snapshot(&dir, "v1.gentlake", "v1");
    let v2 = save_snapshot(&dir, "v2.gentlake", "v2");

    let mut builder = Router::builder(GenTConfig::default());
    builder.add_snapshot("main", &v1).unwrap();
    let cfg = ServeConfig { addr: "127.0.0.1:0".into(), threads: 2, ..ServeConfig::default() };
    let server = Server::bind_router(&cfg, builder.build().unwrap()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let runner = std::thread::spawn(move || server.run());

    // Baseline: generation 0, serving v1.
    let (status, head, _) = http_full(addr, "GET", "/lake/stat?lake=main", "");
    assert_eq!(status, 200);
    assert_eq!(generation_header(&head), Some(0), "no X-Gent-Generation header: {head}");

    // The reload's snapshot read hits an injected IO fault.
    gent_faults::arm("store.load.read", gent_faults::Trigger::NthHit(1));
    gent_faults::set_enabled(true);
    let reload_body = format!(r#"{{"lake": "main", "path": "{}"}}"#, v2.display());
    let (status, head, payload) = http_full(addr, "POST", "/admin/reload", &reload_body);
    assert_eq!(status, 422, "{payload}");
    let v = Json::parse(&payload).unwrap();
    let error = v.get("error").expect("structured error body");
    assert_eq!(error.get("kind").and_then(Json::as_str), Some("reload_failed"));
    assert!(
        error.get("message").and_then(Json::as_str).unwrap().contains("injected fault"),
        "{payload}"
    );
    assert!(error.get("trace_id").and_then(Json::as_str).is_some(), "{payload}");
    assert_eq!(gent_faults::fired("store.load.read"), 1);
    assert_eq!(
        generation_header(&head),
        None,
        "a failed reload must not advertise a generation: {head}"
    );
    gent_faults::reset();

    // Slot untouched: generation still 0, traffic still answered by v1.
    let (status, head, _) = http_full(addr, "GET", "/lake/stat?lake=main", "");
    assert_eq!(status, 200);
    assert_eq!(generation_header(&head), Some(0), "failed reload bumped the generation");
    let (status, payload) =
        http(addr, "POST", "/reclaim", r#"{"lake": "main", "source_name": "marker"}"#);
    assert_eq!(status, 200, "{payload}");
    assert_eq!(response_tag(&payload), "v1", "failed reload must not swap the snapshot");

    // Fault cleared: the identical reload goes through.
    let (status, head, payload) = http_full(addr, "POST", "/admin/reload", &reload_body);
    assert_eq!(status, 200, "{payload}");
    assert_eq!(generation_header(&head), Some(1), "{head}");
    let (status, payload) =
        http(addr, "POST", "/reclaim", r#"{"lake": "main", "source_name": "marker"}"#);
    assert_eq!(status, 200, "{payload}");
    assert_eq!(response_tag(&payload), "v2");

    handle.stop();
    runner.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
