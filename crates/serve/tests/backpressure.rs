//! Admission control under saturation: with one worker pinned and the
//! bounded queue full, excess connections must be shed with a structured
//! `429 Too Many Requests` + parseable `Retry-After` — *fast*, from the
//! accept loop — instead of stalling the daemon. The `/metrics` scrape
//! afterwards must show the queue-depth gauge peaked at exactly the
//! configured bound, count every shed, and the daemon must serve 200s
//! again once the burst passes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use gent_core::GenTConfig;
use gent_serve::{Json, LakeService, ServeConfig, Server};
use gent_store::{InMemory, LakeSource};
use gent_table::{Table, Value as V};

const QUEUE_BOUND: usize = 2;

fn boot() -> (SocketAddr, gent_serve::ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let tables = vec![Table::build(
        "t",
        &["id", "v"],
        &[],
        vec![vec![V::Int(1), V::str("a")], vec![V::Int(2), V::str("b")]],
    )
    .unwrap()];
    let loaded = InMemory::new(tables).load_lake().unwrap();
    let service = LakeService::new(loaded, GenTConfig::default(), "backpressure lake");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        // One worker + a two-deep queue: the third concurrent connection
        // is deterministically over quota.
        threads: 1,
        queue_depth: QUEUE_BOUND,
        read_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let server = Server::bind(&cfg, service).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

fn read_response(s: &mut TcpStream) -> (u16, String, String) {
    let mut text = String::new();
    s.read_to_string(&mut text).expect("read response");
    let status: u16 =
        text.split_whitespace().nth(1).and_then(|t| t.parse().ok()).expect("status line");
    let (head, body) = text.split_once("\r\n\r\n").unwrap_or((text.as_str(), ""));
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    read_response(&mut s)
}

fn prometheus_sample(exposition: &str, name: &str) -> i64 {
    exposition
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no sample `{name}` in:\n{exposition}"))
}

#[test]
fn saturated_queue_sheds_429_and_recovers() {
    let (addr, handle, runner) = boot();

    // Pin the single worker: a client that sends half a request and stalls
    // holds the worker inside its read budget.
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(slow, "GET /healthz HTTP/1.1\r\nHost: t\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Fill the queue to its bound with requests that will wait their turn.
    let mut queued: Vec<TcpStream> = (0..QUEUE_BOUND)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            write!(s, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            s
        })
        .collect();
    std::thread::sleep(Duration::from_millis(200));

    // Everything beyond the bound is shed with a parseable 429.
    for i in 0..3 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        write!(s, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (status, head, body) = read_response(&mut s);
        assert_eq!(status, 429, "shed connection {i}: {head}\n{body}");
        let retry_after: u64 = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("retry-after").then(|| value.trim().to_string())
            })
            .unwrap_or_else(|| panic!("429 without Retry-After: {head}"))
            .parse()
            .expect("Retry-After must be a parseable integer");
        assert!(retry_after >= 1);
        let v = Json::parse(&body).unwrap_or_else(|e| panic!("unparseable 429 body ({e}): {body}"));
        let error = v.get("error").expect("structured error");
        assert_eq!(error.get("kind").and_then(Json::as_str), Some("overloaded"));
        assert!(error.get("trace_id").and_then(Json::as_str).is_some(), "{body}");
    }

    // Release the worker; the queued requests drain and answer 200.
    write!(slow, "\r\n").unwrap();
    let (status, _, _) = read_response(&mut slow);
    assert_eq!(status, 200, "the pinned request itself must complete");
    for (i, s) in queued.iter_mut().enumerate() {
        let (status, _, _) = read_response(s);
        assert_eq!(status, 200, "queued request {i} must drain after the burst");
    }

    // Recovery: fresh requests answer 200 and the instruments tell the
    // story — the gauge peaked at exactly the bound, every shed counted,
    // and the queue is empty again.
    let (status, _, _) = get(addr, "/healthz");
    assert_eq!(status, 200, "daemon must serve normally after the burst");
    let (status, _, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(
        prometheus_sample(&metrics, "gent_http_queue_depth_peak"),
        QUEUE_BOUND as i64,
        "peak gauge must pin the configured bound"
    );
    assert_eq!(prometheus_sample(&metrics, "gent_http_shed_total"), 3);
    assert_eq!(prometheus_sample(&metrics, "gent_http_queue_depth"), 0);

    handle.stop();
    runner.join().unwrap().unwrap();
}
