//! Hostile-client coverage over a real socket: bad methods, non-HTTP bytes,
//! truncated bodies and unknown table names must each produce a structured
//! 4xx JSON error — and the daemon must keep serving afterwards.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use gent_core::GenTConfig;
use gent_serve::{Json, LakeService, ServeConfig, Server, ServerHandle};
use gent_store::{InMemory, LakeSource};
use gent_table::{Table, Value as V};

fn boot() -> (SocketAddr, ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let tables = vec![Table::build(
        "people",
        &["id", "name"],
        &[],
        vec![vec![V::Int(0), V::str("Smith")], vec![V::Int(1), V::str("Brown")]],
    )
    .unwrap()];
    let loaded = InMemory::new(tables).load_lake().unwrap();
    let service = LakeService::new(loaded, GenTConfig::default(), "malformed test lake");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        // Short timeout so the stalled-body case resolves quickly.
        read_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let server = Server::bind(&cfg, service).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

/// Send raw bytes, optionally closing our write half, and read the full
/// response text.
fn raw(addr: SocketAddr, bytes: &[u8], close_write: bool) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(bytes).expect("send");
    if close_write {
        s.shutdown(Shutdown::Write).expect("half-close");
    }
    let mut text = String::new();
    s.read_to_string(&mut text).expect("read response");
    text
}

fn status_and_kind(response: &str) -> (u16, String) {
    let status: u16 =
        response.split_whitespace().nth(1).and_then(|t| t.parse().ok()).expect("status line");
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    let kind = Json::parse(body)
        .ok()
        .and_then(|v| v.get("error")?.get("kind")?.as_str().map(str::to_string))
        .unwrap_or_default();
    (status, kind)
}

/// Every answered response — error paths included — must carry an
/// `X-Request-Id` header, and error bodies must embed the same ID as
/// `error.trace_id`, so hostile inputs stay correlatable with daemon logs.
fn assert_traced(response: &str) {
    let head = response.split_once("\r\n\r\n").map(|(h, _)| h).unwrap_or(response);
    let id = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("x-request-id").then(|| value.trim().to_string())
        })
        .unwrap_or_else(|| panic!("response lacks X-Request-Id: {response}"));
    assert!(!id.is_empty(), "empty X-Request-Id: {response}");
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    if let Some(error) = Json::parse(body).ok().and_then(|v| v.get("error").cloned()) {
        assert_eq!(
            error.get("trace_id").and_then(|t| t.as_str().map(str::to_string)),
            Some(id),
            "error body must embed the response's request ID: {response}"
        );
    }
}

fn assert_alive(addr: SocketAddr) {
    let text = raw(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n", false);
    let (status, _) = status_and_kind(&text);
    assert_eq!(status, 200, "daemon must still answer /healthz: {text}");
}

#[test]
fn hostile_inputs_get_structured_errors_and_daemon_survives() {
    let (addr, handle, runner) = boot();

    // 1. Wrong method on a known endpoint → 405 bad_method.
    let text = raw(addr, b"DELETE /reclaim HTTP/1.1\r\nHost: t\r\n\r\n", false);
    let (status, kind) = status_and_kind(&text);
    assert_eq!((status, kind.as_str()), (405, "bad_method"), "got: {text}");
    assert_traced(&text);
    assert_alive(addr);

    // 2. Bytes that are not HTTP at all → 400 malformed_request.
    let text = raw(addr, b"this is not http\r\n\r\n", true);
    let (status, kind) = status_and_kind(&text);
    assert_eq!((status, kind.as_str()), (400, "malformed_request"), "got: {text}");
    assert_traced(&text);
    assert_alive(addr);

    // 3. Truncated body: Content-Length promises 999 bytes, the client
    //    half-closes after 9 → 400 truncated_body (via EOF), and the same
    //    for a client that just stalls (via read timeout).
    let head = b"POST /reclaim HTTP/1.1\r\nHost: t\r\nContent-Length: 999\r\n\r\n{\"source\"";
    let text = raw(addr, head, true);
    let (status, kind) = status_and_kind(&text);
    assert_eq!((status, kind.as_str()), (400, "truncated_body"), "got: {text}");
    assert_traced(&text);
    let text = raw(addr, head, false); // stall: server's read timeout fires
    let (status, kind) = status_and_kind(&text);
    assert_eq!((status, kind.as_str()), (400, "truncated_body"), "got: {text}");
    assert_traced(&text);
    assert_alive(addr);

    // 3b. A client that connects and stalls before sending any head at
    //     all → 408 timeout (not a fabricated truncated-body message).
    let text = raw(addr, b"", false);
    let (status, kind) = status_and_kind(&text);
    assert_eq!((status, kind.as_str()), (408, "timeout"), "got: {text}");
    assert_traced(&text);
    assert_alive(addr);

    // 3c. Slow trickle: one header byte at a time can no longer reset the
    //     clock — the overall request budget expires → 408.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let start = std::time::Instant::now();
    for b in b"GET /healthz HTTP/1.1\r\n" {
        if s.write_all(&[*b]).is_err() {
            break; // server already answered and closed
        }
        std::thread::sleep(Duration::from_millis(60));
        if start.elapsed() > Duration::from_secs(3) {
            break;
        }
    }
    let mut text = String::new();
    let _ = s.read_to_string(&mut text);
    let (status, kind) = status_and_kind(&text);
    assert_eq!((status, kind.as_str()), (408, "timeout"), "got: {text}");
    assert_traced(&text);
    assert_alive(addr);

    // 3d. `Expect: 100-continue` (what curl sends for bodies > 1 KiB) gets
    //     the interim go-ahead before the final response.
    let body = br#"{"source_name": "people", "key": ["id"]}"#;
    let mut req = format!(
        "POST /reclaim HTTP/1.1\r\nHost: t\r\nExpect: 100-continue\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    let text = raw(addr, &req, false);
    assert!(text.starts_with("HTTP/1.1 100 Continue\r\n\r\n"), "got: {text}");
    assert!(text.contains("HTTP/1.1 200"), "got: {text}");
    assert_alive(addr);

    // 4. Valid HTTP + JSON, but an unknown table name → 404 unknown_table.
    let body = br#"{"source_name": "no_such_table"}"#;
    let mut req =
        format!("POST /reclaim HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n", body.len())
            .into_bytes();
    req.extend_from_slice(body);
    let text = raw(addr, &req, false);
    let (status, kind) = status_and_kind(&text);
    assert_eq!((status, kind.as_str()), (404, "unknown_table"), "got: {text}");
    assert_traced(&text);
    assert_alive(addr);

    // 5. Bad JSON body → 400 bad_json.
    let body = b"{broken";
    let mut req =
        format!("POST /reclaim HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n", body.len())
            .into_bytes();
    req.extend_from_slice(body);
    let text = raw(addr, &req, false);
    let (status, kind) = status_and_kind(&text);
    assert_eq!((status, kind.as_str()), (400, "bad_json"), "got: {text}");
    assert_traced(&text);
    assert_alive(addr);

    // 6. Declared Content-Length over the limit → 413 too_large, without
    //    the server ever allocating the claimed buffer.
    let req = b"POST /reclaim HTTP/1.1\r\nHost: t\r\nContent-Length: 99999999999\r\n\r\n";
    let text = raw(addr, req, false);
    let (status, kind) = status_and_kind(&text);
    assert_eq!((status, kind.as_str()), (413, "too_large"), "got: {text}");
    assert_traced(&text);
    assert_alive(addr);

    // 7. A client-supplied X-Request-Id is echoed back on the error path,
    //    both as a header and inside the error body.
    let text = raw(
        addr,
        b"DELETE /reclaim HTTP/1.1\r\nHost: t\r\nX-Request-Id: hostile-trace-7\r\n\r\n",
        false,
    );
    let (status, _) = status_and_kind(&text);
    assert_eq!(status, 405);
    assert!(text.contains("X-Request-Id: hostile-trace-7"), "echoed header: {text}");
    assert!(text.contains(r#""trace_id":"hostile-trace-7""#), "error body: {text}");
    assert_traced(&text);

    handle.stop();
    runner.join().unwrap().unwrap();
}

fn post(addr: SocketAddr, path: &str, body: &str) -> String {
    let mut req =
        format!("POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n", body.len())
            .into_bytes();
    req.extend_from_slice(body.as_bytes());
    raw(addr, &req, false)
}

/// The multi-lake surface under hostile input: routing, batching, override
/// and reload endpoints must each answer a *structured* 4xx carrying an
/// `error.trace_id`, and the daemon must keep serving after every one.
#[test]
fn hostile_multi_lake_inputs_get_structured_errors() {
    let (addr, handle, runner) = boot();

    // 1. Unknown lake name → 404 unknown_lake.
    let text = post(addr, "/reclaim", r#"{"lake": "nope", "source_name": "people"}"#);
    let (status, kind) = status_and_kind(&text);
    assert_eq!((status, kind.as_str()), (404, "unknown_lake"), "got: {text}");
    assert_traced(&text);
    assert_alive(addr);

    // 2. Empty batch → 400 empty_batch.
    let text = post(addr, "/reclaim/batch", r#"{"sources": []}"#);
    let (status, kind) = status_and_kind(&text);
    assert_eq!((status, kind.as_str()), (400, "empty_batch"), "got: {text}");
    assert_traced(&text);
    assert_alive(addr);

    // 3. Duplicate source names in one batch → 400 duplicate_source.
    let text = post(
        addr,
        "/reclaim/batch",
        r#"{"sources": [{"source_name": "people", "key": ["id"]},
                        {"source_name": "people", "key": ["id"]}]}"#,
    );
    let (status, kind) = status_and_kind(&text);
    assert_eq!((status, kind.as_str()), (400, "duplicate_source"), "got: {text}");
    assert_traced(&text);
    assert_alive(addr);

    // 4. tau outside [0, 1] → 422 bad_override (both ends, and NaN-ish).
    for tau in ["-0.1", "1.5", "1e9"] {
        let text = post(
            addr,
            "/reclaim",
            &format!(
                r#"{{"source_name": "people", "key": ["id"], "overrides": {{"tau": {tau}}}}}"#
            ),
        );
        let (status, kind) = status_and_kind(&text);
        assert_eq!((status, kind.as_str()), (422, "bad_override"), "tau {tau}: {text}");
        assert_traced(&text);
    }
    assert_alive(addr);

    // 5. Non-object overrides → 400 bad_override.
    let text =
        post(addr, "/reclaim", r#"{"source_name": "people", "key": ["id"], "overrides": [1, 2]}"#);
    let (status, kind) = status_and_kind(&text);
    assert_eq!((status, kind.as_str()), (400, "bad_override"), "got: {text}");
    assert_traced(&text);
    assert_alive(addr);

    // 6a. Reload pointing at a missing file → 422 reload_failed.
    let text = post(addr, "/admin/reload", r#"{"path": "/nonexistent/nope.gentlake"}"#);
    let (status, kind) = status_and_kind(&text);
    assert_eq!((status, kind.as_str()), (422, "reload_failed"), "got: {text}");
    assert_traced(&text);
    assert_alive(addr);

    // 6b. Reload pointing at a corrupt file (wrong magic) → 422
    //     reload_failed, and the live lake keeps serving.
    let corrupt =
        std::env::temp_dir().join(format!("gent-corrupt-{}.gentlake", std::process::id()));
    std::fs::write(&corrupt, b"NOTALAKE garbage bytes").unwrap();
    let text = post(addr, "/admin/reload", &format!(r#"{{"path": "{}"}}"#, corrupt.display()));
    let (status, kind) = status_and_kind(&text);
    assert_eq!((status, kind.as_str()), (422, "reload_failed"), "got: {text}");
    assert_traced(&text);
    std::fs::remove_file(&corrupt).ok();
    assert_alive(addr);

    // After the whole gauntlet, a real reclaim still answers 200.
    let text = post(addr, "/reclaim", r#"{"source_name": "people", "key": ["id"]}"#);
    let (status, _) = status_and_kind(&text);
    assert_eq!(status, 200, "daemon must still reclaim: {text}");

    handle.stop();
    runner.join().unwrap().unwrap();
}
