//! The [`GenT`] entry point: Source Table + Data Lake → reclaimed table +
//! originating tables (Figure 2).

use crate::config::GenTConfig;
use crate::integration::integrate;
use crate::traversal::matrix_traversal;
use gent_discovery::{
    set_similarity_cached, DataLake, DiscoveryCache, OverlapRetriever, TableRetriever,
};
use gent_metrics::{evaluate, MethodReport};
use gent_table::Table;
use std::time::{Duration, Instant};

/// Wall-clock breakdown of one reclamation, plus the traversal's greedy
/// round counters (how much work the incremental `RoundScorer` actually
/// did — and, via the pruned count, how much it provably skipped).
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// First-stage retrieval + Set Similarity.
    pub discovery: Duration,
    /// Expand + matrix initialisation + traversal.
    pub traversal: Duration,
    /// Algorithm 2 integration.
    pub integration: Duration,
    /// Greedy rounds the traversal ran (accepted merges + the converge
    /// sweep).
    pub traversal_rounds: u32,
    /// Dirty-row kernel rescores across all rounds — a full rescan would
    /// have paid `rounds × candidates × rows`.
    pub rows_rescored: u64,
    /// Candidate scorings skipped because their admissible upper bound
    /// provably lost the round.
    pub candidates_pruned: u64,
    /// Partial join paths Expand's best-first search examined.
    pub expand_paths_considered: u64,
    /// Expand sub-joins answered from the path-suffix memo.
    pub expand_memo_hits: u64,
    /// Keyless candidates Expand dropped (no usable join path).
    pub expand_candidates_dropped: u64,
    /// Expanded tables dropped as duplicates of an existing relation.
    pub expand_dedup: u64,
}

impl Timings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.discovery + self.traversal + self.integration
    }
}

/// The output of a reclamation: Figure 2's two outputs plus evaluation
/// metadata.
#[derive(Debug, Clone)]
pub struct ReclamationResult {
    /// The reclaimed Source Table (schema identical to the source).
    pub reclaimed: Table,
    /// The originating tables, in selection order (expanded forms where
    /// Expand had to join them to reach the key).
    pub originating: Vec<Table>,
    /// How many candidate tables Set Similarity produced before traversal.
    pub candidates_considered: usize,
    /// EIS of the reclaimed table against the source.
    pub eis: f64,
    /// Full metric report against the source.
    pub report: MethodReport,
    /// Wall-clock breakdown.
    pub timings: Timings,
}

/// Errors from the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GentError {
    /// The source table declares no key (and none could be required of it).
    SourceHasNoKey,
    /// The lake's inverted index failed verification when first touched —
    /// a snapshot-loaded (v3) lake whose index section is corrupt. The
    /// message is the store's structured reason.
    IndexCorrupt(String),
}

impl std::fmt::Display for GentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GentError::SourceHasNoKey => {
                write!(f, "the source table must declare a (possibly composite) key")
            }
            GentError::IndexCorrupt(reason) => {
                write!(f, "the lake's inverted index failed verification: {reason}")
            }
        }
    }
}

impl std::error::Error for GentError {}

/// The Gen-T system: configure once, reclaim many sources.
#[derive(Debug, Clone, Default)]
pub struct GenT {
    config: GenTConfig,
}

impl GenT {
    /// Build with a configuration.
    pub fn new(config: GenTConfig) -> Self {
        GenT { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &GenTConfig {
        &self.config
    }

    /// Reclaim `source` from `lake`: discovery → matrix traversal →
    /// integration.
    pub fn reclaim(&self, source: &Table, lake: &DataLake) -> Result<ReclamationResult, GentError> {
        self.reclaim_excluding(source, lake, &[])
    }

    /// Like [`GenT::reclaim`] but never uses lake tables whose name is in
    /// `excluded` — the §VI-D protocol, where each web table is reclaimed
    /// from the *other* tables in the corpus.
    pub fn reclaim_excluding(
        &self,
        source: &Table,
        lake: &DataLake,
        excluded: &[&str],
    ) -> Result<ReclamationResult, GentError> {
        self.reclaim_excluding_cached(source, lake, excluded, &mut DiscoveryCache::new())
    }

    /// Like [`GenT::reclaim`], with discovery's index walks memoized in a
    /// caller-owned [`DiscoveryCache`] — bit-identical results, shared
    /// work when many sources are reclaimed against one lake (the serve
    /// tier's `POST /reclaim/batch` amortisation).
    pub fn reclaim_with_cache(
        &self,
        source: &Table,
        lake: &DataLake,
        cache: &mut DiscoveryCache,
    ) -> Result<ReclamationResult, GentError> {
        self.reclaim_excluding_cached(source, lake, &[], cache)
    }

    fn reclaim_excluding_cached(
        &self,
        source: &Table,
        lake: &DataLake,
        excluded: &[&str],
        cache: &mut DiscoveryCache,
    ) -> Result<ReclamationResult, GentError> {
        if !source.schema().has_key() {
            return Err(GentError::SourceHasNoKey);
        }
        // A v3 lake defers index verification to first touch; force it
        // here so a corrupt section is a structured error at the pipeline
        // boundary, not silently-empty discovery below.
        lake.ensure_index().map_err(GentError::IndexCorrupt)?;
        let ins = crate::telemetry::instruments();
        let t0 = Instant::now();
        let discovery_span = gent_obs::span_timed("discovery", ins.stage_discovery.clone());
        // First-stage retrieval only for large lakes (the TP-TR experiments
        // go straight to Set Similarity; SANTOS-Large/WDC need narrowing).
        let restrict: Option<Vec<usize>> = if lake.len() > self.config.first_stage_threshold {
            Some(OverlapRetriever.retrieve(lake, source, self.config.first_stage_k))
        } else if !excluded.is_empty() {
            Some((0..lake.len()).collect())
        } else {
            None
        };
        let restrict = restrict.map(|idx| {
            idx.into_iter()
                .filter(|&i| {
                    let name = lake.name_of(i).expect("index from lake");
                    !excluded.contains(&name)
                })
                .collect::<Vec<_>>()
        });
        let candidates = {
            let _span = gent_obs::span_timed("set_similarity", ins.stage_set_similarity.clone());
            set_similarity_cached(
                lake,
                source,
                restrict.as_deref(),
                &self.config.set_similarity,
                cache,
            )
        };
        let discovery = t0.elapsed();
        drop(discovery_span);
        let tables: Vec<Table> = candidates.into_iter().map(|c| c.table).collect();
        let mut result = self.reclaim_from_candidates(source, &tables)?;
        result.timings.discovery = discovery;
        Ok(result)
    }

    /// Reclaim `source` from an explicit candidate set (the "w/ int. set"
    /// experiment variants, and the path taken after discovery).
    pub fn reclaim_from_candidates(
        &self,
        source: &Table,
        candidates: &[Table],
    ) -> Result<ReclamationResult, GentError> {
        if !source.schema().has_key() {
            return Err(GentError::SourceHasNoKey);
        }
        let ins = crate::telemetry::instruments();
        ins.reclaims.inc();
        let t1 = Instant::now();
        let outcome = {
            let _span = gent_obs::span_timed("traversal", ins.stage_traversal.clone());
            matrix_traversal(source, candidates, &self.config)
        };
        let traversal = t1.elapsed();
        ins.rounds.add(u64::from(outcome.stats.rounds));
        ins.rows_rescored.add(outcome.stats.rows_rescored);
        ins.candidates_pruned.add(outcome.stats.candidates_pruned);

        let t2 = Instant::now();
        let reclaimed = {
            let _span = gent_obs::span_timed("integration", ins.stage_integration.clone());
            integrate(&outcome.originating, source, &self.config)
        };
        let integration = t2.elapsed();

        let report = evaluate(source, &reclaimed);
        Ok(ReclamationResult {
            eis: report.eis,
            report,
            reclaimed,
            originating: outcome.originating,
            candidates_considered: candidates.len(),
            timings: Timings {
                discovery: Duration::ZERO,
                traversal,
                integration,
                traversal_rounds: outcome.stats.rounds,
                rows_rescored: outcome.stats.rows_rescored,
                candidates_pruned: outcome.stats.candidates_pruned,
                expand_paths_considered: outcome.expand.paths_considered,
                expand_memo_hits: outcome.expand.memo_hits,
                expand_candidates_dropped: outcome.expand.candidates_dropped,
                expand_dedup: outcome.expand.dedup_dropped,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::Value as V;

    fn source() -> Table {
        Table::build(
            "S",
            &["ID", "Name", "Age", "Gender", "Education Level"],
            &["ID"],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27), V::Null, V::str("Bachelors")],
                vec![V::Int(1), V::str("Brown"), V::Int(24), V::str("Male"), V::str("Masters")],
                vec![
                    V::Int(2),
                    V::str("Wang"),
                    V::Int(32),
                    V::str("Female"),
                    V::str("High School"),
                ],
            ],
        )
        .unwrap()
    }

    /// The Figure 3 lake with original (unrenamed) column names.
    fn lake() -> DataLake {
        let a = Table::build(
            "A",
            &["id", "full_name", "edu"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::str("Bachelors")],
                vec![V::Int(1), V::str("Brown"), V::Null],
                vec![V::Int(2), V::str("Wang"), V::str("High School")],
            ],
        )
        .unwrap();
        let b = Table::build(
            "B",
            &["person", "years"],
            &[],
            vec![
                vec![V::str("Smith"), V::Int(27)],
                vec![V::str("Brown"), V::Int(24)],
                vec![V::str("Wang"), V::Int(32)],
            ],
        )
        .unwrap();
        let c = Table::build(
            "C",
            &["person", "sex"],
            &[],
            vec![
                vec![V::str("Smith"), V::str("Male")],
                vec![V::str("Brown"), V::str("Male")],
                vec![V::str("Wang"), V::str("Male")],
            ],
        )
        .unwrap();
        let d = Table::build(
            "D",
            &["id", "nm", "ag", "gen", "ed"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27), V::Null, V::str("Bachelors")],
                vec![V::Int(1), V::str("Brown"), V::Int(24), V::str("Male"), V::str("Masters")],
                vec![V::Int(2), V::str("Wang"), V::Int(32), V::str("Female"), V::Null],
            ],
        )
        .unwrap();
        DataLake::from_tables(vec![a, b, c, d])
    }

    #[test]
    fn end_to_end_figure3() {
        let gen_t = GenT::default();
        let res = gen_t.reclaim(&source(), &lake()).unwrap();
        assert!(res.report.perfect, "reclaimed:\n{}", res.reclaimed);
        assert!((res.eis - 1.0).abs() < 1e-9);
        assert!(!res.originating.is_empty());
        assert!(res.candidates_considered >= 2);
    }

    #[test]
    fn timings_carry_traversal_round_counters() {
        let res = GenT::default().reclaim(&source(), &lake()).unwrap();
        assert!(res.timings.traversal_rounds >= 1, "{:?}", res.timings);
        assert!(res.timings.rows_rescored >= 1, "{:?}", res.timings);
    }

    #[test]
    fn cached_reclaim_matches_uncached_and_reuses_walks() {
        let gen_t = GenT::default();
        let plain = gen_t.reclaim(&source(), &lake()).unwrap();
        let mut cache = DiscoveryCache::new();
        let first = gen_t.reclaim_with_cache(&source(), &lake(), &mut cache).unwrap();
        let repeat = gen_t.reclaim_with_cache(&source(), &lake(), &mut cache).unwrap();
        assert!(cache.hits() > 0, "repeat reclaim must hit the discovery cache");
        for r in [&first, &repeat] {
            assert_eq!(r.reclaimed.rows(), plain.reclaimed.rows());
            assert_eq!(r.eis, plain.eis);
            assert_eq!(r.candidates_considered, plain.candidates_considered);
        }
    }

    #[test]
    fn keyless_source_is_an_error() {
        let s = Table::build("S", &["a"], &[], vec![]).unwrap();
        assert_eq!(GenT::default().reclaim(&s, &lake()).unwrap_err(), GentError::SourceHasNoKey);
    }

    #[test]
    fn empty_lake_reclaims_nothing() {
        let res = GenT::default().reclaim(&source(), &DataLake::from_tables(vec![])).unwrap();
        assert!(res.reclaimed.is_empty());
        assert_eq!(res.eis, 0.0);
        assert!(res.originating.is_empty());
    }

    #[test]
    fn with_integrating_set_matches_discovery_on_clean_lake() {
        // Handing the pipeline the already-renamed integrating set should
        // reclaim at least as well as full discovery.
        let gen_t = GenT::default();
        let via_lake = gen_t.reclaim(&source(), &lake()).unwrap();
        let int_set = vec![
            Table::build(
                "A",
                &["ID", "Name", "Education Level"],
                &[],
                vec![
                    vec![V::Int(0), V::str("Smith"), V::str("Bachelors")],
                    vec![V::Int(1), V::str("Brown"), V::Null],
                    vec![V::Int(2), V::str("Wang"), V::str("High School")],
                ],
            )
            .unwrap(),
            Table::build(
                "D",
                &["ID", "Name", "Age", "Gender", "Education Level"],
                &[],
                vec![
                    vec![V::Int(0), V::str("Smith"), V::Int(27), V::Null, V::str("Bachelors")],
                    vec![V::Int(1), V::str("Brown"), V::Int(24), V::str("Male"), V::str("Masters")],
                    vec![V::Int(2), V::str("Wang"), V::Int(32), V::str("Female"), V::Null],
                ],
            )
            .unwrap(),
        ];
        let via_set = gen_t.reclaim_from_candidates(&source(), &int_set).unwrap();
        assert!(via_set.report.perfect);
        assert!(via_lake.eis >= via_set.eis - 1e-9);
    }
}
