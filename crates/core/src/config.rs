//! Configuration for the Gen-T pipeline, including the ablation toggles
//! DESIGN.md calls out (three-valued vs two-valued matrices, matrix
//! traversal on/off, diversification on/off, gated vs always-applied κ/β).

use gent_discovery::SetSimilarityConfig;

/// Tunable parameters of [`crate::GenT`].
#[derive(Debug, Clone)]
pub struct GenTConfig {
    /// Set Similarity parameters (τ, max candidates, diversification).
    pub set_similarity: SetSimilarityConfig,
    /// Top-k of the first-stage retriever (Starmie stand-in).
    pub first_stage_k: usize,
    /// Run the first-stage retriever only when the lake has more tables
    /// than this (small lakes go straight to Set Similarity, as in the
    /// TP-TR experiments).
    pub first_stage_threshold: usize,
    /// Use three-valued matrices (§V-A3). `false` falls back to the
    /// two-valued encoding of §V-A2 — an ablation knob; the paper argues
    /// two-valued matrices cannot distinguish nullified from erroneous
    /// values.
    pub three_valued: bool,
    /// Refine candidates with Matrix Traversal (Algorithm 1). `false`
    /// integrates all candidates directly (that is what ALITE-PS does).
    pub prune_with_traversal: bool,
    /// Gate κ/β during integration on non-decreasing similarity
    /// (Algorithm 2, lines 10–13). `false` always applies them.
    pub gate_kappa_beta: bool,
    /// Cap on aligned tuples kept per source row in a matrix (dominance
    /// pruning keeps the best ones); bounds the Combine blow-up.
    pub max_aligned_per_key: usize,
    /// Maximum join-path length Expand explores (Algorithm 5).
    pub expand_max_depth: usize,
}

impl Default for GenTConfig {
    fn default() -> Self {
        GenTConfig {
            set_similarity: SetSimilarityConfig::default(),
            first_stage_k: 100,
            first_stage_threshold: 200,
            three_valued: true,
            prune_with_traversal: true,
            gate_kappa_beta: true,
            max_aligned_per_key: 8,
            expand_max_depth: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = GenTConfig::default();
        assert!(c.three_valued);
        assert!(c.prune_with_traversal);
        assert!(c.gate_kappa_beta);
        assert!(c.set_similarity.diversify);
    }
}
