//! Three-valued alignment matrices (§V-A2/3) and `Combine` (Eq. 5).
//!
//! A candidate table is represented by a matrix with the Source Table's
//! dimensions. For every candidate tuple aligned to source row `i` (same
//! key value), the matrix holds a vector over the source columns with
//! (Eq. 4):
//!
//! * ` 1` — candidate agrees with the source cell (including a null where
//!   the source is null),
//! * ` 0` — candidate has a null where the source has a value,
//! * `-1` — candidate has a non-null value contradicting the source (or a
//!   value where the source has a null).
//!
//! `Combine` (Eq. 5) simulates outer union + subsumption/complementation:
//! two aligned tuples with *conflicting* non-zero entries at some column are
//! kept separate (real integration would keep both tuples); otherwise they
//! merge by element-wise maximum under the truth ordering `1 > 0 > −1`
//! (matching Figure 5's `0 ∨ ¬1 = 0`: the simulated integration will not
//! let an erroneous value fill a null because the similarity gate would
//! reject it).
//!
//! Because combining can yield more aligned tuples per source row than
//! either input had, each matrix stores *lists* of tuple vectors per source
//! row, with dominance pruning and a configurable cap to bound growth —
//! this is the dictionary encoding §V-A3 describes.

use gent_table::{FxHashMap, Table};

/// Three-valued alignment matrix of one (possibly partially integrated)
/// candidate against a fixed source table.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentMatrix {
    /// `rows[i]` = aligned tuple vectors for source row `i` (possibly
    /// empty). Each vector has one entry per source column.
    rows: Vec<Vec<Vec<i8>>>,
    /// Number of source columns (vector length).
    n_cols: usize,
    /// Indices of the source's non-key columns (the ones EIS scores).
    non_key_cols: Vec<usize>,
}

impl AlignmentMatrix {
    /// Build the matrix of `candidate` against `source` (Eq. 4).
    ///
    /// The candidate's columns are matched to the source's *by name* (Set
    /// Similarity already renamed them); the candidate must contain every
    /// source key column — tables that don't are first expanded
    /// (Algorithm 5) or dropped.
    ///
    /// `three_valued = false` gives the §V-A2 two-valued encoding
    /// (contradictions collapse to 0), kept for the ablation study.
    pub fn build(
        source: &Table,
        candidate: &Table,
        three_valued: bool,
        max_aligned_per_key: usize,
    ) -> Option<AlignmentMatrix> {
        let skey = source.schema().key();
        assert!(!skey.is_empty(), "source must declare a key");
        // Candidate columns aligned to each source column.
        let col_map: Vec<Option<usize>> =
            source.schema().columns().map(|c| candidate.schema().column_index(c)).collect();
        // All key columns must be present in the candidate.
        let ckey: Option<Vec<usize>> = skey.iter().map(|&k| col_map[k]).collect();
        let ckey = ckey?;

        // Index candidate rows by key value.
        let mut cindex: FxHashMap<gent_table::KeyValue, Vec<usize>> = FxHashMap::default();
        for (i, row) in candidate.rows().iter().enumerate() {
            if let Some(kv) = Table::key_from_row(row, &ckey) {
                cindex.entry(kv).or_default().push(i);
            }
        }

        let n_cols = source.n_cols();
        let non_key_cols = source.schema().non_key_indices();
        let mut rows: Vec<Vec<Vec<i8>>> = Vec::with_capacity(source.n_rows());
        for si in 0..source.n_rows() {
            let mut aligned: Vec<Vec<i8>> = Vec::new();
            if let Some(kv) = source.key_of_row(si) {
                if let Some(crows) = cindex.get(&kv) {
                    for &ci in crows {
                        let mut vec = vec![0i8; n_cols];
                        for j in 0..n_cols {
                            let sv = &source.rows()[si][j];
                            let tv = col_map[j].map(|cj| &candidate.rows()[ci][cj]);
                            let enc = match tv {
                                None => {
                                    // Candidate lacks the column entirely —
                                    // a null against the source value.
                                    if sv.is_null_like() {
                                        1
                                    } else {
                                        0
                                    }
                                }
                                Some(tv) => {
                                    // A correctly-preserved null counts like
                                    // a shared value (Example 6's EIS
                                    // convention), hence the same arm as
                                    // value equality.
                                    if (sv.is_null_like() && tv.is_null_like()) || sv == tv {
                                        1
                                    } else if tv.is_null_like() {
                                        0
                                    } else if three_valued {
                                        -1
                                    } else {
                                        0
                                    }
                                }
                            };
                            vec[j] = enc;
                        }
                        aligned.push(vec);
                    }
                }
            }
            prune_dominated(&mut aligned, &non_key_cols, max_aligned_per_key);
            rows.push(aligned);
        }
        Some(AlignmentMatrix { rows, n_cols, non_key_cols })
    }

    /// Number of source rows covered (≥1 aligned tuple).
    pub fn keys_covered(&self) -> usize {
        self.rows.iter().filter(|r| !r.is_empty()).count()
    }

    /// Aligned tuple vectors for source row `i`.
    pub fn aligned(&self, i: usize) -> &[Vec<i8>] {
        &self.rows[i]
    }

    /// evaluateSimilarity() — the EIS score implied by this matrix
    /// (§V-A3): per source row take the best aligned tuple's
    /// `(1 + (α − δ)/n)`, where α counts `1`s and δ counts `-1`s over
    /// non-key columns; rows with no aligned tuple contribute 0; normalise
    /// by `0.5 / |S|`.
    pub fn eis(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let n = self.non_key_cols.len();
        let mut total = 0.0;
        for aligned in &self.rows {
            if aligned.is_empty() {
                continue;
            }
            let best = aligned
                .iter()
                .map(|vec| {
                    if n == 0 {
                        1.0
                    } else {
                        let mut alpha = 0i32;
                        let mut delta = 0i32;
                        for &c in &self.non_key_cols {
                            match vec[c] {
                                1 => alpha += 1,
                                -1 => delta += 1,
                                _ => {}
                            }
                        }
                        1.0 + (alpha - delta) as f64 / n as f64
                    }
                })
                .fold(f64::NEG_INFINITY, f64::max);
            total += best;
        }
        0.5 * total / self.rows.len() as f64
    }

    /// Algorithm 1's `percentCorrectVals`: the fraction of source cells the
    /// simulated integration reproduces, net of contradictions —
    /// `Σ_rows max_tuple (α − δ) / (n · |S|)`.
    ///
    /// This is the score the traversal greedily maximises. It deliberately
    /// differs from [`AlignmentMatrix::eis`]: the EIS form `0.5·(1 + E)`
    /// grants 0.5 per source row for *mere key coverage*, so a junk table
    /// whose misrenamed integer column happens to contain every source key
    /// would "improve" EIS while contributing no values at all. Counting
    /// net correct values (the paper's "fraction of 1's in the matrix",
    /// §V-A2) makes such tables worthless, which is exactly why Algorithm 1
    /// can prune them.
    pub fn net_score(&self) -> f64 {
        let n = self.non_key_cols.len();
        if self.rows.is_empty() || n == 0 {
            return 0.0;
        }
        let mut total = 0i64;
        for aligned in &self.rows {
            let best = aligned
                .iter()
                .map(|vec| {
                    let mut alpha = 0i64;
                    let mut delta = 0i64;
                    for &c in &self.non_key_cols {
                        match vec[c] {
                            1 => alpha += 1,
                            -1 => delta += 1,
                            _ => {}
                        }
                    }
                    alpha - delta
                })
                .max()
                .unwrap_or(0);
            total += best.max(0);
        }
        total as f64 / (n as f64 * self.rows.len() as f64)
    }

    /// Eq. 5 — `Combine` two matrices into the matrix of their simulated
    /// integration.
    pub fn combine(&self, other: &AlignmentMatrix, max_aligned_per_key: usize) -> AlignmentMatrix {
        assert_eq!(self.n_cols, other.n_cols, "matrices must share the source shape");
        assert_eq!(self.rows.len(), other.rows.len());
        let mut rows = Vec::with_capacity(self.rows.len());
        for (a, b) in self.rows.iter().zip(other.rows.iter()) {
            rows.push(combine_lists(a, b, &self.non_key_cols, max_aligned_per_key));
        }
        AlignmentMatrix { rows, n_cols: self.n_cols, non_key_cols: self.non_key_cols.clone() }
    }
}

/// Do two tuple vectors conflict (different non-zero values at a column)?
#[inline]
fn conflicts(a: &[i8], b: &[i8]) -> bool {
    a.iter().zip(b.iter()).any(|(&x, &y)| x != 0 && y != 0 && x != y)
}

/// Element-wise OR under the truth ordering `1 > 0 > −1`.
#[inline]
fn or_tuples(a: &[i8], b: &[i8]) -> Vec<i8> {
    a.iter().zip(b.iter()).map(|(&x, &y)| x.max(y)).collect()
}

/// Combine the aligned-tuple lists of one source row (Eq. 5): compatible
/// pairs merge via OR; conflicting tuples stay separate. Tuples from either
/// side that merged with nothing pass through (outer-union semantics).
fn combine_lists(a: &[Vec<i8>], b: &[Vec<i8>], non_key_cols: &[usize], cap: usize) -> Vec<Vec<i8>> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    let mut out: Vec<Vec<i8>> = Vec::new();
    let mut b_merged = vec![false; b.len()];
    for ta in a {
        let mut merged_any = false;
        for (bi, tb) in b.iter().enumerate() {
            if !conflicts(ta, tb) {
                out.push(or_tuples(ta, tb));
                b_merged[bi] = true;
                merged_any = true;
            }
        }
        if !merged_any {
            out.push(ta.clone());
        }
    }
    for (bi, tb) in b.iter().enumerate() {
        if !b_merged[bi] {
            out.push(tb.clone());
        }
    }
    prune_dominated(&mut out, non_key_cols, cap);
    out
}

/// Remove tuples dominated element-wise (under `1 > 0 > −1`) by another,
/// dedup, and cap the list at `cap` keeping the highest-scoring tuples.
fn prune_dominated(list: &mut Vec<Vec<i8>>, non_key_cols: &[usize], cap: usize) {
    if list.len() <= 1 {
        return;
    }
    list.sort();
    list.dedup();
    let snapshot = list.clone();
    list.retain(|t| {
        !snapshot.iter().any(|o| o != t && t.iter().zip(o.iter()).all(|(&x, &y)| x <= y))
    });
    if list.len() > cap {
        // Keep the tuples with the best (α − δ) score.
        let score = |t: &Vec<i8>| -> i32 {
            non_key_cols
                .iter()
                .map(|&c| match t[c] {
                    1 => 1,
                    -1 => -1,
                    _ => 0,
                })
                .sum()
        };
        list.sort_by_key(|t| std::cmp::Reverse(score(t)));
        list.truncate(cap);
        list.sort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::Value as V;

    /// Figure 3's source and tables A, B, C (after column renaming).
    fn source() -> Table {
        Table::build(
            "S",
            &["ID", "Name", "Age", "Gender", "Education Level"],
            &["ID"],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27), V::Null, V::str("Bachelors")],
                vec![V::Int(1), V::str("Brown"), V::Int(24), V::str("Male"), V::str("Masters")],
                vec![
                    V::Int(2),
                    V::str("Wang"),
                    V::Int(32),
                    V::str("Female"),
                    V::str("High School"),
                ],
            ],
        )
        .unwrap()
    }

    fn table_a() -> Table {
        Table::build(
            "A",
            &["ID", "Name", "Education Level"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::str("Bachelors")],
                vec![V::Int(1), V::str("Brown"), V::Null],
                vec![V::Int(2), V::str("Wang"), V::str("High School")],
            ],
        )
        .unwrap()
    }

    /// Table B joined with the key via A (Expand would produce this); for
    /// unit tests we give it the ID directly.
    fn table_b_with_key() -> Table {
        Table::build(
            "B",
            &["ID", "Name", "Age"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27)],
                vec![V::Int(1), V::str("Brown"), V::Int(24)],
                vec![V::Int(2), V::str("Wang"), V::Int(32)],
            ],
        )
        .unwrap()
    }

    fn table_c_with_key() -> Table {
        Table::build(
            "C",
            &["ID", "Name", "Gender"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::str("Male")],
                vec![V::Int(1), V::str("Brown"), V::str("Male")],
                vec![V::Int(2), V::str("Wang"), V::str("Male")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure5_matrix_a_encoding() {
        // Matrix A (Figure 5): rows [1 1 0 ¬1? …] — concretely: A shares
        // ID, Name, Education; lacks Age (0 vs source value), lacks Gender
        // (source row 0 has null gender → 1; rows 1,2 have values → 0).
        let m = AlignmentMatrix::build(&source(), &table_a(), true, 8).unwrap();
        assert_eq!(m.aligned(0), &[vec![1, 1, 0, 1, 1]]);
        // Brown: Education null in A but "Masters" in source → 0.
        assert_eq!(m.aligned(1), &[vec![1, 1, 0, 0, 0]]);
        assert_eq!(m.aligned(2), &[vec![1, 1, 0, 0, 1]]);
    }

    #[test]
    fn figure5_matrix_c_has_contradictions() {
        let m = AlignmentMatrix::build(&source(), &table_c_with_key(), true, 8).unwrap();
        // Smith: source Gender null, C says Male → -1 (erroneously filled).
        assert_eq!(m.aligned(0), &[vec![1, 1, 0, -1, 0]]);
        // Brown: C agrees (Male) → 1.
        assert_eq!(m.aligned(1), &[vec![1, 1, 0, 1, 0]]);
        // Wang: source Female vs C Male → -1.
        assert_eq!(m.aligned(2), &[vec![1, 1, 0, -1, 0]]);
    }

    #[test]
    fn two_valued_collapses_contradictions() {
        let m = AlignmentMatrix::build(&source(), &table_c_with_key(), false, 8).unwrap();
        assert_eq!(m.aligned(0), &[vec![1, 1, 0, 0, 0]]);
    }

    #[test]
    fn figure5_combine_a_b() {
        // OR(A, B) in Figure 5: merging fills Age with 1s everywhere.
        let s = source();
        let ma = AlignmentMatrix::build(&s, &table_a(), true, 8).unwrap();
        let mb = AlignmentMatrix::build(&s, &table_b_with_key(), true, 8).unwrap();
        let ab = ma.combine(&mb, 8);
        assert_eq!(ab.aligned(0), &[vec![1, 1, 1, 1, 1]]);
        assert_eq!(ab.aligned(1), &[vec![1, 1, 1, 0, 0]]);
        assert_eq!(ab.aligned(2), &[vec![1, 1, 1, 0, 1]]);
    }

    #[test]
    fn figure5_combine_with_c() {
        // OR(OR(A,B), C): Smith row has 1 vs -1 on Gender → conflicting
        // tuples are kept separate by Combine, and the dominated one
        // ((1,1,0,-1,0) ≤ (1,1,1,1,1) element-wise) is then pruned — it can
        // never be the best-aligned tuple. Brown merges (C agrees on Male);
        // Wang's -1 ORs under 0 ∨ ¬1 = 0.
        let s = source();
        let ma = AlignmentMatrix::build(&s, &table_a(), true, 8).unwrap();
        let mb = AlignmentMatrix::build(&s, &table_b_with_key(), true, 8).unwrap();
        let mc = AlignmentMatrix::build(&s, &table_c_with_key(), true, 8).unwrap();
        let abc = ma.combine(&mb, 8).combine(&mc, 8);
        assert_eq!(abc.aligned(0), &[vec![1, 1, 1, 1, 1]]);
        // Brown: compatible → single merged tuple, Gender 1.
        assert_eq!(abc.aligned(1), &[vec![1, 1, 1, 1, 0]]);
        // Wang: (1,1,1,0,1) vs (1,1,0,-1,0): 0 vs -1 is not a non-zero
        // disagreement → merge with max: Gender max(0,-1) = 0.
        assert_eq!(abc.aligned(2), &[vec![1, 1, 1, 0, 1]]);
    }

    #[test]
    fn combine_keeps_non_dominated_conflicts_separate() {
        let s = source();
        // One candidate knows Name+Education, the other Age but with a
        // wrong Gender — the conflict tuples don't dominate each other.
        let left = table_a(); // Smith: [1,1,0,1,1]
        let right = Table::build(
            "R",
            &["ID", "Age", "Gender"],
            &[],
            vec![vec![V::Int(0), V::Int(27), V::str("Male")]],
        )
        .unwrap(); // Smith: [1,0,1,-1,0]
        let ml = AlignmentMatrix::build(&s, &left, true, 8).unwrap();
        let mr = AlignmentMatrix::build(&s, &right, true, 8).unwrap();
        let c = ml.combine(&mr, 8);
        assert_eq!(c.aligned(0).len(), 2, "conflicting non-dominated tuples both kept");
        assert!(c.aligned(0).contains(&vec![1, 1, 0, 1, 1]));
        assert!(c.aligned(0).contains(&vec![1, 0, 1, -1, 0]));
    }

    #[test]
    fn eis_of_figure5_improves_with_b_but_not_c() {
        let s = source();
        let ma = AlignmentMatrix::build(&s, &table_a(), true, 8).unwrap();
        let mb = AlignmentMatrix::build(&s, &table_b_with_key(), true, 8).unwrap();
        let mc = AlignmentMatrix::build(&s, &table_c_with_key(), true, 8).unwrap();
        let e_a = ma.eis();
        let ab = ma.combine(&mb, 8);
        let e_ab = ab.eis();
        assert!(e_ab > e_a, "adding B must improve EIS: {e_a} → {e_ab}");
        let abc = ab.combine(&mc, 8);
        // C contributes Brown's Gender (1) but pollutes nothing thanks to
        // conflict separation — EIS can improve slightly via Brown.
        let e_abc = abc.eis();
        assert!(e_abc >= e_ab);
    }

    #[test]
    fn missing_key_column_gives_none() {
        let s = source();
        let nokey = Table::build("X", &["Name", "Age"], &[], vec![]).unwrap();
        assert!(AlignmentMatrix::build(&s, &nokey, true, 8).is_none());
    }

    #[test]
    fn dominance_pruning_drops_weaker_tuples() {
        let s = source();
        // Candidate with two rows for key 0: one strictly better.
        let c = Table::build(
            "C",
            &["ID", "Name", "Age"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27)],
                vec![V::Int(0), V::str("Smith"), V::Null],
            ],
        )
        .unwrap();
        let m = AlignmentMatrix::build(&s, &c, true, 8).unwrap();
        assert_eq!(m.aligned(0).len(), 1, "dominated tuple pruned");
    }

    #[test]
    fn eis_matches_metrics_eis_on_full_tables() {
        // The matrix EIS must agree with gent-metrics' table EIS when the
        // candidate covers the full schema.
        let s = source();
        let cand = Table::build(
            "C",
            &["ID", "Name", "Age", "Gender", "Education Level"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27), V::str("Male"), V::str("Bachelors")],
                vec![V::Int(1), V::str("Brown"), V::Int(24), V::str("Male"), V::str("Masters")],
                vec![V::Int(2), V::str("Wang"), V::Int(32), V::str("Female"), V::Null],
            ],
        )
        .unwrap();
        let m = AlignmentMatrix::build(&s, &cand, true, 8).unwrap();
        let table_eis = gent_metrics::eis(&s, &cand);
        assert!((m.eis() - table_eis).abs() < 1e-12, "{} vs {}", m.eis(), table_eis);
    }
}
