//! Three-valued alignment matrices (§V-A2/3) and `Combine` (Eq. 5).
//!
//! A candidate table is represented by a matrix with the Source Table's
//! dimensions. For every candidate tuple aligned to source row `i` (same
//! key value), the matrix holds a vector over the source columns with
//! (Eq. 4):
//!
//! * ` 1` — candidate agrees with the source cell (including a null where
//!   the source is null),
//! * ` 0` — candidate has a null where the source has a value,
//! * `-1` — candidate has a non-null value contradicting the source (or a
//!   value where the source has a null).
//!
//! `Combine` (Eq. 5) simulates outer union + subsumption/complementation:
//! two aligned tuples with *conflicting* non-zero entries at some column are
//! kept separate (real integration would keep both tuples); otherwise they
//! merge by element-wise maximum under the truth ordering `1 > 0 > −1`
//! (matching Figure 5's `0 ∨ ¬1 = 0`: the simulated integration will not
//! let an erroneous value fill a null because the similarity gate would
//! reject it).
//!
//! Because combining can yield more aligned tuples per source row than
//! either input had, each matrix stores *lists* of tuple vectors per source
//! row, with dominance pruning and a configurable cap to bound growth —
//! this is the dictionary encoding §V-A3 describes.
//!
//! # Packed arena layout
//!
//! The matrix is stored as a **packed flat arena**: every cell is 2 bits
//! (codes `−1 → 00`, `0 → 01`, `1 → 10`), 32 cells per `u64` word, packed
//! MSB-first:
//!
//! ```text
//! words:   [ t0w0 t0w1 … | t1w0 t1w1 … | … ]    ⌈n_cols/32⌉ words per tuple
//! row_off: [ 0, 1, 3, 3, … ]                    len = |S| + 1
//! ```
//!
//! Tuple `t` occupies `words[t·wpt .. (t+1)·wpt]` (`wpt` = words per
//! tuple); column `j` sits at bit `62 − 2·(j mod 32)` of word `j / 32`, and
//! lanes past `n_cols` are padded with the `0` code. Two properties fall
//! straight out of the packing:
//!
//! * the numeric code order matches the value order `−1 < 0 < 1`, and
//!   MSB-first packing makes `u64`-slice comparison *equal* to
//!   lexicographic tuple comparison — sorting/dedup need no decoding;
//! * the `0` padding never conflicts with anything and is identical across
//!   tuples, so every lane kernel can run over whole words without masking
//!   the tail.
//!
//! The aligned tuples of source row `i` are the tuple range
//! `row_off[i] .. row_off[i+1]` — an empty range encodes an uncovered row.
//!
//! # Lane kernels
//!
//! With `HI = 0xAAAA…` (the high bit of every lane), the per-word bit
//! algebra covers every cell operation the traversal's hot loops need —
//! 32 cells per instruction instead of one:
//!
//! * **ones** `= w & HI` — lanes holding `1` (code `10`);
//! * **negs** `= !(w | w≪1) & HI` — lanes holding `−1` (code `00`);
//! * **conflict** `(x, y) = (x & negs(y)) | (y & negs(x)) ≠ 0` — some lane
//!   has `1` on one side and `−1` on the other (Eq. 5's "keep separate");
//! * **lane-max** `(x, y) = (x|y) & !(((x|y) & HI) ≫ 1)` — the element-wise
//!   OR under the truth ordering `1 > 0 > −1` (the hi bit wins its lane);
//! * **score** `= popcount(w & wm) − popcount(negs(w) & wm)` — `α − δ`
//!   against the per-column weight mask `wm` (hi bit set exactly at the
//!   non-key lanes), two popcounts per 32 columns.
//!
//! Every operation (build, [`AlignmentMatrix::combine`],
//! [`AlignmentMatrix::eis`], [`AlignmentMatrix::net_score`], and the fused
//! [`AlignmentMatrix::combine_score`]) streams these kernels over the
//! contiguous word buffer: no per-tuple heap allocations, no pointer
//! chasing, 4× the cell density of the previous one-byte-per-cell arena.
//!
//! # Per-row max-bound profiles
//!
//! Each matrix also stores, per source row, the **lane-max of all its
//! aligned tuples** (`wpt` words; all-`00` for an uncovered row — the
//! identity of lane-max). Every tuple Eq. 5 can generate for a row is
//! element-wise ≤ the lane-max of the two sides' profiles (an OR-merge is
//! ≤ the column-wise max of its inputs, and a pass-through is ≤ its own
//! side's profile), and the score is monotone under the cell ordering — so
//! `score(lane_max(profile_a, profile_b))` is an **admissible upper bound**
//! on the fused per-row result (`AlignmentMatrix::combine_row_bound`).
//! `RoundScorer` uses it to prune candidates harder than the flat `n`-cap
//! before any lane work runs, without ever changing a selection.
//!
//! The original triply-nested `Vec<Vec<Vec<i8>>>` implementation survives
//! verbatim in [`mod@reference`] as the executable specification: property
//! tests assert the packed arena is behaviourally identical to it.

use gent_table::{FxHashMap, Table};

/// Cells per `u64` word (2 bits per cell).
const LANES: usize = 32;
/// The high bit of every 2-bit lane.
const HI: u64 = 0xAAAA_AAAA_AAAA_AAAA;
/// Cell code for `1` (agreement).
const CODE_ONE: u64 = 0b10;
/// Cell code for `0` (null-against-value).
const CODE_ZERO: u64 = 0b01;

/// The bit shift of column lane `l` within its word (MSB-first).
#[inline]
const fn lane_shift(l: usize) -> u32 {
    (62 - 2 * l) as u32
}

/// Lanes holding `−1` (code `00`): neither bit of the lane is set.
#[inline]
fn negs(w: u64) -> u64 {
    !(w | (w << 1)) & HI
}

/// Element-wise maximum under the truth ordering `1 > 0 > −1`: a lane with
/// the hi bit set (a `1`) wins outright; otherwise the lo bits OR (`0`
/// beats `−1`).
#[inline]
fn lane_max(x: u64, y: u64) -> u64 {
    let o = x | y;
    o & !((o & HI) >> 1)
}

/// Do two packed tuples conflict at this word (some lane `1` vs `−1`)?
#[inline]
fn conflict_word(x: u64, y: u64) -> u64 {
    (x & negs(y)) | (y & negs(x))
}

/// `α − δ` contribution of one word against its weight mask (`wm ⊆ HI`,
/// set exactly at the non-key lanes — zero at key lanes and padding).
#[inline]
fn word_score(w: u64, wm: u64) -> i64 {
    ((w & wm).count_ones() as i64) - ((negs(w) & wm).count_ones() as i64)
}

/// `α − δ` of one packed tuple.
#[inline]
fn packed_score(tuple: &[u64], weight: &[u64]) -> i64 {
    tuple.iter().zip(weight.iter()).map(|(&w, &m)| word_score(w, m)).sum()
}

/// FxHash of a row's key cells; `None` if any is null-like (nulls never
/// align tuples — the same rule as [`Table::key_from_row`]). `Value`'s
/// `Hash` is consistent with its cross-type equality, so equal keys always
/// hash equal; unequal keys sharing a hash are filtered by the probe.
pub(crate) fn key_hash(row: &[gent_table::Value], key_cols: &[usize]) -> Option<u64> {
    use std::hash::{Hash, Hasher};
    let mut h = gent_table::fxhash::FxHasher::default();
    for &k in key_cols {
        let v = &row[k];
        if v.is_null_like() {
            return None;
        }
        v.hash(&mut h);
    }
    Some(h.finish())
}

/// Three-valued alignment matrix of one (possibly partially integrated)
/// candidate against a fixed source table, stored as a packed flat cell
/// arena (see the [module docs](self) for the layout and lane kernels).
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentMatrix {
    /// Packed cell arena: tuple `t` is `words[t * wpt .. (t + 1) * wpt]`.
    words: Vec<u64>,
    /// Per-row lane-max profile: row `i` is
    /// `profiles[i * wpt .. (i + 1) * wpt]` (all zeros — every lane `−1`,
    /// the lane-max identity — for an uncovered row).
    profiles: Vec<u64>,
    /// Tuple-index offsets per source row (`len = n_rows + 1`): row `i`
    /// owns tuples `row_off[i] .. row_off[i + 1]`.
    row_off: Vec<u32>,
    /// Number of source columns (tuple width in cells).
    n_cols: usize,
    /// Words per tuple: `⌈n_cols / 32⌉`, at least 1.
    wpt: usize,
    /// Indices of the source's non-key columns (the ones EIS scores).
    non_key_cols: Vec<usize>,
    /// Per-word score weight mask: the hi bit of every non-key column's
    /// lane (zero at key lanes and padding), so the lane kernels accumulate
    /// `α − δ` with two popcounts per word.
    weight_words: Vec<u64>,
}

impl AlignmentMatrix {
    /// Build the matrix of `candidate` against `source` (Eq. 4).
    ///
    /// The candidate's columns are matched to the source's *by name* (Set
    /// Similarity already renamed them); the candidate must contain every
    /// source key column — tables that don't are first expanded
    /// (Algorithm 5) or dropped.
    ///
    /// `three_valued = false` gives the §V-A2 two-valued encoding
    /// (contradictions collapse to 0), kept for the ablation study.
    ///
    /// A `max_aligned_per_key` of 0 is clamped to 1 (here and in
    /// [`AlignmentMatrix::combine`]): emptying every multi-tuple row is
    /// never meaningful, and a cap ≥ 1 is what keeps the fused
    /// [`AlignmentMatrix::combine_score`] exactly equal to
    /// materialize-then-score.
    pub fn build(
        source: &Table,
        candidate: &Table,
        three_valued: bool,
        max_aligned_per_key: usize,
    ) -> Option<AlignmentMatrix> {
        Self::build_hashed(source, candidate, three_valued, max_aligned_per_key, None)
    }

    /// [`AlignmentMatrix::build`] with the candidate's per-row source-key
    /// hashes already computed — `key_hashes[i]` must equal
    /// `key_hash(candidate.rows()[i], ckey)` for the candidate's key
    /// columns. Expand's join engine knows these for free (a joined row's
    /// key cells are verbatim copies of one input row's), and skipping the
    /// re-hash of every expanded row is a measurable slice of matrix
    /// construction on large expansions.
    pub(crate) fn build_hashed(
        source: &Table,
        candidate: &Table,
        three_valued: bool,
        max_aligned_per_key: usize,
        key_hashes: Option<&[Option<u64>]>,
    ) -> Option<AlignmentMatrix> {
        let max_aligned_per_key = max_aligned_per_key.max(1);
        let skey = source.schema().key();
        assert!(!skey.is_empty(), "source must declare a key");
        // Candidate columns aligned to each source column.
        let col_map: Vec<Option<usize>> =
            source.schema().columns().map(|c| candidate.schema().column_index(c)).collect();
        // All key columns must be present in the candidate.
        let ckey: Option<Vec<usize>> = skey.iter().map(|&k| col_map[k]).collect();
        let ckey = ckey?;

        // Index candidate rows by key-value *hash* — cloning key tuples
        // into `KeyValue`s costs an allocation per candidate row, which
        // dominated construction on large expanded candidates. Probes
        // verify the key cells against the row itself, so hash collisions
        // can never mis-align tuples.
        let mut cindex: FxHashMap<u64, Vec<usize>> =
            FxHashMap::with_capacity_and_hasher(candidate.n_rows(), Default::default());
        match key_hashes {
            Some(hashes) => {
                debug_assert_eq!(hashes.len(), candidate.n_rows(), "hashes for another table");
                debug_assert!(
                    hashes.iter().zip(candidate.rows()).all(|(&h, row)| h == key_hash(row, &ckey)),
                    "precomputed key hashes disagree with key_hash"
                );
                for (i, &h) in hashes.iter().enumerate() {
                    if let Some(h) = h {
                        cindex.entry(h).or_default().push(i);
                    }
                }
            }
            None => {
                for (i, row) in candidate.rows().iter().enumerate() {
                    if let Some(h) = key_hash(row, &ckey) {
                        cindex.entry(h).or_default().push(i);
                    }
                }
            }
        }

        let n_cols = source.n_cols();
        let non_key_cols = source.schema().non_key_indices();
        let mut out = AlignmentMatrix::empty(source.n_rows(), n_cols, non_key_cols);
        let wpt = out.wpt;

        // Most of a tuple's lanes don't depend on the candidate row at all:
        // key lanes are always `1` (alignment verified the key cells equal,
        // and a hashed key is never null-like), lanes of columns the
        // candidate lacks depend only on the *source* cell, and the tail
        // padding is the constant `0` code. Bake all of those into a
        // per-source-row template once, so the per-tuple loop touches only
        // the mapped non-key columns — on narrow candidates that is a small
        // fraction of the source width, and tuple packing is the bulk of
        // construction.
        let mut base = vec![0u64; wpt];
        for &k in skey {
            base[k / LANES] |= CODE_ONE << lane_shift(k % LANES);
        }
        // Lanes the per-tuple loop never writes default to the `0` code
        // (missing columns against a non-null source cell, tail padding).
        let mut none_cols: Vec<usize> = Vec::new();
        let mut some_cols: Vec<(usize, usize, usize, u32)> = Vec::new();
        for (j, cm) in col_map.iter().enumerate() {
            match cm {
                None => {
                    base[j / LANES] |= CODE_ZERO << lane_shift(j % LANES);
                    none_cols.push(j);
                }
                Some(cj) if !skey.contains(&j) => {
                    some_cols.push((j, *cj, j / LANES, lane_shift(j % LANES)));
                }
                Some(_) => {}
            }
        }
        for l in n_cols..wpt * LANES {
            base[l / LANES] |= CODE_ZERO << lane_shift(l % LANES);
        }
        let mismatch = if three_valued { 0 } else { CODE_ZERO }; // −1 vs 0
        let null_mask: Vec<u64> =
            none_cols.iter().map(|&j| (CODE_ONE ^ CODE_ZERO) << lane_shift(j % LANES)).collect();

        let mut tmpl = vec![0u64; wpt];
        let mut scratch: Vec<u64> = Vec::new();
        let mut prune = PruneScratch::default();
        for si in 0..source.n_rows() {
            scratch.clear();
            let srow = &source.rows()[si];
            if let Some(h) = key_hash(srow, skey) {
                if let Some(crows) = cindex.get(&h) {
                    // This row's template: flip missing-column lanes from
                    // the `0` code to `1` where the source cell is itself
                    // null-like (a correctly-absent value).
                    tmpl.copy_from_slice(&base);
                    for (&j, &m) in none_cols.iter().zip(&null_mask) {
                        if srow[j].is_null_like() {
                            tmpl[j / LANES] ^= m;
                        }
                    }
                    for &ci in crows {
                        // Hash buckets may mix distinct keys; keep only the
                        // rows whose key cells actually equal the source's.
                        let crow = &candidate.rows()[ci];
                        if !skey.iter().zip(&ckey).all(|(&sk, &ck)| srow[sk] == crow[ck]) {
                            continue;
                        }
                        // Pack one tuple, MSB-first, 32 cells per word:
                        // the template plus this row's mapped lanes.
                        let at = scratch.len();
                        scratch.extend_from_slice(&tmpl);
                        for &(j, cj, word, shift) in &some_cols {
                            let sv = &srow[j];
                            let tv = &crow[cj];
                            // A correctly-preserved null counts like a
                            // shared value (Example 6's EIS convention),
                            // hence the same arm as value equality.
                            let enc = if (sv.is_null_like() && tv.is_null_like()) || sv == tv {
                                CODE_ONE
                            } else if tv.is_null_like() {
                                CODE_ZERO
                            } else {
                                mismatch
                            };
                            scratch[at + word] |= enc << shift;
                        }
                    }
                }
            }
            out.push_row_pruned(&scratch, max_aligned_per_key, &mut prune);
        }
        Some(out)
    }

    /// A matrix shell with no rows appended yet (rows arrive via
    /// [`AlignmentMatrix::push_row_pruned`] / [`AlignmentMatrix::push_row_raw`]).
    fn empty(n_rows: usize, n_cols: usize, non_key_cols: Vec<usize>) -> AlignmentMatrix {
        let wpt = n_cols.div_ceil(LANES).max(1);
        let mut weight_words = vec![0u64; wpt];
        for &c in &non_key_cols {
            weight_words[c / LANES] |= (CODE_ONE << lane_shift(c % LANES)) & HI;
        }
        let mut row_off = Vec::with_capacity(n_rows + 1);
        row_off.push(0);
        AlignmentMatrix {
            words: Vec::new(),
            profiles: Vec::with_capacity(n_rows * wpt),
            row_off,
            n_cols,
            wpt,
            non_key_cols,
            weight_words,
        }
    }

    /// Prune `scratch` (packed tuples, `wpt` words each) and append the
    /// survivors as the next source row.
    fn push_row_pruned(&mut self, scratch: &[u64], cap: usize, prune: &mut PruneScratch) {
        let start = self.words.len();
        prune.prune_into(scratch, self.wpt, &self.weight_words, cap, &mut self.words);
        self.finish_row(start);
    }

    /// Append a row's packed tuples verbatim (already pruned on the source
    /// side).
    fn push_row_raw(&mut self, tuples: &[u64]) {
        let start = self.words.len();
        self.words.extend_from_slice(tuples);
        self.finish_row(start);
    }

    /// Close the row whose tuples begin at word offset `start`: record the
    /// offset and fold the row's lane-max profile.
    fn finish_row(&mut self, start: usize) {
        self.row_off.push((self.words.len() / self.wpt) as u32);
        let base = self.profiles.len();
        self.profiles.resize(base + self.wpt, 0);
        for t in (start..self.words.len()).step_by(self.wpt) {
            for k in 0..self.wpt {
                self.profiles[base + k] = lane_max(self.profiles[base + k], self.words[t + k]);
            }
        }
    }

    /// Number of source rows.
    fn n_rows(&self) -> usize {
        self.row_off.len() - 1
    }

    /// Number of source rows (the matrix's fixed height) — every matrix in
    /// one traversal shares it with the source table.
    pub fn n_source_rows(&self) -> usize {
        self.n_rows()
    }

    /// Number of scoreable (non-key) source columns — the `n` every score
    /// normalises by, and the per-row ceiling of `α − δ` (all cells `1`).
    pub fn n_scored_cols(&self) -> usize {
        self.non_key_cols.len()
    }

    /// Does source row `i` have at least one aligned tuple? Rows where this
    /// is `false` pass through [`AlignmentMatrix::combine`] *verbatim* on
    /// the other side — the invariant `RoundScorer`'s dirty-row tracking
    /// rests on.
    #[inline]
    pub fn row_covered(&self, i: usize) -> bool {
        !self.row_range(i).is_empty()
    }

    /// Row `i`'s contribution to [`AlignmentMatrix::net_score`]'s integer
    /// numerator: `max(0, max_tuple (α − δ))`, or 0 for an uncovered row.
    #[inline]
    pub(crate) fn row_self_best(&self, i: usize) -> i64 {
        self.row_range(i).map(|t| self.tuple_score(t)).max().unwrap_or(0).max(0)
    }

    /// The tuple-index range of source row `i`.
    #[inline]
    fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        self.row_off[i] as usize..self.row_off[i + 1] as usize
    }

    /// The packed words of tuple `t`.
    #[inline]
    fn tuple(&self, t: usize) -> &[u64] {
        &self.words[t * self.wpt..(t + 1) * self.wpt]
    }

    /// The word slab of source row `i` (all of its tuples, back to back).
    #[inline]
    fn row_cells(&self, i: usize) -> &[u64] {
        let r = self.row_range(i);
        &self.words[r.start * self.wpt..r.end * self.wpt]
    }

    /// The lane-max profile words of source row `i`.
    #[inline]
    fn profile(&self, i: usize) -> &[u64] {
        &self.profiles[i * self.wpt..(i + 1) * self.wpt]
    }

    /// `α − δ` of tuple `t` over the non-key columns.
    #[inline]
    fn tuple_score(&self, t: usize) -> i64 {
        packed_score(self.tuple(t), &self.weight_words)
    }

    /// Number of source rows covered (≥1 aligned tuple).
    pub fn keys_covered(&self) -> usize {
        (0..self.n_rows()).filter(|&i| !self.row_range(i).is_empty()).count()
    }

    /// Aligned tuple vectors for source row `i`, decoded from the packed
    /// arena into owned `i8` vectors (one entry per source column).
    pub fn aligned(&self, i: usize) -> impl ExactSizeIterator<Item = Vec<i8>> + '_ {
        self.row_range(i).map(move |t| {
            let words = self.tuple(t);
            (0..self.n_cols)
                .map(|j| match (words[j / LANES] >> lane_shift(j % LANES)) & 0b11 {
                    CODE_ONE => 1,
                    CODE_ZERO => 0,
                    _ => -1,
                })
                .collect()
        })
    }

    /// evaluateSimilarity() — the EIS score implied by this matrix
    /// (§V-A3): per source row take the best aligned tuple's
    /// `(1 + (α − δ)/n)`, where α counts `1`s and δ counts `-1`s over
    /// non-key columns; rows with no aligned tuple contribute 0; normalise
    /// by `0.5 / |S|`.
    pub fn eis(&self) -> f64 {
        if self.n_rows() == 0 {
            return 0.0;
        }
        let n = self.non_key_cols.len();
        let mut total = 0.0;
        for i in 0..self.n_rows() {
            let range = self.row_range(i);
            if range.is_empty() {
                continue;
            }
            let best = range
                .map(|t| if n == 0 { 1.0 } else { 1.0 + self.tuple_score(t) as f64 / n as f64 })
                .fold(f64::NEG_INFINITY, f64::max);
            total += best;
        }
        0.5 * total / self.n_rows() as f64
    }

    /// Algorithm 1's `percentCorrectVals`: the fraction of source cells the
    /// simulated integration reproduces, net of contradictions —
    /// `Σ_rows max_tuple (α − δ) / (n · |S|)`.
    ///
    /// This is the score the traversal greedily maximises. It deliberately
    /// differs from [`AlignmentMatrix::eis`]: the EIS form `0.5·(1 + E)`
    /// grants 0.5 per source row for *mere key coverage*, so a junk table
    /// whose misrenamed integer column happens to contain every source key
    /// would "improve" EIS while contributing no values at all. Counting
    /// net correct values (the paper's "fraction of 1's in the matrix",
    /// §V-A2) makes such tables worthless, which is exactly why Algorithm 1
    /// can prune them.
    pub fn net_score(&self) -> f64 {
        let n = self.non_key_cols.len();
        if self.n_rows() == 0 || n == 0 {
            return 0.0;
        }
        let mut total = 0i64;
        for i in 0..self.n_rows() {
            let best = self.row_range(i).map(|t| self.tuple_score(t)).max().unwrap_or(0);
            total += best.max(0);
        }
        total as f64 / (n as f64 * self.n_rows() as f64)
    }

    /// Eq. 5 — `Combine` two matrices into the matrix of their simulated
    /// integration.
    pub fn combine(&self, other: &AlignmentMatrix, max_aligned_per_key: usize) -> AlignmentMatrix {
        self.combine_tracked(other, max_aligned_per_key, &mut Vec::new())
    }

    /// [`AlignmentMatrix::combine`] with change tracking: appends to
    /// `dirty_rows` (ascending) every source row whose result tuples may
    /// differ from `self`'s — exactly the rows where `other` has at least
    /// one aligned tuple. Rows where `other`'s range is empty are copied
    /// from `self` **verbatim** (same tuples, same order), so per-row state
    /// cached against `self` provably stays valid for them; that guarantee
    /// is what lets `RoundScorer` rescore only the winner's rows after a
    /// merge.
    pub fn combine_tracked(
        &self,
        other: &AlignmentMatrix,
        max_aligned_per_key: usize,
        dirty_rows: &mut Vec<u32>,
    ) -> AlignmentMatrix {
        let max_aligned_per_key = max_aligned_per_key.max(1);
        assert_eq!(self.n_cols, other.n_cols, "matrices must share the source shape");
        assert_eq!(self.n_rows(), other.n_rows());
        let wpt = self.wpt;
        let mut out = AlignmentMatrix::empty(self.n_rows(), self.n_cols, self.non_key_cols.clone());
        let mut scratch: Vec<u64> = Vec::new();
        let mut b_merged: Vec<bool> = Vec::new();
        let mut prune = PruneScratch::default();
        for i in 0..self.n_rows() {
            let (ra, rb) = (self.row_range(i), other.row_range(i));
            if !rb.is_empty() {
                dirty_rows.push(i as u32);
            }
            // One-sided rows pass through verbatim (outer-union semantics;
            // the surviving side was already pruned when it was built).
            if ra.is_empty() {
                out.push_row_raw(other.row_cells(i));
                continue;
            }
            if rb.is_empty() {
                out.push_row_raw(self.row_cells(i));
                continue;
            }
            scratch.clear();
            b_merged.clear();
            b_merged.resize(rb.len(), false);
            for ta in ra.clone() {
                let ta = self.tuple(ta);
                let mut merged_any = false;
                for (bi, tb) in rb.clone().enumerate() {
                    let tb = other.tuple(tb);
                    // Lane-parallel merge: write the element-wise OR (under
                    // `1 > 0 > −1`) word by word, backing out on conflict.
                    let base_len = scratch.len();
                    let mut conflict = false;
                    for k in 0..wpt {
                        let (x, y) = (ta[k], tb[k]);
                        if conflict_word(x, y) != 0 {
                            conflict = true;
                            break;
                        }
                        scratch.push(lane_max(x, y));
                    }
                    if conflict {
                        scratch.truncate(base_len);
                    } else {
                        b_merged[bi] = true;
                        merged_any = true;
                    }
                }
                if !merged_any {
                    scratch.extend_from_slice(ta);
                }
            }
            for (bi, tb) in rb.clone().enumerate() {
                if !b_merged[bi] {
                    scratch.extend_from_slice(other.tuple(tb));
                }
            }
            out.push_row_pruned(&scratch, max_aligned_per_key, &mut prune);
        }
        out
    }

    /// The fused combine–score kernel: exactly
    /// `self.combine(other, cap).net_score()`, computed in one streaming
    /// pass **without materializing the combined matrix**.
    ///
    /// Per source row it enumerates the same tuple set `Combine` would
    /// generate — OR-merges of compatible pairs plus unmerged pass-throughs
    /// — but only tracks the running maximum of each tuple's `α − δ`.
    /// Dominance pruning, dedup, and the per-row cap can never change that
    /// maximum (a dominated tuple scores no higher than its dominator, and
    /// the cap keeps the best-scoring tuples), so the result is *bit-equal*
    /// to materialize-then-score: Matrix Traversal's greedy comparisons,
    /// and therefore its selections, are unchanged.
    ///
    /// The equivalence requires the effective cap to be ≥ 1 (a zero cap
    /// would *empty* a merged row in the materialized path, which this
    /// enumeration deliberately does not model) — guaranteed, because
    /// [`AlignmentMatrix::build`] and [`AlignmentMatrix::combine`] clamp
    /// the cap to ≥ 1.
    ///
    /// Cost per row: `|A_i|·|B_i|·w` cell reads and **zero** allocations,
    /// versus `combine`'s tuple materialization, sort, dedup, and dominance
    /// scan. The traversal calls this for every remaining candidate on
    /// every round and materializes only the round's winner.
    pub fn combine_score(&self, other: &AlignmentMatrix) -> f64 {
        self.combine_score_with(other, &mut CombineScratch::default())
    }

    /// [`AlignmentMatrix::combine_score`] with caller-provided scratch: a
    /// long-lived caller (the traversal's `RoundScorer` scores thousands of
    /// candidate–row pairs per reclaim) reuses one [`CombineScratch`] and
    /// pays **zero** allocations per scoring round.
    pub fn combine_score_with(&self, other: &AlignmentMatrix, scratch: &mut CombineScratch) -> f64 {
        assert_eq!(self.n_cols, other.n_cols, "matrices must share the source shape");
        assert_eq!(self.n_rows(), other.n_rows());
        let n = self.non_key_cols.len();
        if self.n_rows() == 0 || n == 0 {
            return 0.0;
        }
        let mut total = 0i64;
        for i in 0..self.n_rows() {
            total += self.combine_row_best(other, i, scratch);
        }
        total as f64 / (n as f64 * self.n_rows() as f64)
    }

    /// The per-row core of the fused kernel: row `i`'s contribution to
    /// `combine(other, cap).net_score()`'s integer numerator — the maximum
    /// `α − δ` over the tuple set Eq. 5 would generate for that row
    /// (OR-merges of compatible pairs plus unmerged pass-throughs), clamped
    /// at 0. Depends only on the two matrices' row-`i` tuples, which is what
    /// makes per-row caching across greedy rounds sound.
    pub(crate) fn combine_row_best(
        &self,
        other: &AlignmentMatrix,
        i: usize,
        scratch: &mut CombineScratch,
    ) -> i64 {
        let wpt = self.wpt;
        let weight = &self.weight_words;
        let (ra, rb) = (self.row_range(i), other.row_range(i));
        let mut best = i64::MIN;
        if ra.is_empty() {
            best = rb.map(|t| packed_score(other.tuple(t), weight)).max().unwrap_or(0);
        } else if rb.is_empty() {
            best = ra.map(|t| self.tuple_score(t)).max().unwrap_or(0);
        } else {
            let b_merged = &mut scratch.b_merged;
            b_merged.clear();
            b_merged.resize(rb.len(), false);
            for ta in ra.clone() {
                let ta = self.tuple(ta);
                let mut merged_any = false;
                for (bi, tb) in rb.clone().enumerate() {
                    let tb = other.tuple(tb);
                    // Single lane pass per pair: detect a conflict and
                    // accumulate the OR-tuple's score together, 32 cells
                    // per word.
                    let mut s = 0i64;
                    let mut conflict = false;
                    for k in 0..wpt {
                        let (x, y) = (ta[k], tb[k]);
                        if conflict_word(x, y) != 0 {
                            conflict = true;
                            break;
                        }
                        s += word_score(lane_max(x, y), weight[k]);
                    }
                    if !conflict {
                        b_merged[bi] = true;
                        merged_any = true;
                        best = best.max(s);
                    }
                }
                if !merged_any {
                    best = best.max(packed_score(ta, weight));
                }
            }
            for (bi, tb) in rb.clone().enumerate() {
                if !b_merged[bi] {
                    best = best.max(packed_score(other.tuple(tb), weight));
                }
            }
        }
        best.max(0)
    }

    /// Admissible upper bound on [`AlignmentMatrix::combine_row_best`] from
    /// the two rows' lane-max profiles alone: every tuple Eq. 5 can produce
    /// for row `i` is element-wise ≤ `lane_max(profile_a, profile_b)` (an
    /// OR-merge is ≤ the column-wise max of its inputs; a pass-through is ≤
    /// its own side's profile, and an uncovered side's all-`−1` profile is
    /// the lane-max identity), and the score is monotone in each cell — so
    /// scoring the profile max, clamped at 0 like the row best, can never
    /// under-estimate. `wpt` words of work instead of `|A_i|·|B_i|·wpt`.
    #[inline]
    pub(crate) fn combine_row_bound(&self, other: &AlignmentMatrix, i: usize) -> i64 {
        let (pa, pb) = (self.profile(i), other.profile(i));
        let mut s = 0i64;
        for k in 0..self.wpt {
            s += word_score(lane_max(pa[k], pb[k]), self.weight_words[k]);
        }
        s.max(0)
    }
}

/// Reusable scratch for the fused combine–score kernel: the `b_merged`
/// bitmap that used to be allocated per [`AlignmentMatrix::combine_score`]
/// call now lives wherever the caller wants it (the traversal keeps one in
/// its `RoundScorer`), so a whole scoring round allocates nothing.
#[derive(Debug, Default)]
pub struct CombineScratch {
    /// Which of `other`'s row tuples merged with at least one of `self`'s.
    b_merged: Vec<bool>,
}

/// Reusable scratch for dominance pruning over packed tuple buffers — one
/// allocation per build/combine, not per source row.
#[derive(Default)]
struct PruneScratch {
    /// Surviving tuple indices into the scratch buffer, in output order.
    order: Vec<u32>,
    /// Frozen copy of `order` during the dominance scan (the scan mutates
    /// `order` while comparing against the full deduped set).
    snapshot: Vec<u32>,
}

impl PruneScratch {
    /// Dominance-prune `tuples` (a flat buffer of packed `wpt`-word
    /// tuples), dedup, cap the list at `cap` keeping the highest-scoring
    /// tuples, and append the survivors to `out` in lexicographic order —
    /// the exact semantics (and final ordering) of the reference
    /// implementation's `prune_dominated`. MSB-first packing with the code
    /// order matching the value order makes `u64`-slice comparison equal to
    /// per-cell lexicographic comparison, so no decoding is needed; a tuple
    /// is dominated iff lane-maxing it into the other is a no-op.
    fn prune_into(
        &mut self,
        tuples: &[u64],
        wpt: usize,
        weight: &[u64],
        cap: usize,
        out: &mut Vec<u64>,
    ) {
        let nt = tuples.len() / wpt;
        if nt <= 1 {
            out.extend_from_slice(tuples);
            return;
        }
        let tup = |t: u32| -> &[u64] { &tuples[t as usize * wpt..(t as usize + 1) * wpt] };
        self.order.clear();
        self.order.extend(0..nt as u32);
        // Lexicographic sort + dedup by content.
        self.order.sort_unstable_by(|&a, &b| tup(a).cmp(tup(b)));
        self.order.dedup_by(|&mut a, &mut b| tup(a) == tup(b));
        // Drop tuples dominated element-wise (under `1 > 0 > −1`) by
        // another distinct tuple. The set is deduped, so index inequality
        // implies content inequality.
        self.snapshot.clear();
        self.snapshot.extend_from_slice(&self.order);
        let snapshot = &self.snapshot;
        self.order.retain(|&t| {
            !snapshot.iter().any(|&o| {
                o != t
                    && tup(t) != tup(o)
                    && tup(t).iter().zip(tup(o)).all(|(&x, &y)| lane_max(x, y) == y)
            })
        });
        if self.order.len() > cap {
            // Keep the tuples with the best (α − δ) score; the stable sort
            // preserves lexicographic order among score ties.
            self.order.sort_by_key(|&t| std::cmp::Reverse(packed_score(tup(t), weight)));
            self.order.truncate(cap);
            self.order.sort_unstable_by(|&a, &b| tup(a).cmp(tup(b)));
        }
        for &t in &self.order {
            out.extend_from_slice(tup(t));
        }
    }
}

pub mod reference {
    //! The original triply-nested `Vec<Vec<Vec<i8>>>` alignment matrix,
    //! kept as the **executable specification** of the flat-arena
    //! [`AlignmentMatrix`](super::AlignmentMatrix) — verbatim except for
    //! one shared semantic fix: like the arena, `build` and `combine`
    //! clamp `max_aligned_per_key` to ≥ 1 (the zero-cap configuration is
    //! tolerated-but-clamped per `tests/failure_injection.rs`, and a cap
    //! ≥ 1 is what makes fused scoring exact), so arena == reference holds
    //! for *every* cap value.
    //!
    //! Nothing in the pipeline uses this module: it exists so tests (unit,
    //! property, and the end-to-end regression suite) can assert the arena
    //! representation and the fused combine–score kernel are behaviourally
    //! identical to the straightforward implementation.

    use gent_table::{FxHashMap, Table};

    /// Nested-vector alignment matrix — the reference implementation.
    #[derive(Debug, Clone, PartialEq)]
    pub struct NestedMatrix {
        /// `rows[i]` = aligned tuple vectors for source row `i` (possibly
        /// empty). Each vector has one entry per source column.
        rows: Vec<Vec<Vec<i8>>>,
        /// Number of source columns (vector length).
        n_cols: usize,
        /// Indices of the source's non-key columns (the ones EIS scores).
        non_key_cols: Vec<usize>,
    }

    impl NestedMatrix {
        /// Build the matrix of `candidate` against `source` (Eq. 4) —
        /// reference semantics.
        pub fn build(
            source: &Table,
            candidate: &Table,
            three_valued: bool,
            max_aligned_per_key: usize,
        ) -> Option<NestedMatrix> {
            let max_aligned_per_key = max_aligned_per_key.max(1);
            let skey = source.schema().key();
            assert!(!skey.is_empty(), "source must declare a key");
            let col_map: Vec<Option<usize>> =
                source.schema().columns().map(|c| candidate.schema().column_index(c)).collect();
            let ckey: Option<Vec<usize>> = skey.iter().map(|&k| col_map[k]).collect();
            let ckey = ckey?;

            let mut cindex: FxHashMap<gent_table::KeyValue, Vec<usize>> = FxHashMap::default();
            for (i, row) in candidate.rows().iter().enumerate() {
                if let Some(kv) = Table::key_from_row(row, &ckey) {
                    cindex.entry(kv).or_default().push(i);
                }
            }

            let n_cols = source.n_cols();
            let non_key_cols = source.schema().non_key_indices();
            let mut rows: Vec<Vec<Vec<i8>>> = Vec::with_capacity(source.n_rows());
            for si in 0..source.n_rows() {
                let mut aligned: Vec<Vec<i8>> = Vec::new();
                if let Some(kv) = source.key_of_row(si) {
                    if let Some(crows) = cindex.get(&kv) {
                        for &ci in crows {
                            let mut vec = vec![0i8; n_cols];
                            for (j, slot) in vec.iter_mut().enumerate() {
                                let sv = &source.rows()[si][j];
                                let tv = col_map[j].map(|cj| &candidate.rows()[ci][cj]);
                                *slot = match tv {
                                    None => {
                                        if sv.is_null_like() {
                                            1
                                        } else {
                                            0
                                        }
                                    }
                                    Some(tv) => {
                                        if (sv.is_null_like() && tv.is_null_like()) || sv == tv {
                                            1
                                        } else if tv.is_null_like() {
                                            0
                                        } else if three_valued {
                                            -1
                                        } else {
                                            0
                                        }
                                    }
                                };
                            }
                            aligned.push(vec);
                        }
                    }
                }
                prune_dominated(&mut aligned, &non_key_cols, max_aligned_per_key);
                rows.push(aligned);
            }
            Some(NestedMatrix { rows, n_cols, non_key_cols })
        }

        /// Number of source rows covered (≥1 aligned tuple).
        pub fn keys_covered(&self) -> usize {
            self.rows.iter().filter(|r| !r.is_empty()).count()
        }

        /// Aligned tuple vectors for source row `i`.
        pub fn aligned(&self, i: usize) -> &[Vec<i8>] {
            &self.rows[i]
        }

        /// Reference `evaluateSimilarity()` (see
        /// [`AlignmentMatrix::eis`](super::AlignmentMatrix::eis)).
        pub fn eis(&self) -> f64 {
            if self.rows.is_empty() {
                return 0.0;
            }
            let n = self.non_key_cols.len();
            let mut total = 0.0;
            for aligned in &self.rows {
                if aligned.is_empty() {
                    continue;
                }
                let best = aligned
                    .iter()
                    .map(|vec| {
                        if n == 0 {
                            1.0
                        } else {
                            let mut alpha = 0i32;
                            let mut delta = 0i32;
                            for &c in &self.non_key_cols {
                                match vec[c] {
                                    1 => alpha += 1,
                                    -1 => delta += 1,
                                    _ => {}
                                }
                            }
                            1.0 + (alpha - delta) as f64 / n as f64
                        }
                    })
                    .fold(f64::NEG_INFINITY, f64::max);
                total += best;
            }
            0.5 * total / self.rows.len() as f64
        }

        /// Reference `percentCorrectVals` (see
        /// [`AlignmentMatrix::net_score`](super::AlignmentMatrix::net_score)).
        pub fn net_score(&self) -> f64 {
            let n = self.non_key_cols.len();
            if self.rows.is_empty() || n == 0 {
                return 0.0;
            }
            let mut total = 0i64;
            for aligned in &self.rows {
                let best = aligned
                    .iter()
                    .map(|vec| {
                        let mut alpha = 0i64;
                        let mut delta = 0i64;
                        for &c in &self.non_key_cols {
                            match vec[c] {
                                1 => alpha += 1,
                                -1 => delta += 1,
                                _ => {}
                            }
                        }
                        alpha - delta
                    })
                    .max()
                    .unwrap_or(0);
                total += best.max(0);
            }
            total as f64 / (n as f64 * self.rows.len() as f64)
        }

        /// Reference Eq. 5 `Combine`.
        pub fn combine(&self, other: &NestedMatrix, max_aligned_per_key: usize) -> NestedMatrix {
            let max_aligned_per_key = max_aligned_per_key.max(1);
            assert_eq!(self.n_cols, other.n_cols, "matrices must share the source shape");
            assert_eq!(self.rows.len(), other.rows.len());
            let mut rows = Vec::with_capacity(self.rows.len());
            for (a, b) in self.rows.iter().zip(other.rows.iter()) {
                rows.push(combine_lists(a, b, &self.non_key_cols, max_aligned_per_key));
            }
            NestedMatrix { rows, n_cols: self.n_cols, non_key_cols: self.non_key_cols.clone() }
        }
    }

    /// Do two tuple vectors conflict (different non-zero values at a column)?
    fn conflicts(a: &[i8], b: &[i8]) -> bool {
        a.iter().zip(b.iter()).any(|(&x, &y)| x != 0 && y != 0 && x != y)
    }

    /// Element-wise OR under the truth ordering `1 > 0 > −1`.
    fn or_tuples(a: &[i8], b: &[i8]) -> Vec<i8> {
        a.iter().zip(b.iter()).map(|(&x, &y)| x.max(y)).collect()
    }

    /// Combine the aligned-tuple lists of one source row (Eq. 5).
    fn combine_lists(
        a: &[Vec<i8>],
        b: &[Vec<i8>],
        non_key_cols: &[usize],
        cap: usize,
    ) -> Vec<Vec<i8>> {
        if a.is_empty() {
            return b.to_vec();
        }
        if b.is_empty() {
            return a.to_vec();
        }
        let mut out: Vec<Vec<i8>> = Vec::new();
        let mut b_merged = vec![false; b.len()];
        for ta in a {
            let mut merged_any = false;
            for (bi, tb) in b.iter().enumerate() {
                if !conflicts(ta, tb) {
                    out.push(or_tuples(ta, tb));
                    b_merged[bi] = true;
                    merged_any = true;
                }
            }
            if !merged_any {
                out.push(ta.clone());
            }
        }
        for (bi, tb) in b.iter().enumerate() {
            if !b_merged[bi] {
                out.push(tb.clone());
            }
        }
        prune_dominated(&mut out, non_key_cols, cap);
        out
    }

    /// Remove tuples dominated element-wise (under `1 > 0 > −1`) by
    /// another, dedup, and cap the list at `cap` keeping the
    /// highest-scoring tuples.
    fn prune_dominated(list: &mut Vec<Vec<i8>>, non_key_cols: &[usize], cap: usize) {
        if list.len() <= 1 {
            return;
        }
        list.sort();
        list.dedup();
        let snapshot = list.clone();
        list.retain(|t| {
            !snapshot.iter().any(|o| o != t && t.iter().zip(o.iter()).all(|(&x, &y)| x <= y))
        });
        if list.len() > cap {
            // Keep the tuples with the best (α − δ) score.
            let score = |t: &Vec<i8>| -> i32 {
                non_key_cols
                    .iter()
                    .map(|&c| match t[c] {
                        1 => 1,
                        -1 => -1,
                        _ => 0,
                    })
                    .sum()
            };
            list.sort_by_key(|t| std::cmp::Reverse(score(t)));
            list.truncate(cap);
            list.sort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::Value as V;

    /// Collect a row's aligned tuples as owned vectors, for assertions.
    fn aligned_vecs(m: &AlignmentMatrix, i: usize) -> Vec<Vec<i8>> {
        m.aligned(i).collect()
    }

    /// Figure 3's source and tables A, B, C (after column renaming).
    fn source() -> Table {
        Table::build(
            "S",
            &["ID", "Name", "Age", "Gender", "Education Level"],
            &["ID"],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27), V::Null, V::str("Bachelors")],
                vec![V::Int(1), V::str("Brown"), V::Int(24), V::str("Male"), V::str("Masters")],
                vec![
                    V::Int(2),
                    V::str("Wang"),
                    V::Int(32),
                    V::str("Female"),
                    V::str("High School"),
                ],
            ],
        )
        .unwrap()
    }

    fn table_a() -> Table {
        Table::build(
            "A",
            &["ID", "Name", "Education Level"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::str("Bachelors")],
                vec![V::Int(1), V::str("Brown"), V::Null],
                vec![V::Int(2), V::str("Wang"), V::str("High School")],
            ],
        )
        .unwrap()
    }

    /// Table B joined with the key via A (Expand would produce this); for
    /// unit tests we give it the ID directly.
    fn table_b_with_key() -> Table {
        Table::build(
            "B",
            &["ID", "Name", "Age"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27)],
                vec![V::Int(1), V::str("Brown"), V::Int(24)],
                vec![V::Int(2), V::str("Wang"), V::Int(32)],
            ],
        )
        .unwrap()
    }

    fn table_c_with_key() -> Table {
        Table::build(
            "C",
            &["ID", "Name", "Gender"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::str("Male")],
                vec![V::Int(1), V::str("Brown"), V::str("Male")],
                vec![V::Int(2), V::str("Wang"), V::str("Male")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure5_matrix_a_encoding() {
        // Matrix A (Figure 5): rows [1 1 0 ¬1? …] — concretely: A shares
        // ID, Name, Education; lacks Age (0 vs source value), lacks Gender
        // (source row 0 has null gender → 1; rows 1,2 have values → 0).
        let m = AlignmentMatrix::build(&source(), &table_a(), true, 8).unwrap();
        assert_eq!(aligned_vecs(&m, 0), vec![vec![1, 1, 0, 1, 1]]);
        // Brown: Education null in A but "Masters" in source → 0.
        assert_eq!(aligned_vecs(&m, 1), vec![vec![1, 1, 0, 0, 0]]);
        assert_eq!(aligned_vecs(&m, 2), vec![vec![1, 1, 0, 0, 1]]);
    }

    #[test]
    fn figure5_matrix_c_has_contradictions() {
        let m = AlignmentMatrix::build(&source(), &table_c_with_key(), true, 8).unwrap();
        // Smith: source Gender null, C says Male → -1 (erroneously filled).
        assert_eq!(aligned_vecs(&m, 0), vec![vec![1, 1, 0, -1, 0]]);
        // Brown: C agrees (Male) → 1.
        assert_eq!(aligned_vecs(&m, 1), vec![vec![1, 1, 0, 1, 0]]);
        // Wang: source Female vs C Male → -1.
        assert_eq!(aligned_vecs(&m, 2), vec![vec![1, 1, 0, -1, 0]]);
    }

    #[test]
    fn two_valued_collapses_contradictions() {
        let m = AlignmentMatrix::build(&source(), &table_c_with_key(), false, 8).unwrap();
        assert_eq!(aligned_vecs(&m, 0), vec![vec![1, 1, 0, 0, 0]]);
    }

    #[test]
    fn figure5_combine_a_b() {
        // OR(A, B) in Figure 5: merging fills Age with 1s everywhere.
        let s = source();
        let ma = AlignmentMatrix::build(&s, &table_a(), true, 8).unwrap();
        let mb = AlignmentMatrix::build(&s, &table_b_with_key(), true, 8).unwrap();
        let ab = ma.combine(&mb, 8);
        assert_eq!(aligned_vecs(&ab, 0), vec![vec![1, 1, 1, 1, 1]]);
        assert_eq!(aligned_vecs(&ab, 1), vec![vec![1, 1, 1, 0, 0]]);
        assert_eq!(aligned_vecs(&ab, 2), vec![vec![1, 1, 1, 0, 1]]);
    }

    #[test]
    fn figure5_combine_with_c() {
        // OR(OR(A,B), C): Smith row has 1 vs -1 on Gender → conflicting
        // tuples are kept separate by Combine, and the dominated one
        // ((1,1,0,-1,0) ≤ (1,1,1,1,1) element-wise) is then pruned — it can
        // never be the best-aligned tuple. Brown merges (C agrees on Male);
        // Wang's -1 ORs under 0 ∨ ¬1 = 0.
        let s = source();
        let ma = AlignmentMatrix::build(&s, &table_a(), true, 8).unwrap();
        let mb = AlignmentMatrix::build(&s, &table_b_with_key(), true, 8).unwrap();
        let mc = AlignmentMatrix::build(&s, &table_c_with_key(), true, 8).unwrap();
        let abc = ma.combine(&mb, 8).combine(&mc, 8);
        assert_eq!(aligned_vecs(&abc, 0), vec![vec![1, 1, 1, 1, 1]]);
        // Brown: compatible → single merged tuple, Gender 1.
        assert_eq!(aligned_vecs(&abc, 1), vec![vec![1, 1, 1, 1, 0]]);
        // Wang: (1,1,1,0,1) vs (1,1,0,-1,0): 0 vs -1 is not a non-zero
        // disagreement → merge with max: Gender max(0,-1) = 0.
        assert_eq!(aligned_vecs(&abc, 2), vec![vec![1, 1, 1, 0, 1]]);
    }

    #[test]
    fn combine_keeps_non_dominated_conflicts_separate() {
        let s = source();
        // One candidate knows Name+Education, the other Age but with a
        // wrong Gender — the conflict tuples don't dominate each other.
        let left = table_a(); // Smith: [1,1,0,1,1]
        let right = Table::build(
            "R",
            &["ID", "Age", "Gender"],
            &[],
            vec![vec![V::Int(0), V::Int(27), V::str("Male")]],
        )
        .unwrap(); // Smith: [1,0,1,-1,0]
        let ml = AlignmentMatrix::build(&s, &left, true, 8).unwrap();
        let mr = AlignmentMatrix::build(&s, &right, true, 8).unwrap();
        let c = ml.combine(&mr, 8);
        let tuples = aligned_vecs(&c, 0);
        assert_eq!(tuples.len(), 2, "conflicting non-dominated tuples both kept");
        assert!(tuples.contains(&vec![1, 1, 0, 1, 1]));
        assert!(tuples.contains(&vec![1, 0, 1, -1, 0]));
    }

    #[test]
    fn eis_of_figure5_improves_with_b_but_not_c() {
        let s = source();
        let ma = AlignmentMatrix::build(&s, &table_a(), true, 8).unwrap();
        let mb = AlignmentMatrix::build(&s, &table_b_with_key(), true, 8).unwrap();
        let mc = AlignmentMatrix::build(&s, &table_c_with_key(), true, 8).unwrap();
        let e_a = ma.eis();
        let ab = ma.combine(&mb, 8);
        let e_ab = ab.eis();
        assert!(e_ab > e_a, "adding B must improve EIS: {e_a} → {e_ab}");
        let abc = ab.combine(&mc, 8);
        // C contributes Brown's Gender (1) but pollutes nothing thanks to
        // conflict separation — EIS can improve slightly via Brown.
        let e_abc = abc.eis();
        assert!(e_abc >= e_ab);
    }

    #[test]
    fn missing_key_column_gives_none() {
        let s = source();
        let nokey = Table::build("X", &["Name", "Age"], &[], vec![]).unwrap();
        assert!(AlignmentMatrix::build(&s, &nokey, true, 8).is_none());
    }

    #[test]
    fn dominance_pruning_drops_weaker_tuples() {
        let s = source();
        // Candidate with two rows for key 0: one strictly better.
        let c = Table::build(
            "C",
            &["ID", "Name", "Age"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27)],
                vec![V::Int(0), V::str("Smith"), V::Null],
            ],
        )
        .unwrap();
        let m = AlignmentMatrix::build(&s, &c, true, 8).unwrap();
        assert_eq!(m.aligned(0).len(), 1, "dominated tuple pruned");
    }

    #[test]
    fn eis_matches_metrics_eis_on_full_tables() {
        // The matrix EIS must agree with gent-metrics' table EIS when the
        // candidate covers the full schema.
        let s = source();
        let cand = Table::build(
            "C",
            &["ID", "Name", "Age", "Gender", "Education Level"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27), V::str("Male"), V::str("Bachelors")],
                vec![V::Int(1), V::str("Brown"), V::Int(24), V::str("Male"), V::str("Masters")],
                vec![V::Int(2), V::str("Wang"), V::Int(32), V::str("Female"), V::Null],
            ],
        )
        .unwrap();
        let m = AlignmentMatrix::build(&s, &cand, true, 8).unwrap();
        let table_eis = gent_metrics::eis(&s, &cand);
        assert!((m.eis() - table_eis).abs() < 1e-12, "{} vs {}", m.eis(), table_eis);
    }

    #[test]
    fn fused_combine_score_equals_materialize_then_score() {
        // The tentpole invariant, on the Figure 5 tables: combine_score is
        // bit-equal to combine(...).net_score() in every pairing, including
        // asymmetric coverage and conflict-splitting rows.
        let s = source();
        let mats: Vec<AlignmentMatrix> = [table_a(), table_b_with_key(), table_c_with_key()]
            .iter()
            .map(|t| AlignmentMatrix::build(&s, t, true, 8).unwrap())
            .collect();
        for a in &mats {
            for b in &mats {
                let fused = a.combine_score(b);
                let materialized = a.combine(b, 8).net_score();
                assert_eq!(fused.to_bits(), materialized.to_bits(), "{fused} vs {materialized}");
            }
        }
        // And through a chained combine, as the greedy loop produces them.
        let ab = mats[0].combine(&mats[1], 8);
        assert_eq!(
            ab.combine_score(&mats[2]).to_bits(),
            ab.combine(&mats[2], 8).net_score().to_bits()
        );
    }

    #[test]
    fn profile_bound_is_admissible_on_figure5() {
        // combine_row_bound must never under-estimate the fused row best —
        // including empty-coverage sides, where the all-zero profile is the
        // lane-max identity.
        let s = source();
        let empty = Table::build("E", &["ID", "Name"], &[], vec![]).unwrap();
        let mats: Vec<AlignmentMatrix> = [table_a(), table_b_with_key(), table_c_with_key(), empty]
            .iter()
            .map(|t| AlignmentMatrix::build(&s, t, true, 8).unwrap())
            .collect();
        let mut scratch = CombineScratch::default();
        for a in &mats {
            for b in &mats {
                for i in 0..s.n_rows() {
                    let bound = a.combine_row_bound(b, i);
                    let exact = a.combine_row_best(b, i, &mut scratch);
                    assert!(bound >= exact, "row {i}: bound {bound} < exact {exact}");
                }
            }
        }
    }

    mod bound_prop {
        use super::*;
        use proptest::prelude::*;

        fn src() -> Table {
            Table::build(
                "S",
                &["k", "a", "b", "c"],
                &["k"],
                (0..5).map(|k| vec![V::Int(k), V::Int(1), V::Int(2), V::Int(3)]).collect(),
            )
            .unwrap()
        }

        /// Candidate from a mutation stream: 0–2 aligned copies per row,
        /// cells kept / nulled / corrupted (corruptions align as `−1`).
        fn cand(s: &Table, muts: &[u8]) -> Table {
            let mut rows: Vec<Vec<V>> = Vec::new();
            let mut mi = 0usize;
            let mut next = || {
                let m = muts[mi % muts.len().max(1)];
                mi += 1;
                m
            };
            for srow in s.rows() {
                for _ in 0..next() % 3 {
                    let mut row = vec![srow[0].clone()];
                    for v in &srow[1..] {
                        row.push(match next() % 4 {
                            1 => V::Null,
                            2 => match v {
                                V::Int(x) => V::Int(x + 100),
                                other => other.clone(),
                            },
                            _ => v.clone(),
                        });
                    }
                    rows.push(row);
                }
            }
            Table::build("C", &["k", "a", "b", "c"], &[], rows).unwrap()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The lane-max profile bound is admissible on random matrices
            /// — conflict cells, multi-tuple rows, empty coverage and all.
            #[test]
            fn profile_bound_never_underestimates(
                m1 in proptest::collection::vec(any::<u8>(), 32),
                m2 in proptest::collection::vec(any::<u8>(), 32),
            ) {
                let s = src();
                let a = AlignmentMatrix::build(&s, &cand(&s, &m1), true, 3).unwrap();
                let b = AlignmentMatrix::build(&s, &cand(&s, &m2), true, 3).unwrap();
                let mut scratch = CombineScratch::default();
                for i in 0..s.n_rows() {
                    let bound = a.combine_row_bound(&b, i);
                    let exact = a.combine_row_best(&b, i, &mut scratch);
                    prop_assert!(bound >= exact, "row {}: bound {} < exact {}", i, bound, exact);
                }
            }
        }
    }

    #[test]
    fn arena_matches_reference_on_figure5() {
        // The arena and the nested reference must agree tuple-for-tuple,
        // including after chained combines.
        let s = source();
        let tables = [table_a(), table_b_with_key(), table_c_with_key()];
        let arena: Vec<AlignmentMatrix> =
            tables.iter().map(|t| AlignmentMatrix::build(&s, t, true, 8).unwrap()).collect();
        let nested: Vec<reference::NestedMatrix> = tables
            .iter()
            .map(|t| reference::NestedMatrix::build(&s, t, true, 8).unwrap())
            .collect();
        let a2 = arena[0].combine(&arena[1], 8).combine(&arena[2], 8);
        let n2 = nested[0].combine(&nested[1], 8).combine(&nested[2], 8);
        for i in 0..s.n_rows() {
            assert_eq!(aligned_vecs(&a2, i), n2.aligned(i).to_vec(), "row {i}");
        }
        assert_eq!(a2.eis().to_bits(), n2.eis().to_bits());
        assert_eq!(a2.net_score().to_bits(), n2.net_score().to_bits());
    }
}
