//! Batch reclamation: run many sources against one lake in parallel.
//!
//! The paper's experiments reclaim 26 (TP-TR) or 515 (T2D Gold) sources per
//! benchmark; §VI-D iterates *every* corpus table as a potential source.
//! The lake and its inverted index are immutable during reclamation, so
//! sources parallelise embarrassingly. This module provides the scoped-
//! thread fan-out the experiment harness uses, as a public API.

use crate::pipeline::{GenT, GentError, ReclamationResult};
use gent_discovery::DataLake;
use gent_table::Table;

/// One source's slot in a batch result.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Index into the submitted source slice.
    pub index: usize,
    /// The source's name (for reporting).
    pub source_name: String,
    /// The reclamation, or the pipeline error for this source.
    pub result: Result<ReclamationResult, GentError>,
}

/// Summary over a batch.
#[derive(Debug, Clone, Default)]
pub struct BatchSummary {
    /// Sources attempted.
    pub total: usize,
    /// Sources reclaimed perfectly.
    pub perfect: usize,
    /// Sources that errored (e.g. no key).
    pub errors: usize,
    /// Mean EIS over successful reclamations.
    pub mean_eis: f64,
}

impl GenT {
    /// Reclaim every source in `sources` against `lake`, using up to
    /// `threads` worker threads (1 = sequential). Results come back in
    /// submission order. Each source may carry an exclusion list (the
    /// §VI-D protocol); pass `&[]` to exclude nothing.
    pub fn reclaim_batch(
        &self,
        sources: &[Table],
        lake: &DataLake,
        excluded_per_source: &[Vec<String>],
        threads: usize,
    ) -> Vec<BatchItem> {
        assert!(
            excluded_per_source.is_empty() || excluded_per_source.len() == sources.len(),
            "exclusion list must be empty or one entry per source"
        );
        let threads = threads.max(1).min(sources.len().max(1));
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<BatchItem>> = (0..sources.len()).map(|_| None).collect();

        if threads <= 1 {
            for (i, slot) in slots.iter_mut().enumerate() {
                *slot = Some(self.reclaim_one(i, sources, lake, excluded_per_source));
            }
        } else {
            let slot_refs: Vec<std::sync::Mutex<&mut Option<BatchItem>>> =
                slots.iter_mut().map(std::sync::Mutex::new).collect();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= sources.len() {
                            break;
                        }
                        let item = self.reclaim_one(i, sources, lake, excluded_per_source);
                        **slot_refs[i].lock().expect("no panics while held") = Some(item);
                    });
                }
            });
        }
        slots.into_iter().map(|s| s.expect("every slot filled")).collect()
    }

    fn reclaim_one(
        &self,
        i: usize,
        sources: &[Table],
        lake: &DataLake,
        excluded_per_source: &[Vec<String>],
    ) -> BatchItem {
        let source = &sources[i];
        let excluded: Vec<&str> = excluded_per_source
            .get(i)
            .map(|v| v.iter().map(|s| s.as_str()).collect())
            .unwrap_or_default();
        BatchItem {
            index: i,
            source_name: source.name().to_string(),
            result: self.reclaim_excluding(source, lake, &excluded),
        }
    }
}

/// Summarise a batch.
pub fn summarize(items: &[BatchItem]) -> BatchSummary {
    let mut s = BatchSummary { total: items.len(), ..Default::default() };
    let mut eis_sum = 0.0;
    let mut ok = 0usize;
    for item in items {
        match &item.result {
            Ok(r) => {
                ok += 1;
                eis_sum += r.eis;
                if r.report.perfect {
                    s.perfect += 1;
                }
            }
            Err(_) => s.errors += 1,
        }
    }
    s.mean_eis = if ok > 0 { eis_sum / ok as f64 } else { 0.0 };
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::Value as V;

    fn lake_and_sources(n: usize) -> (DataLake, Vec<Table>) {
        let base = Table::build(
            "base",
            &["id", "x", "y"],
            &[],
            (0..40).map(|i| vec![V::Int(i), V::Int(i * 2), V::Int(i * 3)]).collect(),
        )
        .unwrap();
        let lake = DataLake::from_tables(vec![base]);
        let sources = (0..n)
            .map(|k| {
                Table::build(
                    &format!("S{k}"),
                    &["id", "x", "y"],
                    &["id"],
                    (k as i64..k as i64 + 10)
                        .map(|i| vec![V::Int(i), V::Int(i * 2), V::Int(i * 3)])
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        (lake, sources)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (lake, sources) = lake_and_sources(6);
        let gen_t = GenT::default();
        let seq = gen_t.reclaim_batch(&sources, &lake, &[], 1);
        let par = gen_t.reclaim_batch(&sources, &lake, &[], 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.source_name, b.source_name);
            let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert!((ra.eis - rb.eis).abs() < 1e-12);
            assert_eq!(ra.reclaimed.rows(), rb.reclaimed.rows());
        }
    }

    #[test]
    fn summary_counts_perfect_and_errors() {
        let (lake, mut sources) = lake_and_sources(3);
        // Add a keyless source → error slot.
        sources.push(Table::build("bad", &["a"], &[], vec![vec![V::Int(1)]]).unwrap());
        let items = GenT::default().reclaim_batch(&sources, &lake, &[], 2);
        let s = summarize(&items);
        assert_eq!(s.total, 4);
        assert_eq!(s.errors, 1);
        assert_eq!(s.perfect, 3);
        assert!(s.mean_eis > 0.99);
    }

    #[test]
    fn exclusions_are_applied_per_source() {
        let (lake, sources) = lake_and_sources(2);
        let ex = vec![vec!["base".to_string()], vec![]];
        let items = GenT::default().reclaim_batch(&sources, &lake, &ex, 2);
        // First source had its only evidence excluded → EIS 0.
        assert_eq!(items[0].result.as_ref().unwrap().eis, 0.0);
        assert!(items[1].result.as_ref().unwrap().report.perfect);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (lake, _) = lake_and_sources(0);
        let items = GenT::default().reclaim_batch(&[], &lake, &[], 8);
        assert!(items.is_empty());
        let s = summarize(&items);
        assert_eq!(s.total, 0);
        assert_eq!(s.mean_eis, 0.0);
    }

    #[test]
    #[should_panic(expected = "one entry per source")]
    fn mismatched_exclusions_panic() {
        let (lake, sources) = lake_and_sources(2);
        GenT::default().reclaim_batch(&sources, &lake, &[vec![]], 1);
    }
}
