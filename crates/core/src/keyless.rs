//! Keyless and normalised reclamation — the paper's §VII future work.
//!
//! *"In future work, we will relax the key assumption with regard to source
//! tables, and use a fast, approximate instance comparison algorithm to
//! compare instances from a source table and data lake tables."*
//!
//! Two pieces implement that here:
//!
//! 1. [`keyless_instance_similarity`] — a greedy approximate instance
//!    comparison that needs no key: source and reclaimed tuples are matched
//!    one-to-one by descending shared-value count (the greedy 1/2-
//!    approximation of maximum-weight bipartite matching), and similarity
//!    is averaged over source tuples like Eq. 2 averages aligned tuples.
//! 2. [`GenT::reclaim_keyless`] — runs the pipeline on a key-less source by
//!    first *mining* a key (the paper's §II route, via
//!    [`gent_table::key::ensure_key`]), and otherwise installing the most
//!    selective column prefix as a **surrogate key**. Alignment through a
//!    surrogate is approximate (several source rows may share a surrogate
//!    value), so the outcome reports the keyless similarity alongside the
//!    usual key-based metrics.
//!
//! Normalised reclamation ([`GenT::reclaim_normalized`]) covers the other
//! §VII thread — sources whose values do not *syntactically* align with the
//! lake — by normalising both sides with a
//! [`gent_table::NormalizeConfig`] before running the ordinary pipeline.

use crate::pipeline::{GenT, GentError, ReclamationResult};
use gent_discovery::DataLake;
use gent_table::key::ensure_key;
use gent_table::{NormalizeConfig, Table, Value};
use std::borrow::Cow;

/// How the source's rows were aligned for a keyless reclamation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyStrategy {
    /// The source already declared a valid key.
    Declared,
    /// A minimal unique column set was mined and installed (named columns).
    Mined(Vec<String>),
    /// No key exists; the most selective column set was used as a surrogate
    /// (alignment is approximate).
    Surrogate(Vec<String>),
}

/// Result of [`GenT::reclaim_keyless`].
#[derive(Debug, Clone)]
pub struct KeylessOutcome {
    /// The ordinary pipeline result (run with the chosen key columns).
    pub result: ReclamationResult,
    /// Key-free greedy instance similarity between source and reclaimed —
    /// the measure that stays meaningful when the key is only a surrogate.
    pub keyless_similarity: f64,
    /// Which alignment strategy was used.
    pub strategy: KeyStrategy,
}

/// Shared-value fraction between two rows under a column mapping
/// (`None` columns read as null).
fn row_similarity(srow: &[Value], trow: &[Value], column_map: &[Option<usize>]) -> f64 {
    if srow.is_empty() {
        return 0.0;
    }
    let mut shared = 0usize;
    for (j, sv) in srow.iter().enumerate() {
        let tv = column_map[j].map(|c| &trow[c]).unwrap_or(&Value::Null);
        let equal = if sv.is_null_like() { tv.is_null_like() } else { sv == tv };
        if equal {
            shared += 1;
        }
    }
    shared as f64 / srow.len() as f64
}

/// Greedy key-free instance similarity in `[0, 1]`: tuples are paired
/// one-to-one by descending shared-value fraction; unpaired source tuples
/// score 0. Columns are matched by name; reclaimed columns missing from the
/// source are ignored, source columns missing from the reclamation read as
/// null. `O(|S|·|T|·w)` — the "fast, approximate instance comparison" of
/// §VII, trading the NP-hard homomorphism check for a greedy matching.
pub fn keyless_instance_similarity(source: &Table, reclaimed: &Table) -> f64 {
    if source.n_rows() == 0 {
        return if reclaimed.n_rows() == 0 { 1.0 } else { 0.0 };
    }
    let column_map: Vec<Option<usize>> =
        source.schema().columns().map(|c| reclaimed.schema().column_index(c)).collect();
    let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
    for (si, srow) in source.rows().iter().enumerate() {
        for (ti, trow) in reclaimed.rows().iter().enumerate() {
            let sim = row_similarity(srow, trow, &column_map);
            if sim > 0.0 {
                pairs.push((sim, si, ti));
            }
        }
    }
    // Descending similarity, deterministic tie-break.
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then((a.1, a.2).cmp(&(b.1, b.2))));
    let mut s_used = vec![false; source.n_rows()];
    let mut t_used = vec![false; reclaimed.n_rows()];
    let mut total = 0.0;
    for (sim, si, ti) in pairs {
        if !s_used[si] && !t_used[ti] {
            s_used[si] = true;
            t_used[ti] = true;
            total += sim;
        }
    }
    total / source.n_rows() as f64
}

/// The most selective column set of width ≤ `max_width`: greedily add the
/// column that most reduces the duplicate-group count. Used as a surrogate
/// key when no true key exists.
fn most_selective_columns(t: &Table, max_width: usize) -> Vec<usize> {
    use gent_table::FxHashSet;
    let mut chosen: Vec<usize> = Vec::new();
    let mut best_distinct = 0usize;
    for _ in 0..max_width.max(1) {
        let mut best: Option<(usize, usize)> = None; // (distinct, column)
        for c in 0..t.n_cols() {
            if chosen.contains(&c) {
                continue;
            }
            let mut cols = chosen.clone();
            cols.push(c);
            let distinct: FxHashSet<Vec<&Value>> =
                t.rows().iter().map(|r| cols.iter().map(|&j| &r[j]).collect()).collect();
            let d = distinct.len();
            if best.map(|(bd, _)| d > bd).unwrap_or(true) {
                best = Some((d, c));
            }
        }
        let Some((d, c)) = best else { break };
        if d <= best_distinct {
            break; // no further gain
        }
        best_distinct = d;
        chosen.push(c);
        if d == t.n_rows() {
            break; // fully selective
        }
    }
    chosen
}

impl GenT {
    /// Reclaim a source that may lack a key: mine one if possible
    /// (§II's key-mining route), otherwise align through the most
    /// selective surrogate columns. Always reports the key-free greedy
    /// instance similarity so surrogate alignments can be judged fairly.
    pub fn reclaim_keyless(
        &self,
        source: &Table,
        lake: &DataLake,
    ) -> Result<KeylessOutcome, GentError> {
        let (prepared, strategy) = prepare_key(source);
        let result = self.reclaim(&prepared, lake)?;
        let keyless_similarity = keyless_instance_similarity(&prepared, &result.reclaimed);
        Ok(KeylessOutcome { result, keyless_similarity, strategy })
    }

    /// Reclaim after normalising both the source and every lake table with
    /// `norm` — the §VII "semantic similarity of instances" route for
    /// sources that do not syntactically align with the lake. The reclaimed
    /// table lives in normalised space.
    pub fn reclaim_normalized(
        &self,
        source: &Table,
        lake: &DataLake,
        norm: &NormalizeConfig,
    ) -> Result<ReclamationResult, GentError> {
        let nsource = norm.table(source);
        let ntables: Vec<Table> = lake.tables_iter().map(|t| norm.table(t)).collect();
        let nlake = DataLake::from_tables(ntables);
        self.reclaim(&nsource, &nlake)
    }
}

/// Ensure `source` carries key columns, returning the prepared table and the
/// strategy used. A source with a valid declared key is borrowed, not
/// cloned — the common serving case (every request carries an explicit key)
/// must not copy the table just to hand it back unchanged.
fn prepare_key(source: &Table) -> (Cow<'_, Table>, KeyStrategy) {
    if source.schema().has_key() && source.key_is_valid() {
        return (Cow::Borrowed(source), KeyStrategy::Declared);
    }
    let mut prepared = source.clone();
    if ensure_key(&mut prepared) {
        let names = prepared.schema().key_names().iter().map(|s| s.to_string()).collect();
        return (Cow::Owned(prepared), KeyStrategy::Mined(names));
    }
    // No true key: surrogate.
    let cols = most_selective_columns(source, 3);
    let names: Vec<String> = cols
        .iter()
        .map(|&c| source.schema().column_name(c).expect("in range").to_string())
        .collect();
    prepared.schema_mut().set_key(names.iter().map(|s| s.as_str())).expect("names valid");
    (Cow::Owned(prepared), KeyStrategy::Surrogate(names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenTConfig;
    use gent_discovery::DataLake;
    use gent_table::Value as V;

    #[test]
    fn keyless_similarity_perfect_and_empty() {
        let t = Table::build(
            "t",
            &["a", "b"],
            &[],
            vec![vec![V::Int(1), V::str("x")], vec![V::Int(2), V::str("y")]],
        )
        .unwrap();
        assert!((keyless_instance_similarity(&t, &t) - 1.0).abs() < 1e-12);
        let empty = Table::build("e", &["a", "b"], &[], vec![]).unwrap();
        assert_eq!(keyless_instance_similarity(&t, &empty), 0.0);
        assert_eq!(keyless_instance_similarity(&empty, &empty), 1.0);
    }

    #[test]
    fn keyless_similarity_is_one_to_one() {
        // Two identical source rows but only one reclaimed copy: the copy
        // may be used once, so similarity is 0.5, not 1.0.
        let s = Table::build("s", &["a"], &[], vec![vec![V::Int(1)], vec![V::Int(1)]]).unwrap();
        let r = Table::build("r", &["a"], &[], vec![vec![V::Int(1)]]).unwrap();
        assert!((keyless_instance_similarity(&s, &r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn keyless_similarity_counts_matching_nulls() {
        let s = Table::build("s", &["a", "b"], &[], vec![vec![V::Int(1), V::Null]]).unwrap();
        let r = Table::build("r", &["a", "b"], &[], vec![vec![V::Int(1), V::Null]]).unwrap();
        assert!((keyless_instance_similarity(&s, &r) - 1.0).abs() < 1e-12);
        let r2 = Table::build("r", &["a", "b"], &[], vec![vec![V::Int(1), V::Int(9)]]).unwrap();
        assert!((keyless_instance_similarity(&s, &r2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn most_selective_prefers_distinct_columns() {
        let t = Table::build(
            "t",
            &["constant", "id"],
            &[],
            vec![
                vec![V::str("c"), V::Int(1)],
                vec![V::str("c"), V::Int(2)],
                vec![V::str("c"), V::Int(3)],
            ],
        )
        .unwrap();
        assert_eq!(most_selective_columns(&t, 3), vec![1]);
    }

    fn fragment_lake() -> DataLake {
        let ids = Table::build(
            "ids",
            &["id", "name"],
            &[],
            vec![vec![V::Int(0), V::str("Smith")], vec![V::Int(1), V::str("Brown")]],
        )
        .unwrap();
        let ages = Table::build(
            "ages",
            &["name", "age"],
            &[],
            vec![vec![V::str("Smith"), V::Int(27)], vec![V::str("Brown"), V::Int(24)]],
        )
        .unwrap();
        DataLake::from_tables(vec![ids, ages])
    }

    #[test]
    fn reclaim_keyless_mines_a_key() {
        // Source with a unique id column but no declared key.
        let source = Table::build(
            "S",
            &["id", "name", "age"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27)],
                vec![V::Int(1), V::str("Brown"), V::Int(24)],
            ],
        )
        .unwrap();
        let out = GenT::default().reclaim_keyless(&source, &fragment_lake()).unwrap();
        assert!(matches!(out.strategy, KeyStrategy::Mined(_)));
        assert!(out.keyless_similarity > 0.99, "sim {}", out.keyless_similarity);
        assert!(out.result.report.perfect);
    }

    #[test]
    fn reclaim_keyless_falls_back_to_surrogate() {
        // Duplicate rows: no key exists at any width.
        let source = Table::build(
            "S",
            &["name", "age"],
            &[],
            vec![vec![V::str("Smith"), V::Int(27)], vec![V::str("Smith"), V::Int(27)]],
        )
        .unwrap();
        let out = GenT::default().reclaim_keyless(&source, &fragment_lake()).unwrap();
        assert!(matches!(out.strategy, KeyStrategy::Surrogate(_)));
        // Both duplicate rows match the single Smith tuple approximately;
        // greedy matching uses the reclaimed tuple(s) at most once each.
        assert!(out.keyless_similarity > 0.0);
    }

    #[test]
    fn reclaim_keyless_respects_declared_keys() {
        let source =
            Table::build("S", &["id", "name"], &["id"], vec![vec![V::Int(0), V::str("Smith")]])
                .unwrap();
        let out = GenT::default().reclaim_keyless(&source, &fragment_lake()).unwrap();
        assert_eq!(out.strategy, KeyStrategy::Declared);
    }

    #[test]
    fn reclaim_normalized_bridges_case_gaps() {
        // Lake spells names in upper case; plain reclamation finds nothing
        // for the name column, normalised reclamation matches.
        let loud = Table::build(
            "loud",
            &["id", "name"],
            &[],
            vec![vec![V::Int(0), V::str("SMITH")], vec![V::Int(1), V::str("BROWN")]],
        )
        .unwrap();
        let lake = DataLake::from_tables(vec![loud]);
        let source = Table::build(
            "S",
            &["id", "name"],
            &["id"],
            vec![vec![V::Int(0), V::str("smith")], vec![V::Int(1), V::str("brown")]],
        )
        .unwrap();
        let plain = GenT::default().reclaim(&source, &lake).unwrap();
        let normed = GenT::default()
            .reclaim_normalized(&source, &lake, &NormalizeConfig::default())
            .unwrap();
        assert!(normed.eis > plain.eis);
        assert!(normed.report.perfect);
    }

    #[test]
    fn config_is_reused_for_keyless_path() {
        // Smoke test: a non-default config flows through.
        let cfg = GenTConfig { prune_with_traversal: false, ..GenTConfig::default() };
        let source =
            Table::build("S", &["id", "name"], &[], vec![vec![V::Int(0), V::str("Smith")]])
                .unwrap();
        let out = GenT::new(cfg).reclaim_keyless(&source, &fragment_lake()).unwrap();
        assert!(out.result.eis > 0.0);
    }
}
