//! Cached handles into the global `gent-obs` metrics registry.
//!
//! Registration takes the registry mutex once per process (behind the
//! `OnceLock`); the pipeline's hot paths only ever touch the returned
//! atomics, so instrumentation stays off the profile — the CI-gated
//! `obs_overhead` bench in `gent-bench` holds instrumented
//! `matrix_traversal` within 5% of uninstrumented.

use gent_obs::{Counter, Histogram, LATENCY_BOUNDS_US};
use std::sync::{Arc, OnceLock};

/// Every instrument the pipeline records into, registered once.
pub(crate) struct Instruments {
    /// `gent_pipeline_stage_duration_us{stage="discovery"}` — first-stage
    /// retrieval plus Set Similarity.
    pub stage_discovery: Arc<Histogram>,
    /// `…{stage="set_similarity"}` — the Set Similarity sub-stage alone.
    pub stage_set_similarity: Arc<Histogram>,
    /// `…{stage="expand"}` — Algorithm 5 join-path search.
    pub stage_expand: Arc<Histogram>,
    /// `…{stage="expand_candidate"}` — one keyless candidate's path search
    /// plus join folding inside Expand.
    pub stage_expand_candidate: Arc<Histogram>,
    /// `…{stage="traversal"}` — Expand + matrix init + greedy rounds.
    pub stage_traversal: Arc<Histogram>,
    /// `…{stage="integration"}` — Algorithm 2.
    pub stage_integration: Arc<Histogram>,
    /// `gent_pipeline_reclaims_total` — reclamations run.
    pub reclaims: Arc<Counter>,
    /// `gent_traversal_rounds_total` — greedy rounds across all reclaims.
    pub rounds: Arc<Counter>,
    /// `gent_traversal_rows_rescored_total` — dirty-row kernel rescores.
    pub rows_rescored: Arc<Counter>,
    /// `gent_traversal_candidates_pruned_total` — candidates skipped by
    /// the admissible upper bound.
    pub candidates_pruned: Arc<Counter>,
    /// `gent_expand_paths_considered_total` — partial join paths examined
    /// by Expand's best-first search.
    pub expand_paths: Arc<Counter>,
    /// `gent_expand_memo_hits_total` — sub-joins answered from Expand's
    /// path-suffix memo.
    pub expand_memo_hits: Arc<Counter>,
    /// `gent_expand_candidates_dropped_total` — keyless candidates Expand
    /// dropped (no usable join path to the key).
    pub expand_candidates_dropped: Arc<Counter>,
    /// `gent_expand_dedup_total` — expanded tables dropped as duplicates of
    /// an already-produced relation.
    pub expand_dedup: Arc<Counter>,
}

/// The process-wide instrument set (registered on first use).
pub(crate) fn instruments() -> &'static Instruments {
    static CELL: OnceLock<Instruments> = OnceLock::new();
    CELL.get_or_init(|| {
        let reg = gent_obs::registry();
        let stage = |s: &'static str| {
            reg.histogram(
                "gent_pipeline_stage_duration_us",
                "Wall-clock time per pipeline stage (microseconds)",
                &[("stage", s)],
                LATENCY_BOUNDS_US,
            )
        };
        Instruments {
            stage_discovery: stage("discovery"),
            stage_set_similarity: stage("set_similarity"),
            stage_expand: stage("expand"),
            stage_expand_candidate: stage("expand_candidate"),
            stage_traversal: stage("traversal"),
            stage_integration: stage("integration"),
            reclaims: reg.counter(
                "gent_pipeline_reclaims_total",
                "Reclamations run by this process",
                &[],
            ),
            rounds: reg.counter(
                "gent_traversal_rounds_total",
                "Greedy traversal rounds across all reclamations",
                &[],
            ),
            rows_rescored: reg.counter(
                "gent_traversal_rows_rescored_total",
                "Dirty-row kernel rescores across all reclamations",
                &[],
            ),
            candidates_pruned: reg.counter(
                "gent_traversal_candidates_pruned_total",
                "Candidate scorings skipped by the admissible upper bound",
                &[],
            ),
            expand_paths: reg.counter(
                "gent_expand_paths_considered_total",
                "Partial join paths examined by Expand's best-first search",
                &[],
            ),
            expand_memo_hits: reg.counter(
                "gent_expand_memo_hits_total",
                "Sub-joins answered from Expand's path-suffix memo",
                &[],
            ),
            expand_candidates_dropped: reg.counter(
                "gent_expand_candidates_dropped_total",
                "Keyless candidates dropped for lack of a usable join path",
                &[],
            ),
            expand_dedup: reg.counter(
                "gent_expand_dedup_total",
                "Expanded tables dropped as duplicates of an existing relation",
                &[],
            ),
        }
    })
}
