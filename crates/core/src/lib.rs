//! # gent-core — the Gen-T table-reclamation algorithm
//!
//! The pipeline of §V of the paper (Figure 2):
//!
//! ```text
//! Source Table ──▶ Table Discovery ──▶ Matrix Traversal ──▶ Integration ──▶ Reclaimed Table
//!                  (gent-discovery)     (this crate)         (this crate)    + originating tables
//! ```
//!
//! * [`expand`](mod@expand) — Algorithm 5: join candidate tables that lack the source
//!   key onto candidates that carry it, via a max-weight join-path search
//!   with cardinality-estimated edge weights,
//! * [`matrix`] — the three-valued alignment matrices of §V-A3 (Eq. 4) and
//!   the `Combine` operation (Eq. 5) that *simulates* table integration
//!   without performing it,
//! * [`traversal`] — Algorithm 1: greedy matrix traversal refining the
//!   candidate set to the *originating tables*, with [`round`]'s
//!   incremental `RoundScorer` (cached per-row scores, dirty-row
//!   rescoring, admissible upper bounds) driving the greedy rounds,
//! * [`integration`] — Algorithm 2: the actual integration of the
//!   originating tables with `{⊎, σ, π, κ, β}`, with labeled source nulls
//!   and similarity-gated κ/β,
//! * [`pipeline`] — the [`GenT`] entry point tying discovery + reclamation
//!   together and reporting timings. The lake it reclaims against can be
//!   built in memory (`DataLake::from_tables`) or reopened warm from a
//!   `gent-store` snapshot (`gent_store::SnapshotFile`) — retrieval results
//!   are identical either way,
//! * [`keyless`] — the §VII future-work extensions: keyless reclamation
//!   (key mining + surrogate keys + greedy key-free instance similarity)
//!   and normalised ("semantic") reclamation.

#![warn(missing_docs)]

pub mod batch;
pub mod cleaning;
pub mod config;
pub mod expand;
pub mod integration;
pub mod iterative;
pub mod keyless;
pub mod matrix;
pub mod pipeline;
pub mod round;
pub(crate) mod telemetry;
pub mod traversal;

pub use batch::{summarize, BatchItem, BatchSummary};
pub use cleaning::{impute, CleanedReclamation, Imputation, ImputationRule, ImputeConfig};
pub use config::GenTConfig;
pub use expand::{expand, expand_with_stats, ExpandStats};
pub use integration::{conform_schema, integrate, project_select};
pub use iterative::MultiLakeOutcome;
pub use keyless::{keyless_instance_similarity, KeyStrategy, KeylessOutcome};
pub use matrix::{AlignmentMatrix, CombineScratch};
pub use pipeline::{GenT, GentError, ReclamationResult, Timings};
pub use round::{RoundScorer, RoundStats};
pub use traversal::{matrix_traversal, TraversalOutcome};
