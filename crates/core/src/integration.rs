//! Table Integration (Algorithm 2): integrate the originating tables into
//! the reclaimed Source Table with `{⊎, σ, π, κ, β}`.
//!
//! Preprocessing: project/select down to the source's columns and keys,
//! inner-union same-schema tables, *label* nulls shared with the source
//! (so κ/β cannot over-combine a correct null away — the device Example 10
//! and Figure 5's footnotes describe), and take each table's minimal form.
//!
//! Integration: fold the tables with outer union; after each step apply
//! complementation and subsumption **only if** they do not decrease the
//! similarity to the source (lines 10–13) — this is what keeps an erroneous
//! value from filling a null (the `0 ∨ ¬1 = 0` behaviour the matrices
//! simulate). Finally remove the null labels and pad any missing source
//! columns with nulls.

use crate::config::GenTConfig;
use gent_metrics::eis;
use gent_ops::{complementation, minimal_form, outer_union, subsumption};
use gent_table::{FxHashMap, FxHashSet, KeyValue, Schema, Table, Value};

/// ProjectSelect (line 3): keep only columns named in the source (the key
/// columns are always among them post-Expand) and rows whose key value
/// appears in the source.
///
/// Public because the ALITE-PS baseline performs exactly this step before
/// its full disjunction.
pub fn project_select(t: &Table, source: &Table) -> Option<Table> {
    let keep: Vec<usize> = (0..t.n_cols())
        .filter(|&c| source.schema().contains(t.schema().column_name(c).expect("in range")))
        .collect();
    if keep.is_empty() {
        return None;
    }
    let mut projected = t.take_columns(&keep, t.name()).ok()?;
    // Key columns of the source, positioned in the projected table.
    let key_cols: Option<Vec<usize>> =
        source.schema().key_names().iter().map(|k| projected.schema().column_index(k)).collect();
    let key_cols = key_cols?;
    let source_keys: FxHashSet<KeyValue> =
        (0..source.n_rows()).filter_map(|i| source.key_of_row(i)).collect();
    projected.retain_rows(|row| {
        Table::key_from_row(row, &key_cols).map(|kv| source_keys.contains(&kv)).unwrap_or(false)
    });
    (!projected.is_empty()).then_some(projected)
}

/// InnerUnion (line 4): union tables sharing the same column set.
fn inner_union_groups(tables: Vec<Table>) -> Vec<Table> {
    let mut groups: FxHashMap<Vec<String>, Table> = FxHashMap::default();
    let mut order: Vec<Vec<String>> = Vec::new();
    for t in tables {
        let mut cols: Vec<String> = t.schema().columns().map(str::to_string).collect();
        cols.sort();
        match groups.get_mut(&cols) {
            Some(acc) => {
                *acc = gent_ops::inner_union(acc, &t).expect("same column sets");
            }
            None => {
                order.push(cols.clone());
                groups.insert(cols, t);
            }
        }
    }
    order.into_iter().map(|k| groups.remove(&k).expect("inserted")).collect()
}

/// LabelSourceNulls (line 5): where the source has a null and an aligned
/// table tuple also has a null in the same column, replace the table's null
/// with a labeled null unique to the *(source row, column)* position — the
/// same label across tables, so that agreeing "correct nulls" still unify
/// under κ/β while never being overwritten by a real value.
fn label_source_nulls(tables: &mut [Table], source: &Table) {
    let skey = source.schema().key();
    // Label ids: position-determined (source row index, source column).
    let label_of = |si: usize, sc: usize| -> u64 { (si as u64) << 16 | sc as u64 };
    // Source rows by key.
    let mut by_key: FxHashMap<KeyValue, usize> = FxHashMap::default();
    for i in 0..source.n_rows() {
        if let Some(kv) = source.key_of_row(i) {
            by_key.insert(kv, i);
        }
    }
    for t in tables.iter_mut() {
        let key_cols: Option<Vec<usize>> =
            source.schema().key_names().iter().map(|k| t.schema().column_index(k)).collect();
        let Some(key_cols) = key_cols else { continue };
        // Map of table columns → source column index.
        let col_to_source: Vec<Option<usize>> = (0..t.n_cols())
            .map(|c| source.schema().column_index(t.schema().column_name(c).expect("in range")))
            .collect();
        let n_cols = t.n_cols();
        let schema = t.schema().clone();
        let rows: Vec<Vec<Value>> = t
            .rows()
            .iter()
            .map(|row| {
                let Some(kv) = Table::key_from_row(row, &key_cols) else {
                    return row.clone();
                };
                let Some(&si) = by_key.get(&kv) else {
                    return row.clone();
                };
                let mut out = row.clone();
                for c in 0..n_cols {
                    if let Some(sc) = col_to_source[c] {
                        if !skey.contains(&sc)
                            && source.rows()[si][sc].is_null()
                            && out[c].is_null()
                        {
                            out[c] = Value::LabeledNull(label_of(si, sc));
                        }
                    }
                }
                out
            })
            .collect();
        *t = Table::from_rows(t.name(), schema, rows).expect("schema unchanged");
    }
}

/// RemoveLabeledNulls (line 14).
fn remove_labeled_nulls(t: &Table) -> Table {
    let rows: Vec<Vec<Value>> = t
        .rows()
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    Value::LabeledNull(_) => Value::Null,
                    other => other.clone(),
                })
                .collect()
        })
        .collect();
    Table::from_rows(t.name(), t.schema().clone(), rows).expect("schema unchanged")
}

/// Pad the reclaimed table with all-null columns for source columns it
/// lacks and order columns exactly as the source (lines 15–16).
///
/// Public so baseline outputs can be conformed for apples-to-apples
/// evaluation.
pub fn conform_schema(t: &Table, source: &Table) -> Table {
    let names: Vec<&str> = source.schema().columns().collect();
    let schema =
        Schema::with_key(names.iter().copied(), source.schema().key_names().iter().copied())
            .expect("source schema is valid");
    let map: Vec<Option<usize>> = names.iter().map(|n| t.schema().column_index(n)).collect();
    let rows: Vec<Vec<Value>> = t
        .rows()
        .iter()
        .map(|r| map.iter().map(|m| m.map(|j| r[j].clone()).unwrap_or(Value::Null)).collect())
        .collect();
    Table::from_rows("reclaimed", schema, rows).expect("layout fixed")
}

/// Algorithm 2 — integrate `originating` tables to reclaim `source`.
///
/// Returns a table with exactly the source's schema (named `reclaimed`).
/// With no usable originating tables the result is empty with the source's
/// schema — "nothing in the lake reclaims this source".
pub fn integrate(originating: &[Table], source: &Table, cfg: &GenTConfig) -> Table {
    // --- preprocessing (lines 3–6) --------------------------------------
    let projected: Vec<Table> =
        originating.iter().filter_map(|t| project_select(t, source)).collect();
    if projected.is_empty() {
        return conform_schema(&Table::new("reclaimed", source.schema().clone()), source);
    }
    let mut unioned = inner_union_groups(projected);
    label_source_nulls(&mut unioned, source);
    let minimal: Vec<Table> = unioned.iter().map(minimal_form).collect();

    // --- integration (lines 7–13) ---------------------------------------
    let mut acc: Option<Table> = None;
    for t in &minimal {
        let unioned = match &acc {
            None => t.clone(),
            Some(a) => outer_union(a, t).expect("outer union total"),
        };
        let mut cur = unioned;
        // Gated complementation.
        let kappa = complementation(&cur);
        if !cfg.gate_kappa_beta || eis(source, &kappa) >= eis(source, &cur) {
            cur = kappa;
        }
        // Gated subsumption.
        let beta = subsumption(&cur);
        if !cfg.gate_kappa_beta || eis(source, &beta) >= eis(source, &cur) {
            cur = beta;
        }
        acc = Some(cur);
    }
    let result = acc.expect("at least one table");

    // --- postprocessing (lines 14–16) ------------------------------------
    let unlabeled = remove_labeled_nulls(&result);
    let mut conformed = conform_schema(&unlabeled, source);
    conformed.dedup_rows();
    conformed
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_metrics::{perfectly_reclaimed, recall};
    use gent_table::Value as V;

    fn source() -> Table {
        Table::build(
            "S",
            &["ID", "Name", "Age", "Gender", "Education Level"],
            &["ID"],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27), V::Null, V::str("Bachelors")],
                vec![V::Int(1), V::str("Brown"), V::Int(24), V::str("Male"), V::str("Masters")],
                vec![
                    V::Int(2),
                    V::str("Wang"),
                    V::Int(32),
                    V::str("Female"),
                    V::str("High School"),
                ],
            ],
        )
        .unwrap()
    }

    /// Expanded Figure 3 tables A, B, D (B carries the key via Expand).
    fn originating() -> Vec<Table> {
        vec![
            Table::build(
                "A",
                &["ID", "Name", "Education Level"],
                &[],
                vec![
                    vec![V::Int(0), V::str("Smith"), V::str("Bachelors")],
                    vec![V::Int(1), V::str("Brown"), V::Null],
                    vec![V::Int(2), V::str("Wang"), V::str("High School")],
                ],
            )
            .unwrap(),
            Table::build(
                "B+expanded",
                &["ID", "Name", "Age"],
                &[],
                vec![
                    vec![V::Int(0), V::str("Smith"), V::Int(27)],
                    vec![V::Int(1), V::str("Brown"), V::Int(24)],
                    vec![V::Int(2), V::str("Wang"), V::Int(32)],
                ],
            )
            .unwrap(),
            Table::build(
                "D",
                &["ID", "Name", "Age", "Gender", "Education Level"],
                &[],
                vec![
                    vec![V::Int(0), V::str("Smith"), V::Int(27), V::Null, V::str("Bachelors")],
                    vec![V::Int(1), V::str("Brown"), V::Int(24), V::str("Male"), V::str("Masters")],
                    vec![V::Int(2), V::str("Wang"), V::Int(32), V::str("Female"), V::Null],
                ],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn figure3_integration_reclaims_source() {
        // A ∪ B ∪ D contain every source value (A has Wang's education, D
        // the rest) — integration must perfectly reclaim S.
        let out = integrate(&originating(), &source(), &GenTConfig::default());
        assert!(perfectly_reclaimed(&source(), &out), "output:\n{out}");
        assert_eq!(recall(&source(), &out), 1.0);
    }

    #[test]
    fn source_nulls_are_protected() {
        // Smith's Gender is null in the source. Candidate E claims "Male".
        // The gated integration must not fill the null: the best aligned
        // tuple keeps gender null.
        let mut tables = originating();
        tables.push(
            Table::build(
                "E",
                &["ID", "Name", "Gender"],
                &[],
                vec![vec![V::Int(0), V::str("Smith"), V::str("Male")]],
            )
            .unwrap(),
        );
        let s = source();
        let out = integrate(&tables, &s, &GenTConfig::default());
        // There must still exist an aligned tuple for Smith with null
        // gender and all other values correct.
        assert!(perfectly_reclaimed(&s, &out), "output:\n{out}");
    }

    #[test]
    fn schema_always_conforms_to_source() {
        let s = source();
        let only_partial =
            vec![Table::build("P", &["ID", "Name"], &[], vec![vec![V::Int(0), V::str("Smith")]])
                .unwrap()];
        let out = integrate(&only_partial, &s, &GenTConfig::default());
        assert_eq!(
            out.schema().columns().collect::<Vec<_>>(),
            s.schema().columns().collect::<Vec<_>>()
        );
        assert_eq!(out.n_rows(), 1);
        let age = out.schema().column_index("Age").unwrap();
        assert!(out.rows()[0][age].is_null());
    }

    #[test]
    fn rows_outside_source_keys_are_dropped() {
        let s = source();
        let with_extra = vec![Table::build(
            "X",
            &["ID", "Name", "Age", "Gender", "Education Level"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27), V::Null, V::str("Bachelors")],
                vec![V::Int(99), V::str("Ghost"), V::Int(1), V::Null, V::Null],
            ],
        )
        .unwrap()];
        let out = integrate(&with_extra, &s, &GenTConfig::default());
        let id = out.schema().column_index("ID").unwrap();
        assert!(out.rows().iter().all(|r| r[id] != V::Int(99)));
    }

    #[test]
    fn empty_originating_set_gives_empty_conformed_table() {
        let s = source();
        let out = integrate(&[], &s, &GenTConfig::default());
        assert!(out.is_empty());
        assert_eq!(out.n_cols(), s.n_cols());
    }

    #[test]
    fn no_labeled_nulls_leak() {
        let out = integrate(&originating(), &source(), &GenTConfig::default());
        for row in out.rows() {
            for v in row {
                assert!(!matches!(v, V::LabeledNull(_)));
            }
        }
    }

    #[test]
    fn ungated_integration_can_fill_source_nulls_wrongly() {
        // Ablation: with the κ/β gate off, E's erroneous "Male" can merge
        // into Smith's tuple — demonstrating why the gate exists. The
        // labeled null protects positions where *some* originating table
        // kept the null aligned with the source, so drop D (whose Smith
        // tuple carries the labeled null) to expose the effect.
        let tables = vec![
            Table::build(
                "B+expanded",
                &["ID", "Name", "Age"],
                &[],
                vec![vec![V::Int(0), V::str("Smith"), V::Int(27)]],
            )
            .unwrap(),
            Table::build(
                "E",
                &["ID", "Name", "Gender"],
                &[],
                vec![vec![V::Int(0), V::str("Smith"), V::str("Male")]],
            )
            .unwrap(),
        ];
        let s = source();
        let gated = integrate(&tables, &s, &GenTConfig::default());
        let ungated =
            integrate(&tables, &s, &GenTConfig { gate_kappa_beta: false, ..Default::default() });
        let gender = s.schema().column_index("Gender").unwrap();
        // Ungated: κ merges the two tuples → Male fills the source null.
        assert!(ungated
            .rows()
            .iter()
            .any(|r| r[gender] == V::str("Male") && r[1] == V::str("Smith")));
        // Gated: the merge is rejected; a tuple with null gender remains.
        assert!(gated.rows().iter().any(|r| r[1] == V::str("Smith") && r[gender].is_null()));
    }
}
