//! Imputation-combined reclamation — §VII: *"we plan to investigate if
//! reclamation can be combined with data cleaning (for example, value
//! imputation over missing values or entity resolution) to produce a
//! better reclamation."*
//!
//! After integration, a reclaimed table still carries nulls wherever the
//! lake had no direct value for an aligned cell. Two classical cleaning
//! signals can fill some of them *without ever looking at the source's
//! values* (imputation must not peek at the answer key):
//!
//! 1. **Approximate functional dependencies** mined from the originating
//!    tables: when column `A` determines column `B` with high confidence
//!    across the evidence (e.g. `nation_key → nation_name`), a row with a
//!    known `A` and a null `B` can be filled from the dependency.
//! 2. **Column mode**: as a (conservative, off-by-default) fallback, fill
//!    a null with the column's most frequent evidence value when that
//!    value dominates.
//!
//! Every filled cell is reported with the rule that produced it, so the
//! user can audit the cleaning exactly like provenance (§I's analysis
//! workflow). [`GenT::reclaim_with_cleaning`] wires the whole loop:
//! reclaim → impute from the originating tables → re-evaluate.

use crate::pipeline::{GenT, GentError, ReclamationResult};
use gent_discovery::DataLake;
use gent_metrics::eis;
use gent_table::{FxHashMap, Table, Value};

/// Imputation tuning.
#[derive(Debug, Clone)]
pub struct ImputeConfig {
    /// Mine and apply approximate FDs from the evidence tables.
    pub use_fds: bool,
    /// Minimum rows a determinant value must be seen in before its FD
    /// applies.
    pub min_fd_support: usize,
    /// Minimum fraction of evidence rows agreeing on the dependent value.
    pub fd_min_confidence: f64,
    /// Fill remaining nulls with the column mode (aggressive; default off).
    pub use_mode: bool,
    /// Minimum fraction of evidence values the mode must account for.
    pub mode_min_share: f64,
}

impl Default for ImputeConfig {
    fn default() -> Self {
        Self {
            use_fds: true,
            min_fd_support: 2,
            fd_min_confidence: 0.95,
            use_mode: false,
            mode_min_share: 0.9,
        }
    }
}

/// Which rule filled a cell.
#[derive(Debug, Clone, PartialEq)]
pub enum ImputationRule {
    /// `determinant → dependent` functional dependency.
    Fd {
        /// Determinant column name.
        determinant: String,
        /// Dependent (filled) column name.
        dependent: String,
    },
    /// Column-mode fallback.
    Mode {
        /// The filled column.
        column: String,
    },
}

/// One filled cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Imputation {
    /// Row index in the (reclaimed) table.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// The value written.
    pub value: Value,
    /// The rule that justified it.
    pub rule: ImputationRule,
}

/// The result of imputing a table.
#[derive(Debug, Clone)]
pub struct ImputationOutcome {
    /// The table with nulls filled where a rule applied.
    pub table: Table,
    /// Every filled cell, in application order.
    pub imputations: Vec<Imputation>,
}

/// `determinant value → (dependent value counts, total)` for one column
/// pair.
type PairStats = FxHashMap<Value, FxHashMap<Value, usize>>;

/// Mine per-column-pair value statistics from the evidence tables, keyed by
/// (determinant column name, dependent column name). Only columns that
/// `target` also has participate.
fn mine_pair_stats(target: &Table, evidence: &[Table]) -> FxHashMap<(usize, usize), PairStats> {
    let mut stats: FxHashMap<(usize, usize), PairStats> = FxHashMap::default();
    let target_cols: Vec<&str> = target.schema().columns().collect();
    for ev in evidence {
        // Evidence column index per target column (by name).
        let map: Vec<Option<usize>> =
            target_cols.iter().map(|c| ev.schema().column_index(c)).collect();
        for row in ev.rows() {
            for (ti, mi) in map.iter().enumerate() {
                let Some(ei) = mi else { continue };
                let a = &row[*ei];
                if a.is_null_like() {
                    continue;
                }
                for (tj, mj) in map.iter().enumerate() {
                    if ti == tj {
                        continue;
                    }
                    let Some(ej) = mj else { continue };
                    let b = &row[*ej];
                    if b.is_null_like() {
                        continue;
                    }
                    *stats
                        .entry((ti, tj))
                        .or_default()
                        .entry(a.clone())
                        .or_default()
                        .entry(b.clone())
                        .or_insert(0) += 1;
                }
            }
        }
    }
    stats
}

/// Fill nulls in `target` using evidence tables (typically the originating
/// tables of a reclamation). Deterministic: rules apply column-pair in
/// index order, rows top to bottom.
pub fn impute(target: &Table, evidence: &[Table], cfg: &ImputeConfig) -> ImputationOutcome {
    let mut rows: Vec<Vec<Value>> = target.rows().to_vec();
    let mut imputations = Vec::new();

    if cfg.use_fds && !evidence.is_empty() {
        let stats = mine_pair_stats(target, evidence);
        let mut pairs: Vec<&(usize, usize)> = stats.keys().collect();
        pairs.sort();
        for &(det, dep) in pairs {
            let pair_stats = &stats[&(det, dep)];
            for (ri, row) in rows.iter_mut().enumerate() {
                if !row[dep].is_null_like() || row[det].is_null_like() {
                    continue;
                }
                let Some(counts) = pair_stats.get(&row[det]) else { continue };
                let total: usize = counts.values().sum();
                if total < cfg.min_fd_support {
                    continue;
                }
                let (best_v, best_n) = counts
                    .iter()
                    .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                    .expect("non-empty");
                if *best_n as f64 / total as f64 + 1e-12 >= cfg.fd_min_confidence {
                    row[dep] = best_v.clone();
                    imputations.push(Imputation {
                        row: ri,
                        col: dep,
                        value: best_v.clone(),
                        rule: ImputationRule::Fd {
                            determinant: target
                                .schema()
                                .column_name(det)
                                .expect("in range")
                                .to_string(),
                            dependent: target
                                .schema()
                                .column_name(dep)
                                .expect("in range")
                                .to_string(),
                        },
                    });
                }
            }
        }
    }

    if cfg.use_mode && !evidence.is_empty() {
        for cj in 0..target.n_cols() {
            let col_name = target.schema().column_name(cj).expect("in range");
            let mut counts: FxHashMap<Value, usize> = FxHashMap::default();
            for ev in evidence {
                if let Some(ej) = ev.schema().column_index(col_name) {
                    for v in ev.column(ej) {
                        if !v.is_null_like() {
                            *counts.entry(v.clone()).or_insert(0) += 1;
                        }
                    }
                }
            }
            let total: usize = counts.values().sum();
            if total == 0 {
                continue;
            }
            let (best_v, best_n) = counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                .expect("non-empty");
            if (*best_n as f64 / total as f64) + 1e-12 < cfg.mode_min_share {
                continue;
            }
            for (ri, row) in rows.iter_mut().enumerate() {
                if row[cj].is_null_like() {
                    row[cj] = best_v.clone();
                    imputations.push(Imputation {
                        row: ri,
                        col: cj,
                        value: best_v.clone(),
                        rule: ImputationRule::Mode { column: col_name.to_string() },
                    });
                }
            }
        }
    }

    let table =
        Table::from_rows(target.name(), target.schema().clone(), rows).expect("shape unchanged");
    ImputationOutcome { table, imputations }
}

/// A reclamation followed by cleaning, with before/after scores.
#[derive(Debug, Clone)]
pub struct CleanedReclamation {
    /// The plain reclamation.
    pub base: ReclamationResult,
    /// The reclaimed table after imputation.
    pub cleaned: Table,
    /// The audit trail of filled cells.
    pub imputations: Vec<Imputation>,
    /// EIS of the cleaned table against the source.
    pub eis_after: f64,
}

impl GenT {
    /// Reclaim, then impute missing values from the originating tables
    /// (§VII's "combine reclamation with data cleaning"), keeping the
    /// cleaned table only if it scores at least as well.
    pub fn reclaim_with_cleaning(
        &self,
        source: &Table,
        lake: &DataLake,
        impute_cfg: &ImputeConfig,
    ) -> Result<CleanedReclamation, GentError> {
        let base = self.reclaim(source, lake)?;
        let outcome = impute(&base.reclaimed, &base.originating, impute_cfg);
        let eis_after = eis(source, &outcome.table);
        if eis_after + 1e-12 >= base.eis {
            Ok(CleanedReclamation {
                eis_after,
                cleaned: outcome.table,
                imputations: outcome.imputations,
                base,
            })
        } else {
            // Cleaning hurt (imputed values the source contradicts): keep
            // the plain reclamation, report no imputations applied.
            let eis_after = base.eis;
            Ok(CleanedReclamation {
                eis_after,
                cleaned: base.reclaimed.clone(),
                imputations: Vec::new(),
                base,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::Value as V;

    fn target() -> Table {
        Table::build(
            "T",
            &["id", "nation", "region"],
            &["id"],
            vec![
                vec![V::Int(0), V::str("france"), V::str("europe")],
                vec![V::Int(1), V::str("france"), V::Null], // fillable via FD
                vec![V::Int(2), V::str("peru"), V::Null],   // no evidence
            ],
        )
        .unwrap()
    }

    fn evidence() -> Vec<Table> {
        vec![Table::build(
            "ev",
            &["nation", "region"],
            &[],
            vec![
                vec![V::str("france"), V::str("europe")],
                vec![V::str("france"), V::str("europe")],
                vec![V::str("japan"), V::str("asia")],
            ],
        )
        .unwrap()]
    }

    #[test]
    fn fd_imputation_fills_supported_cells_only() {
        let out = impute(&target(), &evidence(), &ImputeConfig::default());
        assert_eq!(out.imputations.len(), 1);
        let imp = &out.imputations[0];
        assert_eq!(imp.row, 1);
        assert_eq!(out.table.cell(1, 2), Some(&V::str("europe")));
        assert!(matches!(&imp.rule, ImputationRule::Fd { determinant, dependent }
            if determinant == "nation" && dependent == "region"));
        // Peru stays null: no evidence.
        assert_eq!(out.table.cell(2, 2), Some(&V::Null));
    }

    #[test]
    fn low_confidence_fds_do_not_fire() {
        let noisy = vec![Table::build(
            "ev",
            &["nation", "region"],
            &[],
            vec![
                vec![V::str("france"), V::str("europe")],
                vec![V::str("france"), V::str("eu")], // disagreement
            ],
        )
        .unwrap()];
        let out = impute(&target(), &noisy, &ImputeConfig::default());
        assert!(out.imputations.is_empty());
        // Lowering the confidence threshold lets the majority win.
        let lax = ImputeConfig { fd_min_confidence: 0.5, ..ImputeConfig::default() };
        let out = impute(&target(), &noisy, &lax);
        assert_eq!(out.imputations.len(), 1);
    }

    #[test]
    fn support_threshold_blocks_single_sightings() {
        let thin = vec![Table::build(
            "ev",
            &["nation", "region"],
            &[],
            vec![vec![V::str("france"), V::str("europe")]],
        )
        .unwrap()];
        let strict = ImputeConfig { min_fd_support: 2, ..ImputeConfig::default() };
        assert!(impute(&target(), &thin, &strict).imputations.is_empty());
        let lax = ImputeConfig { min_fd_support: 1, ..ImputeConfig::default() };
        assert_eq!(impute(&target(), &thin, &lax).imputations.len(), 1);
    }

    #[test]
    fn mode_imputation_is_opt_in_and_share_gated() {
        let t = Table::build(
            "T",
            &["id", "status"],
            &["id"],
            vec![vec![V::Int(0), V::Null], vec![V::Int(1), V::Null]],
        )
        .unwrap();
        let ev = vec![Table::build(
            "ev",
            &["status"],
            &[],
            vec![vec![V::str("ok")]; 9]
                .into_iter()
                .chain(std::iter::once(vec![V::str("bad")]))
                .collect(),
        )
        .unwrap()];
        // Default: off.
        assert!(impute(&t, &ev, &ImputeConfig::default()).imputations.is_empty());
        // On, 90% share met (9/10).
        let cfg = ImputeConfig { use_mode: true, ..ImputeConfig::default() };
        let out = impute(&t, &ev, &cfg);
        assert_eq!(out.imputations.len(), 2);
        assert_eq!(out.table.cell(0, 1), Some(&V::str("ok")));
        // Share not met when the mode is weaker.
        let cfg = ImputeConfig { use_mode: true, mode_min_share: 0.95, ..ImputeConfig::default() };
        assert!(impute(&t, &ev, &cfg).imputations.is_empty());
    }

    #[test]
    fn reclaim_with_cleaning_improves_eis_on_fd_shaped_gaps() {
        // Source with a derivable column; the lake fragment covering that
        // column misses one row, but the FD nation→region is visible in
        // the fragment itself.
        let source = Table::build(
            "S",
            &["id", "nation", "region"],
            &["id"],
            vec![
                vec![V::Int(0), V::str("france"), V::str("europe")],
                vec![V::Int(1), V::str("france"), V::str("europe")],
                vec![V::Int(2), V::str("japan"), V::str("asia")],
            ],
        )
        .unwrap();
        let ids = Table::build(
            "ids",
            &["id", "nation"],
            &[],
            vec![
                vec![V::Int(0), V::str("france")],
                vec![V::Int(1), V::str("france")],
                vec![V::Int(2), V::str("japan")],
            ],
        )
        .unwrap();
        let regions = Table::build(
            "regions",
            &["id", "nation", "region"],
            &[],
            vec![
                vec![V::Int(0), V::str("france"), V::str("europe")],
                // row 1 missing!
                vec![V::Int(2), V::str("japan"), V::str("asia")],
            ],
        )
        .unwrap();
        let lake = DataLake::from_tables(vec![ids, regions]);
        let gen_t = GenT::default();
        let cfg = ImputeConfig { min_fd_support: 1, ..ImputeConfig::default() };
        let cleaned = gen_t.reclaim_with_cleaning(&source, &lake, &cfg).unwrap();
        assert!(
            cleaned.eis_after >= cleaned.base.eis,
            "after {} < before {}",
            cleaned.eis_after,
            cleaned.base.eis
        );
        if cleaned.base.eis < 1.0 - 1e-9 {
            assert!(!cleaned.imputations.is_empty(), "imputation should fire");
            assert!(cleaned.eis_after > cleaned.base.eis);
        }
    }

    #[test]
    fn cleaning_that_hurts_is_rolled_back() {
        // Evidence FD gives the *wrong* value for a source null: mode/FD
        // imputation would reclaim a spurious value, lowering EIS → the
        // cleaned result must fall back to the base reclamation.
        let source = Table::build(
            "S",
            &["id", "a", "b"],
            &["id"],
            vec![vec![V::Int(0), V::str("x"), V::Null]], // b is a correct null
        )
        .unwrap();
        let frag =
            Table::build("frag", &["id", "a"], &[], vec![vec![V::Int(0), V::str("x")]]).unwrap();
        let misleading =
            Table::build("mis", &["a", "b"], &[], vec![vec![V::str("x"), V::str("WRONG")]; 3])
                .unwrap();
        let lake = DataLake::from_tables(vec![frag, misleading]);
        let cfg = ImputeConfig { min_fd_support: 1, ..ImputeConfig::default() };
        let cleaned = GenT::default().reclaim_with_cleaning(&source, &lake, &cfg).unwrap();
        assert_eq!(cleaned.eis_after, cleaned.base.eis);
    }
}
