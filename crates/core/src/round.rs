//! Incremental round state for Matrix Traversal's greedy loop.
//!
//! Algorithm 1 scores `Combine(current, m)` for every remaining candidate
//! `m` on every greedy round but merges only the winner. PR 3's fused
//! [`AlignmentMatrix::combine_score`] removed the per-candidate
//! materialization; this module removes the per-round **rescan**: a
//! [`RoundScorer`] carries two kinds of state across rounds —
//!
//! 1. **Per-row score decomposition.** A candidate's fused score is
//!    `Σ_rows rc_i / (n · |S|)` where `rc_i` is the row's best merged
//!    `α − δ` clamped at 0 (`AlignmentMatrix`'s per-row fused kernel). For
//!    rows the candidate does not cover, `rc_i` equals the combined
//!    matrix's own row best (`base_i`) — the row passes through `Combine`
//!    verbatim — so only *covered* rows carry per-candidate cache entries.
//!    When a round's winner is merged, exactly the rows the winner covers
//!    can change in the combined matrix
//!    ([`AlignmentMatrix::combine_tracked`] reports them); those rows are
//!    marked **dirty** and lazily rescored, so a sparse winner invalidates
//!    a handful of cache rows instead of all of them.
//!
//! 2. **Admissible per-candidate upper bounds.** A dirty row's contribution
//!    is bounded by `min(n, profile_bound)`: the row cap `n` (every non-key
//!    cell `1`) intersected with the packed arena's per-row lane-max
//!    profile bound (`AlignmentMatrix::combine_row_bound` — the score of
//!    the element-wise max of the two rows' tuple profiles, which no Eq. 5
//!    output can exceed). So
//!    `bound(c) = base_total + Σ_clean (rc_i − base_i) + Σ_dirty (min(n, pb_i) − base_i)`
//!    never underestimates the candidate's achievable score, and prunes
//!    strictly harder than the flat `n`-cap alone. Each round scans
//!    candidates best-bound-first and stops as soon as the next bound can
//!    no longer beat the best exact score found — candidates are only
//!    skipped when **provably losing**, so the selected winner (and the
//!    lowest-index tie-break) is bit-identical to a full rescan.
//!
//! # Why integer comparisons are exact
//!
//! All bookkeeping is on the integer numerators. The f64 scores the
//! reference loop compares are `total / (n · |S|)` with `total < 2^52`:
//! `i64 → f64` conversion is exact there, and correctly-rounded division by
//! one shared positive constant preserves both strict order and ties
//! (`a > b ⟹ a/D − b/D ≥ 1/D`, which exceeds half an ulp of `a/D` for
//! `a < 2^52`). Integer comparisons therefore decide exactly what the
//! reference's float comparisons decide; the property suite
//! (`crates/core/tests/round_scorer_prop.rs`) pins the equivalence to the
//! nested-reference full-rescan loop selection by selection.

use crate::matrix::{AlignmentMatrix, CombineScratch};

/// Counters from one traversal's greedy selection, surfaced through
/// [`TraversalOutcome`](crate::TraversalOutcome) into the pipeline
/// [`Timings`](crate::Timings) and `POST /reclaim` responses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Greedy rounds run: accepted merges plus the final converge round
    /// (a full-candidate sweep that found no strict improvement).
    pub rounds: u32,
    /// Dirty-row kernel evaluations performed across all rounds — the work
    /// a full rescan would have done `rounds × candidates × rows` of.
    pub rows_rescored: u64,
    /// Candidate scorings skipped because their upper bound provably could
    /// not beat the round's best (or the convergence threshold).
    pub candidates_pruned: u64,
}

/// Cached scoring state of one still-unselected candidate.
struct CandState {
    /// Index into the traversal's matrix list (stable across rounds).
    idx: u32,
    /// Source rows this candidate covers, ascending. Static: coverage is a
    /// property of the candidate matrix, not of the evolving combined one.
    rows: Vec<u32>,
    /// Cached `combine_row_best` per entry of `rows`; valid unless the
    /// row's position is marked stale.
    rc: Vec<i64>,
    /// Positions into `rows` whose cache entry is stale (winner touched
    /// that row since it was last scored).
    stale: Vec<u32>,
    /// Dedup bitmap over `rows` positions for `stale`.
    stale_mark: Vec<bool>,
    /// `Σ (rc_i − base_i)` over the *clean* covered rows — the candidate's
    /// exact advantage over the combined matrix on rows it was last scored
    /// against.
    sum_clean: i64,
}

/// Persistent cross-round state of Algorithm 1's greedy selection: the
/// combined matrix, its per-row self scores, and every remaining
/// candidate's cached row decomposition. See the [module docs](self) for
/// the invariants.
pub struct RoundScorer<'m> {
    matrices: &'m [AlignmentMatrix],
    cap: usize,
    combined: AlignmentMatrix,
    /// `combined`'s own per-row net-score contribution (`row_self_best`).
    base: Vec<i64>,
    /// `Σ base` — the integer numerator of `combined.net_score()`, which is
    /// also the strict-improvement threshold (`most_correct`).
    base_total: i64,
    /// Row-cap: the largest contribution any row can reach (`n`).
    row_cap: i64,
    remaining: Vec<CandState>,
    scratch: CombineScratch,
    /// Dirty-row buffer reused across merges.
    dirty: Vec<u32>,
    /// Per-round `(bound, candidate idx, slot)` sort buffer.
    order: Vec<(i64, u32, u32)>,
    stats: RoundStats,
}

impl<'m> RoundScorer<'m> {
    /// Start the greedy selection with `matrices[start]` as the combined
    /// matrix (the caller's GetStartTable pick). Every other matrix becomes
    /// a remaining candidate with all of its covered rows initially stale —
    /// the first round's scoring *is* the initial cache fill, and the
    /// bounds already apply to it.
    pub fn new(matrices: &'m [AlignmentMatrix], start: usize, cap: usize) -> RoundScorer<'m> {
        let combined = matrices[start].clone();
        let n_rows = combined.n_source_rows();
        let base: Vec<i64> = (0..n_rows).map(|i| combined.row_self_best(i)).collect();
        let base_total = base.iter().sum();
        let remaining = matrices
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != start)
            .map(|(i, m)| {
                let rows: Vec<u32> =
                    (0..n_rows).filter(|&r| m.row_covered(r)).map(|r| r as u32).collect();
                let k = rows.len();
                CandState {
                    idx: i as u32,
                    rows,
                    rc: vec![0; k],
                    stale: (0..k as u32).collect(),
                    stale_mark: vec![true; k],
                    sum_clean: 0,
                }
            })
            .collect();
        RoundScorer {
            matrices,
            cap,
            row_cap: combined.n_scored_cols() as i64,
            combined,
            base,
            base_total,
            remaining,
            scratch: CombineScratch::default(),
            dirty: Vec::new(),
            order: Vec::new(),
            stats: RoundStats::default(),
        }
    }

    /// Run one greedy round: find the candidate whose fused combine–score
    /// is strictly greater than the current combined matrix's net score
    /// (lowest index winning ties, exactly as an index-order full rescan
    /// would), merge it, and return its matrix index — or `None` once no
    /// candidate strictly improves (convergence).
    pub fn select_next(&mut self) -> Option<usize> {
        if self.remaining.is_empty() {
            return None;
        }
        self.stats.rounds += 1;

        // Upper bounds, best-first (ties toward the lower candidate index,
        // so the scan order is deterministic).
        self.order.clear();
        for (slot, c) in self.remaining.iter().enumerate() {
            let m = &self.matrices[c.idx as usize];
            let headroom: i64 = c
                .stale
                .iter()
                .map(|&j| {
                    let r = c.rows[j as usize] as usize;
                    self.combined.combine_row_bound(m, r).min(self.row_cap) - self.base[r]
                })
                .sum();
            let bound = self.base_total + c.sum_clean + headroom;
            self.order.push((bound, c.idx, slot as u32));
        }
        self.order.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        // Best-bound-first scan with provable-loser early exit.
        let mut best: Option<(i64, u32, u32)> = None;
        let mut k = 0usize;
        while k < self.order.len() {
            let (bound, idx, slot) = self.order[k];
            match best {
                Some((bt, bi, _)) => {
                    if bound < bt {
                        // Sorted descending: nobody from here on can even
                        // tie the best exact score.
                        break;
                    }
                    if bound == bt && idx > bi {
                        // Could at most tie, and would lose the
                        // lowest-index tie-break.
                        self.stats.candidates_pruned += 1;
                        k += 1;
                        continue;
                    }
                }
                None => {
                    if bound <= self.base_total {
                        // Cannot *strictly* improve; sorted descending, so
                        // neither can anyone after it.
                        break;
                    }
                }
            }
            let total = self.rescore(slot as usize);
            let better = match best {
                None => total > self.base_total,
                Some((bt, bi, _)) => total > bt || (total == bt && idx < bi),
            };
            if better {
                best = Some((total, idx, slot));
            }
            k += 1;
        }
        self.stats.candidates_pruned += (self.order.len() - k) as u64;

        let (total, idx, slot) = best?;
        self.merge_winner(slot as usize, total);
        Some(idx as usize)
    }

    /// Rescore `remaining[slot]`'s stale rows against the current combined
    /// matrix and return its exact integer score numerator.
    fn rescore(&mut self, slot: usize) -> i64 {
        let c = &mut self.remaining[slot];
        let m = &self.matrices[c.idx as usize];
        self.stats.rows_rescored += c.stale.len() as u64;
        for t in 0..c.stale.len() {
            let j = c.stale[t] as usize;
            let r = c.rows[j] as usize;
            let rc = self.combined.combine_row_best(m, r, &mut self.scratch);
            c.sum_clean += rc - self.base[r];
            c.rc[j] = rc;
            c.stale_mark[j] = false;
        }
        c.stale.clear();
        self.base_total + c.sum_clean
    }

    /// Merge the round's winner into the combined matrix, mark the rows it
    /// touched dirty in every other candidate's cache, and refresh the
    /// per-row base scores for exactly those rows.
    fn merge_winner(&mut self, slot: usize, winner_total: i64) {
        let winner = self.remaining.swap_remove(slot);
        self.dirty.clear();
        let merged = self.combined.combine_tracked(
            &self.matrices[winner.idx as usize],
            self.cap,
            &mut self.dirty,
        );

        // Mark stale against the *old* base (each clean cache term was
        // accumulated as `rc − base_old`; it must be backed out the same
        // way).
        for c in &mut self.remaining {
            let (mut a, mut b) = (0usize, 0usize);
            while a < c.rows.len() && b < self.dirty.len() {
                match c.rows[a].cmp(&self.dirty[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        if !c.stale_mark[a] {
                            c.stale_mark[a] = true;
                            c.stale.push(a as u32);
                            c.sum_clean -= c.rc[a] - self.base[c.rows[a] as usize];
                        }
                        a += 1;
                        b += 1;
                    }
                }
            }
        }

        // Refresh base on the dirty rows; clean rows are verbatim copies,
        // so their base (and every cached rc) provably still holds.
        for &r in &self.dirty {
            let r = r as usize;
            let nb = merged.row_self_best(r);
            self.base_total += nb - self.base[r];
            self.base[r] = nb;
        }
        self.combined = merged;
        // The fused kernel's integer total equals the materialized
        // matrix's (PR 3's bit-exactness invariant), so the new net score
        // must be exactly the winner's score.
        debug_assert_eq!(
            self.base_total, winner_total,
            "merged combined net score must equal the winner's fused score"
        );
    }

    /// The combined matrix as of the last accepted merge.
    pub fn combined(&self) -> &AlignmentMatrix {
        &self.combined
    }

    /// Consume the scorer, yielding the final combined matrix (the
    /// traversal reads its EIS).
    pub fn into_combined(self) -> AlignmentMatrix {
        self.combined
    }

    /// `combined.net_score()` as the greedy loop tracks it (`most_correct`)
    /// — bit-equal to calling [`AlignmentMatrix::net_score`], reproduced
    /// here from the cached integer numerator.
    pub fn current_score(&self) -> f64 {
        let n = self.combined.n_scored_cols();
        let rows = self.combined.n_source_rows();
        if rows == 0 || n == 0 {
            return 0.0;
        }
        self.base_total as f64 / (n as f64 * rows as f64)
    }

    /// Counters accumulated so far (rounds, rescored rows, pruned
    /// candidates).
    pub fn stats(&self) -> RoundStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenTConfig;
    use gent_table::{Table, Value as V};

    fn source() -> Table {
        Table::build(
            "S",
            &["ID", "a", "b", "c"],
            &["ID"],
            vec![
                vec![V::Int(0), V::Int(10), V::Int(20), V::Int(30)],
                vec![V::Int(1), V::Int(11), V::Int(21), V::Int(31)],
                vec![V::Int(2), V::Int(12), V::Int(22), V::Int(32)],
                vec![V::Int(3), V::Int(13), V::Int(23), V::Int(33)],
            ],
        )
        .unwrap()
    }

    /// A candidate covering only `keys`, with the given non-key column
    /// subset correct (others absent → null-against-value 0s).
    fn cand(name: &str, keys: &[i64], cols: &[&str]) -> Table {
        let s = source();
        let mut columns = vec!["ID"];
        columns.extend_from_slice(cols);
        let rows = s
            .rows()
            .iter()
            .filter(|r| match &r[0] {
                V::Int(k) => keys.contains(k),
                _ => unreachable!(),
            })
            .map(|r| {
                let mut row = vec![r[0].clone()];
                for c in cols {
                    let j = s.schema().column_index(c).unwrap();
                    row.push(r[j].clone());
                }
                row
            })
            .collect();
        Table::build(name, &columns, &[], rows).unwrap()
    }

    fn matrices(tables: &[Table]) -> Vec<AlignmentMatrix> {
        let s = source();
        let cfg = GenTConfig::default();
        tables
            .iter()
            .map(|t| {
                AlignmentMatrix::build(&s, t, cfg.three_valued, cfg.max_aligned_per_key).unwrap()
            })
            .collect()
    }

    /// Reference: the PR 3 loop — full fused rescan of every remaining
    /// candidate each round.
    fn full_rescan_select(mats: &[AlignmentMatrix], start: usize, cap: usize) -> Vec<usize> {
        let mut chosen = vec![start];
        let mut combined = mats[start].clone();
        let mut most_correct = combined.net_score();
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (i, m) in mats.iter().enumerate() {
                if chosen.contains(&i) {
                    continue;
                }
                let score = combined.combine_score(m);
                let better = match &best {
                    None => score > most_correct,
                    Some((_, bs)) => score > *bs,
                };
                if better {
                    best = Some((i, score));
                }
            }
            match best {
                Some((i, score)) if score > most_correct => {
                    chosen.push(i);
                    combined = combined.combine(&mats[i], cap);
                    most_correct = score;
                }
                _ => break,
            }
            if chosen.len() == mats.len() {
                break;
            }
        }
        chosen
    }

    fn incremental_select(
        mats: &[AlignmentMatrix],
        start: usize,
        cap: usize,
    ) -> (Vec<usize>, RoundStats) {
        let mut scorer = RoundScorer::new(mats, start, cap);
        let mut chosen = vec![start];
        while chosen.len() < mats.len() {
            match scorer.select_next() {
                Some(i) => chosen.push(i),
                None => break,
            }
        }
        (chosen, scorer.stats())
    }

    #[test]
    fn selections_match_full_rescan() {
        // Disjoint column specialists: each merge strictly improves, the
        // winners cover different rows, and one candidate is pure overlap.
        let tables = vec![
            cand("A", &[0, 1, 2, 3], &["a"]),
            cand("B", &[0, 1], &["b"]),
            cand("C", &[2, 3], &["c"]),
            cand("Dup", &[0, 1], &["b"]),
        ];
        let mats = matrices(&tables);
        let full = full_rescan_select(&mats, 0, 8);
        let (inc, stats) = incremental_select(&mats, 0, 8);
        assert_eq!(inc, full);
        assert!(inc.len() >= 3, "multi-round selection expected, got {inc:?}");
        assert!(stats.rounds as usize >= inc.len() - 1);
    }

    #[test]
    fn sparse_winner_rescans_only_its_rows() {
        // B covers rows {0,1}; after A starts, merging B must not rescore
        // C's rows {2,3} — only dirty-row work is done.
        let tables = vec![
            cand("A", &[0, 1, 2, 3], &["a"]),
            cand("B", &[0, 1], &["b"]),
            cand("C", &[2, 3], &["c"]),
        ];
        let mats = matrices(&tables);
        let (inc, stats) = incremental_select(&mats, 0, 8);
        assert_eq!(inc.len(), 3, "{inc:?}");
        // Full rescan would evaluate every candidate over all 4 source
        // rows every round; the cache holds each candidate to its covered
        // rows, rescored only when a winner dirtied them. B and C each
        // cover 2 rows, and their row sets are disjoint, so across all
        // rounds no more than the initial fill plus one dirty pass each
        // can happen.
        assert!(
            stats.rows_rescored <= 8,
            "expected dirty-row rescoring only, got {} row evaluations",
            stats.rows_rescored
        );
    }

    #[test]
    fn provably_losing_candidates_are_pruned() {
        // Dup adds nothing over B (same rows, same column): once B merges,
        // Dup's bound collapses to the threshold and it is skipped without
        // an exact rescore in the converge round.
        let tables = vec![
            cand("A", &[0, 1, 2, 3], &["a", "c"]),
            cand("B", &[0, 1, 2, 3], &["b"]),
            cand("Dup", &[0, 1, 2, 3], &["b"]),
        ];
        let mats = matrices(&tables);
        let full = full_rescan_select(&mats, 0, 8);
        let (inc, stats) = incremental_select(&mats, 0, 8);
        assert_eq!(inc, full);
        assert!(stats.candidates_pruned > 0, "bound pruning never fired: {stats:?}");
    }

    #[test]
    fn empty_coverage_candidate_is_never_selected_or_scored() {
        let empty = cand("E", &[], &["a"]);
        let tables = vec![cand("A", &[0, 1, 2, 3], &["a"]), empty, cand("B", &[0, 1], &["b"])];
        let mats = matrices(&tables);
        assert_eq!(mats[1].keys_covered(), 0);
        let full = full_rescan_select(&mats, 0, 8);
        let (inc, stats) = incremental_select(&mats, 0, 8);
        assert_eq!(inc, full);
        assert!(!inc.contains(&1), "empty candidate must never win: {inc:?}");
        // Its bound equals the threshold from round one, so it contributes
        // zero rescored rows, ever.
        assert!(stats.rows_rescored <= mats[0].n_source_rows() as u64 * 2 + 4);
    }

    #[test]
    fn current_score_matches_net_score_bits() {
        let tables = vec![cand("A", &[0, 1, 2, 3], &["a"]), cand("B", &[0, 1], &["b", "c"])];
        let mats = matrices(&tables);
        let mut scorer = RoundScorer::new(&mats, 0, 8);
        assert_eq!(scorer.current_score().to_bits(), mats[0].net_score().to_bits());
        while scorer.select_next().is_some() {}
        assert_eq!(scorer.current_score().to_bits(), scorer.combined().net_score().to_bits());
    }
}
