//! Expand (Algorithm 5, Appendix C): give every candidate table access to
//! the source key.
//!
//! Matrix initialisation needs each candidate to contain the source's key
//! column(s) so its tuples can be aligned. Candidates that lack the key are
//! joined, via a best join path, with candidates that have it: the
//! candidates form a graph (edge = joinable columns, weight = estimated
//! join overlap via value containment — "standard join cardinality
//! estimation"), and for each keyless *start* table we search for the
//! max-weight simple path to any key-carrying *end* table, then fold the
//! path with natural joins.
//!
//! # The join engine
//!
//! The original implementation (kept verbatim in [`mod@reference`] as the
//! executable specification) enumerated **every** simple path with a
//! bounded-depth DFS and re-joined each winning path left-to-right from
//! scratch. Three observations make that the pipeline's hot path on real
//! candidate sets, and three mechanisms remove it:
//!
//! 1. **Best-first search with admissible pruning.** Edge containments are
//!    ≤ 1, so a partial path's weight can only shrink as it grows — the
//!    partial weight is an admissible upper bound on every completion. A
//!    max-heap ordered by (weight, then shorter, then lexicographic path)
//!    pops partial paths best-first; a subtree is expanded only while some
//!    end's recorded best could still be improved. Recording ends on pop
//!    with the reference's own better-path predicate reproduces the DFS
//!    result exactly: the first pop per end is its max-weight /
//!    shortest / lexicographically-first path — precisely what the DFS
//!    preorder kept.
//! 2. **A sub-join memo keyed on the table-index path suffix.** Paths are
//!    folded right-to-left (`join(p) = c[p₀] ⋈ join(p₁..)`), so the many
//!    keyless starts that funnel through the same key-carrier chains fold
//!    each shared suffix exactly once. Natural join is associative here
//!    (every consecutive pair shares columns and `gent_ops::inner_join`
//!    orders output columns left-then-new and rows left-major), so the
//!    right fold is byte-identical to the reference's left fold.
//! 3. **Reusable join row-index maps.** Each memoized suffix table is
//!    hashed on its join columns once ([`gent_ops::JoinIndex`], cached per
//!    (suffix, join-column set)) and probed by every start that joins
//!    against it, instead of rebuilding the hash map per join.
//!
//! Expanded tables that fold to the same relation (same columns up to
//! order, same row multiset) are deduplicated — different paths routinely
//! produce identical joins, and the traversal would score each copy.
//! Everything is counted in [`ExpandStats`] and surfaced as
//! `gent_expand_*` counters plus a per-candidate `expand_candidate` span.

use gent_ops::{
    inner_join_indexed, inner_join_indexed_capped, inner_join_indexed_hashed, join_cols,
    left_key_hashes, JoinIndex,
};
use gent_table::fxhash::FxHasher;
use gent_table::{FxHashMap, FxHashSet, Table, Value};
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};

/// Weight-comparison slack, shared with the reference DFS's tie handling.
const EPS: f64 = 1e-12;

/// Per-candidate distinct-value sets, one per column, built once up front.
/// [`join_weight`] used to rebuild both sides' sets for **every pair** of
/// candidates — `O(n² · cells)` hashing that dominated Expand's cost on
/// real candidate sets (the whole-table traversal bench spent more time
/// here than in every greedy round combined). The sets borrow the tables'
/// values, so the cache costs one pass over each table and no clones.
struct DistinctCache {
    /// Per table, per column: the sorted, deduplicated FxHashes of the
    /// column's non-null values. Containment intersects two sorted `u64`
    /// runs with a linear merge — no per-probe re-hashing, no `Value`
    /// comparisons. `Value`'s hash is consistent with its cross-type
    /// equality, so equal values always share a hash; distinct values
    /// colliding (~2⁻⁶⁴) can only nudge a heuristic edge weight, and both
    /// engines share the same weights either way.
    columns: Vec<Vec<Vec<u64>>>,
}

/// FxHash of one cell value.
fn value_hash(v: &Value) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

impl DistinctCache {
    fn new(tables: &[Table]) -> DistinctCache {
        let columns = tables
            .iter()
            .map(|t| {
                (0..t.n_cols())
                    .map(|j| {
                        let mut hs: Vec<u64> =
                            t.column(j).filter(|v| !v.is_null_like()).map(value_hash).collect();
                        hs.sort_unstable();
                        hs.dedup();
                        hs
                    })
                    .collect()
            })
            .collect();
        DistinctCache { columns }
    }
}

/// Estimated edge weight between two candidate tables: the best value
/// containment among their shared columns — a proxy for how much of `a`
/// survives the join (standard cardinality-estimation style). Identical to
/// recomputing the distinct sets per call (the overlap counts the same
/// intersection, iterating whichever set is smaller).
fn join_weight(a: (usize, &Table), b: (usize, &Table), cache: &DistinctCache) -> Option<f64> {
    let common = a.1.schema().common_columns(b.1.schema());
    if common.is_empty() {
        return None;
    }
    let mut best = 0.0f64;
    for col in &common {
        let ai = a.1.schema().column_index(col).expect("common");
        let bi = b.1.schema().column_index(col).expect("common");
        let av = &cache.columns[a.0][ai];
        if av.is_empty() {
            continue;
        }
        let bv = &cache.columns[b.0][bi];
        // Sorted-run intersection (both runs are distinct and ascending).
        let (mut i, mut j, mut shared) = (0usize, 0usize, 0usize);
        while i < av.len() && j < bv.len() {
            match av[i].cmp(&bv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let overlap = shared as f64 / av.len() as f64;
        best = best.max(overlap);
    }
    (best > 0.0).then_some(best)
}

/// Does `t` contain every source key column (by name)?
fn has_key(t: &Table, key_names: &[&str]) -> bool {
    key_names.iter().all(|k| t.schema().contains(k))
}

/// How many alternative join paths each keyless candidate may expand into.
/// Nullified/erroneous lake tables rarely cover all source keys through a
/// single partner — e.g. a dimension must join through *both* nullified
/// versions of the fact table to reach every key — so Expand materialises
/// the best path to each of the strongest end nodes and lets the matrix
/// traversal decide which expansions actually help.
const PATHS_PER_CANDIDATE: usize = 6;

/// Counters from one Expand run, surfaced through
/// [`TraversalOutcome`](crate::TraversalOutcome) into the pipeline
/// [`Timings`](crate::Timings), `POST /reclaim` responses, and the
/// `gent_expand_*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpandStats {
    /// Partial join paths examined by the best-first search (heap pops) —
    /// the work the exhaustive DFS did for *every* simple path.
    pub paths_considered: u64,
    /// Suffix sub-joins answered from the memo instead of being re-folded.
    pub memo_hits: u64,
    /// Keyless candidates dropped because no join path produced a usable
    /// key-carrying table (unreachable, empty join, or failed join).
    pub candidates_dropped: u64,
    /// Expanded tables dropped because an identical relation (same columns
    /// up to order, same rows) was already produced by another path.
    pub dedup_dropped: u64,
}

/// A partial path in the best-first search. Max-heap order: higher weight
/// first, then shorter path, then lexicographically smaller path — so pop
/// order is deterministic and the first pop per end node is exactly the
/// path the reference DFS's preorder-with-better-predicate kept.
struct Entry {
    /// Product of edge containments along `path` (admissible bound on any
    /// completion's weight, since edges are ≤ 1).
    weight: f64,
    /// Current node (last element of `path`, or the start node).
    node: usize,
    /// Nodes visited after the start, in order.
    path: Vec<usize>,
}

impl Entry {
    fn key_cmp(&self, other: &Entry) -> std::cmp::Ordering {
        self.weight
            .total_cmp(&other.weight)
            .then_with(|| other.path.len().cmp(&self.path.len()))
            .then_with(|| other.path.cmp(&self.path))
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Entry) -> bool {
        self.key_cmp(other).is_eq()
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Entry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Entry) -> std::cmp::Ordering {
        self.key_cmp(other)
    }
}

/// Best-first search for max-weight simple paths `start → … → end` where
/// `end` carries the key. Returns the best path per distinct end node,
/// strongest first (up to [`PATHS_PER_CANDIDATE`]), each path as candidate
/// indices excluding `start` — the same result set as the reference's
/// exhaustive DFS, found without enumerating provably-losing subtrees.
fn best_paths(
    start: usize,
    weights: &[Vec<Option<f64>>],
    ends: &FxHashSet<usize>,
    max_depth: usize,
    paths_considered: &mut u64,
) -> Vec<Vec<usize>> {
    // Best (weight, path) per end node, under the reference's predicate.
    let mut best: FxHashMap<usize, (f64, Vec<usize>)> = FxHashMap::default();
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    heap.push(Entry { weight: 1.0, node: start, path: Vec::new() });
    while let Some(Entry { weight, node, path }) = heap.pop() {
        *paths_considered += 1;
        if ends.contains(&node) {
            let better = match best.get(&node) {
                None => true,
                Some((w, p)) => {
                    weight > *w + EPS
                        || ((weight - *w).abs() <= EPS
                            && (path.len() < p.len() || (path.len() == p.len() && path < *p)))
                }
            };
            if better {
                best.insert(node, (weight, path));
            }
            continue; // a path through an end node never needs to continue
        }
        // Sound early termination: every end already has a recorded path,
        // and this entry — the strongest still pending, by exact best-first
        // order — sits strictly below every recorded weight's EPS band.
        // Completions only get lighter and longer, so nothing the heap
        // still holds (or could ever produce) can replace a recorded path.
        if best.len() == ends.len() && best.values().all(|(w, _)| weight < *w - EPS) {
            break;
        }
        if path.len() >= max_depth {
            continue;
        }
        // Branch & bound: every completion of this partial path has weight
        // ≤ `weight` (edges are ≤ 1) and length ≥ len + 1, so the subtree
        // is worth expanding only while some end is unrecorded or could
        // still be improved by such a completion.
        let can_improve = best.len() < ends.len()
            || best.values().any(|(w, p)| {
                weight > *w + EPS || (weight >= *w - EPS && path.len() + 1 < p.len())
            });
        if !can_improve {
            continue;
        }
        for (next, w) in weights[node].iter().enumerate() {
            if next == start || path.contains(&next) {
                continue;
            }
            if let Some(w) = w {
                let mut p = path.clone();
                p.push(next);
                heap.push(Entry { weight: weight * w, node: next, path: p });
            }
        }
    }
    let mut ranked: Vec<(usize, f64, Vec<usize>)> =
        best.into_iter().map(|(end, (w, p))| (end, w, p)).collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).expect("finite").then(a.2.len().cmp(&b.2.len())).then(a.0.cmp(&b.0))
    });
    ranked.into_iter().take(PATHS_PER_CANDIDATE).map(|(_, _, p)| p).collect()
}

/// A table's identity as a *relation* ignores the name, the column order,
/// and the row order: two expanded tables equal under that identity
/// produce identical alignment matrices (matrix construction keys rows by
/// value and never reads column order, row order, or the table name), so
/// scoring both is pure duplicate work. Detection is three-tier so unique
/// tables — the overwhelming majority — never pay a row scan at all: the
/// *shape* (sorted column names + row count) buckets tables for free, only
/// shape collisions hash their rows into an order-independent fingerprint,
/// and only fingerprint collisions run the exact multiset comparison, so a
/// non-duplicate can never be dropped.
///
/// The permutation that sorts a column-name list.
fn sorted_names_order(names: &[&str]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..names.len()).collect();
    order.sort_by_key(|&j| names[j]);
    order
}

/// The column permutation that sorts `t`'s column names.
fn sorted_order(t: &Table) -> Vec<usize> {
    let names: Vec<&str> = t.schema().columns().collect();
    sorted_names_order(&names)
}

/// Seed for one column's (name, cell) pair hashes.
fn column_seed(name: &str) -> u64 {
    let mut h = FxHasher::default();
    name.hash(&mut h);
    h.finish()
}

/// Hash of one (column, cell) pair, from the column's precomputed seed.
#[inline]
fn pair_hash(seed: u64, v: &Value) -> u64 {
    let mut h = FxHasher::default();
    seed.hash(&mut h);
    v.hash(&mut h);
    h.finish()
}

/// One row's term in the relation fingerprint: the wrapping sum of its
/// (column-name, cell) pair hashes over `cols` (`seeds[k]` is
/// `cols[k]`'s). A row *is* its set of (column, value) pairs, so the term
/// is a true function of the row that ignores column order — and it
/// splits along any column partition: a join output row's term is its
/// left part's plus its right part's, which lets the join engine fold
/// fingerprints from per-input-row precomputations instead of re-hashing
/// every output cell.
#[inline]
fn row_sum(row: &[Value], cols: &[usize], seeds: &[u64]) -> u64 {
    cols.iter().zip(seeds).fold(0u64, |acc, (&j, &s)| acc.wrapping_add(pair_hash(s, &row[j])))
}

/// Per-row fingerprint terms for the `cols` columns of every row of `t`.
fn table_row_sums(t: &Table, cols: &[usize]) -> Vec<u64> {
    let names: Vec<&str> = t.schema().columns().collect();
    let seeds: Vec<u64> = cols.iter().map(|&j| column_seed(names[j])).collect();
    t.rows().iter().map(|r| row_sum(r, cols, &seeds)).collect()
}

/// A whole table's relation fingerprint: the commutative `wrapping_add`
/// fold of its rows' terms — row order is not part of the identity, and
/// `| 1` keeps zero-hash rows from vanishing. Equal relations always
/// fingerprint equal; unequal ones collide only with ~2⁻⁶⁴ probability —
/// and collisions are caught by [`same_relation`], never silently merged.
fn relation_fingerprint(t: &Table) -> u64 {
    let cols: Vec<usize> = (0..t.n_cols()).collect();
    table_row_sums(t, &cols).into_iter().fold(0u64, |acc, s| acc.wrapping_add(s | 1))
}

/// Exact relation equality (callers pre-check equal sorted column names):
/// row multisets compared through a counting map of borrowed cells — no
/// clones, no sort.
fn same_relation(a: &Table, b: &Table) -> bool {
    if a.n_rows() != b.n_rows() {
        return false;
    }
    let (oa, ob) = (sorted_order(a), sorted_order(b));
    let mut counts: FxHashMap<Vec<&Value>, isize> = FxHashMap::default();
    for row in a.rows() {
        *counts.entry(oa.iter().map(|&j| &row[j]).collect()).or_insert(0) += 1;
    }
    for row in b.rows() {
        match counts.get_mut(&ob.iter().map(|&j| &row[j]).collect::<Vec<_>>()) {
            Some(c) => *c -= 1,
            None => return false,
        }
    }
    counts.values().all(|&c| c == 0)
}

/// One memoized suffix fold. Single-table suffixes resolve to the
/// candidate in place — materialising them would clone whole lake tables
/// just to give them a memo slot.
/// A multi-table suffix is memoized only while its join output stays
/// within this multiple of its inputs' combined row count. A suffix fold
/// runs *ahead* of the start table, so it loses the start's selectivity —
/// `customer ⋈ lineitem` joined before the start that would have filtered
/// it can hold hundreds of thousands of rows none of which survive the
/// final join. A blow-up past this cap abandons the fold mid-join
/// ([`gent_ops::inner_join_indexed_capped`], so a fitting join pays
/// nothing extra and a veto pays at most the cap) and keeps the whole
/// path on the left-fold route ([`JoinEngine::join_path_folded`]) — the
/// reference's own evaluation order, hence byte-identical output.
const SUFFIX_FANOUT_CAP: usize = 8;

enum MemoEntry {
    /// A one-table suffix: the candidate itself, by index.
    Base(usize),
    /// A folded multi-table suffix.
    Joined(Table),
    /// The fold failed (no common columns somewhere in the chain);
    /// negative results are memoized too, so a failing chain fails once.
    Failed,
    /// The fold would produce far more rows than its inputs hold (see
    /// [`SUFFIX_FANOUT_CAP`]); paths through it take the left-fold route
    /// ([`JoinEngine::join_path_folded`]) instead. Memoized so the
    /// estimate runs once per suffix.
    Oversize,
}

impl MemoEntry {
    /// The suffix's table, resolved against the candidate pool.
    fn table<'a>(&'a self, candidates: &'a [Table]) -> Option<&'a Table> {
        match self {
            MemoEntry::Base(i) => Some(&candidates[*i]),
            MemoEntry::Joined(t) => Some(t),
            MemoEntry::Failed | MemoEntry::Oversize => None,
        }
    }
}

/// The memoized right-fold join engine: sub-join results keyed on the
/// table-index path suffix, with cached per-suffix [`JoinIndex`]es so a
/// right table probed by many lefts hashes its join columns once.
struct JoinEngine<'t> {
    candidates: &'t [Table],
    /// Suffix path → its folded join.
    memo: FxHashMap<Vec<usize>, MemoEntry>,
    /// (right table's suffix path, right join columns) → hash index. The
    /// join columns depend on the *left* schema's column order, so they are
    /// part of the key.
    indexes: FxHashMap<(Vec<usize>, Vec<usize>), JoinIndex>,
    /// Start-candidate index → per-row fingerprint terms over all its
    /// columns (the left half of every final join's rows).
    left_sums: FxHashMap<usize, Vec<u64>>,
    /// (start-candidate index, left join columns) → per-row join-key
    /// hashes, shared by every path this start probes over that column
    /// set (the key hash ignores the right table entirely).
    left_hashes: FxHashMap<(usize, Vec<usize>), Vec<Option<u64>>>,
    /// (right suffix path, right join columns) → per-row fingerprint terms
    /// over that join's extra (non-common) right columns.
    right_sums: FxHashMap<(Vec<usize>, Vec<usize>), Vec<u64>>,
    /// Right suffix path → its table's per-row source-key hashes (`None`
    /// inner value when that table lacks a source key column). When the
    /// start carries *no* key column, a joined row's key cells are
    /// verbatim copies of its right row's, so these hashes transfer to the
    /// join output row-for-row — the matrix handoff
    /// ([`AlignmentMatrix::build_hashed`](crate::matrix::AlignmentMatrix))
    /// that saves re-hashing every expanded row during alignment.
    right_key_hashes: FxHashMap<Vec<usize>, Option<Vec<Option<u64>>>>,
}

/// Per-row source-key hashes of one expanded table, handed from the join
/// engine to matrix construction (`None` when the engine could not derive
/// them — the table then hashes its own rows, exactly as before).
pub(crate) type KeyHashes = Option<Vec<Option<u64>>>;

impl<'t> JoinEngine<'t> {
    fn new(candidates: &'t [Table]) -> JoinEngine<'t> {
        JoinEngine {
            candidates,
            memo: FxHashMap::default(),
            indexes: FxHashMap::default(),
            left_sums: FxHashMap::default(),
            left_hashes: FxHashMap::default(),
            right_sums: FxHashMap::default(),
            right_key_hashes: FxHashMap::default(),
        }
    }

    /// `candidates[start] ⋈ fold(path)`, folding the path right-to-left
    /// through the memo, together with the join's relation fingerprint.
    /// Each output row's term is the sum of its left row's and its right
    /// row's precomputed terms ([`row_sum`] splits along the column
    /// partition), so the fold costs one add per row instead of re-hashing
    /// every output cell — result rows of a large join outlive every cache
    /// level, and a separate fingerprint pass would re-walk them all.
    /// Returns `None` when any join in the chain fails.
    fn join_path(
        &mut self,
        start: usize,
        path: &[usize],
        key_names: &[&str],
        stats: &mut ExpandStats,
    ) -> Option<(Table, u64, KeyHashes)> {
        let left = &self.candidates[start];
        if path.is_empty() {
            return Some((left.clone(), relation_fingerprint(left), None));
        }
        self.ensure_suffixes(path, stats);
        if matches!(self.memo.get(path), Some(MemoEntry::Oversize)) {
            return self.join_path_folded(start, path);
        }
        let right = self.memo.get(path).expect("just ensured").table(self.candidates)?;
        let (lcols, rcols) = join_cols(left, right).ok()?;
        let lsums = self.left_sums.entry(start).or_insert_with(|| {
            let cols: Vec<usize> = (0..left.n_cols()).collect();
            table_row_sums(left, &cols)
        });
        let lhashes = self
            .left_hashes
            .entry((start, lcols.clone()))
            .or_insert_with(|| left_key_hashes(left, &lcols));
        let rsums = self.right_sums.entry((path.to_vec(), rcols.clone())).or_insert_with(|| {
            let rextra: Vec<usize> = (0..right.n_cols()).filter(|j| !rcols.contains(j)).collect();
            table_row_sums(right, &rextra)
        });
        // Key-hash handoff: with no key column on the left, the output's
        // key cells are copies of the right row's, so each emitted row
        // inherits its right row's precomputed source-key hash.
        let rkh = if key_names.iter().any(|k| left.schema().contains(k)) {
            None
        } else {
            self.right_key_hashes
                .entry(path.to_vec())
                .or_insert_with(|| {
                    let ckey: Option<Vec<usize>> =
                        key_names.iter().map(|k| right.schema().column_index(k)).collect();
                    ckey.map(|ckey| {
                        right.rows().iter().map(|r| crate::matrix::key_hash(r, &ckey)).collect()
                    })
                })
                .as_deref()
        };
        let index = self
            .indexes
            .entry((path.to_vec(), rcols.clone()))
            .or_insert_with(|| JoinIndex::build(right, &rcols));
        let mut fp = 0u64;
        let mut out_hashes: Vec<Option<u64>> = Vec::new();
        let joined = inner_join_indexed_hashed(left, right, index, lhashes, |li, ri, _row| {
            fp = fp.wrapping_add(lsums[li].wrapping_add(rsums[ri]) | 1);
            if let Some(rkh) = rkh {
                out_hashes.push(rkh[ri]);
            }
        })
        .ok()?;
        Some((joined, fp, rkh.is_some().then_some(out_hashes)))
    }

    /// Left-fold fallback for paths whose suffix join would dwarf its
    /// inputs: `((start ⋈ c[p₀]) ⋈ c[p₁]) ⋈ …` keeps the start's
    /// selectivity, so every intermediate stays output-sized — the
    /// reference's own evaluation order, hence byte-identical output
    /// (natural join is associative across the chain; see the module
    /// docs, and note `inner_join`'s `⋈`-concatenated output name is
    /// associative too). Costs the suffix memo and the fused fingerprint
    /// (recomputed over the final output, linear in the rows actually
    /// produced) — cheap exactly when the suffix fold is not. The per-base
    /// [`JoinIndex`] cache still applies to every hop.
    fn join_path_folded(
        &mut self,
        start: usize,
        path: &[usize],
    ) -> Option<(Table, u64, KeyHashes)> {
        let mut acc = Self::indexed_join(
            &mut self.indexes,
            &path[..1],
            &self.candidates[start],
            &self.candidates[path[0]],
        )?;
        for (i, &p) in path.iter().enumerate().skip(1) {
            acc = Self::indexed_join(&mut self.indexes, &path[i..=i], &acc, &self.candidates[p])?;
        }
        let fp = relation_fingerprint(&acc);
        Some((acc, fp, None))
    }

    /// Materialise `memo[path[i..]]` for every suffix, shortest first, so
    /// each is folded exactly once across all starts and paths.
    fn ensure_suffixes(&mut self, path: &[usize], stats: &mut ExpandStats) {
        for i in (0..path.len()).rev() {
            let suffix = &path[i..];
            if self.memo.contains_key(suffix) {
                stats.memo_hits += 1;
                continue;
            }
            let entry = if suffix.len() == 1 {
                MemoEntry::Base(suffix[0])
            } else if matches!(self.memo.get(&suffix[1..]), Some(MemoEntry::Oversize)) {
                // An oversize tail keeps every chain through it folded.
                MemoEntry::Oversize
            } else {
                let left = &self.candidates[suffix[0]];
                let right = self
                    .memo
                    .get(&suffix[1..])
                    .expect("built shortest-first")
                    .table(self.candidates);
                match right.and_then(|r| join_cols(left, r).ok().map(|(_, rcols)| (r, rcols))) {
                    None => MemoEntry::Failed,
                    Some((r, rcols)) => {
                        let index = self
                            .indexes
                            .entry((suffix[1..].to_vec(), rcols.clone()))
                            .or_insert_with(|| JoinIndex::build(r, &rcols));
                        let cap = SUFFIX_FANOUT_CAP * (left.n_rows() + r.n_rows());
                        match inner_join_indexed_capped(left, r, index, cap) {
                            Err(_) => MemoEntry::Failed,
                            Ok(None) => MemoEntry::Oversize,
                            Ok(Some(t)) => MemoEntry::Joined(t),
                        }
                    }
                }
            };
            self.memo.insert(suffix.to_vec(), entry);
        }
    }

    /// One natural join through the per-suffix index cache — byte-identical
    /// to `gent_ops::inner_join(left, right)`.
    fn indexed_join(
        indexes: &mut FxHashMap<(Vec<usize>, Vec<usize>), JoinIndex>,
        suffix: &[usize],
        left: &Table,
        right: &Table,
    ) -> Option<Table> {
        let rcols = join_cols(left, right).ok()?.1;
        let index = indexes
            .entry((suffix.to_vec(), rcols.clone()))
            .or_insert_with(|| JoinIndex::build(right, &rcols));
        inner_join_indexed(left, right, index).ok()
    }
}

/// Algorithm 5 — replace each keyless candidate by its join with a path of
/// candidates ending in a key-carrying one; candidates with no such path
/// are dropped (their tuples can never be aligned).
///
/// Returns the expanded tables, preserving input order. Key-carrying
/// candidates pass through unchanged.
pub fn expand(candidates: &[Table], key_names: &[&str], max_depth: usize) -> Vec<Table> {
    expand_with_stats(candidates, key_names, max_depth).0
}

/// [`expand`] with its [`ExpandStats`] counters (also recorded into the
/// global `gent_expand_*` metrics, with an `expand_candidate` span timed
/// around each keyless candidate's search-and-join work).
pub fn expand_with_stats(
    candidates: &[Table],
    key_names: &[&str],
    max_depth: usize,
) -> (Vec<Table>, ExpandStats) {
    let (out, _, stats) = expand_with_key_hashes(candidates, key_names, max_depth);
    (out, stats)
}

/// [`expand_with_stats`] plus each output table's per-row source-key
/// hashes where the join engine could derive them (see [`KeyHashes`]) —
/// `hashes[i]` pairs with `out[i]`. The traversal feeds these to
/// [`AlignmentMatrix::build_hashed`](crate::matrix::AlignmentMatrix) so
/// alignment skips re-hashing the rows Expand just emitted.
pub(crate) fn expand_with_key_hashes(
    candidates: &[Table],
    key_names: &[&str],
    max_depth: usize,
) -> (Vec<Table>, Vec<KeyHashes>, ExpandStats) {
    let ins = crate::telemetry::instruments();
    let mut stats = ExpandStats::default();
    let n = candidates.len();
    let ends: FxHashSet<usize> = (0..n).filter(|&i| has_key(&candidates[i], key_names)).collect();
    if ends.len() == n {
        return (candidates.to_vec(), vec![None; n], stats);
    }
    // Precompute pairwise weights over cached per-column distinct sets.
    let cache = DistinctCache::new(candidates);
    let mut weights: Vec<Vec<Option<f64>>> = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let w = join_weight((i, &candidates[i]), (j, &candidates[j]), &cache);
            weights[i][j] = w;
            weights[j][i] = w;
        }
    }
    let mut engine = JoinEngine::new(candidates);
    // Dedup state: shape (sorted column names, row count) → kept
    // expansions of that shape, each with its `out` index and the
    // fingerprint folded during its join. Only fingerprint matches run
    // the exact multiset comparison.
    type ShapeBucket = Vec<(usize, u64)>;
    let mut seen: FxHashMap<(Vec<String>, usize), ShapeBucket> = FxHashMap::default();
    let mut out: Vec<Table> = Vec::with_capacity(n);
    let mut out_hashes: Vec<KeyHashes> = Vec::with_capacity(n);
    for (i, candidate) in candidates.iter().enumerate() {
        if ends.contains(&i) {
            out.push(candidate.clone());
            out_hashes.push(None);
            continue;
        }
        let _span = gent_obs::span_timed("expand_candidate", ins.stage_expand_candidate.clone());
        let mut produced = 0usize;
        let paths = best_paths(i, &weights, &ends, max_depth, &mut stats.paths_considered);
        for (k, path) in paths.into_iter().enumerate() {
            let Some((mut joined, fp, key_hashes)) =
                engine.join_path(i, &path, key_names, &mut stats)
            else {
                continue;
            };
            if joined.is_empty() || !has_key(&joined, key_names) {
                continue;
            }
            let mut shape: Vec<String> = joined.schema().columns().map(str::to_string).collect();
            shape.sort_unstable();
            let bucket = seen.entry((shape, joined.n_rows())).or_default();
            let dup = bucket.iter().any(|&(x, xfp)| xfp == fp && same_relation(&out[x], &joined));
            if dup {
                stats.dedup_dropped += 1;
                continue;
            }
            bucket.push((out.len(), fp));
            // `k` enumerates all of this start's ranked paths — including
            // failed and deduplicated ones — so the surviving tables keep
            // the exact names the reference implementation gives them.
            let suffix = if k == 0 { String::new() } else { format!("#{}", k + 1) };
            joined.set_name(format!("{}+expanded{suffix}", candidates[i].name()));
            out.push(joined);
            out_hashes.push(key_hashes);
            produced += 1;
        }
        if produced == 0 {
            stats.candidates_dropped += 1;
        }
    }
    ins.expand_paths.add(stats.paths_considered);
    ins.expand_memo_hits.add(stats.memo_hits);
    ins.expand_candidates_dropped.add(stats.candidates_dropped);
    ins.expand_dedup.add(stats.dedup_dropped);
    (out, out_hashes, stats)
}

pub mod reference {
    //! The original exhaustive-DFS, left-fold Expand, kept verbatim as the
    //! **executable specification** of the best-first memoized engine in
    //! [`expand`](super::expand): property tests assert the engine's output
    //! is identical (modulo the deliberate duplicate-table drops, which the
    //! reference does not perform).
    //!
    //! Nothing in the pipeline uses this module.

    use super::{has_key, join_weight, DistinctCache, PATHS_PER_CANDIDATE};
    use gent_ops::inner_join;
    use gent_table::{FxHashSet, Table};

    /// Depth-first search for max-weight simple paths `start → … → end`
    /// where `end` carries the key — reference semantics.
    fn best_paths(
        start: usize,
        tables: &[Table],
        weights: &[Vec<Option<f64>>],
        ends: &FxHashSet<usize>,
        max_depth: usize,
    ) -> Vec<Vec<usize>> {
        struct Search<'a> {
            weights: &'a [Vec<Option<f64>>],
            ends: &'a FxHashSet<usize>,
            max_depth: usize,
            /// Best (weight, path) per end node.
            best: gent_table::FxHashMap<usize, (f64, Vec<usize>)>,
        }
        impl Search<'_> {
            /// Path weight is the *product* of edge containments — an
            /// estimate of the fraction of the start table's rows surviving
            /// the whole join chain. (The paper's pseudocode sums weights,
            /// which would always prefer longer paths; the product matches
            /// the stated goal of "a path that covers the most source key
            /// values".) Ties break toward shorter paths.
            fn dfs(
                &mut self,
                node: usize,
                weight: f64,
                path: &mut Vec<usize>,
                visited: &mut Vec<bool>,
            ) {
                if self.ends.contains(&node) {
                    let better = match self.best.get(&node) {
                        None => true,
                        Some((w, p)) => {
                            weight > *w + 1e-12
                                || ((weight - *w).abs() <= 1e-12 && path.len() < p.len())
                        }
                    };
                    if better {
                        self.best.insert(node, (weight, path.clone()));
                    }
                    return; // a path through an end node never needs to continue
                }
                if path.len() >= self.max_depth {
                    return;
                }
                for next in 0..self.weights.len() {
                    if visited[next] {
                        continue;
                    }
                    if let Some(w) = self.weights[node][next] {
                        visited[next] = true;
                        path.push(next);
                        self.dfs(next, weight * w, path, visited);
                        path.pop();
                        visited[next] = false;
                    }
                }
            }
        }
        let mut search =
            Search { weights, ends, max_depth, best: gent_table::FxHashMap::default() };
        let mut visited = vec![false; tables.len()];
        visited[start] = true;
        search.dfs(start, 1.0, &mut Vec::new(), &mut visited);
        let mut ranked: Vec<(usize, f64, Vec<usize>)> =
            search.best.into_iter().map(|(end, (w, p))| (end, w, p)).collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite")
                .then(a.2.len().cmp(&b.2.len()))
                .then(a.0.cmp(&b.0))
        });
        ranked.into_iter().take(PATHS_PER_CANDIDATE).map(|(_, _, p)| p).collect()
    }

    /// Reference Algorithm 5 (see [`expand`](super::expand)).
    pub fn expand(candidates: &[Table], key_names: &[&str], max_depth: usize) -> Vec<Table> {
        let n = candidates.len();
        let ends: FxHashSet<usize> =
            (0..n).filter(|&i| has_key(&candidates[i], key_names)).collect();
        if ends.len() == n {
            return candidates.to_vec();
        }
        let cache = DistinctCache::new(candidates);
        let mut weights: Vec<Vec<Option<f64>>> = vec![vec![None; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let w = join_weight((i, &candidates[i]), (j, &candidates[j]), &cache);
                weights[i][j] = w;
                weights[j][i] = w;
            }
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if ends.contains(&i) {
                out.push(candidates[i].clone());
                continue;
            }
            let paths = best_paths(i, candidates, &weights, &ends, max_depth);
            for (k, path) in paths.into_iter().enumerate() {
                let mut joined = candidates[i].clone();
                let mut ok = true;
                for &step in &path {
                    match inner_join(&joined, &candidates[step]) {
                        Ok(j) => joined = j,
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok && !joined.is_empty() && has_key(&joined, key_names) {
                    let suffix = if k == 0 { String::new() } else { format!("#{}", k + 1) };
                    joined.set_name(format!("{}+expanded{suffix}", candidates[i].name()));
                    out.push(joined);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::Value as V;

    /// Figure 3's tables B and C lack the source key "ID"; A has it.
    fn candidates() -> Vec<Table> {
        let a = Table::build(
            "A",
            &["ID", "Name", "Education Level"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::str("Bachelors")],
                vec![V::Int(1), V::str("Brown"), V::Null],
                vec![V::Int(2), V::str("Wang"), V::str("High School")],
            ],
        )
        .unwrap();
        let b = Table::build(
            "B",
            &["Name", "Age"],
            &[],
            vec![
                vec![V::str("Smith"), V::Int(27)],
                vec![V::str("Brown"), V::Int(24)],
                vec![V::str("Wang"), V::Int(32)],
            ],
        )
        .unwrap();
        let c = Table::build(
            "C",
            &["Name", "Gender"],
            &[],
            vec![
                vec![V::str("Smith"), V::str("Male")],
                vec![V::str("Brown"), V::str("Male")],
                vec![V::str("Wang"), V::str("Male")],
            ],
        )
        .unwrap();
        vec![a, b, c]
    }

    /// A table as (name, sorted column names, sorted rows) — the order-free
    /// identity [`as_relations`] compares expansion outputs under.
    type NamedRelation = (String, (Vec<String>, Vec<Vec<V>>));

    /// Tables as (name, sorted column names, sorted rows) — order-free
    /// comparison of two expansion outputs.
    fn as_relations(tables: &[Table]) -> Vec<NamedRelation> {
        tables
            .iter()
            .map(|t| {
                let order = sorted_order(t);
                let names: Vec<&str> = t.schema().columns().collect();
                let cols: Vec<String> = order.iter().map(|&j| names[j].to_string()).collect();
                let mut rows: Vec<Vec<V>> = t
                    .rows()
                    .iter()
                    .map(|r| order.iter().map(|&j| r[j].clone()).collect())
                    .collect();
                rows.sort();
                (t.name().to_string(), (cols, rows))
            })
            .collect()
    }

    #[test]
    fn keyless_candidates_join_to_key_carriers() {
        let cands = candidates();
        let expanded = expand(&cands, &["ID"], 3);
        assert_eq!(expanded.len(), 3);
        for t in &expanded {
            assert!(t.schema().contains("ID"), "{} lacks ID", t.name());
        }
        // B expanded = B ⋈ A: must now carry Smith's age with ID 0.
        let b = expanded.iter().find(|t| t.name().starts_with("B")).unwrap();
        let id = b.schema().column_index("ID").unwrap();
        let age = b.schema().column_index("Age").unwrap();
        let smith = b.rows().iter().find(|r| r[id] == V::Int(0)).unwrap();
        assert_eq!(smith[age], V::Int(27));
    }

    #[test]
    fn all_keyed_passthrough() {
        let cands = candidates();
        let only_a = vec![cands[0].clone()];
        let expanded = expand(&only_a, &["ID"], 3);
        assert_eq!(expanded.len(), 1);
        assert_eq!(expanded[0].name(), "A");
    }

    #[test]
    fn unreachable_candidates_dropped() {
        let mut cands = candidates();
        cands.push(Table::build("Z", &["unrelated"], &[], vec![vec![V::str("zzz")]]).unwrap());
        let (expanded, stats) = expand_with_stats(&cands, &["ID"], 3);
        assert_eq!(expanded.len(), 3, "Z shares no columns → dropped");
        assert_eq!(stats.candidates_dropped, 1);
    }

    #[test]
    fn multi_hop_path() {
        // D joins C joins A; D shares no column with A directly.
        let a = Table::build("A", &["ID", "Name"], &[], vec![vec![V::Int(0), V::str("Smith")]])
            .unwrap();
        let c =
            Table::build("C", &["Name", "Badge"], &[], vec![vec![V::str("Smith"), V::str("b-7")]])
                .unwrap();
        let d = Table::build(
            "D",
            &["Badge", "Clearance"],
            &[],
            vec![vec![V::str("b-7"), V::str("top")]],
        )
        .unwrap();
        let expanded = expand(&[a, c, d], &["ID"], 3);
        assert_eq!(expanded.len(), 3);
        let d_exp = expanded.iter().find(|t| t.name().starts_with("D")).unwrap();
        assert!(d_exp.schema().contains("ID"));
        assert_eq!(d_exp.n_rows(), 1);
        let clearance = d_exp.schema().column_index("Clearance").unwrap();
        assert_eq!(d_exp.rows()[0][clearance], V::str("top"));
    }

    #[test]
    fn depth_limit_blocks_long_paths() {
        let a = Table::build("A", &["ID", "x1"], &[], vec![vec![V::Int(0), V::Int(1)]]).unwrap();
        let m1 = Table::build("M1", &["x1", "x2"], &[], vec![vec![V::Int(1), V::Int(2)]]).unwrap();
        let m2 = Table::build("M2", &["x2", "x3"], &[], vec![vec![V::Int(2), V::Int(3)]]).unwrap();
        let far = Table::build("F", &["x3", "v"], &[], vec![vec![V::Int(3), V::Int(9)]]).unwrap();
        // far needs 3 hops (m2, m1, a); depth 2 cannot reach.
        let expanded = expand(&[a.clone(), m1.clone(), m2.clone(), far.clone()], &["ID"], 2);
        assert!(expanded.iter().all(|t| !t.name().starts_with("F")));
        let expanded3 = expand(&[a, m1, m2, far], &["ID"], 3);
        assert!(expanded3.iter().any(|t| t.name().starts_with("F")));
    }

    #[test]
    fn engine_matches_reference_on_unit_scenarios() {
        // On duplicate-free scenarios the engine's output must be
        // *identical* to the reference DFS + left-fold joins: same names,
        // same relations, same order.
        let scenarios: Vec<(Vec<Table>, usize)> = vec![
            (candidates(), 3),
            (candidates(), 1),
            (
                {
                    let mut cs = candidates();
                    cs.push(
                        Table::build("Z", &["unrelated"], &[], vec![vec![V::str("zzz")]]).unwrap(),
                    );
                    cs
                },
                3,
            ),
        ];
        for (cands, depth) in scenarios {
            let new = expand(&cands, &["ID"], depth);
            let old = reference::expand(&cands, &["ID"], depth);
            assert_eq!(as_relations(&new), as_relations(&old), "depth {depth}");
        }
    }

    #[test]
    fn identical_expansions_are_deduplicated() {
        // B and B2 hold the same relation under different names: their
        // expansions through A fold to identical tables, so only the first
        // survives.
        let mut cands = candidates();
        let mut b2 = cands[1].clone();
        b2.set_name("B2");
        cands.push(b2);
        let (expanded, stats) = expand_with_stats(&cands, &["ID"], 3);
        assert!(stats.dedup_dropped >= 1, "{stats:?}");
        assert!(
            expanded.iter().any(|t| t.name().starts_with("B+expanded")),
            "first occurrence kept"
        );
        assert!(
            !expanded.iter().any(|t| t.name().starts_with("B2+expanded")),
            "duplicate dropped: {:?}",
            expanded.iter().map(|t| t.name()).collect::<Vec<_>>()
        );
        // Without dedup the reference emits both.
        let old = reference::expand(&cands, &["ID"], 3);
        assert_eq!(old.len(), expanded.len() + stats.dedup_dropped as usize);
    }

    #[test]
    fn shared_suffixes_hit_the_memo() {
        // B and C both expand through A: the second start's best path
        // reuses the memoized [A] suffix.
        let (_, stats) = expand_with_stats(&candidates(), &["ID"], 3);
        assert!(stats.memo_hits >= 1, "{stats:?}");
        assert!(stats.paths_considered > 0, "{stats:?}");
    }

    #[test]
    fn fused_fingerprint_matches_recomputation() {
        // The fingerprint folded during the join (left-sum + right-sum per
        // output row) must equal a from-scratch `relation_fingerprint` of
        // the materialized output — on single- and multi-hop paths.
        let cands = candidates();
        let mut stats = ExpandStats::default();
        let mut engine = JoinEngine::new(&cands);
        for (start, path) in [(1usize, vec![0usize]), (2, vec![0]), (1, vec![2, 0])] {
            let (joined, fp, _) = engine
                .join_path(start, &path, &["ID"], &mut stats)
                .unwrap_or_else(|| panic!("join {start}+{path:?} must succeed"));
            assert_eq!(fp, relation_fingerprint(&joined), "start {start}, path {path:?}");
        }
    }

    #[test]
    fn key_hash_handoff_matches_fresh_hashes() {
        // Keyless starts joined through A hand per-row source-key hashes
        // to matrix build; each must equal hashing the output row's key
        // cells from scratch.
        let (expanded, hashes, _) = expand_with_key_hashes(&candidates(), &["ID"], 3);
        let mut handed = 0;
        for (t, h) in expanded.iter().zip(&hashes) {
            let Some(h) = h else { continue };
            handed += 1;
            let ckey = vec![t.schema().column_index("ID").expect("expansions carry the key")];
            assert_eq!(h.len(), t.n_rows(), "one hash per row of {}", t.name());
            for (row, &hash) in t.rows().iter().zip(h) {
                assert_eq!(hash, crate::matrix::key_hash(row, &ckey), "row in {}", t.name());
            }
        }
        assert!(handed >= 1, "at least one expansion must hand hashes over");
    }
}
