//! Expand (Algorithm 5, Appendix C): give every candidate table access to
//! the source key.
//!
//! Matrix initialisation needs each candidate to contain the source's key
//! column(s) so its tuples can be aligned. Candidates that lack the key are
//! joined, via a best join path, with candidates that have it: the
//! candidates form a graph (edge = joinable columns, weight = estimated
//! join overlap via value containment — "standard join cardinality
//! estimation"), and for each keyless *start* table we search for the
//! max-weight simple path to any key-carrying *end* table, then fold the
//! path with natural joins.
//!
//! The paper's DFS pseudocode relaxes node weights without re-expanding
//! (a heuristic); with ≤ a few dozen candidates we can afford an exact
//! bounded-depth search over simple paths, which subsumes it.

use gent_ops::inner_join;
use gent_table::{FxHashSet, Table, Value};

/// Per-candidate distinct-value sets, one per column, built once up front.
/// [`join_weight`] used to rebuild both sides' sets for **every pair** of
/// candidates — `O(n² · cells)` hashing that dominated Expand's cost on
/// real candidate sets (the whole-table traversal bench spent more time
/// here than in every greedy round combined). The sets borrow the tables'
/// values, so the cache costs one pass over each table and no clones.
struct DistinctCache<'t> {
    columns: Vec<Vec<FxHashSet<&'t Value>>>,
}

impl<'t> DistinctCache<'t> {
    fn new(tables: &'t [Table]) -> DistinctCache<'t> {
        let columns = tables
            .iter()
            .map(|t| {
                (0..t.n_cols())
                    .map(|j| t.column(j).filter(|v| !v.is_null_like()).collect())
                    .collect()
            })
            .collect();
        DistinctCache { columns }
    }
}

/// Estimated edge weight between two candidate tables: the best value
/// containment among their shared columns — a proxy for how much of `a`
/// survives the join (standard cardinality-estimation style). Identical to
/// recomputing the distinct sets per call (the overlap counts the same
/// intersection, iterating whichever set is smaller).
fn join_weight(a: (usize, &Table), b: (usize, &Table), cache: &DistinctCache<'_>) -> Option<f64> {
    let common = a.1.schema().common_columns(b.1.schema());
    if common.is_empty() {
        return None;
    }
    let mut best = 0.0f64;
    for col in &common {
        let ai = a.1.schema().column_index(col).expect("common");
        let bi = b.1.schema().column_index(col).expect("common");
        let av = &cache.columns[a.0][ai];
        if av.is_empty() {
            continue;
        }
        let bv = &cache.columns[b.0][bi];
        let (small, large) = if av.len() <= bv.len() { (av, bv) } else { (bv, av) };
        let shared = small.iter().filter(|v| large.contains(*v)).count();
        let overlap = shared as f64 / av.len() as f64;
        best = best.max(overlap);
    }
    (best > 0.0).then_some(best)
}

/// Does `t` contain every source key column (by name)?
fn has_key(t: &Table, key_names: &[&str]) -> bool {
    key_names.iter().all(|k| t.schema().contains(k))
}

/// How many alternative join paths each keyless candidate may expand into.
/// Nullified/erroneous lake tables rarely cover all source keys through a
/// single partner — e.g. a dimension must join through *both* nullified
/// versions of the fact table to reach every key — so Expand materialises
/// the best path to each of the strongest end nodes and lets the matrix
/// traversal decide which expansions actually help.
const PATHS_PER_CANDIDATE: usize = 6;

/// Depth-first search for max-weight simple paths `start → … → end` where
/// `end` carries the key. Returns the best path per distinct end node,
/// strongest first (up to [`PATHS_PER_CANDIDATE`]), each path as candidate
/// indices excluding `start`.
fn best_paths(
    start: usize,
    tables: &[Table],
    weights: &[Vec<Option<f64>>],
    ends: &FxHashSet<usize>,
    max_depth: usize,
) -> Vec<Vec<usize>> {
    struct Search<'a> {
        weights: &'a [Vec<Option<f64>>],
        ends: &'a FxHashSet<usize>,
        max_depth: usize,
        /// Best (weight, path) per end node.
        best: gent_table::FxHashMap<usize, (f64, Vec<usize>)>,
    }
    impl Search<'_> {
        /// Path weight is the *product* of edge containments — an estimate
        /// of the fraction of the start table's rows surviving the whole
        /// join chain. (The paper's pseudocode sums weights, which would
        /// always prefer longer paths; the product matches the stated goal
        /// of "a path that covers the most source key values".) Ties break
        /// toward shorter paths.
        fn dfs(
            &mut self,
            node: usize,
            weight: f64,
            path: &mut Vec<usize>,
            visited: &mut Vec<bool>,
        ) {
            if self.ends.contains(&node) {
                let better = match self.best.get(&node) {
                    None => true,
                    Some((w, p)) => {
                        weight > *w + 1e-12
                            || ((weight - *w).abs() <= 1e-12 && path.len() < p.len())
                    }
                };
                if better {
                    self.best.insert(node, (weight, path.clone()));
                }
                return; // a path through an end node never needs to continue
            }
            if path.len() >= self.max_depth {
                return;
            }
            for next in 0..self.weights.len() {
                if visited[next] {
                    continue;
                }
                if let Some(w) = self.weights[node][next] {
                    visited[next] = true;
                    path.push(next);
                    self.dfs(next, weight * w, path, visited);
                    path.pop();
                    visited[next] = false;
                }
            }
        }
    }
    let mut search = Search { weights, ends, max_depth, best: gent_table::FxHashMap::default() };
    let mut visited = vec![false; tables.len()];
    visited[start] = true;
    search.dfs(start, 1.0, &mut Vec::new(), &mut visited);
    let mut ranked: Vec<(usize, f64, Vec<usize>)> =
        search.best.into_iter().map(|(end, (w, p))| (end, w, p)).collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).expect("finite").then(a.2.len().cmp(&b.2.len())).then(a.0.cmp(&b.0))
    });
    ranked.into_iter().take(PATHS_PER_CANDIDATE).map(|(_, _, p)| p).collect()
}

/// Algorithm 5 — replace each keyless candidate by its join with a path of
/// candidates ending in a key-carrying one; candidates with no such path
/// are dropped (their tuples can never be aligned).
///
/// Returns the expanded tables, preserving input order. Key-carrying
/// candidates pass through unchanged.
pub fn expand(candidates: &[Table], key_names: &[&str], max_depth: usize) -> Vec<Table> {
    let n = candidates.len();
    let ends: FxHashSet<usize> = (0..n).filter(|&i| has_key(&candidates[i], key_names)).collect();
    if ends.len() == n {
        return candidates.to_vec();
    }
    // Precompute pairwise weights over cached per-column distinct sets.
    let cache = DistinctCache::new(candidates);
    let mut weights: Vec<Vec<Option<f64>>> = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let w = join_weight((i, &candidates[i]), (j, &candidates[j]), &cache);
            weights[i][j] = w;
            weights[j][i] = w;
        }
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if ends.contains(&i) {
            out.push(candidates[i].clone());
            continue;
        }
        for (k, path) in
            best_paths(i, candidates, &weights, &ends, max_depth).into_iter().enumerate()
        {
            let mut joined = candidates[i].clone();
            let mut ok = true;
            for &step in &path {
                match inner_join(&joined, &candidates[step]) {
                    Ok(j) => joined = j,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && !joined.is_empty() && has_key(&joined, key_names) {
                let suffix = if k == 0 { String::new() } else { format!("#{}", k + 1) };
                joined.set_name(format!("{}+expanded{suffix}", candidates[i].name()));
                out.push(joined);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::Value as V;

    /// Figure 3's tables B and C lack the source key "ID"; A has it.
    fn candidates() -> Vec<Table> {
        let a = Table::build(
            "A",
            &["ID", "Name", "Education Level"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::str("Bachelors")],
                vec![V::Int(1), V::str("Brown"), V::Null],
                vec![V::Int(2), V::str("Wang"), V::str("High School")],
            ],
        )
        .unwrap();
        let b = Table::build(
            "B",
            &["Name", "Age"],
            &[],
            vec![
                vec![V::str("Smith"), V::Int(27)],
                vec![V::str("Brown"), V::Int(24)],
                vec![V::str("Wang"), V::Int(32)],
            ],
        )
        .unwrap();
        let c = Table::build(
            "C",
            &["Name", "Gender"],
            &[],
            vec![
                vec![V::str("Smith"), V::str("Male")],
                vec![V::str("Brown"), V::str("Male")],
                vec![V::str("Wang"), V::str("Male")],
            ],
        )
        .unwrap();
        vec![a, b, c]
    }

    #[test]
    fn keyless_candidates_join_to_key_carriers() {
        let cands = candidates();
        let expanded = expand(&cands, &["ID"], 3);
        assert_eq!(expanded.len(), 3);
        for t in &expanded {
            assert!(t.schema().contains("ID"), "{} lacks ID", t.name());
        }
        // B expanded = B ⋈ A: must now carry Smith's age with ID 0.
        let b = expanded.iter().find(|t| t.name().starts_with("B")).unwrap();
        let id = b.schema().column_index("ID").unwrap();
        let age = b.schema().column_index("Age").unwrap();
        let smith = b.rows().iter().find(|r| r[id] == V::Int(0)).unwrap();
        assert_eq!(smith[age], V::Int(27));
    }

    #[test]
    fn all_keyed_passthrough() {
        let cands = candidates();
        let only_a = vec![cands[0].clone()];
        let expanded = expand(&only_a, &["ID"], 3);
        assert_eq!(expanded.len(), 1);
        assert_eq!(expanded[0].name(), "A");
    }

    #[test]
    fn unreachable_candidates_dropped() {
        let mut cands = candidates();
        cands.push(Table::build("Z", &["unrelated"], &[], vec![vec![V::str("zzz")]]).unwrap());
        let expanded = expand(&cands, &["ID"], 3);
        assert_eq!(expanded.len(), 3, "Z shares no columns → dropped");
    }

    #[test]
    fn multi_hop_path() {
        // D joins C joins A; D shares no column with A directly.
        let a = Table::build("A", &["ID", "Name"], &[], vec![vec![V::Int(0), V::str("Smith")]])
            .unwrap();
        let c =
            Table::build("C", &["Name", "Badge"], &[], vec![vec![V::str("Smith"), V::str("b-7")]])
                .unwrap();
        let d = Table::build(
            "D",
            &["Badge", "Clearance"],
            &[],
            vec![vec![V::str("b-7"), V::str("top")]],
        )
        .unwrap();
        let expanded = expand(&[a, c, d], &["ID"], 3);
        assert_eq!(expanded.len(), 3);
        let d_exp = expanded.iter().find(|t| t.name().starts_with("D")).unwrap();
        assert!(d_exp.schema().contains("ID"));
        assert_eq!(d_exp.n_rows(), 1);
        let clearance = d_exp.schema().column_index("Clearance").unwrap();
        assert_eq!(d_exp.rows()[0][clearance], V::str("top"));
    }

    #[test]
    fn depth_limit_blocks_long_paths() {
        let a = Table::build("A", &["ID", "x1"], &[], vec![vec![V::Int(0), V::Int(1)]]).unwrap();
        let m1 = Table::build("M1", &["x1", "x2"], &[], vec![vec![V::Int(1), V::Int(2)]]).unwrap();
        let m2 = Table::build("M2", &["x2", "x3"], &[], vec![vec![V::Int(2), V::Int(3)]]).unwrap();
        let far = Table::build("F", &["x3", "v"], &[], vec![vec![V::Int(3), V::Int(9)]]).unwrap();
        // far needs 3 hops (m2, m1, a); depth 2 cannot reach.
        let expanded = expand(&[a.clone(), m1.clone(), m2.clone(), far.clone()], &["ID"], 2);
        assert!(expanded.iter().all(|t| !t.name().starts_with("F")));
        let expanded3 = expand(&[a, m1, m2, far], &["ID"], 3);
        assert!(expanded3.iter().any(|t| t.name().starts_with("F")));
    }
}
