//! Matrix Traversal (Algorithm 1): refine candidates to originating tables.
//!
//! Greedy forward selection over the alignment matrices: start from the
//! single candidate whose matrix scores the highest EIS, then repeatedly add
//! the candidate whose `Combine` with the current matrix *strictly*
//! increases the score; stop when no candidate improves it ("Integration
//! did not find more of S's values", line 19). The tables selected — in
//! their *expanded* form when Expand had to join them to reach the key —
//! are the originating tables handed to Table Integration.
//!
//! # Cost of the greedy loop
//!
//! Each round scores `Combine(current, m)` for every remaining candidate
//! `m` but *keeps* only one. Materializing the combined matrix per
//! candidate just to read its score made each round
//! `O(k · (\text{combine} + \text{prune} + \text{alloc}))`; with the fused
//! [`AlignmentMatrix::combine_score`] kernel each round is a pure streaming
//! scan and the loop materializes exactly **one** combined matrix per round
//! (the winner) — `O(rounds)` materializations total instead of
//! `O(rounds · k)`. The selections are bit-identical (the kernel returns
//! exactly what materialize-then-score would).

use crate::config::GenTConfig;
use crate::expand::expand;
use crate::matrix::AlignmentMatrix;
use gent_table::Table;

/// Outcome of the traversal: the chosen originating tables (expanded forms)
/// in selection order, plus the matrix-estimated EIS reached.
#[derive(Debug, Clone)]
pub struct TraversalOutcome {
    /// Originating tables, best-first. These are *moved* out of the
    /// expanded candidate set — the traversal never clones table storage.
    pub originating: Vec<Table>,
    /// For each entry of `originating`, its index into the traversal's
    /// *internal* scored list — the candidates after Expand (which joins
    /// and can add/replace tables) and matrix alignment (which drops
    /// keyless ones) — in selection order. These indices do **not** map
    /// back onto the `candidates` slice the caller passed in; they convey
    /// selection order and distinctness (e.g. round count = `len`), and
    /// pair positionally with `originating`.
    pub selected: Vec<usize>,
    /// EIS estimated by the final combined matrix.
    pub estimated_eis: f64,
}

/// A `chosen` set over candidate indices, as a u64 bitmask — the greedy
/// loop tests membership for every candidate on every round, so this
/// replaces the former `Vec::contains` linear scan.
struct ChosenMask {
    bits: Vec<u64>,
}

impl ChosenMask {
    fn new(n: usize) -> ChosenMask {
        ChosenMask { bits: vec![0; n.div_ceil(64)] }
    }

    #[inline]
    fn contains(&self, i: usize) -> bool {
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    #[inline]
    fn insert(&mut self, i: usize) {
        self.bits[i / 64] |= 1u64 << (i % 64);
    }
}

/// Algorithm 1 — select the originating tables among `candidates` for
/// `source`. Candidates that cannot reach the source key (even via Expand)
/// are discarded up front.
pub fn matrix_traversal(
    source: &Table,
    candidates: &[Table],
    cfg: &GenTConfig,
) -> TraversalOutcome {
    let key_names: Vec<&str> = source.schema().key_names();
    // Line 3: Expand() — join tables without the source key.
    let expanded = expand(candidates, &key_names, cfg.expand_max_depth);

    // Line 4: MatrixInitialization().
    let mut tables: Vec<Table> = Vec::with_capacity(expanded.len());
    let mut matrices: Vec<AlignmentMatrix> = Vec::with_capacity(expanded.len());
    for t in expanded {
        if let Some(m) =
            AlignmentMatrix::build(source, &t, cfg.three_valued, cfg.max_aligned_per_key)
        {
            tables.push(t);
            matrices.push(m);
        }
    }
    if tables.is_empty() {
        return TraversalOutcome {
            originating: Vec::new(),
            selected: Vec::new(),
            estimated_eis: 0.0,
        };
    }

    if !cfg.prune_with_traversal {
        // Ablation: skip pruning, integrate everything (ALITE-PS regime).
        let mut combined = matrices[0].clone();
        for m in &matrices[1..] {
            combined = combined.combine(m, cfg.max_aligned_per_key);
        }
        let selected = (0..tables.len()).collect();
        return TraversalOutcome { originating: tables, selected, estimated_eis: combined.eis() };
    }

    // Lines 5–6: GetStartTable — the best single matrix by
    // percentCorrectVals (net correct values).
    let (start, _) = matrices
        .iter()
        .enumerate()
        .map(|(i, m)| (i, m.net_score()))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("score finite").then(b.0.cmp(&a.0)))
        .expect("non-empty");
    let mut chosen = vec![start];
    let mut chosen_mask = ChosenMask::new(tables.len());
    chosen_mask.insert(start);
    let mut combined = matrices[start].clone();
    let mut most_correct = combined.net_score();

    // Lines 8–20: greedy extension until no strict improvement. Every
    // remaining candidate is *scored* with the fused kernel; only the
    // round's winner is materialized via `combine`.
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (i, m) in matrices.iter().enumerate() {
            if chosen_mask.contains(i) {
                continue;
            }
            let score = combined.combine_score(m);
            let better = match &best {
                None => score > most_correct,
                Some((_, bs)) => score > *bs,
            };
            if better {
                best = Some((i, score));
            }
        }
        match best {
            Some((i, score)) if score > most_correct => {
                chosen.push(i);
                chosen_mask.insert(i);
                combined = combined.combine(&matrices[i], cfg.max_aligned_per_key);
                most_correct = score;
            }
            _ => break, // line 18–19: converged
        }
        if chosen.len() == tables.len() {
            break;
        }
    }

    let estimated_eis = combined.eis();
    // Move the winners out of the candidate list — `chosen` indices are
    // distinct, so each table is taken exactly once and nothing is cloned.
    let mut slots: Vec<Option<Table>> = tables.into_iter().map(Some).collect();
    let originating =
        chosen.iter().map(|&i| slots[i].take().expect("chosen indices are distinct")).collect();
    TraversalOutcome { originating, selected: chosen, estimated_eis }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::Value as V;

    fn source() -> Table {
        Table::build(
            "S",
            &["ID", "Name", "Age", "Gender", "Education Level"],
            &["ID"],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27), V::Null, V::str("Bachelors")],
                vec![V::Int(1), V::str("Brown"), V::Int(24), V::str("Male"), V::str("Masters")],
                vec![
                    V::Int(2),
                    V::str("Wang"),
                    V::Int(32),
                    V::str("Female"),
                    V::str("High School"),
                ],
            ],
        )
        .unwrap()
    }

    /// Figure 3 candidates (already renamed, as Set Similarity leaves them).
    fn figure3_candidates() -> Vec<Table> {
        vec![
            Table::build(
                "A",
                &["ID", "Name", "Education Level"],
                &[],
                vec![
                    vec![V::Int(0), V::str("Smith"), V::str("Bachelors")],
                    vec![V::Int(1), V::str("Brown"), V::Null],
                    vec![V::Int(2), V::str("Wang"), V::str("High School")],
                ],
            )
            .unwrap(),
            Table::build(
                "B",
                &["Name", "Age"],
                &[],
                vec![
                    vec![V::str("Smith"), V::Int(27)],
                    vec![V::str("Brown"), V::Int(24)],
                    vec![V::str("Wang"), V::Int(32)],
                ],
            )
            .unwrap(),
            Table::build(
                "C",
                &["Name", "Gender"],
                &[],
                vec![
                    vec![V::str("Smith"), V::str("Male")],
                    vec![V::str("Brown"), V::str("Male")],
                    vec![V::str("Wang"), V::str("Male")],
                ],
            )
            .unwrap(),
            Table::build(
                "D",
                &["ID", "Name", "Age", "Gender", "Education Level"],
                &[],
                vec![
                    vec![V::Int(0), V::str("Smith"), V::Int(27), V::Null, V::str("Bachelors")],
                    vec![V::Int(1), V::str("Brown"), V::Int(24), V::str("Male"), V::str("Masters")],
                    vec![V::Int(2), V::str("Wang"), V::Int(32), V::str("Female"), V::Null],
                ],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn example3_excludes_pure_noise_table_c() {
        // Example 3: integrating A, B, D alone beats using all four —
        // Table C only contributes erroneous Gender values (its one correct
        // value, Brown=Male, is already covered by D). The traversal must
        // not select C.
        let out = matrix_traversal(&source(), &figure3_candidates(), &GenTConfig::default());
        let names: Vec<&str> = out.originating.iter().map(|t| t.name()).collect();
        assert!(!names.iter().any(|n| n.starts_with("C")), "C must be pruned, got {names:?}");
        assert!(out.estimated_eis > 0.9, "eis = {}", out.estimated_eis);
    }

    #[test]
    fn starts_with_best_table() {
        // The start table must carry D's near-complete content — either D
        // itself or an expansion joined through D.
        let out = matrix_traversal(&source(), &figure3_candidates(), &GenTConfig::default());
        let first = out.originating[0].name();
        assert!(first.starts_with("D") || first.contains("expanded"), "start table {first}");
    }

    #[test]
    fn converges_without_improvement() {
        // Two identical candidates: the second adds nothing, traversal
        // returns just one.
        let d = figure3_candidates().pop().unwrap();
        let mut d2 = d.clone();
        d2.set_name("D2");
        let out = matrix_traversal(&source(), &[d, d2], &GenTConfig::default());
        assert_eq!(out.originating.len(), 1);
    }

    #[test]
    fn empty_candidates() {
        let out = matrix_traversal(&source(), &[], &GenTConfig::default());
        assert!(out.originating.is_empty());
        assert_eq!(out.estimated_eis, 0.0);
    }

    #[test]
    fn no_pruning_ablation_keeps_all() {
        let cfg = GenTConfig { prune_with_traversal: false, ..Default::default() };
        let out = matrix_traversal(&source(), &figure3_candidates(), &cfg);
        // All candidates kept (keyless ones possibly as several expansions).
        assert!(out.originating.len() >= 4, "{}", out.originating.len());
    }

    #[test]
    fn selected_indices_match_originating() {
        let out = matrix_traversal(&source(), &figure3_candidates(), &GenTConfig::default());
        assert_eq!(out.selected.len(), out.originating.len());
        let mut dedup = out.selected.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), out.selected.len(), "selection indices must be distinct");
    }

    #[test]
    fn unalignable_candidates_skipped() {
        let z = Table::build("Z", &["q"], &[], vec![vec![V::str("zz")]]).unwrap();
        let out = matrix_traversal(&source(), &[z], &GenTConfig::default());
        assert!(out.originating.is_empty());
    }
}
