//! Matrix Traversal (Algorithm 1): refine candidates to originating tables.
//!
//! Greedy forward selection over the alignment matrices: start from the
//! single candidate whose matrix scores the highest EIS, then repeatedly add
//! the candidate whose `Combine` with the current matrix *strictly*
//! increases the score; stop when no candidate improves it ("Integration
//! did not find more of S's values", line 19). The tables selected — in
//! their *expanded* form when Expand had to join them to reach the key —
//! are the originating tables handed to Table Integration.
//!
//! # Cost of the greedy loop
//!
//! Each round scores `Combine(current, m)` for every remaining candidate
//! `m` but *keeps* only one. Materializing the combined matrix per
//! candidate just to read its score made each round
//! `O(k · (\text{combine} + \text{prune} + \text{alloc}))`; the fused
//! [`AlignmentMatrix::combine_score`] kernel (PR 3) made each round a pure
//! streaming scan with exactly **one** materialization (the winner). The
//! [`RoundScorer`] now also removes the per-round *rescan*: per-candidate
//! row scores are cached between rounds, a merge dirties only the rows the
//! winner actually covers, and admissible upper bounds skip candidates
//! that provably cannot win — so a round costs the dirty-row work it
//! induces, not `O(k · \text{cells})`. The selections stay bit-identical
//! to a full rescan (see `crates/core/src/round.rs` for the argument).

use crate::config::GenTConfig;
use crate::expand::{expand_with_key_hashes, ExpandStats};
use crate::matrix::AlignmentMatrix;
use crate::round::{RoundScorer, RoundStats};
use gent_table::Table;

/// Outcome of the traversal: the chosen originating tables (expanded forms)
/// in selection order, plus the matrix-estimated EIS reached.
#[derive(Debug, Clone)]
pub struct TraversalOutcome {
    /// Originating tables, best-first. These are *moved* out of the
    /// expanded candidate set — the traversal never clones table storage.
    pub originating: Vec<Table>,
    /// For each entry of `originating`, its index into the traversal's
    /// *internal* scored list — the candidates after Expand (which joins
    /// and can add/replace tables) and matrix alignment (which drops
    /// keyless ones) — in selection order. These indices do **not** map
    /// back onto the `candidates` slice the caller passed in; they convey
    /// selection order and distinctness (e.g. round count = `len`), and
    /// pair positionally with `originating`.
    pub selected: Vec<usize>,
    /// EIS estimated by the final combined matrix.
    pub estimated_eis: f64,
    /// Greedy-round counters (rounds run, dirty rows rescored, candidates
    /// pruned by the upper bound). Zero for the early-exit paths (no
    /// alignable candidate, pruning disabled).
    pub stats: RoundStats,
    /// Expand engine counters (paths considered, memo hits, dropped
    /// candidates, deduplicated expansions) — populated on every path,
    /// including the early exits, since Expand always runs.
    pub expand: ExpandStats,
}

/// Algorithm 1 — select the originating tables among `candidates` for
/// `source`. Candidates that cannot reach the source key (even via Expand)
/// are discarded up front.
pub fn matrix_traversal(
    source: &Table,
    candidates: &[Table],
    cfg: &GenTConfig,
) -> TraversalOutcome {
    let key_names: Vec<&str> = source.schema().key_names();
    // Line 3: Expand() — join tables without the source key. Joined tables
    // come back with per-row source-key hashes where the join engine could
    // derive them, so alignment below skips re-hashing those rows.
    let (expanded, key_hashes, expand_stats) = {
        let ins = crate::telemetry::instruments();
        let _span = gent_obs::span_timed("expand", ins.stage_expand.clone());
        expand_with_key_hashes(candidates, &key_names, cfg.expand_max_depth)
    };

    // Line 4: MatrixInitialization().
    let mut tables: Vec<Table> = Vec::with_capacity(expanded.len());
    let mut matrices: Vec<AlignmentMatrix> = Vec::with_capacity(expanded.len());
    for (t, hashes) in expanded.into_iter().zip(key_hashes) {
        if let Some(m) = AlignmentMatrix::build_hashed(
            source,
            &t,
            cfg.three_valued,
            cfg.max_aligned_per_key,
            hashes.as_deref(),
        ) {
            tables.push(t);
            matrices.push(m);
        }
    }
    if tables.is_empty() {
        return TraversalOutcome {
            originating: Vec::new(),
            selected: Vec::new(),
            estimated_eis: 0.0,
            stats: RoundStats::default(),
            expand: expand_stats,
        };
    }

    if !cfg.prune_with_traversal {
        // Ablation: skip pruning, integrate everything (ALITE-PS regime).
        let mut combined = matrices[0].clone();
        for m in &matrices[1..] {
            combined = combined.combine(m, cfg.max_aligned_per_key);
        }
        let selected = (0..tables.len()).collect();
        return TraversalOutcome {
            originating: tables,
            selected,
            estimated_eis: combined.eis(),
            stats: RoundStats::default(),
            expand: expand_stats,
        };
    }

    // Lines 5–6: GetStartTable — the best single matrix by
    // percentCorrectVals (net correct values).
    let (start, _) = matrices
        .iter()
        .enumerate()
        .map(|(i, m)| (i, m.net_score()))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("score finite").then(b.0.cmp(&a.0)))
        .expect("non-empty");
    let mut chosen = vec![start];

    // Lines 8–20: greedy extension until no strict improvement. The
    // `RoundScorer` carries per-row score caches and admissible bounds
    // across rounds: each round rescans only the rows the previous winner
    // dirtied, skips provably-losing candidates, and materializes exactly
    // one combined matrix (the winner) — with selections bit-identical to
    // the full-rescan loop it replaces.
    let mut scorer = RoundScorer::new(&matrices, start, cfg.max_aligned_per_key);
    while chosen.len() < tables.len() {
        match scorer.select_next() {
            Some(i) => chosen.push(i),
            None => break, // line 18–19: converged
        }
    }

    let stats = scorer.stats();
    let estimated_eis = scorer.into_combined().eis();
    // Move the winners out of the candidate list — `chosen` indices are
    // distinct, so each table is taken exactly once and nothing is cloned.
    let mut slots: Vec<Option<Table>> = tables.into_iter().map(Some).collect();
    let originating =
        chosen.iter().map(|&i| slots[i].take().expect("chosen indices are distinct")).collect();
    TraversalOutcome { originating, selected: chosen, estimated_eis, stats, expand: expand_stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::Value as V;

    fn source() -> Table {
        Table::build(
            "S",
            &["ID", "Name", "Age", "Gender", "Education Level"],
            &["ID"],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27), V::Null, V::str("Bachelors")],
                vec![V::Int(1), V::str("Brown"), V::Int(24), V::str("Male"), V::str("Masters")],
                vec![
                    V::Int(2),
                    V::str("Wang"),
                    V::Int(32),
                    V::str("Female"),
                    V::str("High School"),
                ],
            ],
        )
        .unwrap()
    }

    /// Figure 3 candidates (already renamed, as Set Similarity leaves them).
    fn figure3_candidates() -> Vec<Table> {
        vec![
            Table::build(
                "A",
                &["ID", "Name", "Education Level"],
                &[],
                vec![
                    vec![V::Int(0), V::str("Smith"), V::str("Bachelors")],
                    vec![V::Int(1), V::str("Brown"), V::Null],
                    vec![V::Int(2), V::str("Wang"), V::str("High School")],
                ],
            )
            .unwrap(),
            Table::build(
                "B",
                &["Name", "Age"],
                &[],
                vec![
                    vec![V::str("Smith"), V::Int(27)],
                    vec![V::str("Brown"), V::Int(24)],
                    vec![V::str("Wang"), V::Int(32)],
                ],
            )
            .unwrap(),
            Table::build(
                "C",
                &["Name", "Gender"],
                &[],
                vec![
                    vec![V::str("Smith"), V::str("Male")],
                    vec![V::str("Brown"), V::str("Male")],
                    vec![V::str("Wang"), V::str("Male")],
                ],
            )
            .unwrap(),
            Table::build(
                "D",
                &["ID", "Name", "Age", "Gender", "Education Level"],
                &[],
                vec![
                    vec![V::Int(0), V::str("Smith"), V::Int(27), V::Null, V::str("Bachelors")],
                    vec![V::Int(1), V::str("Brown"), V::Int(24), V::str("Male"), V::str("Masters")],
                    vec![V::Int(2), V::str("Wang"), V::Int(32), V::str("Female"), V::Null],
                ],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn example3_excludes_pure_noise_table_c() {
        // Example 3: integrating A, B, D alone beats using all four —
        // Table C only contributes erroneous Gender values (its one correct
        // value, Brown=Male, is already covered by D). The traversal must
        // not select C.
        let out = matrix_traversal(&source(), &figure3_candidates(), &GenTConfig::default());
        let names: Vec<&str> = out.originating.iter().map(|t| t.name()).collect();
        assert!(!names.iter().any(|n| n.starts_with("C")), "C must be pruned, got {names:?}");
        assert!(out.estimated_eis > 0.9, "eis = {}", out.estimated_eis);
    }

    #[test]
    fn starts_with_best_table() {
        // The start table must carry D's near-complete content — either D
        // itself or an expansion joined through D.
        let out = matrix_traversal(&source(), &figure3_candidates(), &GenTConfig::default());
        let first = out.originating[0].name();
        assert!(first.starts_with("D") || first.contains("expanded"), "start table {first}");
    }

    #[test]
    fn converges_without_improvement() {
        // Two identical candidates: the second adds nothing, traversal
        // returns just one.
        let d = figure3_candidates().pop().unwrap();
        let mut d2 = d.clone();
        d2.set_name("D2");
        let out = matrix_traversal(&source(), &[d, d2], &GenTConfig::default());
        assert_eq!(out.originating.len(), 1);
    }

    #[test]
    fn empty_candidates() {
        let out = matrix_traversal(&source(), &[], &GenTConfig::default());
        assert!(out.originating.is_empty());
        assert_eq!(out.estimated_eis, 0.0);
    }

    #[test]
    fn no_pruning_ablation_keeps_all() {
        let cfg = GenTConfig { prune_with_traversal: false, ..Default::default() };
        let out = matrix_traversal(&source(), &figure3_candidates(), &cfg);
        // All candidates kept (keyless ones possibly as several expansions).
        assert!(out.originating.len() >= 4, "{}", out.originating.len());
    }

    #[test]
    fn selected_indices_match_originating() {
        let out = matrix_traversal(&source(), &figure3_candidates(), &GenTConfig::default());
        assert_eq!(out.selected.len(), out.originating.len());
        let mut dedup = out.selected.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), out.selected.len(), "selection indices must be distinct");
    }

    #[test]
    fn round_stats_reflect_the_greedy_loop() {
        let out = matrix_traversal(&source(), &figure3_candidates(), &GenTConfig::default());
        // Multi-table selection ⇒ at least one accepted round per extra
        // table, and the converge sweep unless everything was selected.
        assert!(out.stats.rounds as usize >= out.selected.len() - 1, "{:?}", out.stats);
        assert!(out.stats.rows_rescored > 0, "the cache was never filled: {:?}", out.stats);

        // The ablation and empty paths report zeroed counters.
        let cfg = GenTConfig { prune_with_traversal: false, ..Default::default() };
        let ablation = matrix_traversal(&source(), &figure3_candidates(), &cfg);
        assert_eq!(ablation.stats, crate::round::RoundStats::default());
        let empty = matrix_traversal(&source(), &[], &GenTConfig::default());
        assert_eq!(empty.stats.rounds, 0);
    }

    #[test]
    fn unalignable_candidates_skipped() {
        let z = Table::build("Z", &["q"], &[], vec![vec![V::str("zz")]]).unwrap();
        let out = matrix_traversal(&source(), &[z], &GenTConfig::default());
        assert!(out.originating.is_empty());
    }
}
