//! Cross-lake (iterative) reclamation — §VII: *"When a table can only be
//! partially reclaimed, we plan to investigate whether the originating
//! tables can be embedded in a new data lake and used to possibly generate
//! a better reclamation."*
//!
//! [`GenT::reclaim_across`] implements that loop: reclaim from the first
//! lake; carry the originating tables forward and *embed* them in the next
//! lake (they join the next lake's index as first-class tables); reclaim
//! again; keep whichever round scored best. Because the carried tables are
//! already renamed to the source's columns, they compose with the new
//! lake's fragments — a second lake holding the values the first lake
//! lacked turns a partial reclamation into a better (possibly perfect) one,
//! even though neither lake suffices alone.

use crate::pipeline::{GenT, GentError, ReclamationResult};
use gent_discovery::DataLake;
use gent_table::Table;

/// The outcome of reclaiming across several lakes.
#[derive(Debug, Clone)]
pub struct MultiLakeOutcome {
    /// One result per lake, in visit order. Round `i > 0` searched lake
    /// `i` *plus* the originating tables carried from rounds `< i`.
    pub rounds: Vec<ReclamationResult>,
    /// Index (into `rounds`) of the best round by EIS (ties → earliest).
    pub best: usize,
}

impl MultiLakeOutcome {
    /// The best round's result.
    pub fn best_result(&self) -> &ReclamationResult {
        &self.rounds[self.best]
    }

    /// Did a later round beat the first lake alone?
    pub fn improved_over_first(&self) -> bool {
        self.best > 0 && self.rounds[self.best].eis > self.rounds[0].eis + 1e-12
    }
}

impl GenT {
    /// Reclaim `source` across `lakes`, embedding each round's originating
    /// tables into the next lake (§VII's iterative-reclamation proposal).
    ///
    /// The carried tables keep their names; name collisions inside the
    /// temporary lake are suffixed by the lake's own deduplication. Errors
    /// if `lakes` is empty or the source has no key.
    pub fn reclaim_across(
        &self,
        source: &Table,
        lakes: &[&DataLake],
    ) -> Result<MultiLakeOutcome, GentError> {
        assert!(!lakes.is_empty(), "reclaim_across needs at least one lake");
        let mut rounds: Vec<ReclamationResult> = Vec::with_capacity(lakes.len());
        let mut carried: Vec<Table> = Vec::new();
        for lake in lakes {
            let result = if carried.is_empty() {
                self.reclaim(source, lake)?
            } else {
                // Embed the carried originating tables into this lake.
                let mut tables: Vec<Table> = lake.tables_iter().cloned().collect();
                tables.extend(carried.iter().cloned());
                let embedded = DataLake::from_tables(tables);
                self.reclaim(source, &embedded)?
            };
            // Carry forward every distinct originating table seen so far
            // (by name+shape; exact duplicates are dropped).
            for t in &result.originating {
                let dup = carried.iter().any(|c| c.name() == t.name() && c.rows() == t.rows());
                if !dup {
                    carried.push(t.clone());
                }
            }
            rounds.push(result);
        }
        let best = rounds
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.eis.partial_cmp(&b.1.eis).expect("finite EIS").then(b.0.cmp(&a.0))
                // ties → earliest round
            })
            .map(|(i, _)| i)
            .expect("at least one round");
        Ok(MultiLakeOutcome { rounds, best })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::Value as V;

    fn source() -> Table {
        Table::build(
            "S",
            &["id", "name", "age", "city"],
            &["id"],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27), V::str("Boston")],
                vec![V::Int(1), V::str("Brown"), V::Int(24), V::str("Berlin")],
            ],
        )
        .unwrap()
    }

    /// Lake A knows names+ages; lake B knows cities (keyed by name, so it
    /// only helps once A's id↔name table is embedded alongside it).
    fn lake_a() -> DataLake {
        DataLake::from_tables(vec![Table::build(
            "people",
            &["id", "name", "age"],
            &[],
            vec![
                vec![V::Int(0), V::str("Smith"), V::Int(27)],
                vec![V::Int(1), V::str("Brown"), V::Int(24)],
            ],
        )
        .unwrap()])
    }

    fn lake_b() -> DataLake {
        DataLake::from_tables(vec![Table::build(
            "cities",
            &["name", "city"],
            &[],
            vec![vec![V::str("Smith"), V::str("Boston")], vec![V::str("Brown"), V::str("Berlin")]],
        )
        .unwrap()])
    }

    #[test]
    fn second_lake_completes_a_partial_reclamation() {
        let s = source();
        let a = lake_a();
        let b = lake_b();
        let out = GenT::default().reclaim_across(&s, &[&a, &b]).unwrap();
        assert_eq!(out.rounds.len(), 2);
        // Lake A alone cannot supply the city column.
        assert!(out.rounds[0].eis < 1.0 - 1e-9, "round 0 EIS {}", out.rounds[0].eis);
        // Lake B + the carried people table reclaims perfectly.
        assert!(out.rounds[1].report.perfect, "round 1 EIS {}", out.rounds[1].eis);
        assert_eq!(out.best, 1);
        assert!(out.improved_over_first());
        assert!(out.best_result().report.perfect);
    }

    #[test]
    fn order_matters_but_best_round_is_tracked() {
        // Visiting B first: B alone reclaims nothing useful (no key
        // column), then A + carried tables reclaim at least as much as A
        // alone — the outcome still surfaces the best round.
        let s = source();
        let a = lake_a();
        let b = lake_b();
        let out = GenT::default().reclaim_across(&s, &[&b, &a]).unwrap();
        let best = out.best_result();
        let solo = GenT::default().reclaim(&s, &a).unwrap();
        assert!(best.eis + 1e-9 >= solo.eis);
    }

    #[test]
    fn single_lake_degenerates_to_plain_reclaim() {
        let s = source();
        let a = lake_a();
        let out = GenT::default().reclaim_across(&s, &[&a]).unwrap();
        let plain = GenT::default().reclaim(&s, &a).unwrap();
        assert_eq!(out.rounds.len(), 1);
        assert_eq!(out.best, 0);
        assert!((out.rounds[0].eis - plain.eis).abs() < 1e-12);
        assert!(!out.improved_over_first());
    }

    #[test]
    #[should_panic(expected = "at least one lake")]
    fn empty_lake_list_panics() {
        let _ = GenT::default().reclaim_across(&source(), &[]);
    }

    #[test]
    fn carried_tables_are_deduplicated() {
        // Visiting the same lake twice must not multiply the carried set.
        let s = source();
        let a = lake_a();
        let out = GenT::default().reclaim_across(&s, &[&a, &a, &a]).unwrap();
        assert_eq!(out.rounds.len(), 3);
        // EIS is stable across identical rounds.
        for r in &out.rounds {
            assert!((r.eis - out.rounds[0].eis).abs() < 1e-9);
        }
    }
}
