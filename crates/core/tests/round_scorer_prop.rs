//! Property tests pinning the incremental [`RoundScorer`] greedy selection
//! (cached round state, dirty-row rescoring, admissible upper bounds) to a
//! reference **full-rescan** loop over the nested-vector
//! `matrix::reference` implementation: selection order, per-round scores,
//! and the convergence round must agree bit-for-bit on random candidate
//! sets — including tight `max_aligned_per_key` caps, two- and
//! three-valued cells, and candidates with empty row ranges.

use gent_core::matrix::reference::NestedMatrix;
use gent_core::{AlignmentMatrix, RoundScorer};
use gent_table::{Table, Value};
use proptest::prelude::*;

/// A keyed source with 3 non-key columns and unique int keys.
fn keyed_source() -> impl Strategy<Value = Table> {
    (
        proptest::sample::subsequence((0..15i64).collect::<Vec<_>>(), 2..=8),
        proptest::collection::vec(proptest::collection::vec(0i64..9, 3), 8),
    )
        .prop_map(|(keys, cells)| {
            let rows: Vec<Vec<Value>> = keys
                .iter()
                .zip(cells.iter())
                .map(|(k, c)| {
                    vec![Value::Int(*k), Value::Int(c[0]), Value::Int(c[1]), Value::Int(c[2])]
                })
                .collect();
            Table::build("S", &["k", "a", "b", "c"], &["k"], rows).unwrap()
        })
}

/// Derive a candidate from the source via a mutation stream (same scheme
/// as `matrix_arena_prop.rs`): per source row 0–2 aligned copies — rows
/// that draw 0 copies give the candidate an **empty row range** there —
/// and per non-key cell keep / null / corrupt, exercising dominance
/// pruning, the cap, and conflict splitting.
fn make_candidate(source: &Table, muts: &[u8], name: &str) -> Table {
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut mi = 0usize;
    let mut next = || {
        let m = muts[mi % muts.len().max(1)];
        mi += 1;
        m
    };
    for srow in source.rows() {
        let copies = next() % 3;
        for _ in 0..copies {
            let mut row = Vec::with_capacity(srow.len());
            row.push(srow[0].clone()); // key preserved
            for v in &srow[1..] {
                row.push(match next() % 4 {
                    1 => Value::Null,
                    2 => match v {
                        Value::Int(x) => Value::Int(x + 100), // guaranteed mismatch
                        other => other.clone(),
                    },
                    _ => v.clone(),
                });
            }
            rows.push(row);
        }
    }
    Table::build(name, &["k", "a", "b", "c"], &[], rows).unwrap()
}

/// The pre-`RoundScorer` greedy loop, run against the nested reference
/// matrices with a *materialized* combine + net-score per candidate per
/// round — the executable spec of what a greedy round must select.
/// Returns (selection order incl. start, per-round accepted scores,
/// rounds run, final combined EIS).
fn reference_select(
    mats: &[NestedMatrix],
    start: usize,
    cap: usize,
) -> (Vec<usize>, Vec<f64>, u32, f64) {
    let mut chosen = vec![start];
    let mut combined = mats[start].clone();
    let mut most_correct = combined.net_score();
    let mut scores = Vec::new();
    let mut rounds = 0u32;
    loop {
        if chosen.len() == mats.len() {
            break;
        }
        rounds += 1;
        let mut best: Option<(usize, NestedMatrix, f64)> = None;
        for (i, m) in mats.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let c = combined.combine(m, cap);
            let score = c.net_score();
            let better = match &best {
                None => score > most_correct,
                Some((_, _, bs)) => score > *bs,
            };
            if better {
                best = Some((i, c, score));
            }
        }
        match best {
            Some((i, c, score)) if score > most_correct => {
                chosen.push(i);
                combined = c;
                most_correct = score;
            }
            _ => break,
        }
        scores.push(most_correct);
    }
    (chosen, scores, rounds, combined.eis())
}

/// The incremental loop under test, mirroring `matrix_traversal`'s use of
/// the scorer.
fn incremental_select(
    mats: &[AlignmentMatrix],
    start: usize,
    cap: usize,
) -> (Vec<usize>, Vec<f64>, u32, f64) {
    let mut scorer = RoundScorer::new(mats, start, cap);
    let mut chosen = vec![start];
    let mut scores = Vec::new();
    while chosen.len() < mats.len() {
        match scorer.select_next() {
            Some(i) => {
                chosen.push(i);
                scores.push(scorer.current_score());
            }
            None => break,
        }
    }
    let rounds = scorer.stats().rounds;
    (chosen, scores, rounds, scorer.into_combined().eis())
}

/// `matrix_traversal`'s GetStartTable tie-break, shared by both loops.
fn start_index(scores: &[f64]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite").then(b.0.cmp(&a.0)))
        .expect("non-empty")
        .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole invariant: RoundScorer's selections — order, accepted
    /// scores, convergence round, and final EIS — are bit-identical to the
    /// reference full-rescan loop, for tight caps and both cell encodings.
    #[test]
    fn selections_match_reference_full_rescan(
        s in keyed_source(),
        m1 in proptest::collection::vec(any::<u8>(), 48),
        m2 in proptest::collection::vec(any::<u8>(), 48),
        m3 in proptest::collection::vec(any::<u8>(), 48),
        m4 in proptest::collection::vec(any::<u8>(), 48),
        three_valued in any::<bool>(),
    ) {
        let cands = [
            make_candidate(&s, &m1, "C1"),
            make_candidate(&s, &m2, "C2"),
            make_candidate(&s, &m3, "C3"),
            make_candidate(&s, &m4, "C4"),
        ];
        // Cap 0 exercises the tolerated-but-clamped pathological config;
        // caps 1–2 force the keep-best truncation constantly.
        for cap in [0usize, 1, 2, 8] {
            let arena: Vec<AlignmentMatrix> = cands
                .iter()
                .map(|c| AlignmentMatrix::build(&s, c, three_valued, cap).unwrap())
                .collect();
            let nested: Vec<NestedMatrix> = cands
                .iter()
                .map(|c| NestedMatrix::build(&s, c, three_valued, cap).unwrap())
                .collect();
            let arena_start =
                start_index(&arena.iter().map(|m| m.net_score()).collect::<Vec<_>>());
            let nested_start =
                start_index(&nested.iter().map(|m| m.net_score()).collect::<Vec<_>>());
            prop_assert_eq!(arena_start, nested_start, "start pick diverged (cap {})", cap);

            let (ref_sel, ref_scores, ref_rounds, ref_eis) =
                reference_select(&nested, nested_start, cap);
            let (inc_sel, inc_scores, inc_rounds, inc_eis) =
                incremental_select(&arena, arena_start, cap);

            prop_assert_eq!(&inc_sel, &ref_sel, "selection order diverged (cap {})", cap);
            prop_assert_eq!(inc_rounds, ref_rounds, "round count diverged (cap {})", cap);
            prop_assert_eq!(
                inc_scores.len(), ref_scores.len(), "accepted rounds diverged (cap {})", cap
            );
            for (r, (a, b)) in inc_scores.iter().zip(&ref_scores).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "round {} accepted score diverged (cap {}): {} vs {}", r, cap, a, b
                );
            }
            prop_assert_eq!(
                inc_eis.to_bits(), ref_eis.to_bits(), "final EIS diverged (cap {})", cap
            );
        }
    }

    /// An all-empty-coverage candidate (no rows survive alignment) must be
    /// handled: never selected, never breaking the others' selections.
    #[test]
    fn empty_row_range_candidates_are_inert(
        s in keyed_source(),
        m1 in proptest::collection::vec(any::<u8>(), 48),
        m2 in proptest::collection::vec(any::<u8>(), 48),
    ) {
        let full = make_candidate(&s, &m1, "C1");
        // A candidate with the key column but no rows: every row range is
        // empty, so its combine_score equals the combined's own net score
        // and it can never strictly improve.
        let empty = Table::build("E", &["k", "a", "b", "c"], &[], Vec::new()).unwrap();
        let other = make_candidate(&s, &m2, "C2");
        let cap = 4usize;
        let cands = [full, empty, other];
        let arena: Vec<AlignmentMatrix> = cands
            .iter()
            .map(|c| AlignmentMatrix::build(&s, c, true, cap).unwrap())
            .collect();
        let nested: Vec<NestedMatrix> = cands
            .iter()
            .map(|c| NestedMatrix::build(&s, c, true, cap).unwrap())
            .collect();
        prop_assert_eq!(arena[1].keys_covered(), 0);
        let start = start_index(&arena.iter().map(|m| m.net_score()).collect::<Vec<_>>());
        let (ref_sel, _, _, _) = reference_select(&nested, start, cap);
        let (inc_sel, _, _, _) = incremental_select(&arena, start, cap);
        prop_assert_eq!(&inc_sel, &ref_sel);
        if start != 1 {
            prop_assert!(!inc_sel.contains(&1), "empty candidate selected: {:?}", inc_sel);
        }
    }
}
