//! Property tests pinning the flat-arena [`AlignmentMatrix`] to the
//! nested-vector reference implementation (`matrix::reference`): build,
//! combine, EIS, net score, and the fused combine–score kernel must agree
//! on random tables — bit-for-bit where the traversal compares floats.

use gent_core::matrix::reference::NestedMatrix;
use gent_core::AlignmentMatrix;
use gent_table::{Table, Value};
use proptest::prelude::*;

/// A keyed source with 3 non-key columns and unique int keys.
fn keyed_source() -> impl Strategy<Value = Table> {
    (
        proptest::sample::subsequence((0..15i64).collect::<Vec<_>>(), 2..=8),
        proptest::collection::vec(proptest::collection::vec(0i64..9, 3), 8),
    )
        .prop_map(|(keys, cells)| {
            let rows: Vec<Vec<Value>> = keys
                .iter()
                .zip(cells.iter())
                .map(|(k, c)| {
                    vec![Value::Int(*k), Value::Int(c[0]), Value::Int(c[1]), Value::Int(c[2])]
                })
                .collect();
            Table::build("S", &["k", "a", "b", "c"], &["k"], rows).unwrap()
        })
}

/// A wide keyed source — 1 key + 39 non-key columns, so every tuple spans
/// two packed `u64` words and the lane kernels cross the word boundary
/// (plus a padded tail).
fn wide_source() -> impl Strategy<Value = Table> {
    (
        proptest::sample::subsequence((0..10i64).collect::<Vec<_>>(), 2..=5),
        proptest::collection::vec(proptest::collection::vec(0i64..9, 39), 5),
    )
        .prop_map(|(keys, cells)| {
            let names: Vec<String> =
                std::iter::once("k".to_string()).chain((1..40).map(|j| format!("c{j}"))).collect();
            let cols: Vec<&str> = names.iter().map(String::as_str).collect();
            let rows: Vec<Vec<Value>> = keys
                .iter()
                .zip(cells.iter())
                .map(|(k, c)| {
                    std::iter::once(Value::Int(*k))
                        .chain(c.iter().map(|&v| Value::Int(v)))
                        .collect()
                })
                .collect();
            Table::build("W", &cols, &["k"], rows).unwrap()
        })
}

/// Derive a candidate from the source via a mutation stream: per source
/// row, 0–2 aligned copies; per non-key cell, keep / null / corrupt. The
/// corruptions produce `-1`s (three-valued conflicts), the copies produce
/// multi-tuple rows — together they exercise dominance pruning, the cap,
/// and conflict-splitting in `Combine`. Column names are taken from the
/// source, so this works for any source width.
fn make_candidate(source: &Table, muts: &[u8], name: &str) -> Table {
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut mi = 0usize;
    let mut next = || {
        let m = muts[mi % muts.len().max(1)];
        mi += 1;
        m
    };
    for srow in source.rows() {
        let copies = next() % 3;
        for _ in 0..copies {
            let mut row = Vec::with_capacity(srow.len());
            row.push(srow[0].clone()); // key preserved
            for v in &srow[1..] {
                row.push(match next() % 4 {
                    1 => Value::Null,
                    2 => match v {
                        Value::Int(x) => Value::Int(x + 100), // guaranteed mismatch
                        other => other.clone(),
                    },
                    _ => v.clone(),
                });
            }
            rows.push(row);
        }
    }
    let names: Vec<&str> = source.schema().columns().collect();
    Table::build(name, &names, &[], rows).unwrap()
}

/// The arena's aligned tuples of one row, as owned vectors.
fn arena_row(m: &AlignmentMatrix, i: usize) -> Vec<Vec<i8>> {
    m.aligned(i).collect()
}

/// Assert the two representations agree tuple-for-tuple and score-for-score.
fn assert_same(source: &Table, arena: &AlignmentMatrix, nested: &NestedMatrix) {
    for i in 0..source.n_rows() {
        assert_eq!(arena_row(arena, i), nested.aligned(i).to_vec(), "row {i} tuples diverge");
    }
    assert_eq!(arena.keys_covered(), nested.keys_covered());
    assert_eq!(arena.eis().to_bits(), nested.eis().to_bits(), "eis diverges");
    assert_eq!(arena.net_score().to_bits(), nested.net_score().to_bits(), "net_score diverges");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Build agrees on random sources/candidates, in both encodings and
    /// with a tight cap (cap = 2 forces the keep-best-scores truncation).
    #[test]
    fn build_matches_reference(
        s in keyed_source(),
        muts in proptest::collection::vec(any::<u8>(), 48),
        three_valued in any::<bool>(),
    ) {
        let cand = make_candidate(&s, &muts, "C");
        // Cap 0 exercises the tolerated-but-clamped pathological config
        // (both representations clamp to 1); cap 2 the truncation path.
        for cap in [0usize, 1, 2, 8] {
            let arena = AlignmentMatrix::build(&s, &cand, three_valued, cap).unwrap();
            let nested = NestedMatrix::build(&s, &cand, three_valued, cap).unwrap();
            assert_same(&s, &arena, &nested);
        }
    }

    /// Combine agrees — including chained combines, which feed each round's
    /// pruned output into the next.
    #[test]
    fn combine_matches_reference(
        s in keyed_source(),
        m1 in proptest::collection::vec(any::<u8>(), 48),
        m2 in proptest::collection::vec(any::<u8>(), 48),
        m3 in proptest::collection::vec(any::<u8>(), 48),
    ) {
        let cap = 4usize; // small enough for random inputs to hit it
        let (c1, c2, c3) = (
            make_candidate(&s, &m1, "C1"),
            make_candidate(&s, &m2, "C2"),
            make_candidate(&s, &m3, "C3"),
        );
        let a1 = AlignmentMatrix::build(&s, &c1, true, cap).unwrap();
        let a2 = AlignmentMatrix::build(&s, &c2, true, cap).unwrap();
        let a3 = AlignmentMatrix::build(&s, &c3, true, cap).unwrap();
        let n1 = NestedMatrix::build(&s, &c1, true, cap).unwrap();
        let n2 = NestedMatrix::build(&s, &c2, true, cap).unwrap();
        let n3 = NestedMatrix::build(&s, &c3, true, cap).unwrap();
        let a12 = a1.combine(&a2, cap);
        let n12 = n1.combine(&n2, cap);
        assert_same(&s, &a12, &n12);
        let a123 = a12.combine(&a3, cap);
        let n123 = n12.combine(&n3, cap);
        assert_same(&s, &a123, &n123);
    }

    /// The fused kernel is bit-equal to materialize-then-score, against
    /// both the arena's own combine and the reference's — the invariant
    /// that keeps the greedy traversal's selections unchanged.
    #[test]
    fn combine_score_matches_materialization(
        s in keyed_source(),
        m1 in proptest::collection::vec(any::<u8>(), 48),
        m2 in proptest::collection::vec(any::<u8>(), 48),
    ) {
        let (c1, c2) = (make_candidate(&s, &m1, "C1"), make_candidate(&s, &m2, "C2"));
        for cap in [0usize, 1, 2, 8] {
            let a1 = AlignmentMatrix::build(&s, &c1, true, cap).unwrap();
            let a2 = AlignmentMatrix::build(&s, &c2, true, cap).unwrap();
            let fused = a1.combine_score(&a2);
            prop_assert_eq!(fused.to_bits(), a1.combine(&a2, cap).net_score().to_bits());
            let n1 = NestedMatrix::build(&s, &c1, true, cap).unwrap();
            let n2 = NestedMatrix::build(&s, &c2, true, cap).unwrap();
            prop_assert_eq!(fused.to_bits(), n1.combine(&n2, cap).net_score().to_bits());
            // And symmetrically (coverage gaps flip which side passes
            // through verbatim).
            prop_assert_eq!(
                a2.combine_score(&a1).to_bits(),
                n2.combine(&n1, cap).net_score().to_bits()
            );
        }
    }

    /// Tuples wider than one packed word (40 columns → 2 words, padded
    /// tail): build, combine, fused scoring, and the tight cap must all
    /// agree with the reference across the word boundary.
    #[test]
    fn wide_tuples_match_reference(
        s in wide_source(),
        m1 in proptest::collection::vec(any::<u8>(), 96),
        m2 in proptest::collection::vec(any::<u8>(), 96),
    ) {
        let (c1, c2) = (make_candidate(&s, &m1, "C1"), make_candidate(&s, &m2, "C2"));
        for cap in [1usize, 2, 8] {
            let a1 = AlignmentMatrix::build(&s, &c1, true, cap).unwrap();
            let a2 = AlignmentMatrix::build(&s, &c2, true, cap).unwrap();
            let n1 = NestedMatrix::build(&s, &c1, true, cap).unwrap();
            let n2 = NestedMatrix::build(&s, &c2, true, cap).unwrap();
            assert_same(&s, &a1, &n1);
            let a12 = a1.combine(&a2, cap);
            let n12 = n1.combine(&n2, cap);
            assert_same(&s, &a12, &n12);
            prop_assert_eq!(
                a1.combine_score(&a2).to_bits(),
                n1.combine(&n2, cap).net_score().to_bits()
            );
        }
    }

    /// A candidate with *no* aligned rows (empty coverage): build, combine
    /// in both directions, and fused scoring stay identical to the
    /// reference — the all-uncovered side must pass the other through
    /// verbatim.
    #[test]
    fn empty_coverage_matches_reference(
        s in keyed_source(),
        m1 in proptest::collection::vec(any::<u8>(), 48),
    ) {
        let covered = make_candidate(&s, &m1, "C");
        let names: Vec<&str> = s.schema().columns().collect();
        let empty = Table::build("E", &names, &[], vec![]).unwrap();
        for cap in [1usize, 4] {
            let ac = AlignmentMatrix::build(&s, &covered, true, cap).unwrap();
            let ae = AlignmentMatrix::build(&s, &empty, true, cap).unwrap();
            let nc = NestedMatrix::build(&s, &covered, true, cap).unwrap();
            let ne = NestedMatrix::build(&s, &empty, true, cap).unwrap();
            assert_same(&s, &ae, &ne);
            assert_same(&s, &ae.combine(&ac, cap), &ne.combine(&nc, cap));
            assert_same(&s, &ac.combine(&ae, cap), &nc.combine(&ne, cap));
            prop_assert_eq!(
                ae.combine_score(&ac).to_bits(),
                ne.combine(&nc, cap).net_score().to_bits()
            );
            prop_assert_eq!(
                ac.combine_score(&ae).to_bits(),
                nc.combine(&ne, cap).net_score().to_bits()
            );
        }
    }
}
