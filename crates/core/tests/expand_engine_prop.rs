//! Property test pinning the memoized best-first Expand engine to the
//! reference DFS + left-fold implementation (`expand::reference`): on random
//! candidate pools the new engine must return exactly the reference's output
//! with canonical duplicates removed (first occurrence kept), and the dedup
//! counter must account for every dropped table.

use std::collections::HashSet;

use gent_core::expand::{expand_with_stats, reference};
use gent_table::{Table, Value};
use proptest::prelude::*;

/// Canonical relational form: name ignored, columns sorted, rows reordered
/// to the sorted-column order and then sorted. Mirrors the engine's dedup
/// key so the test filter drops exactly what the engine drops.
fn canon(t: &Table) -> (Vec<String>, Vec<Vec<Value>>) {
    let names: Vec<String> = t.schema().columns().map(str::to_string).collect();
    let mut order: Vec<usize> = (0..names.len()).collect();
    order.sort_by(|&a, &b| names[a].cmp(&names[b]));
    let sorted_names: Vec<String> = order.iter().map(|&j| names[j].clone()).collect();
    let mut rows: Vec<Vec<Value>> =
        t.rows().iter().map(|r| order.iter().map(|&j| r[j].clone()).collect()).collect();
    rows.sort();
    (sorted_names, rows)
}

/// The reference output with expansion duplicates removed the way the new
/// engine removes them: pass-throughs (tables that already carry the key)
/// are never deduplicated, expansions are keyed on canonical form, first
/// occurrence wins.
fn dedup_reference(tables: Vec<Table>) -> (Vec<Table>, u64) {
    let mut seen: HashSet<(Vec<String>, Vec<Vec<Value>>)> = HashSet::new();
    let mut dropped = 0u64;
    let kept = tables
        .into_iter()
        .filter(|t| {
            if !t.name().contains("+expanded") {
                return true;
            }
            if seen.insert(canon(t)) {
                true
            } else {
                dropped += 1;
                false
            }
        })
        .collect();
    (kept, dropped)
}

fn as_relation(t: &Table) -> (String, Vec<String>, Vec<Vec<Value>>) {
    (t.name().to_string(), t.schema().columns().map(str::to_string).collect(), t.rows().to_vec())
}

/// A pool of 3–6 small tables over a 5-column alphabet. Overlapping column
/// names create join edges; overlapping small-int values make those joins
/// non-empty; a random subset of tables carries the key column, so some
/// candidates are ends and others must path-search toward them.
fn pool() -> impl Strategy<Value = Vec<Table>> {
    let alphabet = ["k", "x", "y", "z", "w"];
    let one = (
        proptest::sample::subsequence((0..alphabet.len()).collect::<Vec<_>>(), 2..=3),
        proptest::collection::vec(proptest::collection::vec(0i64..5, 3), 1..=4),
    )
        .prop_map(move |(cols, cells)| (cols, cells));
    proptest::collection::vec(one, 3..=6).prop_map(move |specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (cols, cells))| {
                let names: Vec<&str> = cols.iter().map(|&c| alphabet[c]).collect();
                let rows: Vec<Vec<Value>> = cells
                    .into_iter()
                    .map(|r| r[..names.len()].iter().map(|&v| Value::Int(v)).collect())
                    .collect();
                Table::build(&format!("T{i}"), &names, &[], rows).unwrap()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The best-first, memoized engine returns the reference output with
    /// canonical duplicates removed — same tables, same names, same column
    /// and row order — and its dedup counter matches the filter exactly.
    #[test]
    fn engine_matches_deduplicated_reference(
        cands in pool(),
        depth in 1usize..=3,
    ) {
        let (new, stats) = expand_with_stats(&cands, &["k"], depth);
        let old = reference::expand(&cands, &["k"], depth);
        let (expected, dropped) = dedup_reference(old);
        prop_assert_eq!(stats.dedup_dropped, dropped, "dedup counter diverges");
        prop_assert_eq!(new.len(), expected.len());
        for (n, e) in new.iter().zip(expected.iter()) {
            prop_assert_eq!(as_relation(n), as_relation(e));
        }
    }
}
