//! Property tests on the Gen-T core: matrix combination, traversal
//! guarantees, and integration invariants, over randomly fragmented and
//! degraded lakes.

use gent_core::{integrate, matrix_traversal, AlignmentMatrix, GenT, GenTConfig};
use gent_discovery::DataLake;
use gent_metrics::eis;
use gent_table::{Table, Value};
use proptest::prelude::*;

/// A keyed source with 3 non-key columns and unique int keys.
fn keyed_source() -> impl Strategy<Value = Table> {
    (
        proptest::sample::subsequence((0..15i64).collect::<Vec<_>>(), 2..=8),
        proptest::collection::vec(proptest::collection::vec(0i64..9, 3), 8),
    )
        .prop_map(|(keys, cells)| {
            let rows: Vec<Vec<Value>> = keys
                .iter()
                .zip(cells.iter())
                .map(|(k, c)| {
                    vec![Value::Int(*k), Value::Int(c[0]), Value::Int(c[1]), Value::Int(c[2])]
                })
                .collect();
            Table::build("S", &["k", "a", "b", "c"], &["k"], rows).unwrap()
        })
}

/// Split `source` into column fragments (each keeps the key), then degrade
/// each fragment by nulling cells where the mask says so.
fn fragments(source: &Table, null_mask: &[bool]) -> Vec<Table> {
    let col_groups: [&[usize]; 3] = [&[0, 1], &[0, 2], &[0, 1, 2, 3]];
    let mut out = Vec::new();
    let mut mask_i = 0usize;
    for (gi, cols) in col_groups.iter().enumerate() {
        let mut t = source.take_columns(cols, &format!("frag{gi}")).unwrap();
        t.schema_mut().set_key(std::iter::empty::<&str>()).unwrap();
        let rows: Vec<Vec<Value>> = t
            .rows()
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(j, v)| {
                        let nullify = j != 0 && {
                            let bit = null_mask
                                .get(mask_i % null_mask.len().max(1))
                                .copied()
                                .unwrap_or(false);
                            mask_i += 1;
                            bit
                        };
                        if nullify {
                            Value::Null
                        } else {
                            v.clone()
                        }
                    })
                    .collect()
            })
            .collect();
        out.push(Table::from_rows(t.name(), t.schema().clone(), rows).unwrap());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Combining matrices never loses key coverage and never lowers the
    /// net score below the better input (the greedy traversal invariant).
    #[test]
    fn combine_is_monotone(
        s in keyed_source(),
        nulls in proptest::collection::vec(any::<bool>(), 24),
    ) {
        let frags = fragments(&s, &nulls);
        let cfg = GenTConfig::default();
        let m0 = AlignmentMatrix::build(&s, &frags[0], cfg.three_valued, cfg.max_aligned_per_key)
            .expect("fragment carries the key");
        let m1 = AlignmentMatrix::build(&s, &frags[1], cfg.three_valued, cfg.max_aligned_per_key)
            .expect("fragment carries the key");
        let combined = m0.combine(&m1, cfg.max_aligned_per_key);
        prop_assert!(combined.keys_covered() >= m0.keys_covered().max(m1.keys_covered()));
        prop_assert!(combined.eis() + 1e-9 >= m0.eis().max(m1.eis()),
            "combined {} vs {} / {}", combined.eis(), m0.eis(), m1.eis());
    }

    /// Traversal returns a subset of the candidates, and integrating its
    /// choice scores at least as well as integrating any single candidate.
    #[test]
    fn traversal_beats_single_candidates(
        s in keyed_source(),
        nulls in proptest::collection::vec(any::<bool>(), 24),
    ) {
        let frags = fragments(&s, &nulls);
        let cfg = GenTConfig::default();
        let outcome = matrix_traversal(&s, &frags, &cfg);
        prop_assert!(outcome.originating.len() <= frags.len());

        let reclaimed = integrate(&outcome.originating, &s, &cfg);
        let chosen_eis = eis(&s, &reclaimed);
        for f in &frags {
            let single = integrate(std::slice::from_ref(f), &s, &cfg);
            prop_assert!(chosen_eis + 1e-9 >= eis(&s, &single),
                "traversal EIS {} < single-table EIS {} for {}",
                chosen_eis, eis(&s, &single), f.name());
        }
    }

    /// Integration output always carries the source schema (same columns,
    /// same order) and no labeled nulls escape.
    #[test]
    fn integration_output_is_source_shaped(
        s in keyed_source(),
        nulls in proptest::collection::vec(any::<bool>(), 24),
    ) {
        let frags = fragments(&s, &nulls);
        let cfg = GenTConfig::default();
        let reclaimed = integrate(&frags, &s, &cfg);
        prop_assert_eq!(
            reclaimed.schema().columns().collect::<Vec<_>>(),
            s.schema().columns().collect::<Vec<_>>()
        );
        for row in reclaimed.rows() {
            for v in row {
                prop_assert!(!matches!(v, Value::LabeledNull(_)), "labeled null escaped");
            }
        }
    }

    /// The full pipeline on undamaged fragments reclaims perfectly, and
    /// never panics on damaged ones.
    #[test]
    fn pipeline_on_clean_fragments_is_perfect(s in keyed_source()) {
        let frags = fragments(&s, &[false]);
        let lake = DataLake::from_tables(frags);
        let res = GenT::default().reclaim(&s, &lake).unwrap();
        prop_assert!(res.report.perfect, "EIS {}\n{}", res.eis, res.reclaimed);
    }

    /// EIS after integration is never *hurt* by the traversal pruning
    /// compared to integrating everything (the ALITE-PS comparison).
    #[test]
    fn pruning_does_not_hurt_eis(
        s in keyed_source(),
        nulls in proptest::collection::vec(any::<bool>(), 24),
    ) {
        let frags = fragments(&s, &nulls);
        let pruned_cfg = GenTConfig::default();
        let all_cfg = GenTConfig { prune_with_traversal: false, ..GenTConfig::default() };
        let with_pruning = GenT::new(pruned_cfg).reclaim_from_candidates(&s, &frags).unwrap();
        let without = GenT::new(all_cfg).reclaim_from_candidates(&s, &frags).unwrap();
        prop_assert!(with_pruning.eis + 1e-9 >= without.eis - 1e-9,
            "pruned EIS {} vs unpruned {}", with_pruning.eis, without.eis);
    }
}
