//! Hostile-snapshot hardening for the v3 open path: per-section checksums,
//! delta frames, degraded (quarantining) opens, and fsck.
//!
//! The v3 contract sharpens the v2 one. Corruption is detected by the
//! checksum *scoped to what it hit* — the directory's meta checksum, a
//! section's entry checksum (at open for strtab/index, at first force for
//! tables/LSH), or a frame's payload checksum — so these properties assert
//! three things per injected corruption:
//!
//! * a **normal** open that forces everything returns a structured
//!   [`StoreError`] — never a panic, never an out-of-bounds slice;
//! * a **degraded** open keeps serving: table/frame corruption is
//!   quarantined (stable table numbering, postings filtered), LSH
//!   corruption is dropped, and only strtab/index/directory corruption —
//!   the structures a lake cannot exist without — still hard-fails;
//! * **fsck detects 100%** of injected corruptions, locating the right
//!   structure.
//!
//! The one deliberate exception: flipping the *final commit marker* is
//! byte-for-byte indistinguishable from a crash mid-append, so it is
//! recovered as a torn tail (frame dropped, no error) — asserted
//! separately.

use std::ops::Range;
use std::sync::OnceLock;

use gent_discovery::{DataLake, LshConfig, LshEnsembleIndex};
use gent_store::format::HEADER_LEN;
use gent_store::snapshot::{self, LoadedLake};
use gent_store::{fsck, SectionDirV3, SnapshotHeader, StoreError};
use gent_table::view::LakeBuf;
use gent_table::{Table, Value as V};
use proptest::prelude::*;

/// The deterministic victim: a 3-table base with LSH bands plus two
/// committed delta frames, one table each. Every table carries a sentinel
/// value so quarantine filtering is observable through the index.
struct V3Snapshot {
    bytes: Vec<u8>,
    dir: SectionDirV3,
    /// Where the base body ends and the frame log begins.
    body_end: usize,
    /// Byte range of each committed frame.
    frames: Vec<Range<usize>>,
}

fn table_with_sentinel(name: &str, sentinel: &str, seed: i64) -> Table {
    let rows = (0..12)
        .map(|i| {
            vec![
                V::Int(seed + i),
                V::str(if i == 0 { sentinel.into() } else { format!("{name}_{i}") }),
            ]
        })
        .collect();
    Table::build(name, &["id", "val"], &["id"], rows).unwrap()
}

fn victim() -> &'static V3Snapshot {
    static CELL: OnceLock<V3Snapshot> = OnceLock::new();
    CELL.get_or_init(|| {
        let tables: Vec<Table> = (0..3)
            .map(|k| table_with_sentinel(&format!("t{k}"), &format!("only_t{k}"), k * 100))
            .collect();
        let lake = DataLake::from_tables(tables);
        let lsh = LshEnsembleIndex::build(&lake, LshConfig::default());
        let path =
            std::env::temp_dir().join(format!("gent-hostile-v3-{}.gentlake", std::process::id()));
        snapshot::save(&path, &lake, Some(&lsh)).expect("save v3");
        let base_len = std::fs::metadata(&path).unwrap().len() as usize;
        gent_store::append_tables(&path, &[table_with_sentinel("fa", "only_fa", 1000)]).unwrap();
        let len_a = std::fs::metadata(&path).unwrap().len() as usize;
        gent_store::append_tables(&path, &[table_with_sentinel("fb", "only_fb", 2000)]).unwrap();
        let len_b = std::fs::metadata(&path).unwrap().len() as usize;
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        let header = SnapshotHeader::decode(&bytes).unwrap();
        let (dir, body_end) =
            SectionDirV3::decode(&bytes, header.n_tables as usize, header.has_lsh()).unwrap();
        assert_eq!(body_end, base_len, "frames start where the base file ended");
        V3Snapshot { bytes, dir, body_end, frames: vec![base_len..len_a, len_a..len_b] }
    })
}

/// Open normally and force every deferred decode — lazy table cells, LSH
/// bands, the deferred index materialization, every probe through the
/// overlay.
fn force_all(bytes: Vec<u8>) -> Result<LoadedLake, StoreError> {
    let loaded = snapshot::load_buf(LakeBuf::new(bytes))?;
    loaded.lake.decode_all(2).map_err(StoreError::from)?;
    loaded.lsh.force()?;
    loaded.lake.ensure_index().map_err(StoreError::Corrupt)?;
    for (v, _) in loaded.lake.index_entries() {
        let _ = loaded.lake.postings(&v);
    }
    Ok(loaded)
}

/// Degraded open, also forced end to end (quarantined placeholders decode
/// as empty tables, so forcing must succeed whenever the open does).
fn force_degraded(bytes: Vec<u8>) -> Result<LoadedLake, StoreError> {
    let loaded = snapshot::load_buf_degraded(LakeBuf::new(bytes))?;
    loaded.lake.decode_all(2).map_err(StoreError::from)?;
    loaded.lsh.force()?;
    loaded.lake.ensure_index().map_err(StoreError::Corrupt)?;
    for (v, _) in loaded.lake.index_entries() {
        let _ = loaded.lake.postings(&v);
    }
    Ok(loaded)
}

/// Run fsck over mutated bytes (fsck reads a file, so stage one).
fn fsck_bytes(bytes: &[u8]) -> gent_store::FsckReport {
    let path = std::env::temp_dir().join(format!(
        "gent-hostile-v3-fsck-{}-{:?}.gentlake",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, bytes).unwrap();
    let report = fsck(&path).expect("fsck is I/O-error-free on an existing file");
    let _ = std::fs::remove_file(&path);
    report
}

fn flip(bytes: &mut [u8], pos: usize, bit: u8) {
    bytes[pos] ^= 1 << bit;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A flip anywhere in the header or directory (including the stored
    /// per-section checksums) is caught by the meta checksum — or, for the
    /// version/magic words, by header validation — in *both* open modes,
    /// and fsck reports it.
    #[test]
    fn header_or_dir_flip_is_rejected_everywhere(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let v = victim();
        let meta_end = HEADER_LEN + SectionDirV3::encoded_len(3);
        let pos = ((meta_end - 1) as f64 * pos_frac) as usize;
        let mut bytes = v.bytes.clone();
        flip(&mut bytes, pos, bit);
        prop_assert!(force_all(bytes.clone()).is_err(), "flip at {pos} bit {bit} undetected");
        prop_assert!(force_degraded(bytes.clone()).is_err(), "degraded open must also reject");
        prop_assert!(!fsck_bytes(&bytes).is_clean(), "fsck missed flip at {pos} bit {bit}");
    }

    /// A flip inside any body section is detected when that section is
    /// forced (normal open), quarantined or dropped where the format
    /// allows it (degraded open), and reported by fsck.
    #[test]
    fn section_flip_detected_quarantined_and_fscked(
        section in 0usize..5,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let v = victim();
        // 0 = strtab, 1 = index, 2..=4 = tables 0..=2 (the LSH section has
        // its own property below — degraded handling differs).
        let entry = match section {
            0 => &v.dir.strtab,
            1 => &v.dir.index,
            k => &v.dir.tables[k - 2],
        };
        let range = entry.range.range();
        prop_assume!(!range.is_empty());
        let pos = range.start + ((range.len() - 1) as f64 * pos_frac) as usize;
        let mut bytes = v.bytes.clone();
        flip(&mut bytes, pos, bit);

        prop_assert!(force_all(bytes.clone()).is_err(), "flip in section {section} undetected");
        prop_assert!(!fsck_bytes(&bytes).is_clean(), "fsck missed a flip in section {section}");

        let degraded = force_degraded(bytes);
        if section < 2 {
            // strtab / index: nothing to degrade to.
            prop_assert!(degraded.is_err(), "strtab/index corruption must hard-fail");
        } else {
            let table = section - 2;
            let loaded = degraded.expect("table corruption must quarantine, not fail");
            prop_assert_eq!(loaded.lake.len(), 5, "placeholders keep table numbering stable");
            prop_assert_eq!(
                loaded.quarantined.iter().map(|q| q.table).collect::<Vec<_>>(),
                vec![table]
            );
            // The quarantined table is gone from the index; its peers and
            // the frames are not.
            prop_assert!(loaded.lake.postings(&V::str(format!("only_t{table}"))).is_empty());
            for other in (0..3).filter(|&o| o != table) {
                prop_assert!(!loaded.lake.postings(&V::str(format!("only_t{other}"))).is_empty());
            }
            prop_assert!(!loaded.lake.postings(&V::str("only_fa")).is_empty());
            prop_assert!(!loaded.lake.postings(&V::str("only_fb")).is_empty());
        }
    }

    /// A flip in the LSH section errors when the bands are forced, while a
    /// degraded open drops the bands (no quarantine — tables are intact)
    /// and keeps serving exact lookups.
    #[test]
    fn lsh_flip_forces_error_or_degrades_to_no_lsh(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let v = victim();
        let range = v.dir.lsh.as_ref().expect("victim has LSH").range.range();
        let pos = range.start + ((range.len() - 1) as f64 * pos_frac) as usize;
        let mut bytes = v.bytes.clone();
        flip(&mut bytes, pos, bit);

        prop_assert!(force_all(bytes.clone()).is_err(), "flip in LSH section undetected");
        prop_assert!(!fsck_bytes(&bytes).is_clean(), "fsck missed a flip in the LSH section");

        let loaded = force_degraded(bytes).expect("LSH corruption must degrade, not fail");
        prop_assert!(loaded.quarantined.is_empty(), "no table is quarantined for a bad LSH");
        prop_assert!(loaded.lsh.force().unwrap().is_none(), "bands dropped");
        prop_assert!(!loaded.lake.postings(&V::str("only_t1")).is_empty());
    }

    /// A flip anywhere in a committed frame — magic, length, payload,
    /// checksum, or a mid-log commit marker; everything except the *final*
    /// marker — is rejected by the normal open, degrades without data
    /// invention (quarantine or a shorter frame log, never a silently
    /// wrong table), and is reported by fsck.
    #[test]
    fn frame_flip_detected_quarantined_and_fscked(
        frame in 0usize..2,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let v = victim();
        let full = v.frames[frame].clone();
        // The final 8 bytes of the log are the torn-tail exception.
        let end = if frame == v.frames.len() - 1 { full.end - 8 } else { full.end };
        let pos = full.start + ((end - full.start - 1) as f64 * pos_frac) as usize;
        let mut bytes = v.bytes.clone();
        flip(&mut bytes, pos, bit);

        prop_assert!(force_all(bytes.clone()).is_err(), "flip in frame {frame} undetected");
        prop_assert!(!fsck_bytes(&bytes).is_clean(), "fsck missed a flip in frame {frame}");

        let loaded = force_degraded(bytes).expect("frame corruption must degrade, not fail");
        // Either the frame's tables were quarantined in place, or the
        // corruption made the log unwalkable past it and the tail was
        // dropped — both preserve "no invented data"; what cannot happen
        // is a full-size lake with an empty quarantine list.
        prop_assert!(
            !(loaded.quarantined.is_empty() && loaded.lake.len() == 5),
            "frame {frame} corruption vanished: {} tables, {:?} quarantined",
            loaded.lake.len(),
            loaded.quarantined
        );
        // The base is never collateral damage.
        for k in 0..3 {
            prop_assert!(!loaded.lake.postings(&V::str(format!("only_t{k}"))).is_empty());
        }
    }

    /// Truncation anywhere: inside the base it is rejected (the directory
    /// bounds-check catches it); inside the frame log it recovers exactly
    /// the committed prefix. Never a panic.
    #[test]
    fn truncation_rejected_or_recovered(keep_frac in 0.0f64..1.0) {
        let v = victim();
        let keep = ((v.bytes.len() - 1) as f64 * keep_frac) as usize;
        let result = force_all(v.bytes[..keep].to_vec());
        if keep < v.body_end {
            prop_assert!(result.is_err(), "truncation to {keep} inside the base went undetected");
        } else {
            let loaded = result.expect("truncation inside the frame log must recover");
            let expect = 3
                + usize::from(keep >= v.frames[0].end)
                + usize::from(keep >= v.frames[1].end);
            prop_assert_eq!(loaded.lake.len(), expect, "committed prefix at {keep}");
            prop_assert!(loaded.quarantined.is_empty(), "a torn tail is not corruption");
        }
    }
}

/// The documented exception: a flipped final commit marker is
/// indistinguishable from a crash between the body fsync and the marker
/// write, so recovery treats the last frame as torn — dropped without
/// error in both open modes, flagged (but clean) under fsck.
#[test]
fn tail_marker_flip_is_recovered_as_torn_tail() {
    let v = victim();
    let mut bytes = v.bytes.clone();
    let last = bytes.len() - 1;
    flip(&mut bytes, last, 3);

    let loaded = force_all(bytes.clone()).expect("torn tail must load");
    assert_eq!(loaded.lake.len(), 4, "frame A survives, frame B is the torn tail");
    assert_eq!(loaded.n_frames, 1);
    assert!(loaded.quarantined.is_empty());
    assert!(!loaded.lake.postings(&V::str("only_fa")).is_empty());
    assert!(loaded.lake.postings(&V::str("only_fb")).is_empty());

    let report = fsck_bytes(&bytes);
    assert!(report.is_clean(), "a torn tail is recoverable, not corrupt: {:?}", report.problems);
    assert!(report.torn_tail);
    assert_eq!(report.n_frames, 1);
}

/// fsck on the pristine victim: clean, correct inventory.
#[test]
fn fsck_reports_clean_on_pristine_v3() {
    let v = victim();
    let report = fsck_bytes(&v.bytes);
    assert!(report.is_clean(), "{:?}", report.problems);
    assert_eq!(report.version, 3);
    assert_eq!(report.n_tables, 3);
    assert_eq!(report.n_frames, 2);
    assert!(!report.torn_tail);
}

/// fsck --repair end to end: corrupt one base table and one frame, repair,
/// and the rewritten file is clean, still five tables, with exactly the
/// corrupted table quarantined-empty and the intact frame folded in.
#[test]
fn fsck_repair_rewrites_a_clean_base() {
    let v = victim();
    let mut bytes = v.bytes.clone();
    let t1 = v.dir.tables[1].range.range();
    flip(&mut bytes, t1.start + t1.len() / 2, 0);
    let f0 = v.frames[0].clone();
    flip(&mut bytes, f0.start + (f0.end - f0.start) / 2, 0);

    let path = std::env::temp_dir()
        .join(format!("gent-hostile-v3-repair-{}.gentlake", std::process::id()));
    std::fs::write(&path, &bytes).unwrap();
    assert!(!fsck(&path).unwrap().is_clean());

    let quarantined = gent_store::fsck_repair(&path).expect("repair");
    assert!(quarantined.iter().any(|q| q.table == 1), "{quarantined:?}");

    let report = fsck(&path).unwrap();
    assert!(report.is_clean(), "repaired file must be clean: {:?}", report.problems);
    assert_eq!(report.n_frames, 0, "repair compacts the log");
    let loaded = snapshot::load(&path).unwrap();
    assert!(loaded.quarantined.is_empty());
    assert!(loaded.lake.postings(&V::str("only_t1")).is_empty(), "lost rows stay lost");
    assert!(!loaded.lake.postings(&V::str("only_t0")).is_empty());
    assert!(!loaded.lake.postings(&V::str("only_fb")).is_empty(), "intact frame folded in");
    let _ = std::fs::remove_file(&path);
}
