//! Property tests for the binary codec and the snapshot container:
//! arbitrary tables survive `Table → bytes → Table` bit-exactly, and
//! arbitrary lakes reopen from snapshots with identical retrieval state.

use gent_discovery::DataLake;
use gent_store::snapshot;
use gent_table::binary::{decode_table, encode_table};
use gent_table::{Table, Value};
use proptest::prelude::*;

/// Any cell value, including the nasty ones: labeled nulls, NaN, negative
/// zero, huge ints, quoted/unicode strings.
fn any_cell() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => Just(Value::Null),
        1 => (0u64..40).prop_map(Value::LabeledNull),
        1 => any::<bool>().prop_map(Value::Bool),
        3 => (-1_000_000i64..1_000_000).prop_map(Value::Int),
        1 => Just(Value::Int(i64::MIN)),
        2 => (-4096i64..4096).prop_map(|b| Value::Float(b as f64 / 8.0)),
        1 => Just(Value::Float(f64::NAN)),
        1 => Just(Value::Float(-0.0)),
        2 => "[a-zA-Z0-9 ,\"⊥é]{0,10}".prop_map(Value::str),
    ]
}

/// A table with 1–4 columns, 0–8 rows, and sometimes a key on column 0.
fn any_table() -> impl Strategy<Value = Table> {
    (1usize..=4, 0usize..=8, any::<bool>(), "[a-z][a-z0-9_-]{0,8}").prop_flat_map(
        |(ncols, nrows, keyed, name)| {
            proptest::collection::vec(proptest::collection::vec(any_cell(), ncols), nrows).prop_map(
                move |mut rows| {
                    let cols: Vec<String> = (0..ncols).map(|c| format!("c{c}")).collect();
                    // A key column must be non-null and unique to be honest;
                    // overwrite column 0 with row numbers when keyed.
                    if keyed {
                        for (i, row) in rows.iter_mut().enumerate() {
                            row[0] = Value::Int(i as i64);
                        }
                    }
                    let key: Vec<&str> = if keyed { vec!["c0"] } else { vec![] };
                    Table::build(&name, &cols, &key, rows).expect("arity consistent")
                },
            )
        },
    )
}

/// Bit-exact table comparison: `Table: PartialEq` would accept `3 == 3.0`
/// and NaN ≠ NaN confusion; the Debug rendering distinguishes
/// representations exactly.
fn repr(t: &Table) -> String {
    format!("{:?} {:?} {:?}", t.name(), t.schema(), t.rows())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Satellite requirement: `Table` → bytes → `Table` is the identity.
    #[test]
    fn table_binary_round_trip(t in any_table()) {
        let bytes = encode_table(&t);
        let back = decode_table(&bytes)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(repr(&back), repr(&t));
    }

    /// Encoding is deterministic — same table, same bytes.
    #[test]
    fn table_encoding_is_stable(t in any_table()) {
        prop_assert_eq!(encode_table(&t), encode_table(&t));
    }

    /// Snapshots of arbitrary lakes reopen with the same tables and the
    /// same inverted index, posting for posting.
    #[test]
    fn snapshot_round_trip(tables in proptest::collection::vec(any_table(), 1..=5)) {
        let lake = DataLake::from_tables(tables);
        let path = std::env::temp_dir().join(format!(
            "gent-store-prop-{}-{:x}.gentlake",
            std::process::id(),
            gent_table::binary::fnv1a64(repr(lake.get(0).unwrap()).as_bytes())
        ));
        snapshot::save(&path, &lake, None)
            .map_err(|e| TestCaseError::fail(format!("save failed: {e}")))?;
        let loaded = snapshot::load(&path)
            .map_err(|e| TestCaseError::fail(format!("load failed: {e}")))?;
        let _ = std::fs::remove_file(&path);

        prop_assert_eq!(loaded.lake.len(), lake.len());
        prop_assert_eq!(loaded.lake.index_len(), lake.index_len());
        for (i, t) in lake.tables_iter().enumerate() {
            prop_assert_eq!(repr(loaded.lake.get(i).unwrap()), repr(t));
        }
        for (v, postings) in lake.index_entries() {
            prop_assert_eq!(loaded.lake.postings(&v), postings, "postings({:?})", v);
        }
    }
}
