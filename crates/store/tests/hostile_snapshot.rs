//! Hostile-snapshot hardening for the zero-copy (v2) open path.
//!
//! Pinned to the v2 writer ([`snapshot::save_v2`]) so the retained v2
//! decoder keeps its hostile coverage now that [`snapshot::save`] writes
//! v3; the v3 open path has its own suite in `hostile_snapshot_v3.rs`.
//!
//! Since format v2, slices of the snapshot buffer outlive decode: the
//! frozen index arrays are served as views and table cells decode lazily,
//! so a corrupt *offset* is more dangerous than a corrupt *cell* — it
//! could, if unvalidated, build a view into the wrong bytes or out of
//! bounds. These properties mutate and truncate the section-offset table,
//! the header counts that size it, and arbitrary bytes (with and without a
//! fixed-up checksum, so both the checksum line of defense and the
//! structural validation behind it are exercised) and assert the contract:
//! **every corruption maps to a structured [`StoreError`] or to a lake
//! that still works — never a panic, never an out-of-bounds slice.**

use gent_discovery::{DataLake, LshConfig, LshEnsembleIndex};
use gent_store::snapshot::{self, LoadedLake};
use gent_store::StoreError;
use gent_table::binary::fold64;
use gent_table::view::LakeBuf;
use gent_table::{Table, Value as V};
use proptest::prelude::*;

/// Build one deterministic snapshot (with LSH bands, so every section kind
/// is present) and return its bytes.
fn snapshot_bytes() -> Vec<u8> {
    let a = Table::build(
        "alpha",
        &["id", "name"],
        &[],
        (0..30).map(|i| vec![V::Int(i), V::str(format!("a{i}"))]).collect(),
    )
    .unwrap();
    let b = Table::build(
        "beta",
        &["k", "v"],
        &[],
        (0..20).map(|i| vec![V::Int(100 + i), V::Float(i as f64 / 2.0)]).collect(),
    )
    .unwrap();
    let c =
        Table::build("gamma", &["x"], &[], (0..10).map(|i| vec![V::Int(i * 7)]).collect()).unwrap();
    let lake = DataLake::from_tables(vec![a, b, c]);
    let lsh = LshEnsembleIndex::build(&lake, LshConfig::default());
    let path = std::env::temp_dir().join(format!(
        "gent-hostile-{}-{:?}.gentlake",
        std::process::id(),
        std::thread::current().id()
    ));
    snapshot::save_v2(&path, &lake, Some(&lsh)).expect("save");
    let bytes = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    bytes
}

/// Recompute and overwrite the trailing fold64 so structural validation —
/// not the checksum — is what the mutated file exercises.
fn fix_checksum(bytes: &mut [u8]) {
    let body_end = bytes.len() - 8;
    let sum = fold64(&bytes[..body_end]);
    bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
}

/// The property under test: opening `bytes` and then exercising everything
/// the open deferred (cell decode, LSH decode, index probes) either
/// succeeds or returns a structured error. A panic or OOB access fails the
/// test at the harness level.
fn open_must_not_panic(bytes: Vec<u8>) -> Result<(), StoreError> {
    let loaded: LoadedLake = snapshot::load_buf(LakeBuf::new(bytes))?;
    // Force every deferred decode: lazy table cells (sequential and via the
    // parallel path), band reconstruction, and a few index probes through
    // the buffer-anchored views.
    loaded.lake.decode_all(2).map_err(StoreError::from)?;
    loaded.lsh.force()?;
    for probe in [V::Int(3), V::Int(107), V::str("a7"), V::Float(4.5), V::str("absent")] {
        let _ = loaded.lake.postings(&probe);
    }
    for (v, _) in loaded.lake.index_entries() {
        let _ = loaded.lake.postings(&v);
    }
    Ok(())
}

/// Offset of the section directory (just past the 48-byte header).
const DIR_START: usize = 48;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Any single flipped bit anywhere in the file — header, directory,
    /// section bytes, trailer — must be caught (by checksum or structure),
    /// and must never panic.
    #[test]
    fn random_bit_flip_is_rejected(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = snapshot_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            open_must_not_panic(bytes).is_err(),
            "flip at {pos} bit {bit} went undetected"
        );
    }

    /// Truncation at any length — mid-header, mid-directory, mid-section,
    /// mid-trailer — is rejected without panicking.
    #[test]
    fn truncation_is_rejected(keep_frac in 0.0f64..1.0) {
        let full = snapshot_bytes();
        let keep = ((full.len() - 1) as f64 * keep_frac) as usize;
        prop_assert!(
            open_must_not_panic(full[..keep].to_vec()).is_err(),
            "truncation to {keep}/{} bytes went undetected",
            full.len()
        );
    }

    /// Overwrite one directory entry's offset or length with an arbitrary
    /// value and *fix the checksum*, so only the directory validation
    /// stands between the corrupt offset and an out-of-bounds view. The
    /// contiguous-tiling rule means any real change must be rejected; the
    /// identity rewrite must keep working.
    #[test]
    fn dir_entry_overwrite_never_panics(
        entry in 0usize..6,    // strtab, index, lsh + 3 tables
        field in 0usize..2,    // offset or len
        value in proptest::prelude::any::<u64>(),
    ) {
        let mut bytes = snapshot_bytes();
        let at = DIR_START + entry * 16 + field * 8;
        let original = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        bytes[at..at + 8].copy_from_slice(&value.to_le_bytes());
        fix_checksum(&mut bytes);
        let result = open_must_not_panic(bytes);
        if value == original {
            prop_assert!(result.is_ok(), "identity rewrite must still load: {result:?}");
        } else {
            prop_assert!(
                result.is_err(),
                "dir entry {entry} field {field} rewritten {original} → {value} went undetected"
            );
        }
    }

    /// Small structured perturbations of directory words — the off-by-a-few
    /// corruptions a bad write would produce — with a fixed-up checksum.
    #[test]
    fn dir_entry_nudge_never_panics(entry in 0usize..6, field in 0usize..2, delta in -32i64..=32) {
        prop_assume!(delta != 0);
        let mut bytes = snapshot_bytes();
        let at = DIR_START + entry * 16 + field * 8;
        let original = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let nudged = original.wrapping_add(delta as u64);
        bytes[at..at + 8].copy_from_slice(&nudged.to_le_bytes());
        fix_checksum(&mut bytes);
        prop_assert!(
            open_must_not_panic(bytes).is_err(),
            "dir entry {entry} field {field} nudged by {delta} went undetected"
        );
    }

    /// Corrupt the header counts that *size* the directory and the index
    /// (n_tables, n_index_entries, totals, flags) with a fixed checksum:
    /// a crafted header must not cause huge allocations, wrong-sized
    /// directories, or panics.
    #[test]
    fn header_count_overwrite_never_panics(
        field in 0usize..5,
        value in proptest::prelude::any::<u32>(),
    ) {
        // flags, n_tables, and the low words of total_rows /
        // n_index_entries / n_lsh_columns.
        let field_at = [12usize, 16, 24, 32, 40][field];
        let mut bytes = snapshot_bytes();
        let original = u32::from_le_bytes(bytes[field_at..field_at + 4].try_into().unwrap());
        prop_assume!(value != original);
        bytes[field_at..field_at + 4].copy_from_slice(&value.to_le_bytes());
        fix_checksum(&mut bytes);
        prop_assert!(
            open_must_not_panic(bytes).is_err(),
            "header word at {field_at} rewritten {original} → {value} went undetected"
        );
    }

    /// Corrupt bytes *inside* a section (past the directory) with a fixed
    /// checksum: lazy cell decode, view validation or LSH decode must turn
    /// it into an error or a benignly different value — never a panic.
    /// (Unlike offsets, flipped payload bytes can decode to a different
    /// valid value, so `Ok` is acceptable here; the assertion is the
    /// absence of panics and OOB slices while everything is forced.)
    #[test]
    fn section_byte_flip_with_fixed_checksum_never_panics(
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = snapshot_bytes();
        let body = DIR_START + 6 * 16..bytes.len() - 8;
        let pos = body.start + ((body.end - body.start - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        fix_checksum(&mut bytes);
        // Err or Ok are both acceptable; what must not happen is a panic,
        // which would abort the test harness rather than return.
        let _ = open_must_not_panic(bytes);
    }
}
