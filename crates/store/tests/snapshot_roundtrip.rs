//! Acceptance tests for the store subsystem: a snapshot-loaded lake is
//! *retrieval-identical* to the freshly built in-memory lake on a real
//! `datagen` benchmark suite — same inverted index answers, same exact and
//! LSH retrieval, same originating tables and EIS from the full Gen-T
//! pipeline — and reopening the snapshot beats rebuilding from CSV.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use gent_core::{GenT, GenTConfig};
use gent_datagen::suite::{build, BenchmarkId, SuiteConfig};
use gent_datagen::webgen::WebCorpusConfig;
use gent_discovery::{
    DataLake, LshConfig, LshEnsembleIndex, LshRetriever, OverlapRetriever, TableRetriever,
};
use gent_store::{ingest_tables, snapshot, IngestOptions};
use gent_table::csv;

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("gent-store-rt-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn tiny_suite() -> SuiteConfig {
    SuiteConfig {
        units: (10, 20, 40),
        santos_noise_tables: 10,
        wdc_noise_tables: 10,
        web: WebCorpusConfig {
            n_base_tables: 6,
            n_reclaimable: 2,
            n_duplicates: 1,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Reclaiming a suite source against the loaded snapshot returns the same
/// originating tables and EIS as against the freshly built in-memory lake.
#[test]
fn reclaim_from_snapshot_matches_in_memory() {
    let s = Scratch::new("reclaim");
    let bench = build(BenchmarkId::TpTrSmall, &tiny_suite());

    let cold = DataLake::from_tables(bench.lake_tables.clone());
    let snap = s.0.join("lake.gentlake");
    snapshot::save(&snap, &cold, None).unwrap();
    let warm = snapshot::load(&snap).unwrap().lake;

    let gen_t = GenT::new(GenTConfig::default());
    for case in bench.cases.iter().take(4) {
        let a = gen_t.reclaim(&case.source, &cold).expect("cold reclaim");
        let b = gen_t.reclaim(&case.source, &warm).expect("warm reclaim");
        let names = |r: &gent_core::ReclamationResult| -> Vec<String> {
            r.originating.iter().map(|t| t.name().to_string()).collect()
        };
        assert_eq!(names(&a), names(&b), "originating tables diverge on S{}", case.id);
        assert!(
            (a.eis - b.eis).abs() < 1e-12,
            "EIS diverges on S{}: cold {} warm {}",
            case.id,
            a.eis,
            b.eis
        );
        assert_eq!(
            a.reclaimed.rows(),
            b.reclaimed.rows(),
            "reclaimed rows diverge on S{}",
            case.id
        );
    }
}

/// Exact and approximate retrieval agree result-for-result between the
/// cold lake and the snapshot (including warm-started LSH bands).
#[test]
fn retrieval_identical_after_snapshot_load() {
    let s = Scratch::new("retrieval");
    let bench = build(BenchmarkId::TpTrSmall, &tiny_suite());

    let ingested = ingest_tables(
        bench.lake_tables.clone(),
        &IngestOptions { threads: 2, lsh: Some(LshConfig::default()) },
    );
    let cold_lake = ingested.lake;
    let cold_lsh = ingested.lsh.expect("lsh requested");

    let snap = s.0.join("lake.gentlake");
    snapshot::save(&snap, &cold_lake, Some(&cold_lsh)).unwrap();
    let loaded = snapshot::load(&snap).unwrap();
    let warm_lake = loaded.lake;
    let warm_lsh = loaded.lsh.force().expect("lsh decodes").cloned().expect("lsh persisted");

    // The inverted index answers identically for every indexed value.
    assert_eq!(warm_lake.index_len(), cold_lake.index_len());
    for (v, postings) in cold_lake.index_entries() {
        assert_eq!(warm_lake.postings(&v), postings, "postings({v}) diverge");
    }

    let cold_retr = LshRetriever::from_index(cold_lsh, 0.3);
    let warm_retr = LshRetriever::from_index(warm_lsh, 0.3);
    for case in bench.cases.iter().take(8) {
        assert_eq!(
            OverlapRetriever.retrieve(&cold_lake, &case.source, 10),
            OverlapRetriever.retrieve(&warm_lake, &case.source, 10),
            "exact retrieval diverges on S{}",
            case.id
        );
        assert_eq!(
            cold_retr.retrieve(&cold_lake, &case.source, 10),
            warm_retr.retrieve(&warm_lake, &case.source, 10),
            "LSH retrieval diverges on S{}",
            case.id
        );
    }
}

/// Snapshots saved from a sequentially built lake and from the parallel
/// ingest path are byte-identical — the two construction paths are
/// interchangeable.
#[test]
fn sequential_and_parallel_ingest_snapshot_identically() {
    let s = Scratch::new("paths");
    let bench = build(BenchmarkId::TpTrSmall, &tiny_suite());
    let a = s.0.join("sequential.gentlake");
    let b = s.0.join("parallel.gentlake");
    snapshot::save(&a, &DataLake::from_tables(bench.lake_tables.clone()), None).unwrap();
    let parallel = ingest_tables(bench.lake_tables, &IngestOptions { threads: 4, lsh: None });
    snapshot::save(&b, &parallel.lake, None).unwrap();
    assert_eq!(fs::read(&a).unwrap(), fs::read(&b).unwrap());
}

/// Opening a snapshot must decisively beat rebuilding from CSV — that is
/// the store's reason to exist. The full benchmark asserts ≥10×
/// (`cargo bench -p gent-bench --bench snapshot`); here we assert a
/// conservative ≥2× so CI noise cannot flake the suite, and print the
/// observed ratio.
#[test]
fn snapshot_open_beats_csv_rebuild() {
    let s = Scratch::new("timing");
    // Default-size TP-TR Small: 32 tables, ~25k rows — big enough that
    // parse + index costs dominate process noise.
    let bench = build(BenchmarkId::TpTrSmall, &SuiteConfig::default());

    let csv_dir = s.0.join("lake-csv");
    fs::create_dir_all(&csv_dir).unwrap();
    for t in &bench.lake_tables {
        csv::write_csv_file(t, &csv_dir.join(format!("{}.csv", t.name()))).unwrap();
    }
    let lake = DataLake::from_tables(bench.lake_tables.clone());
    let lsh = LshEnsembleIndex::build(&lake, LshConfig::default());
    let snap = s.0.join("lake.gentlake");
    snapshot::save(&snap, &lake, Some(&lsh)).unwrap();

    // Cold: parse every CSV, rebuild the inverted index and the LSH bands.
    let t0 = Instant::now();
    let mut paths: Vec<PathBuf> =
        fs::read_dir(&csv_dir).unwrap().map(|e| e.unwrap().path()).collect();
    paths.sort();
    let tables: Vec<_> = paths.iter().map(|p| csv::read_csv_file(p).unwrap()).collect();
    let cold = DataLake::from_tables(tables);
    let _cold_lsh = LshEnsembleIndex::build(&cold, LshConfig::default());
    let cold_time = t0.elapsed();

    // Warm: one read + decode.
    let t1 = Instant::now();
    let loaded = snapshot::load(&snap).unwrap();
    let warm_time = t1.elapsed();

    assert_eq!(loaded.lake.len(), cold.len());
    let ratio = cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9);
    println!("cold rebuild {:?} vs snapshot open {:?} — {ratio:.1}× faster", cold_time, warm_time);
    assert!(
        ratio >= 2.0,
        "snapshot open ({warm_time:?}) must beat CSV rebuild ({cold_time:?}) by ≥2×, got {ratio:.2}×"
    );
}
