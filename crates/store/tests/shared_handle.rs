//! Regression tests for the shared-lake-handle contract: a lake loaded once
//! from a [`LakeSource`] serves any number of reclamations without being
//! reopened, cloned, or mutated — the invariant `gent serve` builds on
//! (concurrent requests borrow one `Arc`-shared lake).

use std::sync::Arc;

use gent_core::{GenT, GenTConfig};
use gent_datagen::suite::{build, BenchmarkId, SuiteConfig};
use gent_store::{snapshot, InMemory, LakeSource, SnapshotFile};

fn snapshot_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gent-shared-handle-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// Two sequential reclaims against one loaded `LakeSource` must yield
/// identical results — the first request must not consume, thaw, or
/// otherwise degrade the handle for the second.
#[test]
fn sequential_reclaims_share_one_lake_handle() {
    let bench = build(BenchmarkId::TpTrSmall, &SuiteConfig::default());
    let path = snapshot_path("sequential.gentlake");
    {
        let built = InMemory::new(bench.lake_tables.clone()).load_lake().unwrap();
        snapshot::save(&path, &built.lake, None).unwrap();
    }

    // ONE source: open the snapshot once, reclaim twice against the handle.
    let loaded = SnapshotFile(path.clone()).load_lake().unwrap();
    assert!(loaded.lake.frozen_index().is_some(), "snapshot lakes serve from the frozen index");

    let gen_t = GenT::new(GenTConfig::default());
    let source = &bench.cases[0].source;
    let first = gen_t.reclaim(source, &loaded.lake).unwrap();
    let second = gen_t.reclaim(source, &loaded.lake).unwrap();

    assert_eq!(first.eis, second.eis, "EIS must be identical across sequential reclaims");
    assert_eq!(first.reclaimed.rows(), second.reclaimed.rows());
    assert_eq!(
        first.originating.iter().map(|t| t.name()).collect::<Vec<_>>(),
        second.originating.iter().map(|t| t.name()).collect::<Vec<_>>(),
    );
    // The handle itself is unchanged: still frozen, nothing was thawed into
    // a mutable map by the read path.
    assert!(loaded.lake.frozen_index().is_some(), "reclaim must not thaw the frozen index");

    // And it matches a freshly opened lake exactly (no state bled between
    // requests).
    let fresh = SnapshotFile(path).load_lake().unwrap();
    let independent = gen_t.reclaim(source, &fresh.lake).unwrap();
    assert_eq!(first.eis, independent.eis);
    assert_eq!(first.reclaimed.rows(), independent.reclaimed.rows());
}

/// The same handle shared across threads through an `Arc` (exactly what the
/// serve worker pool does) answers concurrent reclaims identically to the
/// sequential path.
#[test]
fn concurrent_reclaims_borrow_the_same_arc() {
    let bench = build(BenchmarkId::TpTrSmall, &SuiteConfig::default());
    let path = snapshot_path("concurrent.gentlake");
    {
        let built = InMemory::new(bench.lake_tables.clone()).load_lake().unwrap();
        snapshot::save(&path, &built.lake, None).unwrap();
    }
    let loaded = Arc::new(SnapshotFile(path).load_lake().unwrap());
    let gen_t = GenT::new(GenTConfig::default());

    let baseline = gen_t.reclaim(&bench.cases[0].source, &loaded.lake).unwrap();

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let loaded = Arc::clone(&loaded);
            let source = bench.cases[0].source.clone();
            std::thread::spawn(move || {
                GenT::new(GenTConfig::default()).reclaim(&source, &loaded.lake).unwrap()
            })
        })
        .collect();
    for w in workers {
        let got = w.join().expect("worker");
        assert_eq!(got.eis, baseline.eis);
        assert_eq!(got.reclaimed.rows(), baseline.reclaimed.rows());
    }
}
