//! Crash-safety suite for snapshot persistence: power-cut simulation and
//! fault-injected saves.
//!
//! The invariant under test is the one `write_atomic` exists for: **no
//! crash, torn write, or injected IO failure may ever make a
//! previously-valid snapshot unloadable.** A crash mid-save can only leave
//! a torn `*.gentlake.tmp` next to the intact old file; a stale tmp must
//! never fail (or corrupt) the next save; and a torn file that somehow
//! *does* land at the snapshot path must surface as a structured
//! `StoreError`, never a panic.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use gent_discovery::DataLake;
use gent_store::format::HEADER_LEN;
use gent_store::{snapshot, SectionDirV3, SnapshotHeader};
use gent_table::{Table, Value as V};

/// Fault state is process-global; every test in this file serializes on
/// this lock so an armed site can never leak into a neighbour's save.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("gent-crash-safety-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// A lake with `n_tables` tables — distinguishable after reload by count.
fn lake_with(n_tables: usize, tag: &str) -> DataLake {
    let tables = (0..n_tables)
        .map(|t| {
            let rows = (0..8)
                .map(|i| vec![V::Int(i), V::str(format!("{tag}_{t}_{i}"))])
                .collect::<Vec<_>>();
            Table::build(&format!("t{t}"), &["id", "val"], &["id"], rows).unwrap()
        })
        .collect();
    DataLake::from_tables(tables)
}

fn tmp_path(path: &Path) -> PathBuf {
    path.with_extension("gentlake.tmp")
}

/// Every byte length at which a power cut mid-write is interesting: each
/// section boundary of the v3 layout, the byte just before it, and the
/// midpoint of every section — plus the empty file and the truncated
/// directory.
fn truncation_points(bytes: &[u8]) -> Vec<usize> {
    let header = SnapshotHeader::decode(bytes).unwrap();
    let (dir, body_end) =
        SectionDirV3::decode(bytes, header.n_tables as usize, header.has_lsh()).unwrap();
    let mut bounds =
        vec![0, HEADER_LEN, HEADER_LEN + SectionDirV3::encoded_len(header.n_tables as usize)];
    let mut push_section = |s: &gent_store::SectionEntry| {
        bounds.push(s.range.offset as usize);
        bounds.push((s.range.offset + s.range.len) as usize);
    };
    push_section(&dir.strtab);
    for t in &dir.tables {
        push_section(t);
    }
    push_section(&dir.index);
    if let Some(l) = &dir.lsh {
        push_section(l);
    }
    bounds.push(body_end);
    bounds.sort_unstable();
    bounds.dedup();
    // Add near-boundary and mid-section cuts so torn *partial* sections are
    // covered, not just clean section edges.
    let mut cuts = Vec::new();
    for pair in bounds.windows(2) {
        cuts.push(pair[0]);
        if pair[0] > 0 {
            cuts.push(pair[0] - 1);
        }
        if pair[1] - pair[0] > 1 {
            cuts.push(pair[0] + (pair[1] - pair[0]) / 2);
        }
    }
    cuts.extend_from_slice(&bounds);
    cuts.retain(|&c| c < bytes.len());
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// Power-cut simulation: a torn tmp file at *any* section boundary leaves
/// the old snapshot loading cleanly, and the very next save succeeds and
/// clears the debris.
#[test]
fn power_cut_at_every_section_boundary_keeps_old_snapshot_loadable() {
    let _g = locked();
    let s = Scratch::new("powercut");
    let path = s.0.join("lake.gentlake");

    let old = lake_with(2, "old");
    let new = lake_with(3, "new");
    snapshot::save(&path, &old, None).unwrap();
    let old_bytes = fs::read(&path).unwrap();

    let staging = s.0.join("staging.gentlake");
    snapshot::save(&staging, &new, None).unwrap();
    let new_bytes = fs::read(&staging).unwrap();

    let cuts = truncation_points(&new_bytes);
    assert!(cuts.len() >= 8, "expected many truncation points, got {cuts:?}");

    for &cut in &cuts {
        // Crash mid-write: the new snapshot's first `cut` bytes made it to
        // the tmp file, the rename never happened.
        fs::write(tmp_path(&path), &new_bytes[..cut]).unwrap();
        let loaded = snapshot::load(&path)
            .unwrap_or_else(|e| panic!("old snapshot unloadable after {cut}-byte torn tmp: {e}"));
        assert_eq!(loaded.lake.len(), 2, "old lake must survive a {cut}-byte torn tmp");

        // The next save must shrug off the stale tmp, land the new
        // snapshot, and leave no debris.
        snapshot::save(&path, &new, None)
            .unwrap_or_else(|e| panic!("save after {cut}-byte torn tmp failed: {e}"));
        assert!(!tmp_path(&path).exists(), "stale tmp must be gone after a save (cut {cut})");
        assert_eq!(snapshot::load(&path).unwrap().lake.len(), 3);

        // A torn file at the *snapshot* path itself (a filesystem that
        // broke rename atomicity) must fail structurally, never panic.
        let torn = s.0.join("torn.gentlake");
        fs::write(&torn, &new_bytes[..cut]).unwrap();
        let err = snapshot::load(&torn).expect_err("torn snapshot must not load");
        assert!(!err.to_string().is_empty());

        // Reset for the next cut point.
        fs::write(&path, &old_bytes).unwrap();
    }
}

/// Satellite regression: a stale tmp from a previous crash must not fail
/// the next save (entry-time cleanup), and a failed save must not leave a
/// fresh tmp behind either.
#[test]
fn stale_tmp_from_previous_crash_does_not_fail_save() {
    let _g = locked();
    let s = Scratch::new("staletmp");
    let path = s.0.join("lake.gentlake");
    fs::write(tmp_path(&path), b"debris from a crashed writer").unwrap();

    snapshot::save(&path, &lake_with(2, "fresh"), None).expect("save over stale tmp");
    assert!(!tmp_path(&path).exists(), "save must clear the stale tmp");
    assert_eq!(snapshot::load(&path).unwrap().lake.len(), 2);
}

/// Fault-injected saves: whichever stage dies (write, fsync, rename), the
/// error is structured and tagged, the old snapshot still loads, and no
/// tmp file survives.
#[test]
fn injected_save_faults_leave_old_snapshot_intact() {
    let _g = locked();
    let s = Scratch::new("savefaults");
    let path = s.0.join("lake.gentlake");
    let old = lake_with(2, "old");
    let new = lake_with(3, "new");
    snapshot::save(&path, &old, None).unwrap();

    for site in ["store.save.write", "store.save.sync", "store.save.rename"] {
        gent_faults::reset();
        gent_faults::arm(site, gent_faults::Trigger::NthHit(1));
        gent_faults::set_enabled(true);

        let err = snapshot::save(&path, &new, None).expect_err(site);
        assert!(
            err.to_string().contains("injected fault"),
            "{site}: error must carry the injection tag, got: {err}"
        );
        assert_eq!(gent_faults::fired(site), 1, "{site} must have fired");
        gent_faults::reset();

        assert!(!tmp_path(&path).exists(), "{site}: failed save must leave no tmp");
        assert_eq!(snapshot::load(&path).unwrap().lake.len(), 2, "{site}: old lake intact");
    }

    // And with the layer disabled, the same armed site is a no-op.
    gent_faults::reset();
    gent_faults::arm("store.save.write", gent_faults::Trigger::Always);
    snapshot::save(&path, &new, None).expect("disabled fault layer must not fire");
    assert_eq!(snapshot::load(&path).unwrap().lake.len(), 3);
    gent_faults::reset();
}

/// One delta-frame table, distinguishable by name.
fn frame_table(name: &str) -> Table {
    let rows = (0..4).map(|i| vec![V::Int(100 + i), V::str(format!("{name}_{i}"))]).collect();
    Table::build(name, &["id", "val"], &["id"], rows).unwrap()
}

/// Power-cut suite for the delta-frame log: truncate the file at **every
/// byte** of the frame region (a superset of header / body / checksum /
/// commit-marker boundaries ± nudges) and require that
///
/// * the file always loads — acknowledged (committed) frames recover in
///   full, an uncommitted tail is silently dropped, and nothing panics;
/// * the next append on the truncated file repairs the torn tail and
///   lands cleanly.
#[test]
fn power_cut_at_every_delta_frame_byte_recovers_acknowledged_frames() {
    let _g = locked();
    gent_faults::reset();
    let s = Scratch::new("framecut");
    let path = s.0.join("lake.gentlake");

    snapshot::save(&path, &lake_with(2, "base"), None).unwrap();
    let base_len = fs::metadata(&path).unwrap().len() as usize;
    gent_store::append_tables(&path, &[frame_table("frame_a")]).unwrap();
    let len_a = fs::metadata(&path).unwrap().len() as usize;
    gent_store::append_tables(&path, &[frame_table("frame_b")]).unwrap();
    let len_b = fs::metadata(&path).unwrap().len() as usize;
    let bytes = fs::read(&path).unwrap();
    assert_eq!(bytes.len(), len_b);
    assert!(base_len < len_a && len_a < len_b);

    let victim = s.0.join("cut.gentlake");
    for cut in base_len..=len_b {
        fs::write(&victim, &bytes[..cut]).unwrap();

        // Committed prefix at this cut: a frame counts only once its
        // commit marker is fully on disk.
        let committed = if cut >= len_b {
            len_b
        } else if cut >= len_a {
            len_a
        } else {
            base_len
        };
        let expect_tables = 2 + usize::from(committed >= len_a) + usize::from(committed >= len_b);

        let loaded = snapshot::load(&victim)
            .unwrap_or_else(|e| panic!("load after cut at byte {cut} failed: {e}"));
        assert_eq!(loaded.lake.len(), expect_tables, "cut {cut}: acknowledged frames recover");
        assert!(loaded.quarantined.is_empty(), "cut {cut}: a torn tail is not corruption");

        // Recovery-and-append: the next writer truncates the torn tail
        // (if any) and its frame lands.
        let outcome = gent_store::append_tables(&victim, &[frame_table("frame_c")])
            .unwrap_or_else(|e| panic!("append after cut at byte {cut} failed: {e}"));
        assert_eq!(
            outcome.truncated_torn_tail,
            cut > committed,
            "cut {cut}: torn-tail truncation flag"
        );
        let reloaded = snapshot::load(&victim).unwrap();
        assert_eq!(reloaded.lake.len(), expect_tables + 1, "cut {cut}: append after recovery");
        assert!(reloaded.quarantined.is_empty());
    }
}

/// Fault-injected appends: whichever stage dies (pre-open write check,
/// body fsync, commit-marker write), the acknowledged prefix still loads
/// in full and the next (healthy) append repairs any torn tail.
#[test]
fn injected_append_faults_never_lose_acknowledged_frames() {
    let _g = locked();
    let s = Scratch::new("appendfaults");
    let path = s.0.join("lake.gentlake");
    snapshot::save(&path, &lake_with(2, "base"), None).unwrap();
    gent_store::append_tables(&path, &[frame_table("acked")]).unwrap();

    for (i, site) in
        ["store.append.write", "store.append.sync", "store.append.commit"].into_iter().enumerate()
    {
        gent_faults::reset();
        gent_faults::arm(site, gent_faults::Trigger::NthHit(1));
        gent_faults::set_enabled(true);

        let err = gent_store::append_tables(&path, &[frame_table("doomed")]).expect_err(site);
        assert!(
            err.to_string().contains("injected fault"),
            "{site}: error must carry the injection tag, got: {err}"
        );
        assert_eq!(gent_faults::fired(site), 1, "{site} must have fired");
        gent_faults::reset();

        // The acknowledged prefix (base + "acked" + one healthy frame per
        // previous iteration) must load in full, unquarantined.
        let loaded = snapshot::load(&path).unwrap_or_else(|e| panic!("{site}: load failed: {e}"));
        assert_eq!(loaded.lake.len(), 3 + i, "{site}: acknowledged frames intact");
        assert!(loaded.quarantined.is_empty(), "{site}: no quarantine from a failed append");

        // A healthy append repairs the torn tail the fault left behind
        // (the pre-open site leaves the file untouched, so nothing to
        // repair there).
        let outcome = gent_store::append_tables(&path, &[frame_table(&format!("healthy_{i}"))])
            .unwrap_or_else(|e| panic!("{site}: append after fault failed: {e}"));
        assert_eq!(
            outcome.truncated_torn_tail,
            site != "store.append.write",
            "{site}: torn-tail repair flag"
        );
        assert_eq!(snapshot::load(&path).unwrap().lake.len(), 4 + i);
    }
    gent_faults::reset();
}

/// Compaction folds the frame log into a clean base — and a fault during
/// the compaction save leaves the framed file fully loadable.
#[test]
fn compaction_failure_leaves_framed_snapshot_intact() {
    let _g = locked();
    let s = Scratch::new("compactfault");
    let path = s.0.join("lake.gentlake");
    snapshot::save(&path, &lake_with(2, "base"), None).unwrap();
    gent_store::append_tables(&path, &[frame_table("fa")]).unwrap();
    gent_store::append_tables(&path, &[frame_table("fb")]).unwrap();
    assert_eq!(gent_store::frame_count(&path).unwrap(), (2, false));

    gent_faults::reset();
    gent_faults::arm("store.compact.save", gent_faults::Trigger::NthHit(1));
    gent_faults::set_enabled(true);
    let err = gent_store::compact(&path).expect_err("armed compact must fail");
    assert!(err.to_string().contains("injected fault"), "{err}");
    gent_faults::reset();

    // The framed file is untouched (write_atomic never renamed).
    assert_eq!(gent_store::frame_count(&path).unwrap(), (2, false));
    let before = snapshot::load(&path).unwrap();
    assert_eq!(before.lake.len(), 4);
    assert_eq!(before.n_frames, 2);

    // Healthy compaction: same tables, zero frames, index intact. (Force
    // the framed lake's deferred index first — unforced, `index_len` is
    // the base header's count, which predates the frames' novel values.)
    before.lake.ensure_index().unwrap();
    assert_eq!(gent_store::compact(&path).unwrap(), 2);
    assert_eq!(gent_store::frame_count(&path).unwrap(), (0, false));
    let after = snapshot::load(&path).unwrap();
    assert_eq!(after.lake.len(), 4);
    assert_eq!(after.n_frames, 0);
    assert_eq!(after.lake.index_len(), before.lake.index_len());
}

/// The read-side failpoint makes `load` fail without touching the file —
/// and recovers the moment the site is disarmed.
#[test]
fn injected_read_fault_is_transient() {
    let _g = locked();
    let s = Scratch::new("readfault");
    let path = s.0.join("lake.gentlake");
    snapshot::save(&path, &lake_with(2, "x"), None).unwrap();

    gent_faults::reset();
    gent_faults::arm("store.load.read", gent_faults::Trigger::NthHit(1));
    gent_faults::set_enabled(true);
    let err = snapshot::load(&path).expect_err("armed read site must fail the load");
    assert!(err.to_string().contains("store.load.read"), "{err}");
    // The nth-hit trigger has fired; the very next load succeeds.
    assert_eq!(snapshot::load(&path).unwrap().lake.len(), 2);
    gent_faults::reset();
}
