//! Where a lake comes from: the [`LakeSource`] abstraction.
//!
//! Discovery used to have exactly one construction path — build everything
//! in memory from a `Vec<Table>`. The store adds a second: reopen a
//! persisted snapshot. Callers that only need "a lake, however it is
//! obtained" (the CLI's `reclaim`, the bench harness) take a `LakeSource`
//! and stay agnostic:
//!
//! * [`InMemory`] — ingest tables now (parallel scans, optional LSH build),
//! * [`SnapshotFile`] — decode a `lake build` snapshot, warm-starting the
//!   inverted index and any stored LSH bands without rehashing a value.

use std::path::PathBuf;

use gent_table::Table;

use crate::error::StoreError;
use crate::ingest::{ingest_tables, IngestOptions};
use crate::snapshot::{self, LoadedLake};

/// A source a [`gent_discovery::DataLake`] can be realised from.
pub trait LakeSource {
    /// Produce the lake (and any warm-started LSH index).
    fn load_lake(self) -> Result<LoadedLake, StoreError>;
}

/// Build the lake in memory from tables (the cold path).
#[derive(Debug, Clone, Default)]
pub struct InMemory {
    /// The tables to ingest.
    pub tables: Vec<Table>,
    /// Ingest options (thread count, optional LSH).
    pub options: IngestOptions,
}

impl InMemory {
    /// Ingest `tables` with default options.
    pub fn new(tables: Vec<Table>) -> Self {
        InMemory { tables, options: IngestOptions::default() }
    }
}

impl LakeSource for InMemory {
    fn load_lake(self) -> Result<LoadedLake, StoreError> {
        let ingested = ingest_tables(self.tables, &self.options);
        Ok(LoadedLake::eager(ingested.lake, ingested.lsh))
    }
}

/// Reopen a snapshot written by [`crate::snapshot::save`] (the warm path).
#[derive(Debug, Clone)]
pub struct SnapshotFile(pub PathBuf);

impl LakeSource for SnapshotFile {
    fn load_lake(self) -> Result<LoadedLake, StoreError> {
        snapshot::load(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::Value as V;

    fn tables() -> Vec<Table> {
        vec![
            Table::build("x", &["a"], &[], (0..12).map(|i| vec![V::Int(i)]).collect()).unwrap(),
            Table::build("y", &["b"], &[], (6..18).map(|i| vec![V::Int(i)]).collect()).unwrap(),
        ]
    }

    #[test]
    fn in_memory_and_snapshot_sources_agree() {
        let cold = InMemory::new(tables()).load_lake().unwrap();
        let path =
            std::env::temp_dir().join(format!("gent-store-source-{}.gentlake", std::process::id()));
        snapshot::save(&path, &cold.lake, None).unwrap();
        let warm = SnapshotFile(path).load_lake().unwrap();
        assert_eq!(warm.lake.len(), cold.lake.len());
        assert_eq!(warm.lake.postings(&V::Int(7)), cold.lake.postings(&V::Int(7)));
    }
}
