//! Parallel lake ingestion.
//!
//! `DataLake::from_tables` scans every cell of every table on one thread.
//! For a one-off in-memory lake that is fine; for `lake build` — which
//! ingests thousands of CSV tables and then snapshots them — this module
//! fans the per-table scans out over scoped worker threads and merges the
//! results into exactly the structures `push_table` would have built:
//! posting lists are ordered by `(table, column)` just as sequential
//! insertion orders them, so a parallel-ingested lake is indistinguishable
//! from (and snapshots byte-identically to) a sequentially built one.

use gent_discovery::lake::Posting;
use gent_discovery::{DataLake, LshConfig, LshEnsembleIndex};
use gent_table::{FxHashMap, FxHashSet, Table, Value};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Options for [`ingest_tables`].
#[derive(Debug, Clone, Default)]
pub struct IngestOptions {
    /// Worker threads for per-table scans (0 → all available cores).
    pub threads: usize,
    /// Also build an LSH Ensemble index with this configuration, so the
    /// snapshot can warm-start approximate retrieval.
    pub lsh: Option<LshConfig>,
}

impl IngestOptions {
    fn effective_threads(&self, n_tables: usize) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        };
        t.clamp(1, n_tables.max(1))
    }
}

/// The product of [`ingest_tables`]: a ready lake plus the optional LSH
/// index, both built in parallel.
#[derive(Debug, Clone)]
pub struct IngestedLake {
    /// The lake with its inverted index.
    pub lake: DataLake,
    /// The LSH index, when [`IngestOptions::lsh`] was set.
    pub lsh: Option<LshEnsembleIndex>,
}

/// Build a [`DataLake`] (and optionally an LSH index) from `tables`,
/// parallelising the per-table value scans across scoped threads.
///
/// # Examples
///
/// ```
/// use gent_store::{ingest_tables, IngestOptions};
/// use gent_table::{Table, Value};
///
/// let tables = vec![
///     Table::build("t", &["x"], &[], vec![vec![Value::Int(1)]]).unwrap(),
/// ];
/// let ingested = ingest_tables(tables, &IngestOptions { threads: 2, lsh: None });
/// assert_eq!(ingested.lake.len(), 1);
/// assert_eq!(ingested.lake.postings(&Value::Int(1)).len(), 1);
/// ```
pub fn ingest_tables(mut tables: Vec<Table>, opts: &IngestOptions) -> IngestedLake {
    // Uniquify names up front, exactly as sequential `push_table` would:
    // first claimant keeps the name, later ones get the first free `#k`.
    let mut taken: FxHashSet<String> = FxHashSet::default();
    for t in &mut tables {
        let mut name = t.name().to_string();
        if !taken.insert(name.clone()) {
            let mut k = 2;
            loop {
                let candidate = format!("{name}#{k}");
                if taken.insert(candidate.clone()) {
                    name = candidate;
                    break;
                }
                k += 1;
            }
            t.set_name(&name);
        }
    }

    let threads = opts.effective_threads(tables.len());

    // Per-table scans: distinct (value, column) pairs in first-occurrence
    // order, the same order `push_table` appends postings in.
    let scan = |t: &Table| -> Vec<(Value, u16)> {
        let mut out = Vec::new();
        for ci in 0..t.n_cols() {
            let mut seen: FxHashSet<&Value> = FxHashSet::default();
            for v in t.column(ci) {
                if !v.is_null_like() && seen.insert(v) {
                    out.push((v.clone(), ci as u16));
                }
            }
        }
        out
    };

    let scans: Vec<(usize, Vec<(Value, u16)>)> = if threads <= 1 {
        tables.iter().enumerate().map(|(ti, t)| (ti, scan(t))).collect()
    } else {
        let next = AtomicUsize::new(0);
        let tables_ref = &tables;
        let mut scans: Vec<(usize, Vec<(Value, u16)>)> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let ti = next.fetch_add(1, Ordering::Relaxed);
                            if ti >= tables_ref.len() {
                                return local;
                            }
                            local.push((ti, scan(&tables_ref[ti])));
                        }
                    })
                })
                .collect();
            workers.into_iter().flat_map(|w| w.join().expect("ingest worker panicked")).collect()
        });
        scans.sort_by_key(|(ti, _)| *ti);
        scans
    };

    // Sequential merge in table order preserves push_table's posting order.
    let mut index: FxHashMap<Value, Vec<Posting>> = FxHashMap::default();
    for (ti, pairs) in scans {
        for (v, column) in pairs {
            index.entry(v).or_default().push(Posting { table: ti as u32, column });
        }
    }

    let lake = DataLake::from_parts(tables, index);
    let lsh =
        opts.lsh.as_ref().map(|cfg| LshEnsembleIndex::build_parallel(&lake, cfg.clone(), threads));
    IngestedLake { lake, lsh }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::Value as V;

    fn tables() -> Vec<Table> {
        (0..6)
            .map(|t| {
                // Two duplicate names exercise renaming.
                let name = if t % 3 == 0 { "dup".to_string() } else { format!("t{t}") };
                Table::build(
                    &name,
                    &["a", "b"],
                    &[],
                    (0..30).map(|i| vec![V::Int(i + t), V::str(format!("s{}", i % 9))]).collect(),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn parallel_ingest_matches_sequential_lake() {
        let sequential = DataLake::from_tables(tables());
        let parallel = ingest_tables(tables(), &IngestOptions { threads: 4, lsh: None }).lake;
        assert_eq!(parallel.len(), sequential.len());
        assert_eq!(parallel.index_len(), sequential.index_len());
        for (v, postings) in sequential.index_entries() {
            assert_eq!(parallel.postings(&v), postings, "postings({v}) diverge");
        }
        for t in sequential.tables_iter() {
            assert_eq!(
                parallel.get_by_name(t.name()).map(|p| p.rows()),
                Some(t.rows()),
                "table `{}` diverges",
                t.name()
            );
        }
    }

    #[test]
    fn single_thread_path_matches_too() {
        let sequential = DataLake::from_tables(tables());
        let one = ingest_tables(tables(), &IngestOptions { threads: 1, lsh: None }).lake;
        assert_eq!(one.index_len(), sequential.index_len());
    }

    #[test]
    fn lsh_option_builds_index() {
        let got =
            ingest_tables(tables(), &IngestOptions { threads: 2, lsh: Some(LshConfig::default()) });
        let lsh = got.lsh.expect("lsh built");
        let direct = LshEnsembleIndex::build(&got.lake, LshConfig::default());
        assert_eq!(lsh.export(), direct.export());
    }
}
