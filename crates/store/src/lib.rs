//! # gent-store — a persistent, indexed data-lake store
//!
//! Gen-T's pipeline assumes a long-lived data lake queried by many source
//! tables, yet building a [`gent_discovery::DataLake`] is all cold-start
//! work: every cell is scanned for the inverted value index, and the LSH
//! retriever rehashes every column. Systems the paper compares against
//! (JOSIE-style exact containment, MATE-style join search) are viable
//! precisely because their indexes are built *once* and persisted. This
//! crate gives the reproduction the same property:
//!
//! * [`snapshot`] — a versioned, checksummed on-disk format
//!   (`"GENTLAKE"` magic) holding the tables **plus** their derived
//!   structures: the inverted value index and, optionally, the LSH
//!   Ensemble bands. [`snapshot::save`] / [`snapshot::load`] /
//!   [`snapshot::stat`];
//! * [`ingest`] — parallel lake construction over scoped threads,
//!   producing bit-identical structures to sequential `push_table`;
//! * [`source`] — the [`LakeSource`] trait with [`InMemory`] (cold) and
//!   [`SnapshotFile`] (warm) implementations, so pipelines can take
//!   "a lake from wherever" without caring which;
//! * [`mod@format`] — the container header shared by save/load/stat.
//!
//! The codec primitives live in [`gent_table::binary`]; this crate owns the
//! container layout and the discovery warm-start wiring
//! ([`gent_discovery::DataLake::from_parts`],
//! [`gent_discovery::LshEnsembleIndex::from_export`]).
//!
//! ```no_run
//! use gent_store::{snapshot, InMemory, LakeSource, SnapshotFile};
//! # fn main() -> Result<(), gent_store::StoreError> {
//! # let tables = vec![];
//! // Ingest once…
//! let built = InMemory::new(tables).load_lake()?;
//! snapshot::save("lake.gentlake".as_ref(), &built.lake, built.lsh.force()?)?;
//! // …reopen lazily: no table cells decode until a reclaim touches them.
//! let warm = SnapshotFile("lake.gentlake".into()).load_lake()?;
//! assert_eq!(warm.lake.tables_decoded(), 0);
//! # Ok(()) }
//! ```

#![warn(missing_docs)]

pub mod delta;
pub mod error;
pub mod format;
pub mod fsck;
pub mod ingest;
pub mod snapshot;
pub mod source;
pub(crate) mod telemetry;

pub use delta::{append_tables, compact, frame_count, AppendOutcome};
pub use error::StoreError;
pub use format::{
    SectionDir, SectionDirV3, SectionEntry, SectionRange, SnapshotHeader, SNAPSHOT_FORMAT_V2,
    SNAPSHOT_FORMAT_VERSION,
};
pub use fsck::{fsck, fsck_repair, FsckProblem, FsckReport};
pub use ingest::{ingest_tables, IngestOptions, IngestedLake};
pub use snapshot::{load_degraded, LoadedLake, LshSlot, QuarantinedTable, SnapshotStat};
pub use source::{InMemory, LakeSource, SnapshotFile};

/// Convenience: open just the [`gent_discovery::DataLake`] from a snapshot,
/// discarding any stored LSH index.
///
/// # Examples
///
/// ```no_run
/// # fn main() -> Result<(), gent_store::StoreError> {
/// let lake = gent_store::open_lake("lake.gentlake".as_ref())?;
/// println!("{} tables, {} indexed values", lake.len(), lake.index_len());
/// # Ok(()) }
/// ```
pub fn open_lake(path: &std::path::Path) -> Result<gent_discovery::DataLake, StoreError> {
    Ok(snapshot::load(path)?.lake)
}

/// The name a snapshot registers under when the caller does not pick one:
/// the file stem, sanitised to the serve tier's routing alphabet
/// (alphanumerics, `-`, `_`; anything else becomes `_`; an empty stem
/// becomes `lake`). `gent serve --lake a.gentlake --lake b.gentlake` routes
/// by these names.
///
/// # Examples
///
/// ```
/// assert_eq!(gent_store::default_lake_name("/data/tp-tr.gentlake".as_ref()), "tp-tr");
/// assert_eq!(gent_store::default_lake_name("weird name!.gentlake".as_ref()), "weird_name_");
/// ```
pub fn default_lake_name(path: &std::path::Path) -> String {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    let cleaned: String = stem
        .chars()
        .map(|c| if c.is_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    if cleaned.is_empty() {
        "lake".to_string()
    } else {
        cleaned
    }
}
