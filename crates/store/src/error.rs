//! Error type for the store layer.

use gent_table::TableError;
use std::fmt;

/// Errors produced while saving, loading or ingesting lake snapshots.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure, with the offending path for context.
    Io {
        /// The path being read or written.
        path: String,
        /// The underlying error.
        message: String,
    },
    /// A table-layer failure (decode, schema rebuild).
    Table(TableError),
    /// The file is not a lake snapshot or has been damaged.
    Corrupt(String),
    /// The snapshot was written by an incompatible format version.
    Version {
        /// Version found in the file.
        found: u16,
        /// Version this build reads.
        supported: u16,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "i/o error on `{path}`: {message}"),
            StoreError::Table(e) => write!(f, "table error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            StoreError::Version { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads {supported})"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<TableError> for StoreError {
    fn from(e: TableError) -> Self {
        StoreError::Table(e)
    }
}

impl StoreError {
    /// Wrap an I/O error with its path.
    pub fn io(path: &std::path::Path, e: std::io::Error) -> Self {
        StoreError::Io { path: path.display().to_string(), message: e.to_string() }
    }
}
