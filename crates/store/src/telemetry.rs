//! Cached handles into the global `gent-obs` metrics registry.
//!
//! Mirrors `gent-core`'s telemetry module: registration locks once per
//! process, the open/decode paths only touch atomics afterwards.

use gent_obs::{Counter, Histogram, LATENCY_BOUNDS_US};
use std::sync::{Arc, OnceLock};

/// Every instrument the store records into, registered once.
pub(crate) struct Instruments {
    /// `gent_store_snapshot_opens_total` — snapshots opened (v1 + v2).
    pub opens: Arc<Counter>,
    /// `gent_store_snapshot_open_bytes_total` — bytes read + checksummed
    /// across all opens.
    pub open_bytes: Arc<Counter>,
    /// `gent_store_snapshot_open_duration_us` — wall-clock per open
    /// (checksum pass + preamble decode; excludes the filesystem read for
    /// `load_buf` callers).
    pub open_duration: Arc<Histogram>,
    /// `gent_store_lsh_decodes_total` — LSH band sections actually decoded
    /// (a [`crate::LshSlot::force`] that hits the memoized cell does not
    /// count).
    pub lsh_decodes: Arc<Counter>,
    /// `gent_store_delta_appends_total` — delta frames appended to v3
    /// snapshots by this process.
    pub delta_appends: Arc<Counter>,
    /// `gent_store_torn_tails_recovered_total` — torn (uncommitted) tail
    /// frames detected and dropped during open or append recovery.
    pub torn_tails: Arc<Counter>,
    /// `gent_store_compactions_total` — delta frames folded back into a
    /// clean base file.
    pub compactions: Arc<Counter>,
}

/// The process-wide instrument set (registered on first use).
pub(crate) fn instruments() -> &'static Instruments {
    static CELL: OnceLock<Instruments> = OnceLock::new();
    CELL.get_or_init(|| {
        let reg = gent_obs::registry();
        Instruments {
            opens: reg.counter(
                "gent_store_snapshot_opens_total",
                "Snapshot files opened by this process",
                &[],
            ),
            open_bytes: reg.counter(
                "gent_store_snapshot_open_bytes_total",
                "Snapshot bytes read and checksummed across all opens",
                &[],
            ),
            open_duration: reg.histogram(
                "gent_store_snapshot_open_duration_us",
                "Wall-clock time per snapshot open (microseconds)",
                &[],
                LATENCY_BOUNDS_US,
            ),
            lsh_decodes: reg.counter(
                "gent_store_lsh_decodes_total",
                "LSH band sections decoded (memoized forces not counted)",
                &[],
            ),
            delta_appends: reg.counter(
                "gent_store_delta_appends_total",
                "Delta frames appended to v3 snapshots",
                &[],
            ),
            torn_tails: reg.counter(
                "gent_store_torn_tails_recovered_total",
                "Torn tail frames detected and dropped during recovery",
                &[],
            ),
            compactions: reg.counter(
                "gent_store_compactions_total",
                "Delta frames folded back into a clean base snapshot",
                &[],
            ),
        }
    })
}
