//! Saving and loading lake snapshots.
//!
//! A snapshot persists a [`DataLake`] *together with its derived
//! structures* — the inverted value index and, optionally, the LSH Ensemble
//! index. Since format v2 the open path is **zero-copy and lazy**: [`load`]
//! reads the file once into a shared [`LakeBuf`], verifies the whole-file
//! checksum, and then builds *views* instead of copies — the
//! [`FrozenIndex`] arrays are anchored directly in the buffer, each table
//! becomes a lazy [`TableSlot`] whose cells decode on first touch, and the
//! LSH export stays undecoded until someone asks for it
//! ([`LshSlot::force`]). Opening a lake therefore costs one sequential
//! read + checksum pass + per-table preamble decode, independent of how
//! many cells the lake holds; a reclaim touching three tables decodes
//! three. [`DataLake::decode_all`] restores the old eager behavior.
//! Reopened lakes answer every retrieval query identically to the lake
//! they were saved from (see `tests/snapshot_roundtrip.rs` and
//! `tests/lazy_open.rs` at the workspace root).

use std::fs;
use std::io::Read;
use std::ops::Range;
use std::path::Path;
use std::sync::{Arc, OnceLock};

use gent_discovery::lake::Posting;
use gent_discovery::{
    DataLake, FrozenIndex, LshColumnExport, LshConfig, LshEnsembleIndex, LshIndexExport,
    LshPartitionExport,
};
use gent_table::binary::{
    decode_string_table, encode_table_columnar, fold64, BinReader, BinWriter, StringTableBuilder,
    TableSlot,
};
use gent_table::view::{ByteView, LakeBuf, LeWord, WordView};

use crate::error::StoreError;
use crate::format::{
    SectionDir, SectionRange, SnapshotHeader, FLAG_HAS_LSH, HEADER_LEN, SNAPSHOT_FORMAT_V1,
    SNAPSHOT_FORMAT_VERSION, TRAILER_LEN,
};

/// A lake loaded from a snapshot: the tables + inverted index, and a slot
/// for the LSH index when the snapshot carries one.
#[derive(Debug, Clone)]
pub struct LoadedLake {
    /// The lake, ready for discovery (index already served from the
    /// snapshot buffer; tables decode lazily for v2 snapshots).
    pub lake: DataLake,
    /// The LSH index slot: present-but-undecoded for v2 snapshots with
    /// bands, eager for in-memory builds and v1 snapshots.
    pub lsh: LshSlot,
}

impl LoadedLake {
    /// Wrap an already-materialized lake (+ optional LSH index) — the
    /// in-memory ingest path.
    pub fn eager(lake: DataLake, lsh: Option<LshEnsembleIndex>) -> Self {
        LoadedLake { lake, lsh: LshSlot::eager(lsh) }
    }
}

/// The LSH Ensemble export of a snapshot, decoded **once, on first use**.
///
/// The serve daemon keeps bands alive for its whole life but may never be
/// asked for approximate retrieval; statting a lake must not pay for band
/// reconstruction. The slot therefore carries the band section as a range
/// of the shared snapshot buffer plus the column count (from the header),
/// and [`LshSlot::force`] memoizes the real decode.
#[derive(Debug, Clone)]
pub struct LshSlot {
    lazy: Option<(LakeBuf, Range<usize>)>,
    n_columns: u32,
    cell: OnceLock<Result<Option<LshEnsembleIndex>, String>>,
}

impl LshSlot {
    /// Wrap an already-built (or absent) index.
    pub fn eager(lsh: Option<LshEnsembleIndex>) -> Self {
        let n_columns = lsh.as_ref().map_or(0, |l| l.n_columns() as u32);
        let slot = LshSlot { lazy: None, n_columns, cell: OnceLock::new() };
        let _ = slot.cell.set(Ok(lsh));
        slot
    }

    /// A lazy slot over the band section of an opened snapshot.
    fn lazy(buf: LakeBuf, range: Range<usize>, n_columns: u32) -> Self {
        LshSlot { lazy: Some((buf, range)), n_columns, cell: OnceLock::new() }
    }

    /// Columns summarised by the bands (0 when absent) — available without
    /// decoding.
    pub fn n_columns(&self) -> u32 {
        self.n_columns
    }

    /// True once the band section has been decoded *successfully* (always
    /// true for eager slots); a memoized decode failure reports false, so
    /// the serve gauge cannot claim bands that never materialized.
    pub fn is_decoded(&self) -> bool {
        matches!(self.cell.get(), Some(Ok(_)))
    }

    /// The index, decoding (and memoizing) the band section on first call;
    /// `Ok(None)` when the snapshot carries no bands.
    pub fn force(&self) -> Result<Option<&LshEnsembleIndex>, StoreError> {
        self.cell
            .get_or_init(|| self.decode())
            .as_ref()
            .map(|o| o.as_ref())
            .map_err(|m| StoreError::Corrupt(m.clone()))
    }

    fn decode(&self) -> Result<Option<LshEnsembleIndex>, String> {
        let Some((buf, range)) = &self.lazy else {
            return Ok(None); // eager slot: cell was pre-set, not reachable
        };
        crate::telemetry::instruments().lsh_decodes.inc();
        let mut r = BinReader::new(buf.slice(range.clone()));
        let export = decode_lsh(&mut r).map_err(|e| e.to_string())?;
        if r.remaining() != 0 {
            return Err(format!("{} trailing bytes after the LSH section", r.remaining()));
        }
        if export.columns.len() as u32 != self.n_columns {
            return Err(format!(
                "LSH section holds {} columns, header promised {}",
                export.columns.len(),
                self.n_columns
            ));
        }
        LshEnsembleIndex::from_export(export).map(Some)
    }
}

/// Summary of a snapshot file, read from the fixed header only — `lake stat`
/// on a multi-gigabyte snapshot touches a few dozen bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStat {
    /// The decoded header.
    pub header: SnapshotHeader,
    /// Total file size in bytes.
    pub file_bytes: u64,
}

/// The body sections of a snapshot, encoded but not yet framed: the
/// version-independent middle of both writers.
struct EncodedBody {
    header: SnapshotHeader,
    strtab: Vec<u8>,
    tables: Vec<Vec<u8>>,
    index: Vec<u8>,
    lsh: Option<Vec<u8>>,
}

fn encode_body(
    lake: &DataLake,
    lsh: Option<&LshEnsembleIndex>,
    version: u16,
) -> Result<EncodedBody, StoreError> {
    // A lazily-opened lake materializes every remaining slot up front so
    // any (checksum-defeating) cell corruption surfaces as an error here
    // rather than a panic mid-encode.
    lake.decode_all(1)?;
    let lsh_export = lsh.map(|i| i.export());
    let header = SnapshotHeader {
        version,
        flags: if lsh_export.is_some() { FLAG_HAS_LSH } else { 0 },
        n_tables: lake.len() as u32,
        total_rows: lake.slots().iter().map(|s| s.n_rows() as u64).sum(),
        total_cols: lake.slots().iter().map(|s| s.n_cols() as u64).sum(),
        n_index_entries: lake.index_len() as u64,
        n_lsh_columns: lsh_export.as_ref().map_or(0, |e| e.columns.len() as u32),
    };

    // Tables are encoded before the string table they fill is serialized
    // (decode needs the strings before the first cell).
    let mut strings = StringTableBuilder::new();
    let mut tables = Vec::with_capacity(lake.len());
    for t in lake.tables_iter() {
        let mut w = BinWriter::new();
        encode_table_columnar(t, &mut w, &mut strings);
        tables.push(w.into_bytes());
    }
    let mut strtab = BinWriter::new();
    strings.encode(&mut strtab);

    // The index is persisted in its serving layout (FrozenIndex arrays);
    // freezing sorts entries canonically, so identical lakes → identical
    // bytes regardless of hash-map iteration order. An already-frozen lake
    // (one loaded from a snapshot) serializes its buffer-backed arrays with
    // bulk copies — no re-encode.
    let frozen_built;
    let frozen = match lake.frozen_index() {
        Some(f) => f,
        None => {
            frozen_built = lake.freeze_index();
            &frozen_built
        }
    };
    let mut index = BinWriter::new();
    frozen.encode(&mut index);

    let lsh_bytes = lsh_export.as_ref().map(|e| {
        let mut w = BinWriter::new();
        encode_lsh(e, &mut w);
        w.into_bytes()
    });

    Ok(EncodedBody {
        header,
        strtab: strtab.into_bytes(),
        tables,
        index: index.into_bytes(),
        lsh: lsh_bytes,
    })
}

/// Serialize `lake` (and optionally a built LSH index) to `path` in the
/// current (v2) format. The write is atomic: bytes are assembled in memory,
/// written to a temporary sibling file, and renamed over `path`, so a crash
/// mid-save can neither leave a half-written snapshot nor destroy the
/// previous one.
///
/// # Examples
///
/// ```no_run
/// use gent_discovery::DataLake;
/// use gent_store::snapshot;
/// # fn main() -> Result<(), gent_store::StoreError> {
/// # let tables = vec![];
/// let lake = DataLake::from_tables(tables);
/// snapshot::save("lake.gentlake".as_ref(), &lake, None)?;
/// let reopened = snapshot::load("lake.gentlake".as_ref())?;
/// assert_eq!(reopened.lake.len(), lake.len());
/// # Ok(()) }
/// ```
pub fn save(
    path: &Path,
    lake: &DataLake,
    lsh: Option<&LshEnsembleIndex>,
) -> Result<(), StoreError> {
    let body = encode_body(lake, lsh, SNAPSHOT_FORMAT_VERSION)?;

    let mut w = BinWriter::new();
    body.header.encode(&mut w);
    // Section directory: absolute offsets, contiguous, in body order.
    let mut offset = (HEADER_LEN + SectionDir::encoded_len(body.tables.len())) as u64;
    let mut claim = |len: usize| {
        let s = SectionRange { offset, len: len as u64 };
        offset += len as u64;
        s
    };
    let dir = SectionDir {
        strtab: claim(body.strtab.len()),
        tables: body.tables.iter().map(|t| claim(t.len())).collect(),
        index: claim(body.index.len()),
        lsh: body.lsh.as_ref().map(|l| claim(l.len())),
    };
    dir.encode(&mut w);
    w.put_raw(&body.strtab);
    for t in &body.tables {
        w.put_raw(t);
    }
    w.put_raw(&body.index);
    if let Some(l) = &body.lsh {
        w.put_raw(l);
    }
    let checksum = fold64(w.as_bytes());
    w.put_u64(checksum);
    write_atomic(path, w.as_bytes())
}

/// Serialize in the **legacy v1 layout** (no section directory, eager-only
/// decode). Kept so the v1 reader's back-compatibility is a tested fact
/// rather than a claim; production writes always use [`save`].
pub fn save_legacy_v1(
    path: &Path,
    lake: &DataLake,
    lsh: Option<&LshEnsembleIndex>,
) -> Result<(), StoreError> {
    let body = encode_body(lake, lsh, SNAPSHOT_FORMAT_V1)?;
    let mut w = BinWriter::new();
    body.header.encode(&mut w);
    w.put_raw(&body.strtab);
    for t in &body.tables {
        w.put_raw(t);
    }
    w.put_raw(&body.index);
    if let Some(l) = &body.lsh {
        w.put_raw(l);
    }
    let checksum = fold64(w.as_bytes());
    w.put_u64(checksum);
    write_atomic(path, w.as_bytes())
}

/// Write-then-rename keeps the previous snapshot intact until the new one
/// is fully on disk: the bytes are fsynced before the rename (so a crash
/// can only ever leave a torn *tmp* file, never a torn snapshot), the
/// parent directory is fsynced after it (so the rename itself survives a
/// power cut), and a stale tmp from an earlier crash is cleared on entry
/// instead of failing the save.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("gentlake.tmp");
    if tmp.exists() {
        fs::remove_file(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
    }
    let result = write_atomic_inner(path, &tmp, bytes);
    if result.is_err() {
        // Whether the write or the rename failed, never leave the tmp
        // behind — the old snapshot stays the only *.gentlake file.
        let _ = fs::remove_file(&tmp);
    }
    result
}

fn write_atomic_inner(path: &Path, tmp: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    use std::io::Write;
    if let Some(e) = gent_faults::fail_io!("store.save.write") {
        return Err(StoreError::io(tmp, e));
    }
    let mut file = fs::File::create(tmp).map_err(|e| StoreError::io(tmp, e))?;
    file.write_all(bytes).map_err(|e| StoreError::io(tmp, e))?;
    if let Some(e) = gent_faults::fail_io!("store.save.sync") {
        return Err(StoreError::io(tmp, e));
    }
    file.sync_all().map_err(|e| StoreError::io(tmp, e))?;
    drop(file);
    if let Some(e) = gent_faults::fail_io!("store.save.rename") {
        return Err(StoreError::io(path, e));
    }
    fs::rename(tmp, path).map_err(|e| StoreError::io(path, e))?;
    sync_parent_dir(path)
}

/// Fsync the directory holding `path` so the rename that just landed there
/// is durable. Directory handles can only be fsynced on unix; elsewhere the
/// rename's atomicity is the best available guarantee.
fn sync_parent_dir(path: &Path) -> Result<(), StoreError> {
    #[cfg(unix)]
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        let dir = fs::File::open(parent).map_err(|e| StoreError::io(parent, e))?;
        dir.sync_all().map_err(|e| StoreError::io(parent, e))?;
    }
    Ok(())
}

/// Load a snapshot written by [`save`] (or a legacy v1 file). Verifies
/// magic, version and the whole-file checksum, then hands v2 files to the
/// zero-copy lazy loader and v1 files to the eager decoder.
pub fn load(path: &Path) -> Result<LoadedLake, StoreError> {
    if let Some(e) = gent_faults::fail_io!("store.load.read") {
        return Err(StoreError::io(path, e));
    }
    let bytes = fs::read(path).map_err(|e| StoreError::io(path, e))?;
    load_buf(LakeBuf::new(bytes))
}

/// Open a snapshot already in memory — what [`load`] does after its one
/// `read`. Exposed so tests and benches can exercise the open path (and
/// hostile inputs) without round-tripping the filesystem.
pub fn load_buf(buf: LakeBuf) -> Result<LoadedLake, StoreError> {
    let ins = crate::telemetry::instruments();
    let _span = gent_obs::span_timed("snapshot_open", ins.open_duration.clone());
    ins.opens.inc();
    ins.open_bytes.add(buf.len() as u64);
    let bytes = buf.as_slice();
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(StoreError::Corrupt(format!(
            "file is {} bytes — too short for a snapshot",
            bytes.len()
        )));
    }
    let header = SnapshotHeader::decode(bytes)?;
    let body_end = bytes.len() - TRAILER_LEN;
    let mut tail = BinReader::new(&bytes[body_end..]);
    let stored = tail.get_u64().expect("trailer length checked");
    let computed = fold64(&bytes[..body_end]);
    if stored != computed {
        return Err(StoreError::Corrupt(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    match header.version {
        SNAPSHOT_FORMAT_V1 => load_v1(&buf, &header),
        SNAPSHOT_FORMAT_VERSION => load_v2(buf, &header),
        v => Err(StoreError::Version { found: v, supported: SNAPSHOT_FORMAT_VERSION }),
    }
}

/// The zero-copy open: build views into `buf`, decode only preambles and
/// the posting arena, defer everything else.
fn load_v2(buf: LakeBuf, header: &SnapshotHeader) -> Result<LoadedLake, StoreError> {
    let n_tables = header.n_tables as usize;
    let dir_len = SectionDir::encoded_len(n_tables);
    if (buf.len() as u64) < (HEADER_LEN + dir_len + TRAILER_LEN) as u64 {
        return Err(StoreError::Corrupt(format!(
            "file is {} bytes — too short for a {n_tables}-table section directory",
            buf.len()
        )));
    }
    let mut dr = BinReader::new(buf.slice(HEADER_LEN..HEADER_LEN + dir_len));
    let dir = SectionDir::decode(&mut dr, n_tables, header.has_lsh(), buf.len())?;

    // String table: decoded eagerly (it is shared by every lazy slot and
    // typically small relative to cell payloads).
    let mut r = BinReader::new(buf.slice(dir.strtab.range()));
    let strings: Arc<[Arc<str>]> = decode_string_table(&mut r)?.into();
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after the string table",
            r.remaining()
        )));
    }

    // Tables: one lazy slot per directory entry; only the preamble (name,
    // schema, row count) is decoded here.
    let mut slots = Vec::with_capacity(n_tables);
    for t in &dir.tables {
        slots.push(TableSlot::lazy(buf.clone(), t.range(), strings.clone())?);
    }
    let (rows, cols) =
        slots.iter().fold((0u64, 0u64), |(r, c), s| (r + s.n_rows() as u64, c + s.n_cols() as u64));
    if rows != header.total_rows || cols != header.total_cols {
        return Err(StoreError::Corrupt(format!(
            "table preambles sum to {rows} rows / {cols} columns, header promised {} / {}",
            header.total_rows, header.total_cols
        )));
    }

    // Index: the open-addressing arrays stay in the buffer as views; only
    // the posting arena (struct-of-arrays on disk, `&[Posting]` at runtime)
    // is materialized — and validated against the slot schemas, which are
    // known without decoding a single cell.
    let base = dir.index.offset as usize;
    let mut r = BinReader::new(buf.slice(dir.index.range()));
    let buckets = read_view::<u32>(&mut r, &buf, base)?;
    let hashes = read_view::<u64>(&mut r, &buf, base)?;
    if hashes.len() as u64 != header.n_index_entries {
        return Err(StoreError::Corrupt(format!(
            "index has {} entries, header promised {}",
            hashes.len(),
            header.n_index_entries
        )));
    }
    let value_offsets = read_view::<u32>(&mut r, &buf, base)?;
    let blob_len = r.get_u64()? as usize;
    let blob_start = base + r.position();
    r.take(blob_len)?;
    let blob = ByteView::view(buf.clone(), blob_start..blob_start + blob_len)
        .map_err(StoreError::Corrupt)?;
    let posting_offsets = read_view::<u32>(&mut r, &buf, base)?;
    let arena_tables = r.get_u32_array()?;
    let arena_cols = r.get_u16_array()?;
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after the index section",
            r.remaining()
        )));
    }
    let arena =
        build_arena(&arena_tables, &arena_cols, |ti| slots.get(ti).map(|s| s.n_cols() as u16))?;
    let frozen =
        FrozenIndex::from_views(buckets, hashes, value_offsets, blob, posting_offsets, arena)
            .map_err(StoreError::Corrupt)?;

    let lsh = match dir.lsh {
        Some(section) => LshSlot::lazy(buf.clone(), section.range(), header.n_lsh_columns),
        None => LshSlot::eager(None),
    };

    Ok(LoadedLake { lake: DataLake::from_slots(slots, frozen), lsh })
}

/// The legacy eager decoder for v1 files (no section directory: sections
/// must be decoded sequentially, so everything materializes at open).
fn load_v1(buf: &LakeBuf, header: &SnapshotHeader) -> Result<LoadedLake, StoreError> {
    let bytes = buf.as_slice();
    let body_end = bytes.len() - TRAILER_LEN;
    let mut r = BinReader::new(&bytes[HEADER_LEN..body_end]);

    let strings = decode_string_table(&mut r)?;
    // Every count that sizes an allocation is sanity-checked against the
    // bytes actually present, so a crafted header cannot force a huge
    // `with_capacity` before per-entry reads fail.
    if header.n_tables as usize > r.remaining() {
        return Err(StoreError::Corrupt(format!(
            "header claims {} tables with {} bytes left",
            header.n_tables,
            r.remaining()
        )));
    }
    let mut tables = Vec::with_capacity(header.n_tables as usize);
    for _ in 0..header.n_tables {
        tables.push(gent_table::binary::decode_table_columnar(&mut r, &strings)?);
    }

    let buckets = r.get_u32_array()?;
    let hashes = r.get_u64_array()?;
    if hashes.len() as u64 != header.n_index_entries {
        return Err(StoreError::Corrupt(format!(
            "index has {} entries, header promised {}",
            hashes.len(),
            header.n_index_entries
        )));
    }
    let value_offsets = r.get_u32_array()?;
    let blob_len = r.get_u64()? as usize;
    let blob = r.take(blob_len)?.to_vec();
    let posting_offsets = r.get_u32_array()?;
    let arena_tables = r.get_u32_array()?;
    let arena_cols = r.get_u16_array()?;
    let arena =
        build_arena(&arena_tables, &arena_cols, |ti| tables.get(ti).map(|t| t.n_cols() as u16))?;
    let frozen =
        FrozenIndex::from_raw_parts(buckets, hashes, value_offsets, blob, posting_offsets, arena)
            .map_err(StoreError::Corrupt)?;

    let lsh = if header.has_lsh() {
        let export = decode_lsh(&mut r)?;
        if export.columns.len() as u32 != header.n_lsh_columns {
            return Err(StoreError::Corrupt(format!(
                "LSH section holds {} columns, header promised {}",
                export.columns.len(),
                header.n_lsh_columns
            )));
        }
        Some(LshEnsembleIndex::from_export(export).map_err(StoreError::Corrupt)?)
    } else {
        None
    };

    if r.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after snapshot body",
            r.remaining()
        )));
    }

    Ok(LoadedLake { lake: DataLake::from_frozen(tables, frozen), lsh: LshSlot::eager(lsh) })
}

/// Zip the struct-of-arrays posting encoding back into `Posting`s,
/// validating every reference against the lake's (metadata-only) schema.
fn build_arena(
    arena_tables: &[u32],
    arena_cols: &[u16],
    n_cols_of: impl Fn(usize) -> Option<u16>,
) -> Result<Vec<Posting>, StoreError> {
    if arena_tables.len() != arena_cols.len() {
        return Err(StoreError::Corrupt(format!(
            "posting arrays disagree: {} tables vs {} columns",
            arena_tables.len(),
            arena_cols.len()
        )));
    }
    let mut arena = Vec::with_capacity(arena_tables.len());
    for (&table, &column) in arena_tables.iter().zip(arena_cols) {
        match n_cols_of(table as usize) {
            Some(nc) if column < nc => arena.push(Posting { table, column }),
            Some(_) => {
                return Err(StoreError::Corrupt(format!(
                    "posting references column {column} of table {table} (too few columns)"
                )))
            }
            None => {
                return Err(StoreError::Corrupt(format!(
                    "posting references table {table}, beyond the lake's table count"
                )))
            }
        }
    }
    Ok(arena)
}

/// Read a length-prefixed word array (`put_u32_array`/`put_u64_array`
/// wire format) as a zero-copy view anchored at `base + position` of
/// `buf`, advancing the reader past it.
fn read_view<T: LeWord>(
    r: &mut BinReader<'_>,
    buf: &LakeBuf,
    base: usize,
) -> Result<WordView<T>, StoreError> {
    let n = r.get_u64()? as usize;
    let start = base + r.position();
    let bytes = n.checked_mul(T::BYTES).ok_or_else(|| {
        StoreError::Corrupt(format!("{}-byte word array of {n} elements overflows", T::BYTES))
    })?;
    r.take(bytes)?;
    WordView::view(buf.clone(), start, n).map_err(StoreError::Corrupt)
}

/// Read a snapshot's summary from its fixed header without loading (or
/// checksumming) the body.
pub fn stat(path: &Path) -> Result<SnapshotStat, StoreError> {
    let mut f = fs::File::open(path).map_err(|e| StoreError::io(path, e))?;
    let file_bytes = f.metadata().map_err(|e| StoreError::io(path, e))?.len();
    let mut head = vec![0u8; HEADER_LEN];
    f.read_exact(&mut head).map_err(|_| {
        StoreError::Corrupt(format!("file is {file_bytes} bytes — too short for a snapshot"))
    })?;
    Ok(SnapshotStat { header: SnapshotHeader::decode(&head)?, file_bytes })
}

fn encode_lsh(e: &LshIndexExport, w: &mut BinWriter) {
    w.put_u32(e.cfg.num_perm as u32);
    w.put_u32(e.cfg.num_bands as u32);
    w.put_u32(e.cfg.num_partitions as u32);
    w.put_u64(e.cfg.seed);
    w.put_u32(e.cfg.min_column_size as u32);

    w.put_u32(e.columns.len() as u32);
    for c in &e.columns {
        w.put_u32(c.posting.table);
        w.put_u16(c.posting.column);
        w.put_u64(c.size);
        for &slot in &c.slots {
            w.put_u64(slot);
        }
    }

    w.put_u32(e.partitions.len() as u32);
    for p in &e.partitions {
        w.put_u32(p.members.len() as u32);
        for &m in &p.members {
            w.put_u32(m);
        }
        w.put_u64(p.max_size);
        for band in &p.buckets {
            w.put_u32(band.len() as u32);
            for (hash, members) in band {
                w.put_u64(*hash);
                w.put_u32(members.len() as u32);
                for &m in members {
                    w.put_u32(m);
                }
            }
        }
    }
}

fn decode_lsh(r: &mut BinReader<'_>) -> Result<LshIndexExport, StoreError> {
    let num_perm = r.get_u32()? as usize;
    let num_bands = r.get_u32()? as usize;
    let num_partitions = r.get_u32()? as usize;
    let seed = r.get_u64()?;
    let min_column_size = r.get_u32()? as usize;
    let cfg = LshConfig { num_perm, num_bands, num_partitions, seed, min_column_size };
    if num_perm == 0 || num_perm > 1 << 20 {
        return Err(StoreError::Corrupt(format!("implausible LSH num_perm {num_perm}")));
    }
    if num_bands == 0 || num_bands > num_perm {
        return Err(StoreError::Corrupt(format!("implausible LSH num_bands {num_bands}")));
    }

    // As in `load`: never size an allocation from an on-disk count without
    // checking the bytes are actually there (each entry costs ≥ 1 byte).
    let guard = |n: usize, left: usize, what: &str| -> Result<(), StoreError> {
        if n > left {
            Err(StoreError::Corrupt(format!(
                "LSH section claims {n} {what} with {left} bytes left"
            )))
        } else {
            Ok(())
        }
    };

    let n_columns = r.get_u32()? as usize;
    guard(n_columns, r.remaining(), "columns")?;
    let mut columns = Vec::with_capacity(n_columns);
    for _ in 0..n_columns {
        let table = r.get_u32()?;
        let column = r.get_u16()?;
        let size = r.get_u64()?;
        let slots = r.get_u64s(num_perm)?;
        columns.push(LshColumnExport { posting: Posting { table, column }, size, slots });
    }

    let n_parts = r.get_u32()? as usize;
    guard(n_parts, r.remaining(), "partitions")?;
    let mut partitions = Vec::with_capacity(n_parts);
    for _ in 0..n_parts {
        let n_members = r.get_u32()? as usize;
        guard(n_members, r.remaining(), "members")?;
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            members.push(r.get_u32()?);
        }
        let max_size = r.get_u64()?;
        let mut buckets = Vec::with_capacity(num_bands);
        for _ in 0..num_bands {
            let n_buckets = r.get_u32()? as usize;
            guard(n_buckets, r.remaining(), "buckets")?;
            let mut band = Vec::with_capacity(n_buckets);
            for _ in 0..n_buckets {
                let hash = r.get_u64()?;
                let n = r.get_u32()? as usize;
                guard(n, r.remaining(), "bucket members")?;
                let mut ms = Vec::with_capacity(n);
                for _ in 0..n {
                    ms.push(r.get_u32()?);
                }
                band.push((hash, ms));
            }
            buckets.push(band);
        }
        partitions.push(LshPartitionExport { members, max_size, buckets });
    }

    Ok(LshIndexExport { cfg, columns, partitions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::{Table, Value as V};
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gent-store-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    fn lake() -> DataLake {
        let a = Table::build(
            "customers",
            &["id", "name"],
            &[],
            (0..40).map(|i| vec![V::Int(i), V::str(format!("c{i}"))]).collect(),
        )
        .unwrap();
        let b = Table::build(
            "orders",
            &["oid", "cust"],
            &[],
            (0..25).map(|i| vec![V::Int(1000 + i), V::Int(i % 7)]).collect(),
        )
        .unwrap();
        DataLake::from_tables(vec![a, b])
    }

    #[test]
    fn save_load_round_trip() {
        let l = lake();
        let path = scratch("roundtrip.gentlake");
        save(&path, &l, None).unwrap();
        let loaded = load(&path).unwrap();
        assert!(loaded.lsh.force().unwrap().is_none());
        assert_eq!(loaded.lake.len(), l.len());
        assert_eq!(loaded.lake.index_len(), l.index_len());
        for probe in [V::Int(3), V::Int(1005), V::str("c7"), V::str("nope")] {
            assert_eq!(loaded.lake.postings(&probe), l.postings(&probe), "postings({probe})");
        }
        assert_eq!(
            loaded.lake.get_by_name("orders").unwrap().rows(),
            l.get_by_name("orders").unwrap().rows()
        );
    }

    /// The acceptance property of the zero-copy open: loading decodes *no*
    /// table cells and no LSH bands; metadata and posting lookups work on
    /// the undecoded lake; touching one table decodes exactly that table.
    #[test]
    fn lazy_open_decodes_nothing_until_touched() {
        let l = lake();
        let lsh = LshEnsembleIndex::build(&l, LshConfig::default());
        let path = scratch("lazy.gentlake");
        save(&path, &l, Some(&lsh)).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.lake.tables_decoded(), 0, "open must not decode tables");
        assert!(!loaded.lsh.is_decoded(), "open must not decode LSH bands");
        assert!(loaded.lsh.n_columns() > 0, "column count available without decode");

        // Metadata + index lookups leave everything undecoded.
        assert_eq!(loaded.lake.len(), 2);
        assert_eq!(loaded.lake.name_of(0), Some("customers"));
        assert_eq!(loaded.lake.slots()[1].n_rows(), 25);
        assert_eq!(loaded.lake.postings(&V::Int(3)), l.postings(&V::Int(3)));
        assert_eq!(loaded.lake.tables_decoded(), 0);

        // Touching one table decodes exactly one.
        let orders = loaded.lake.get_by_name("orders").unwrap();
        assert_eq!(orders.rows(), l.get_by_name("orders").unwrap().rows());
        assert_eq!(loaded.lake.tables_decoded(), 1);

        // decode_all restores the eager world.
        loaded.lake.decode_all(2).unwrap();
        assert_eq!(loaded.lake.tables_decoded(), 2);
        let warm = loaded.lsh.force().unwrap().expect("lsh present");
        assert_eq!(warm.export(), lsh.export());
    }

    #[test]
    fn save_load_with_lsh() {
        let l = lake();
        let lsh = LshEnsembleIndex::build(&l, LshConfig::default());
        let path = scratch("with-lsh.gentlake");
        save(&path, &l, Some(&lsh)).unwrap();
        let loaded = load(&path).unwrap();
        let warm = loaded.lsh.force().unwrap().expect("lsh present");
        assert_eq!(warm.export(), lsh.export());
    }

    /// v1 files (no section directory) stay readable, and answer exactly
    /// like the v2 open of the same lake.
    #[test]
    fn legacy_v1_snapshot_still_loads() {
        let l = lake();
        let lsh = LshEnsembleIndex::build(&l, LshConfig::default());
        let p1 = scratch("legacy-v1.gentlake");
        let p2 = scratch("current-v2.gentlake");
        save_legacy_v1(&p1, &l, Some(&lsh)).unwrap();
        save(&p2, &l, Some(&lsh)).unwrap();
        let v1 = load(&p1).unwrap();
        let v2 = load(&p2).unwrap();
        assert_eq!(stat(&p1).unwrap().header.version, SNAPSHOT_FORMAT_V1);
        // v1 decodes eagerly by construction.
        assert_eq!(v1.lake.tables_decoded(), v1.lake.len());
        assert_eq!(v1.lake.index_len(), v2.lake.index_len());
        for probe in [V::Int(3), V::Int(1005), V::str("c7")] {
            assert_eq!(v1.lake.postings(&probe), v2.lake.postings(&probe), "postings({probe})");
        }
        assert_eq!(
            v1.lake.get_by_name("customers").unwrap().rows(),
            v2.lake.get_by_name("customers").unwrap().rows()
        );
        assert_eq!(
            v1.lsh.force().unwrap().unwrap().export(),
            v2.lsh.force().unwrap().unwrap().export()
        );
    }

    /// Resaving a lazily-opened lake reproduces the file byte-for-byte:
    /// lazy decode is lossless and the buffer-backed index re-encodes via
    /// the bulk-copy path.
    #[test]
    fn resave_of_lazy_lake_is_byte_identical() {
        let l = lake();
        let lsh = LshEnsembleIndex::build(&l, LshConfig::default());
        let p1 = scratch("resave-1.gentlake");
        let p2 = scratch("resave-2.gentlake");
        save(&p1, &l, Some(&lsh)).unwrap();
        let loaded = load(&p1).unwrap();
        let relsh = loaded.lsh.force().unwrap().cloned();
        save(&p2, &loaded.lake, relsh.as_ref()).unwrap();
        assert_eq!(fs::read(&p1).unwrap(), fs::read(&p2).unwrap());
    }

    #[test]
    fn stat_reads_header_only() {
        let l = lake();
        let path = scratch("stat.gentlake");
        save(&path, &l, None).unwrap();
        let s = stat(&path).unwrap();
        assert_eq!(s.header.version, SNAPSHOT_FORMAT_VERSION);
        assert_eq!(s.header.n_tables, 2);
        assert_eq!(s.header.total_rows, 65);
        assert_eq!(s.header.total_cols, 4);
        assert!(!s.header.has_lsh());
        assert_eq!(s.header.n_index_entries as usize, l.index_len());
        assert!(s.file_bytes > (HEADER_LEN + TRAILER_LEN) as u64);
    }

    #[test]
    fn identical_lakes_produce_identical_bytes() {
        let p1 = scratch("stable-1.gentlake");
        let p2 = scratch("stable-2.gentlake");
        save(&p1, &lake(), None).unwrap();
        save(&p2, &lake(), None).unwrap();
        assert_eq!(fs::read(&p1).unwrap(), fs::read(&p2).unwrap());
    }

    #[test]
    fn corruption_detected_on_load() {
        let path = scratch("corrupt.gentlake");
        save(&path, &lake(), None).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn non_snapshot_file_rejected() {
        let path = scratch("not-a-snapshot.txt");
        fs::write(&path, b"hello,world\n1,2\n").unwrap();
        assert!(matches!(load(&path), Err(StoreError::Corrupt(_))));
        assert!(matches!(stat(&path), Err(StoreError::Corrupt(_))));
    }
}
