//! Saving and loading lake snapshots.
//!
//! A snapshot persists a [`DataLake`] *together with its derived
//! structures* — the inverted value index and, optionally, the LSH Ensemble
//! index — so reopening a lake costs one sequential read plus decode instead
//! of re-scanning and re-hashing every cell. Reopened lakes answer every
//! retrieval query identically to the lake they were saved from (see
//! `tests/snapshot_roundtrip.rs`).

use std::fs;
use std::io::Read;
use std::path::Path;

use gent_discovery::lake::Posting;
use gent_discovery::{
    DataLake, FrozenIndex, LshColumnExport, LshConfig, LshEnsembleIndex, LshIndexExport,
    LshPartitionExport,
};
use gent_table::binary::{
    decode_string_table, decode_table_columnar, encode_table_columnar, fold64, BinReader,
    BinWriter, StringTableBuilder,
};

use crate::error::StoreError;
use crate::format::{
    SnapshotHeader, FLAG_HAS_LSH, HEADER_LEN, SNAPSHOT_FORMAT_VERSION, TRAILER_LEN,
};

/// A lake loaded from a snapshot: the tables + inverted index, and the LSH
/// index when the snapshot carries one.
#[derive(Debug, Clone)]
pub struct LoadedLake {
    /// The lake, ready for discovery (index already built).
    pub lake: DataLake,
    /// The warm-started LSH index, if the snapshot was built with one.
    pub lsh: Option<LshEnsembleIndex>,
}

/// Summary of a snapshot file, read from the fixed header only — `lake stat`
/// on a multi-gigabyte snapshot touches a few dozen bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStat {
    /// The decoded header.
    pub header: SnapshotHeader,
    /// Total file size in bytes.
    pub file_bytes: u64,
}

/// Serialize `lake` (and optionally a built LSH index) to `path`.
/// The write is atomic: bytes are assembled in memory, written to a
/// temporary sibling file, and renamed over `path`, so a crash mid-save can
/// neither leave a half-written snapshot nor destroy the previous one.
///
/// # Examples
///
/// ```no_run
/// use gent_discovery::DataLake;
/// use gent_store::snapshot;
/// # fn main() -> Result<(), gent_store::StoreError> {
/// # let tables = vec![];
/// let lake = DataLake::from_tables(tables);
/// snapshot::save("lake.gentlake".as_ref(), &lake, None)?;
/// let reopened = snapshot::load("lake.gentlake".as_ref())?;
/// assert_eq!(reopened.lake.len(), lake.len());
/// # Ok(()) }
/// ```
pub fn save(
    path: &Path,
    lake: &DataLake,
    lsh: Option<&LshEnsembleIndex>,
) -> Result<(), StoreError> {
    let mut w = BinWriter::new();
    let lsh_export = lsh.map(|i| i.export());
    let header = SnapshotHeader {
        version: SNAPSHOT_FORMAT_VERSION,
        flags: if lsh_export.is_some() { FLAG_HAS_LSH } else { 0 },
        n_tables: lake.len() as u32,
        total_rows: lake.tables().iter().map(|t| t.n_rows() as u64).sum(),
        total_cols: lake.tables().iter().map(|t| t.n_cols() as u64).sum(),
        n_index_entries: lake.index_len() as u64,
        n_lsh_columns: lsh_export.as_ref().map_or(0, |e| e.columns.len() as u32),
    };
    header.encode(&mut w);

    // Tables are encoded into a side buffer so the string table they fill
    // can be written first (decode needs it before the first table).
    let mut strings = StringTableBuilder::new();
    let mut tables_w = BinWriter::new();
    for t in lake.tables() {
        encode_table_columnar(t, &mut tables_w, &mut strings);
    }
    strings.encode(&mut w);
    w.put_raw(tables_w.as_bytes());

    // The index is persisted in its serving layout (FrozenIndex arrays);
    // freezing sorts entries canonically, so identical lakes → identical
    // bytes regardless of hash-map iteration order. An already-frozen lake
    // (one loaded from a snapshot) serializes its arrays without copying.
    let frozen_built;
    let frozen = match lake.frozen_index() {
        Some(f) => f,
        None => {
            frozen_built = lake.freeze_index();
            &frozen_built
        }
    };
    let (buckets, hashes, value_offsets, blob, posting_offsets, arena) = frozen.raw_parts();
    w.put_u32_array(buckets);
    w.put_u64_array(hashes);
    w.put_u32_array(value_offsets);
    w.put_u64(blob.len() as u64);
    w.put_raw(blob);
    w.put_u32_array(posting_offsets);
    let arena_tables: Vec<u32> = arena.iter().map(|p| p.table).collect();
    let arena_cols: Vec<u16> = arena.iter().map(|p| p.column).collect();
    w.put_u32_array(&arena_tables);
    w.put_u16_array(&arena_cols);

    if let Some(e) = &lsh_export {
        encode_lsh(e, &mut w);
    }

    let checksum = fold64(w.as_bytes());
    w.put_u64(checksum);
    // Write-then-rename keeps the previous snapshot intact until the new
    // one is fully on disk.
    let tmp = path.with_extension("gentlake.tmp");
    fs::write(&tmp, w.as_bytes()).map_err(|e| StoreError::io(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        StoreError::io(path, e)
    })
}

/// Load a snapshot written by [`save`]. Verifies magic, version and the
/// whole-file checksum before decoding anything.
pub fn load(path: &Path) -> Result<LoadedLake, StoreError> {
    let bytes = fs::read(path).map_err(|e| StoreError::io(path, e))?;
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(StoreError::Corrupt(format!(
            "file is {} bytes — too short for a snapshot",
            bytes.len()
        )));
    }
    let header = SnapshotHeader::decode(&bytes)?;
    let body_end = bytes.len() - TRAILER_LEN;
    let mut tail = BinReader::new(&bytes[body_end..]);
    let stored = tail.get_u64().expect("trailer length checked");
    let computed = fold64(&bytes[..body_end]);
    if stored != computed {
        return Err(StoreError::Corrupt(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }

    let mut r = BinReader::new(&bytes[HEADER_LEN..body_end]);

    let strings = decode_string_table(&mut r)?;
    // Every count that sizes an allocation is sanity-checked against the
    // bytes actually present, so a crafted header cannot force a huge
    // `with_capacity` before per-entry reads fail.
    if header.n_tables as usize > r.remaining() {
        return Err(StoreError::Corrupt(format!(
            "header claims {} tables with {} bytes left",
            header.n_tables,
            r.remaining()
        )));
    }
    let mut tables = Vec::with_capacity(header.n_tables as usize);
    for _ in 0..header.n_tables {
        tables.push(decode_table_columnar(&mut r, &strings)?);
    }

    let buckets = r.get_u32_array()?;
    let hashes = r.get_u64_array()?;
    if hashes.len() as u64 != header.n_index_entries {
        return Err(StoreError::Corrupt(format!(
            "index has {} entries, header promised {}",
            hashes.len(),
            header.n_index_entries
        )));
    }
    let value_offsets = r.get_u32_array()?;
    let blob_len = r.get_u64()? as usize;
    let blob = r.take(blob_len)?.to_vec();
    let posting_offsets = r.get_u32_array()?;
    let arena_tables = r.get_u32_array()?;
    let arena_cols = r.get_u16_array()?;
    if arena_tables.len() != arena_cols.len() {
        return Err(StoreError::Corrupt(format!(
            "posting arrays disagree: {} tables vs {} columns",
            arena_tables.len(),
            arena_cols.len()
        )));
    }
    let ncols: Vec<u16> = tables.iter().map(|t| t.n_cols() as u16).collect();
    let mut arena = Vec::with_capacity(arena_tables.len());
    for (&table, &column) in arena_tables.iter().zip(&arena_cols) {
        match ncols.get(table as usize) {
            Some(&nc) if column < nc => arena.push(Posting { table, column }),
            Some(_) => {
                return Err(StoreError::Corrupt(format!(
                    "posting references column {column} of table {table} (too few columns)"
                )))
            }
            None => {
                return Err(StoreError::Corrupt(format!(
                    "posting references table {table}, but the lake has {} tables",
                    tables.len()
                )))
            }
        }
    }
    let frozen =
        FrozenIndex::from_raw_parts(buckets, hashes, value_offsets, blob, posting_offsets, arena)
            .map_err(StoreError::Corrupt)?;

    let lsh = if header.has_lsh() {
        let export = decode_lsh(&mut r)?;
        Some(LshEnsembleIndex::from_export(export).map_err(StoreError::Corrupt)?)
    } else {
        None
    };

    if r.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after snapshot body",
            r.remaining()
        )));
    }

    Ok(LoadedLake { lake: DataLake::from_frozen(tables, frozen), lsh })
}

/// Read a snapshot's summary from its fixed header without loading (or
/// checksumming) the body.
pub fn stat(path: &Path) -> Result<SnapshotStat, StoreError> {
    let mut f = fs::File::open(path).map_err(|e| StoreError::io(path, e))?;
    let file_bytes = f.metadata().map_err(|e| StoreError::io(path, e))?.len();
    let mut head = vec![0u8; HEADER_LEN];
    f.read_exact(&mut head).map_err(|_| {
        StoreError::Corrupt(format!("file is {file_bytes} bytes — too short for a snapshot"))
    })?;
    Ok(SnapshotStat { header: SnapshotHeader::decode(&head)?, file_bytes })
}

fn encode_lsh(e: &LshIndexExport, w: &mut BinWriter) {
    w.put_u32(e.cfg.num_perm as u32);
    w.put_u32(e.cfg.num_bands as u32);
    w.put_u32(e.cfg.num_partitions as u32);
    w.put_u64(e.cfg.seed);
    w.put_u32(e.cfg.min_column_size as u32);

    w.put_u32(e.columns.len() as u32);
    for c in &e.columns {
        w.put_u32(c.posting.table);
        w.put_u16(c.posting.column);
        w.put_u64(c.size);
        for &slot in &c.slots {
            w.put_u64(slot);
        }
    }

    w.put_u32(e.partitions.len() as u32);
    for p in &e.partitions {
        w.put_u32(p.members.len() as u32);
        for &m in &p.members {
            w.put_u32(m);
        }
        w.put_u64(p.max_size);
        for band in &p.buckets {
            w.put_u32(band.len() as u32);
            for (hash, members) in band {
                w.put_u64(*hash);
                w.put_u32(members.len() as u32);
                for &m in members {
                    w.put_u32(m);
                }
            }
        }
    }
}

fn decode_lsh(r: &mut BinReader<'_>) -> Result<LshIndexExport, StoreError> {
    let num_perm = r.get_u32()? as usize;
    let num_bands = r.get_u32()? as usize;
    let num_partitions = r.get_u32()? as usize;
    let seed = r.get_u64()?;
    let min_column_size = r.get_u32()? as usize;
    let cfg = LshConfig { num_perm, num_bands, num_partitions, seed, min_column_size };
    if num_perm == 0 || num_perm > 1 << 20 {
        return Err(StoreError::Corrupt(format!("implausible LSH num_perm {num_perm}")));
    }
    if num_bands == 0 || num_bands > num_perm {
        return Err(StoreError::Corrupt(format!("implausible LSH num_bands {num_bands}")));
    }

    // As in `load`: never size an allocation from an on-disk count without
    // checking the bytes are actually there (each entry costs ≥ 1 byte).
    let guard = |n: usize, left: usize, what: &str| -> Result<(), StoreError> {
        if n > left {
            Err(StoreError::Corrupt(format!(
                "LSH section claims {n} {what} with {left} bytes left"
            )))
        } else {
            Ok(())
        }
    };

    let n_columns = r.get_u32()? as usize;
    guard(n_columns, r.remaining(), "columns")?;
    let mut columns = Vec::with_capacity(n_columns);
    for _ in 0..n_columns {
        let table = r.get_u32()?;
        let column = r.get_u16()?;
        let size = r.get_u64()?;
        let slots = r.get_u64s(num_perm)?;
        columns.push(LshColumnExport { posting: Posting { table, column }, size, slots });
    }

    let n_parts = r.get_u32()? as usize;
    guard(n_parts, r.remaining(), "partitions")?;
    let mut partitions = Vec::with_capacity(n_parts);
    for _ in 0..n_parts {
        let n_members = r.get_u32()? as usize;
        guard(n_members, r.remaining(), "members")?;
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            members.push(r.get_u32()?);
        }
        let max_size = r.get_u64()?;
        let mut buckets = Vec::with_capacity(num_bands);
        for _ in 0..num_bands {
            let n_buckets = r.get_u32()? as usize;
            guard(n_buckets, r.remaining(), "buckets")?;
            let mut band = Vec::with_capacity(n_buckets);
            for _ in 0..n_buckets {
                let hash = r.get_u64()?;
                let n = r.get_u32()? as usize;
                guard(n, r.remaining(), "bucket members")?;
                let mut ms = Vec::with_capacity(n);
                for _ in 0..n {
                    ms.push(r.get_u32()?);
                }
                band.push((hash, ms));
            }
            buckets.push(band);
        }
        partitions.push(LshPartitionExport { members, max_size, buckets });
    }

    Ok(LshIndexExport { cfg, columns, partitions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::{Table, Value as V};
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gent-store-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    fn lake() -> DataLake {
        let a = Table::build(
            "customers",
            &["id", "name"],
            &[],
            (0..40).map(|i| vec![V::Int(i), V::str(format!("c{i}"))]).collect(),
        )
        .unwrap();
        let b = Table::build(
            "orders",
            &["oid", "cust"],
            &[],
            (0..25).map(|i| vec![V::Int(1000 + i), V::Int(i % 7)]).collect(),
        )
        .unwrap();
        DataLake::from_tables(vec![a, b])
    }

    #[test]
    fn save_load_round_trip() {
        let l = lake();
        let path = scratch("roundtrip.gentlake");
        save(&path, &l, None).unwrap();
        let loaded = load(&path).unwrap();
        assert!(loaded.lsh.is_none());
        assert_eq!(loaded.lake.len(), l.len());
        assert_eq!(loaded.lake.index_len(), l.index_len());
        for probe in [V::Int(3), V::Int(1005), V::str("c7"), V::str("nope")] {
            assert_eq!(loaded.lake.postings(&probe), l.postings(&probe), "postings({probe})");
        }
        assert_eq!(
            loaded.lake.get_by_name("orders").unwrap().rows(),
            l.get_by_name("orders").unwrap().rows()
        );
    }

    #[test]
    fn save_load_with_lsh() {
        let l = lake();
        let lsh = LshEnsembleIndex::build(&l, LshConfig::default());
        let path = scratch("with-lsh.gentlake");
        save(&path, &l, Some(&lsh)).unwrap();
        let loaded = load(&path).unwrap();
        let warm = loaded.lsh.expect("lsh present");
        assert_eq!(warm.export(), lsh.export());
    }

    #[test]
    fn stat_reads_header_only() {
        let l = lake();
        let path = scratch("stat.gentlake");
        save(&path, &l, None).unwrap();
        let s = stat(&path).unwrap();
        assert_eq!(s.header.n_tables, 2);
        assert_eq!(s.header.total_rows, 65);
        assert_eq!(s.header.total_cols, 4);
        assert!(!s.header.has_lsh());
        assert_eq!(s.header.n_index_entries as usize, l.index_len());
        assert!(s.file_bytes > (HEADER_LEN + TRAILER_LEN) as u64);
    }

    #[test]
    fn identical_lakes_produce_identical_bytes() {
        let p1 = scratch("stable-1.gentlake");
        let p2 = scratch("stable-2.gentlake");
        save(&p1, &lake(), None).unwrap();
        save(&p2, &lake(), None).unwrap();
        assert_eq!(fs::read(&p1).unwrap(), fs::read(&p2).unwrap());
    }

    #[test]
    fn corruption_detected_on_load() {
        let path = scratch("corrupt.gentlake");
        save(&path, &lake(), None).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn non_snapshot_file_rejected() {
        let path = scratch("not-a-snapshot.txt");
        fs::write(&path, b"hello,world\n1,2\n").unwrap();
        assert!(matches!(load(&path), Err(StoreError::Corrupt(_))));
        assert!(matches!(stat(&path), Err(StoreError::Corrupt(_))));
    }
}
