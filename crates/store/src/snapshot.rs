//! Saving and loading lake snapshots.
//!
//! A snapshot persists a [`DataLake`] *together with its derived
//! structures* — the inverted value index and, optionally, the LSH Ensemble
//! index. Since format v2 the open path is **zero-copy and lazy**: [`load`]
//! reads the file once into a shared [`LakeBuf`], verifies the whole-file
//! checksum, and then builds *views* instead of copies — the
//! [`FrozenIndex`] arrays are anchored directly in the buffer, each table
//! becomes a lazy [`TableSlot`] whose cells decode on first touch, and the
//! LSH export stays undecoded until someone asks for it
//! ([`LshSlot::force`]). Opening a lake therefore costs one sequential
//! read + checksum pass + per-table preamble decode, independent of how
//! many cells the lake holds; a reclaim touching three tables decodes
//! three. [`DataLake::decode_all`] restores the old eager behavior.
//! Reopened lakes answer every retrieval query identically to the lake
//! they were saved from (see `tests/snapshot_roundtrip.rs` and
//! `tests/lazy_open.rs` at the workspace root).

use std::fs;
use std::io::Read;
use std::ops::Range;
use std::path::Path;
use std::sync::{Arc, OnceLock};

use gent_discovery::lake::{IndexThaw, Posting};
use gent_discovery::{
    DataLake, FrozenIndex, LshColumnExport, LshConfig, LshEnsembleIndex, LshIndexExport,
    LshPartitionExport,
};
use gent_table::binary::{
    decode_string_table, encode_table_columnar, fold64, BinReader, BinWriter, StringTableBuilder,
    TableSlot,
};
use gent_table::view::{ByteView, LakeBuf, LeWord, WordView};
use gent_table::{FxHashMap, Table, Value};

use crate::error::StoreError;
use crate::format::{
    verify_section, SectionDir, SectionDirV3, SectionEntry, SectionRange, SnapshotHeader,
    FLAG_HAS_LSH, HEADER_LEN, SNAPSHOT_FORMAT_V1, SNAPSHOT_FORMAT_V2, SNAPSHOT_FORMAT_VERSION,
    TRAILER_LEN,
};

/// A table the degraded open replaced with an empty placeholder because
/// its bytes failed verification. The slot keeps its name (and schema,
/// when the preamble survived) so the serve tier can answer lookups for
/// it with a structured `410 quarantined` instead of a decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedTable {
    /// Index of the quarantined slot in the lake.
    pub table: usize,
    /// The slot's name (recovered from the preamble, or synthesized).
    pub name: String,
    /// Why it was quarantined.
    pub reason: String,
}

/// A lake loaded from a snapshot: the tables + inverted index, and a slot
/// for the LSH index when the snapshot carries one.
#[derive(Debug, Clone)]
pub struct LoadedLake {
    /// The lake, ready for discovery (index already served from the
    /// snapshot buffer; tables decode lazily for v2+ snapshots).
    pub lake: DataLake,
    /// The LSH index slot: present-but-undecoded for v2+ snapshots with
    /// bands, eager for in-memory builds and v1 snapshots.
    pub lsh: LshSlot,
    /// Tables the degraded open quarantined (always empty for a normal
    /// open, which errors instead).
    pub quarantined: Vec<QuarantinedTable>,
    /// Committed delta frames folded into this lake's overlay (v3 only).
    pub n_frames: usize,
}

impl LoadedLake {
    /// Wrap an already-materialized lake (+ optional LSH index) — the
    /// in-memory ingest path.
    pub fn eager(lake: DataLake, lsh: Option<LshEnsembleIndex>) -> Self {
        LoadedLake { lake, lsh: LshSlot::eager(lsh), quarantined: Vec::new(), n_frames: 0 }
    }
}

/// The LSH Ensemble export of a snapshot, decoded **once, on first use**.
///
/// The serve daemon keeps bands alive for its whole life but may never be
/// asked for approximate retrieval; statting a lake must not pay for band
/// reconstruction. The slot therefore carries the band section as a range
/// of the shared snapshot buffer plus the column count (from the header),
/// and [`LshSlot::force`] memoizes the real decode.
#[derive(Debug, Clone)]
pub struct LshSlot {
    lazy: Option<(LakeBuf, Range<usize>)>,
    /// v3 deferred integrity: the section's expected fold64, verified
    /// before the first decode (v2 verified the whole file at open).
    checksum: Option<u64>,
    n_columns: u32,
    cell: OnceLock<Result<Option<LshEnsembleIndex>, String>>,
}

impl LshSlot {
    /// Wrap an already-built (or absent) index.
    pub fn eager(lsh: Option<LshEnsembleIndex>) -> Self {
        let n_columns = lsh.as_ref().map_or(0, |l| l.n_columns() as u32);
        let slot = LshSlot { lazy: None, checksum: None, n_columns, cell: OnceLock::new() };
        let _ = slot.cell.set(Ok(lsh));
        slot
    }

    /// A lazy slot over the band section of an opened snapshot.
    fn lazy(buf: LakeBuf, range: Range<usize>, n_columns: u32) -> Self {
        LshSlot { lazy: Some((buf, range)), checksum: None, n_columns, cell: OnceLock::new() }
    }

    /// A lazy slot that verifies `checksum` over its section before the
    /// first decode (the v3 per-section contract).
    fn lazy_checked(buf: LakeBuf, range: Range<usize>, n_columns: u32, checksum: u64) -> Self {
        LshSlot {
            lazy: Some((buf, range)),
            checksum: Some(checksum),
            n_columns,
            cell: OnceLock::new(),
        }
    }

    /// Columns summarised by the bands (0 when absent) — available without
    /// decoding.
    pub fn n_columns(&self) -> u32 {
        self.n_columns
    }

    /// True once the band section has been decoded *successfully* (always
    /// true for eager slots); a memoized decode failure reports false, so
    /// the serve gauge cannot claim bands that never materialized.
    pub fn is_decoded(&self) -> bool {
        matches!(self.cell.get(), Some(Ok(_)))
    }

    /// The index, decoding (and memoizing) the band section on first call;
    /// `Ok(None)` when the snapshot carries no bands.
    pub fn force(&self) -> Result<Option<&LshEnsembleIndex>, StoreError> {
        self.cell
            .get_or_init(|| self.decode())
            .as_ref()
            .map(|o| o.as_ref())
            .map_err(|m| StoreError::Corrupt(m.clone()))
    }

    fn decode(&self) -> Result<Option<LshEnsembleIndex>, String> {
        let Some((buf, range)) = &self.lazy else {
            return Ok(None); // eager slot: cell was pre-set, not reachable
        };
        if let Some(stored) = self.checksum {
            let computed = fold64(buf.slice(range.clone()));
            if computed != stored {
                return Err(format!(
                    "LSH section checksum mismatch: stored {stored:#018x}, \
                     computed {computed:#018x}"
                ));
            }
        }
        crate::telemetry::instruments().lsh_decodes.inc();
        let mut r = BinReader::new(buf.slice(range.clone()));
        let export = decode_lsh(&mut r).map_err(|e| e.to_string())?;
        if r.remaining() != 0 {
            return Err(format!("{} trailing bytes after the LSH section", r.remaining()));
        }
        if export.columns.len() as u32 != self.n_columns {
            return Err(format!(
                "LSH section holds {} columns, header promised {}",
                export.columns.len(),
                self.n_columns
            ));
        }
        LshEnsembleIndex::from_export(export).map(Some)
    }
}

/// Summary of a snapshot file, read from the fixed header only — `lake stat`
/// on a multi-gigabyte snapshot touches a few dozen bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStat {
    /// The decoded header.
    pub header: SnapshotHeader,
    /// Total file size in bytes.
    pub file_bytes: u64,
}

/// The body sections of a snapshot, encoded but not yet framed: the
/// version-independent middle of both writers.
struct EncodedBody {
    header: SnapshotHeader,
    strtab: Vec<u8>,
    tables: Vec<Vec<u8>>,
    index: Vec<u8>,
    lsh: Option<Vec<u8>>,
}

fn encode_body(
    lake: &DataLake,
    lsh: Option<&LshEnsembleIndex>,
    version: u16,
) -> Result<EncodedBody, StoreError> {
    // A lazily-opened lake materializes every remaining slot up front so
    // any (checksum-defeating) cell corruption surfaces as an error here
    // rather than a panic mid-encode; a deferred index likewise, so the
    // header's distinct-value count is exact and the re-freeze below
    // cannot trip on unverified bytes.
    lake.decode_all(1)?;
    lake.ensure_index().map_err(StoreError::Corrupt)?;
    let lsh_export = lsh.map(|i| i.export());
    let header = SnapshotHeader {
        version,
        flags: if lsh_export.is_some() { FLAG_HAS_LSH } else { 0 },
        n_tables: lake.len() as u32,
        total_rows: lake.slots().iter().map(|s| s.n_rows() as u64).sum(),
        total_cols: lake.slots().iter().map(|s| s.n_cols() as u64).sum(),
        n_index_entries: lake.index_len() as u64,
        n_lsh_columns: lsh_export.as_ref().map_or(0, |e| e.columns.len() as u32),
    };

    // Tables are encoded before the string table they fill is serialized
    // (decode needs the strings before the first cell).
    let mut strings = StringTableBuilder::new();
    let mut tables = Vec::with_capacity(lake.len());
    for t in lake.tables_iter() {
        let mut w = BinWriter::new();
        encode_table_columnar(t, &mut w, &mut strings);
        tables.push(w.into_bytes());
    }
    let mut strtab = BinWriter::new();
    strings.encode(&mut strtab);

    // The index is persisted in its serving layout (FrozenIndex arrays);
    // freezing sorts entries canonically, so identical lakes → identical
    // bytes regardless of hash-map iteration order. An already-frozen lake
    // (one loaded from a snapshot) serializes its buffer-backed arrays with
    // bulk copies — no re-encode.
    let frozen_built;
    let frozen = match lake.frozen_index() {
        Some(f) => f,
        None => {
            frozen_built = lake.freeze_index();
            &frozen_built
        }
    };
    let mut index = BinWriter::new();
    frozen.encode(&mut index);

    let lsh_bytes = lsh_export.as_ref().map(|e| {
        let mut w = BinWriter::new();
        encode_lsh(e, &mut w);
        w.into_bytes()
    });

    Ok(EncodedBody {
        header,
        strtab: strtab.into_bytes(),
        tables,
        index: index.into_bytes(),
        lsh: lsh_bytes,
    })
}

/// Serialize `lake` (and optionally a built LSH index) to `path` in the
/// current (v3) format: per-section checksums in the directory, no
/// whole-file trailer, no delta frames (a freshly saved base is compact
/// by construction). The write is atomic: bytes are assembled in memory,
/// written to a temporary sibling file, and renamed over `path`, so a
/// crash mid-save can neither leave a half-written snapshot nor destroy
/// the previous one.
///
/// # Examples
///
/// ```no_run
/// use gent_discovery::DataLake;
/// use gent_store::snapshot;
/// # fn main() -> Result<(), gent_store::StoreError> {
/// # let tables = vec![];
/// let lake = DataLake::from_tables(tables);
/// snapshot::save("lake.gentlake".as_ref(), &lake, None)?;
/// let reopened = snapshot::load("lake.gentlake".as_ref())?;
/// assert_eq!(reopened.lake.len(), lake.len());
/// # Ok(()) }
/// ```
pub fn save(
    path: &Path,
    lake: &DataLake,
    lsh: Option<&LshEnsembleIndex>,
) -> Result<(), StoreError> {
    let body = encode_body(lake, lsh, SNAPSHOT_FORMAT_VERSION)?;

    let mut w = BinWriter::new();
    body.header.encode(&mut w);
    // Section directory: absolute offsets, contiguous, in body order,
    // each entry carrying the fold64 of its section.
    let mut offset = (HEADER_LEN + SectionDirV3::encoded_len(body.tables.len())) as u64;
    let mut claim = |section: &[u8]| {
        let e = SectionEntry {
            range: SectionRange { offset, len: section.len() as u64 },
            checksum: fold64(section),
        };
        offset += section.len() as u64;
        e
    };
    let dir = SectionDirV3 {
        strtab: claim(&body.strtab),
        tables: body.tables.iter().map(|t| claim(t)).collect(),
        index: claim(&body.index),
        lsh: body.lsh.as_deref().map(&mut claim),
    };
    dir.encode(&mut w); // seals header‖dir with the meta checksum
    w.put_raw(&body.strtab);
    for t in &body.tables {
        w.put_raw(t);
    }
    w.put_raw(&body.index);
    if let Some(l) = &body.lsh {
        w.put_raw(l);
    }
    write_atomic(path, w.as_bytes())
}

/// Serialize in the **v2 layout** (section directory without per-section
/// checksums, one whole-file trailing fold64). Kept so v2 back-compat is
/// a tested fact and so the `snapshot_open_v3` bench can measure exactly
/// what the per-section checksums buy; production writes use [`save`].
pub fn save_v2(
    path: &Path,
    lake: &DataLake,
    lsh: Option<&LshEnsembleIndex>,
) -> Result<(), StoreError> {
    let body = encode_body(lake, lsh, SNAPSHOT_FORMAT_V2)?;

    let mut w = BinWriter::new();
    body.header.encode(&mut w);
    // Section directory: absolute offsets, contiguous, in body order.
    let mut offset = (HEADER_LEN + SectionDir::encoded_len(body.tables.len())) as u64;
    let mut claim = |len: usize| {
        let s = SectionRange { offset, len: len as u64 };
        offset += len as u64;
        s
    };
    let dir = SectionDir {
        strtab: claim(body.strtab.len()),
        tables: body.tables.iter().map(|t| claim(t.len())).collect(),
        index: claim(body.index.len()),
        lsh: body.lsh.as_ref().map(|l| claim(l.len())),
    };
    dir.encode(&mut w);
    w.put_raw(&body.strtab);
    for t in &body.tables {
        w.put_raw(t);
    }
    w.put_raw(&body.index);
    if let Some(l) = &body.lsh {
        w.put_raw(l);
    }
    let checksum = fold64(w.as_bytes());
    w.put_u64(checksum);
    write_atomic(path, w.as_bytes())
}

/// Serialize in the **legacy v1 layout** (no section directory, eager-only
/// decode). Kept so the v1 reader's back-compatibility is a tested fact
/// rather than a claim; production writes always use [`save`].
pub fn save_legacy_v1(
    path: &Path,
    lake: &DataLake,
    lsh: Option<&LshEnsembleIndex>,
) -> Result<(), StoreError> {
    let body = encode_body(lake, lsh, SNAPSHOT_FORMAT_V1)?;
    let mut w = BinWriter::new();
    body.header.encode(&mut w);
    w.put_raw(&body.strtab);
    for t in &body.tables {
        w.put_raw(t);
    }
    w.put_raw(&body.index);
    if let Some(l) = &body.lsh {
        w.put_raw(l);
    }
    let checksum = fold64(w.as_bytes());
    w.put_u64(checksum);
    write_atomic(path, w.as_bytes())
}

/// Write-then-rename keeps the previous snapshot intact until the new one
/// is fully on disk: the bytes are fsynced before the rename (so a crash
/// can only ever leave a torn *tmp* file, never a torn snapshot), the
/// parent directory is fsynced after it (so the rename itself survives a
/// power cut), and a stale tmp from an earlier crash is cleared on entry
/// instead of failing the save.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("gentlake.tmp");
    if tmp.exists() {
        fs::remove_file(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
    }
    let result = write_atomic_inner(path, &tmp, bytes);
    if result.is_err() {
        // Whether the write or the rename failed, never leave the tmp
        // behind — the old snapshot stays the only *.gentlake file.
        let _ = fs::remove_file(&tmp);
    }
    result
}

fn write_atomic_inner(path: &Path, tmp: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    use std::io::Write;
    if let Some(e) = gent_faults::fail_io!("store.save.write") {
        return Err(StoreError::io(tmp, e));
    }
    let mut file = fs::File::create(tmp).map_err(|e| StoreError::io(tmp, e))?;
    file.write_all(bytes).map_err(|e| StoreError::io(tmp, e))?;
    if let Some(e) = gent_faults::fail_io!("store.save.sync") {
        return Err(StoreError::io(tmp, e));
    }
    file.sync_all().map_err(|e| StoreError::io(tmp, e))?;
    drop(file);
    if let Some(e) = gent_faults::fail_io!("store.save.rename") {
        return Err(StoreError::io(path, e));
    }
    fs::rename(tmp, path).map_err(|e| StoreError::io(path, e))?;
    sync_parent_dir(path)
}

/// Fsync the directory holding `path` so the rename that just landed there
/// is durable. Directory handles can only be fsynced on unix; elsewhere the
/// rename's atomicity is the best available guarantee.
pub(crate) fn sync_parent_dir(path: &Path) -> Result<(), StoreError> {
    #[cfg(unix)]
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        let dir = fs::File::open(parent).map_err(|e| StoreError::io(parent, e))?;
        dir.sync_all().map_err(|e| StoreError::io(parent, e))?;
    }
    Ok(())
}

/// Load a snapshot written by [`save`] (or a legacy v1/v2 file). v3 files
/// verify the directory's meta checksum plus the strtab and index section
/// checksums (sections the open decodes anyway) and defer table/LSH
/// verification to first decode; v1/v2 files verify their whole-file
/// checksum as they always did.
pub fn load(path: &Path) -> Result<LoadedLake, StoreError> {
    load_with(path, false)
}

/// [`load`] in **degraded** mode: table sections (base or frame) that
/// fail verification become empty quarantined placeholders instead of
/// errors — the lake keeps serving everything else, and the
/// [`LoadedLake::quarantined`] report says what was lost. Damage to the
/// load-bearing sections (header, directory, strtab, index) still fails:
/// there is no lake to degrade to without them.
pub fn load_degraded(path: &Path) -> Result<LoadedLake, StoreError> {
    load_with(path, true)
}

fn load_with(path: &Path, degraded: bool) -> Result<LoadedLake, StoreError> {
    if let Some(e) = gent_faults::fail_io!("store.load.read") {
        return Err(StoreError::io(path, e));
    }
    let bytes = fs::read(path).map_err(|e| StoreError::io(path, e))?;
    load_buf_with(LakeBuf::new(bytes), degraded)
}

/// Open a snapshot already in memory — what [`load`] does after its one
/// `read`. Exposed so tests and benches can exercise the open path (and
/// hostile inputs) without round-tripping the filesystem.
pub fn load_buf(buf: LakeBuf) -> Result<LoadedLake, StoreError> {
    load_buf_with(buf, false)
}

/// [`load_buf`] in degraded (quarantining) mode — see [`load_degraded`].
pub fn load_buf_degraded(buf: LakeBuf) -> Result<LoadedLake, StoreError> {
    load_buf_with(buf, true)
}

fn load_buf_with(buf: LakeBuf, degraded: bool) -> Result<LoadedLake, StoreError> {
    let ins = crate::telemetry::instruments();
    let _span = gent_obs::span_timed("snapshot_open", ins.open_duration.clone());
    ins.opens.inc();
    ins.open_bytes.add(buf.len() as u64);
    let bytes = buf.as_slice();
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Corrupt(format!(
            "file is {} bytes — too short for a snapshot",
            bytes.len()
        )));
    }
    let header = SnapshotHeader::decode(bytes)?;
    if header.version == SNAPSHOT_FORMAT_VERSION {
        return load_v3(buf, &header, degraded);
    }
    // v1/v2: one whole-file checksum ahead of the trailer.
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(StoreError::Corrupt(format!(
            "file is {} bytes — too short for a snapshot",
            bytes.len()
        )));
    }
    let body_end = bytes.len() - TRAILER_LEN;
    let mut tail = BinReader::new(&bytes[body_end..]);
    let stored = tail.get_u64().expect("trailer length checked");
    let computed = fold64(&bytes[..body_end]);
    if stored != computed {
        return Err(StoreError::Corrupt(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    match header.version {
        SNAPSHOT_FORMAT_V1 => load_v1(&buf, &header),
        SNAPSHOT_FORMAT_V2 => load_v2(buf, &header),
        v => Err(StoreError::Version { found: v, supported: SNAPSHOT_FORMAT_VERSION }),
    }
}

/// The v3 open: like [`load_v2`] but *without* the O(file) checksum pass.
/// The directory's meta checksum plus the strtab and index section
/// checksums are verified here (those sections are decoded eagerly
/// anyway); each table and the LSH bands are verified on their first
/// decode. Delta frames after the body are scanned, checksum-verified
/// (they are small), and folded into the lake as an index overlay; a torn
/// tail frame is dropped with a structured warning.
fn load_v3(
    buf: LakeBuf,
    header: &SnapshotHeader,
    degraded: bool,
) -> Result<LoadedLake, StoreError> {
    let n_tables = header.n_tables as usize;
    let (dir, body_end) = SectionDirV3::decode(buf.as_slice(), n_tables, header.has_lsh())?;

    // String table: load-bearing for every slot, so verified and decoded
    // now, even degraded — without it there is no lake to degrade to.
    verify_section(buf.as_slice(), &dir.strtab, "strtab")?;
    let mut r = BinReader::new(buf.slice(dir.strtab.range.range()));
    let strings: Arc<[Arc<str>]> = decode_string_table(&mut r)?.into();
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after the string table",
            r.remaining()
        )));
    }

    // Base tables: lazy slots whose section checksum is verified on first
    // force (normal), or verified *now* with failures quarantined
    // (degraded).
    let mut slots = Vec::with_capacity(n_tables);
    let mut quarantined: Vec<QuarantinedTable> = Vec::new();
    for (i, t) in dir.tables.iter().enumerate() {
        if !degraded {
            slots.push(TableSlot::lazy_checked(
                buf.clone(),
                t.range.range(),
                strings.clone(),
                t.checksum,
            )?);
            continue;
        }
        let verified = verify_section(buf.as_slice(), t, &format!("table {i}"))
            .map_err(|e| e.to_string())
            .and_then(|()| {
                TableSlot::lazy(buf.clone(), t.range.range(), strings.clone())
                    .map_err(|e| e.to_string())
            });
        match verified {
            Ok(slot) => slots.push(slot),
            Err(reason) => {
                let (name, slot) = placeholder_slot(&buf, t.range.range(), i);
                quarantined.push(QuarantinedTable { table: i, name, reason });
                slots.push(slot);
            }
        }
    }
    if quarantined.is_empty() {
        let (rows, cols) = slots
            .iter()
            .fold((0u64, 0u64), |(r, c), s| (r + s.n_rows() as u64, c + s.n_cols() as u64));
        if rows != header.total_rows || cols != header.total_cols {
            return Err(StoreError::Corrupt(format!(
                "table preambles sum to {rows} rows / {cols} columns, header promised {} / {}",
                header.total_rows, header.total_cols
            )));
        }
    }

    // Frames: scanned and checksum-verified eagerly (they are the small,
    // recently-appended minority of the file); their tables become lazy
    // slots over the already-verified bytes, their index entries an
    // overlay over the frozen base.
    let scan = crate::delta::scan_frames(buf.as_slice(), body_end, header.n_tables, degraded)?;
    let mut delta: FxHashMap<Value, Vec<Posting>> = FxHashMap::default();
    for (k, frame) in scan.frames.iter().enumerate() {
        if let Some(reason) = &frame.corrupt {
            for (j, range) in frame.tables.iter().enumerate() {
                let idx = frame.first_table as usize + j;
                let (name, slot) = placeholder_slot(&buf, range.clone(), idx);
                quarantined.push(QuarantinedTable {
                    table: idx,
                    name,
                    reason: format!("frame {k}: {reason}"),
                });
                slots.push(slot);
            }
            continue;
        }
        for (j, range) in frame.tables.iter().enumerate() {
            let idx = frame.first_table as usize + j;
            match TableSlot::lazy(buf.clone(), range.clone(), frame.strings.clone()) {
                Ok(slot) => slots.push(slot),
                Err(e) if degraded => {
                    let (name, slot) = placeholder_slot(&buf, range.clone(), idx);
                    quarantined.push(QuarantinedTable {
                        table: idx,
                        name,
                        reason: format!("frame {k}: {e}"),
                    });
                    slots.push(slot);
                }
                Err(e) => return Err(StoreError::Corrupt(format!("frame {k} table {j}: {e}"))),
            }
        }
        for (v, postings) in &frame.entries {
            for p in postings {
                let n_cols = slots.get(p.table as usize).map(|s| s.n_cols() as u16).unwrap_or(0);
                if p.column >= n_cols {
                    return Err(StoreError::Corrupt(format!(
                        "frame {k} posting references column {} of table {} \
                         ({n_cols} columns)",
                        p.column, p.table
                    )));
                }
            }
            delta.entry(v.clone()).or_default().extend(postings.iter().copied());
        }
    }
    if let Some(at) = scan.torn_tail {
        crate::telemetry::instruments().torn_tails.inc();
        gent_obs::log(
            gent_obs::Level::Warn,
            "gent_store::snapshot",
            "torn tail frame dropped at open",
            &[
                ("offset", gent_obs::Value::from(at as u64)),
                ("file_len", gent_obs::Value::from(buf.len() as u64)),
            ],
        );
    }
    if let Some(reason) = &scan.dropped {
        gent_obs::log(
            gent_obs::Level::Warn,
            "gent_store::snapshot",
            "unscannable frame region dropped in degraded open",
            &[("reason", gent_obs::Value::from(reason.as_str()))],
        );
    }

    // Quarantined frame tables contributed no delta entries (the scanner
    // clears them), so the overlay needs no filtering here.
    let lsh = match dir.lsh {
        Some(section) => {
            if degraded && verify_section(buf.as_slice(), &section, "lsh").is_err() {
                gent_obs::log(
                    gent_obs::Level::Warn,
                    "gent_store::snapshot",
                    "corrupt LSH section dropped in degraded open",
                    &[],
                );
                LshSlot::eager(None)
            } else {
                LshSlot::lazy_checked(
                    buf.clone(),
                    section.range.range(),
                    header.n_lsh_columns,
                    section.checksum,
                )
            }
        }
        None => LshSlot::eager(None),
    };
    let n_frames = scan.frames.len();

    // Index, strict open: nothing is verified or materialized here. The
    // directory entry carries the section's own fold64, so the first
    // posting lookup (or an explicit [`DataLake::ensure_index`]) verifies
    // the bytes, anchors the views zero-copy and zips the posting arena
    // *then* — open cost stops scaling with index bytes, which is the
    // point of v3.
    if !degraded {
        debug_assert!(quarantined.is_empty(), "strict opens never quarantine");
        let n_cols: Vec<u16> = slots.iter().map(|s| s.n_cols() as u16).collect();
        let entry = dir.index;
        let n_entries = header.n_index_entries;
        let thaw_buf = buf.clone();
        let thaw: IndexThaw = Arc::new(move || {
            let err = |e: StoreError| e.to_string();
            verify_section(thaw_buf.as_slice(), &entry, "index").map_err(err)?;
            let raw = decode_index_views(&thaw_buf, &entry, n_entries).map_err(err)?;
            let arena =
                build_arena(&raw.arena_tables, &raw.arena_cols, |ti| n_cols.get(ti).copied())
                    .map_err(err)?;
            FrozenIndex::from_views(
                raw.buckets,
                raw.hashes,
                raw.value_offsets,
                raw.blob,
                raw.posting_offsets,
                arena,
            )
        });
        let lake =
            DataLake::from_slots_deferred(slots, thaw, header.n_index_entries as usize, delta);
        return Ok(LoadedLake { lake, lsh, quarantined, n_frames });
    }

    // Degraded open: materialized (and verified) now — quarantined
    // postings must be filtered out, and the repair path wants index
    // damage surfaced immediately (there is no lake to degrade to without
    // an index).
    verify_section(buf.as_slice(), &dir.index, "index")?;
    let IndexViews {
        buckets,
        hashes,
        value_offsets,
        blob,
        posting_offsets,
        arena_tables,
        arena_cols,
    } = decode_index_views(&buf, &dir.index, header.n_index_entries)?;
    let frozen = if quarantined.is_empty() {
        let arena =
            build_arena(&arena_tables, &arena_cols, |ti| slots.get(ti).map(|s| s.n_cols() as u16))?;
        FrozenIndex::from_views(buckets, hashes, value_offsets, blob, posting_offsets, arena)
            .map_err(StoreError::Corrupt)?
    } else {
        // Quarantined tables must not be discoverable: drop their postings
        // and rebuild the offsets (owned — the degraded open trades the
        // zero-copy arena for a consistent index).
        let bad: std::collections::HashSet<u32> =
            quarantined.iter().map(|q| q.table as u32).collect();
        let n = hashes.len();
        if posting_offsets.len() != n + 1
            || posting_offsets.get(n) as usize != arena_tables.len()
            || arena_tables.len() != arena_cols.len()
        {
            return Err(StoreError::Corrupt("posting offsets do not span the arena".into()));
        }
        let mut new_offsets = Vec::with_capacity(n + 1);
        let mut arena = Vec::with_capacity(arena_tables.len());
        new_offsets.push(0u32);
        for i in 0..n {
            let (start, end) =
                (posting_offsets.get(i) as usize, posting_offsets.get(i + 1) as usize);
            if start > end || end > arena_tables.len() {
                return Err(StoreError::Corrupt("posting offsets not monotone".into()));
            }
            for j in start..end {
                let (table, column) = (arena_tables[j], arena_cols[j]);
                if bad.contains(&table) {
                    continue;
                }
                match slots.get(table as usize).map(|s| s.n_cols() as u16) {
                    Some(nc) if column < nc => arena.push(Posting { table, column }),
                    _ => {
                        return Err(StoreError::Corrupt(format!(
                            "posting references column {column} of table {table}"
                        )))
                    }
                }
            }
            new_offsets.push(arena.len() as u32);
        }
        FrozenIndex::from_raw_parts(
            buckets.to_vec(),
            hashes.to_vec(),
            value_offsets.to_vec(),
            blob.to_vec(),
            new_offsets,
            arena,
        )
        .map_err(StoreError::Corrupt)?
    };

    let lake = DataLake::from_slots_with_delta(slots, frozen, delta);
    Ok(LoadedLake { lake, lsh, quarantined, n_frames })
}

/// The index section's raw parts: zero-copy views anchored in the
/// snapshot buffer plus the copied struct-of-arrays posting encoding.
/// Shared by the degraded (eager) open and the strict open's deferred
/// thaw.
struct IndexViews {
    buckets: WordView<u32>,
    hashes: WordView<u64>,
    value_offsets: WordView<u32>,
    blob: ByteView,
    posting_offsets: WordView<u32>,
    arena_tables: Vec<u32>,
    arena_cols: Vec<u16>,
}

fn decode_index_views(
    buf: &LakeBuf,
    entry: &SectionEntry,
    n_index_entries: u64,
) -> Result<IndexViews, StoreError> {
    let base = entry.range.offset as usize;
    let mut r = BinReader::new(buf.slice(entry.range.range()));
    let buckets = read_view::<u32>(&mut r, buf, base)?;
    let hashes = read_view::<u64>(&mut r, buf, base)?;
    if hashes.len() as u64 != n_index_entries {
        return Err(StoreError::Corrupt(format!(
            "index has {} entries, header promised {n_index_entries}",
            hashes.len(),
        )));
    }
    let value_offsets = read_view::<u32>(&mut r, buf, base)?;
    let blob_len = r.get_u64()? as usize;
    let blob_start = base + r.position();
    r.take(blob_len)?;
    let blob = ByteView::view(buf.clone(), blob_start..blob_start + blob_len)
        .map_err(StoreError::Corrupt)?;
    let posting_offsets = read_view::<u32>(&mut r, buf, base)?;
    let arena_tables = r.get_u32_array()?;
    let arena_cols = r.get_u16_array()?;
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after the index section",
            r.remaining()
        )));
    }
    Ok(IndexViews {
        buckets,
        hashes,
        value_offsets,
        blob,
        posting_offsets,
        arena_tables,
        arena_cols,
    })
}

/// An empty stand-in for a quarantined table: keeps the name and schema
/// when the preamble survives (so name-routed requests can answer `410
/// quarantined` and postings keep validating), synthesizes them when it
/// does not.
fn placeholder_slot(buf: &LakeBuf, range: Range<usize>, index: usize) -> (String, TableSlot) {
    let preamble = (range.start <= range.end && range.end <= buf.len())
        .then(|| {
            let mut r = BinReader::new(buf.slice(range));
            gent_table::binary::decode_table_preamble(&mut r).ok()
        })
        .flatten();
    if let Some(p) = preamble {
        if let Ok(t) = Table::from_rows(p.name.clone(), p.schema, vec![]) {
            return (p.name, TableSlot::eager(t));
        }
    }
    let name = format!("__quarantined_{index}");
    let table = Table::build(&name, &["_quarantined"], &[], vec![])
        .expect("one-column empty table is always buildable");
    (name.clone(), TableSlot::eager(table))
}

/// The zero-copy open: build views into `buf`, decode only preambles and
/// the posting arena, defer everything else.
fn load_v2(buf: LakeBuf, header: &SnapshotHeader) -> Result<LoadedLake, StoreError> {
    let n_tables = header.n_tables as usize;
    let dir_len = SectionDir::encoded_len(n_tables);
    if (buf.len() as u64) < (HEADER_LEN + dir_len + TRAILER_LEN) as u64 {
        return Err(StoreError::Corrupt(format!(
            "file is {} bytes — too short for a {n_tables}-table section directory",
            buf.len()
        )));
    }
    let mut dr = BinReader::new(buf.slice(HEADER_LEN..HEADER_LEN + dir_len));
    let dir = SectionDir::decode(&mut dr, n_tables, header.has_lsh(), buf.len())?;

    // String table: decoded eagerly (it is shared by every lazy slot and
    // typically small relative to cell payloads).
    let mut r = BinReader::new(buf.slice(dir.strtab.range()));
    let strings: Arc<[Arc<str>]> = decode_string_table(&mut r)?.into();
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after the string table",
            r.remaining()
        )));
    }

    // Tables: one lazy slot per directory entry; only the preamble (name,
    // schema, row count) is decoded here.
    let mut slots = Vec::with_capacity(n_tables);
    for t in &dir.tables {
        slots.push(TableSlot::lazy(buf.clone(), t.range(), strings.clone())?);
    }
    let (rows, cols) =
        slots.iter().fold((0u64, 0u64), |(r, c), s| (r + s.n_rows() as u64, c + s.n_cols() as u64));
    if rows != header.total_rows || cols != header.total_cols {
        return Err(StoreError::Corrupt(format!(
            "table preambles sum to {rows} rows / {cols} columns, header promised {} / {}",
            header.total_rows, header.total_cols
        )));
    }

    // Index: the open-addressing arrays stay in the buffer as views; only
    // the posting arena (struct-of-arrays on disk, `&[Posting]` at runtime)
    // is materialized — and validated against the slot schemas, which are
    // known without decoding a single cell.
    let base = dir.index.offset as usize;
    let mut r = BinReader::new(buf.slice(dir.index.range()));
    let buckets = read_view::<u32>(&mut r, &buf, base)?;
    let hashes = read_view::<u64>(&mut r, &buf, base)?;
    if hashes.len() as u64 != header.n_index_entries {
        return Err(StoreError::Corrupt(format!(
            "index has {} entries, header promised {}",
            hashes.len(),
            header.n_index_entries
        )));
    }
    let value_offsets = read_view::<u32>(&mut r, &buf, base)?;
    let blob_len = r.get_u64()? as usize;
    let blob_start = base + r.position();
    r.take(blob_len)?;
    let blob = ByteView::view(buf.clone(), blob_start..blob_start + blob_len)
        .map_err(StoreError::Corrupt)?;
    let posting_offsets = read_view::<u32>(&mut r, &buf, base)?;
    let arena_tables = r.get_u32_array()?;
    let arena_cols = r.get_u16_array()?;
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after the index section",
            r.remaining()
        )));
    }
    let arena =
        build_arena(&arena_tables, &arena_cols, |ti| slots.get(ti).map(|s| s.n_cols() as u16))?;
    let frozen =
        FrozenIndex::from_views(buckets, hashes, value_offsets, blob, posting_offsets, arena)
            .map_err(StoreError::Corrupt)?;

    let lsh = match dir.lsh {
        Some(section) => LshSlot::lazy(buf.clone(), section.range(), header.n_lsh_columns),
        None => LshSlot::eager(None),
    };

    Ok(LoadedLake {
        lake: DataLake::from_slots(slots, frozen),
        lsh,
        quarantined: Vec::new(),
        n_frames: 0,
    })
}

/// The legacy eager decoder for v1 files (no section directory: sections
/// must be decoded sequentially, so everything materializes at open).
fn load_v1(buf: &LakeBuf, header: &SnapshotHeader) -> Result<LoadedLake, StoreError> {
    let bytes = buf.as_slice();
    let body_end = bytes.len() - TRAILER_LEN;
    let mut r = BinReader::new(&bytes[HEADER_LEN..body_end]);

    let strings = decode_string_table(&mut r)?;
    // Every count that sizes an allocation is sanity-checked against the
    // bytes actually present, so a crafted header cannot force a huge
    // `with_capacity` before per-entry reads fail.
    if header.n_tables as usize > r.remaining() {
        return Err(StoreError::Corrupt(format!(
            "header claims {} tables with {} bytes left",
            header.n_tables,
            r.remaining()
        )));
    }
    let mut tables = Vec::with_capacity(header.n_tables as usize);
    for _ in 0..header.n_tables {
        tables.push(gent_table::binary::decode_table_columnar(&mut r, &strings)?);
    }

    let buckets = r.get_u32_array()?;
    let hashes = r.get_u64_array()?;
    if hashes.len() as u64 != header.n_index_entries {
        return Err(StoreError::Corrupt(format!(
            "index has {} entries, header promised {}",
            hashes.len(),
            header.n_index_entries
        )));
    }
    let value_offsets = r.get_u32_array()?;
    let blob_len = r.get_u64()? as usize;
    let blob = r.take(blob_len)?.to_vec();
    let posting_offsets = r.get_u32_array()?;
    let arena_tables = r.get_u32_array()?;
    let arena_cols = r.get_u16_array()?;
    let arena =
        build_arena(&arena_tables, &arena_cols, |ti| tables.get(ti).map(|t| t.n_cols() as u16))?;
    let frozen =
        FrozenIndex::from_raw_parts(buckets, hashes, value_offsets, blob, posting_offsets, arena)
            .map_err(StoreError::Corrupt)?;

    let lsh = if header.has_lsh() {
        let export = decode_lsh(&mut r)?;
        if export.columns.len() as u32 != header.n_lsh_columns {
            return Err(StoreError::Corrupt(format!(
                "LSH section holds {} columns, header promised {}",
                export.columns.len(),
                header.n_lsh_columns
            )));
        }
        Some(LshEnsembleIndex::from_export(export).map_err(StoreError::Corrupt)?)
    } else {
        None
    };

    if r.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after snapshot body",
            r.remaining()
        )));
    }

    Ok(LoadedLake {
        lake: DataLake::from_frozen(tables, frozen),
        lsh: LshSlot::eager(lsh),
        quarantined: Vec::new(),
        n_frames: 0,
    })
}

/// Zip the struct-of-arrays posting encoding back into `Posting`s,
/// validating every reference against the lake's (metadata-only) schema.
fn build_arena(
    arena_tables: &[u32],
    arena_cols: &[u16],
    n_cols_of: impl Fn(usize) -> Option<u16>,
) -> Result<Vec<Posting>, StoreError> {
    if arena_tables.len() != arena_cols.len() {
        return Err(StoreError::Corrupt(format!(
            "posting arrays disagree: {} tables vs {} columns",
            arena_tables.len(),
            arena_cols.len()
        )));
    }
    let mut arena = Vec::with_capacity(arena_tables.len());
    for (&table, &column) in arena_tables.iter().zip(arena_cols) {
        match n_cols_of(table as usize) {
            Some(nc) if column < nc => arena.push(Posting { table, column }),
            Some(_) => {
                return Err(StoreError::Corrupt(format!(
                    "posting references column {column} of table {table} (too few columns)"
                )))
            }
            None => {
                return Err(StoreError::Corrupt(format!(
                    "posting references table {table}, beyond the lake's table count"
                )))
            }
        }
    }
    Ok(arena)
}

/// Read a length-prefixed word array (`put_u32_array`/`put_u64_array`
/// wire format) as a zero-copy view anchored at `base + position` of
/// `buf`, advancing the reader past it.
fn read_view<T: LeWord>(
    r: &mut BinReader<'_>,
    buf: &LakeBuf,
    base: usize,
) -> Result<WordView<T>, StoreError> {
    let n = r.get_u64()? as usize;
    let start = base + r.position();
    let bytes = n.checked_mul(T::BYTES).ok_or_else(|| {
        StoreError::Corrupt(format!("{}-byte word array of {n} elements overflows", T::BYTES))
    })?;
    r.take(bytes)?;
    WordView::view(buf.clone(), start, n).map_err(StoreError::Corrupt)
}

/// Read a snapshot's summary from its fixed header without loading (or
/// checksumming) the body.
pub fn stat(path: &Path) -> Result<SnapshotStat, StoreError> {
    let mut f = fs::File::open(path).map_err(|e| StoreError::io(path, e))?;
    let file_bytes = f.metadata().map_err(|e| StoreError::io(path, e))?.len();
    let mut head = vec![0u8; HEADER_LEN];
    f.read_exact(&mut head).map_err(|_| {
        StoreError::Corrupt(format!("file is {file_bytes} bytes — too short for a snapshot"))
    })?;
    Ok(SnapshotStat { header: SnapshotHeader::decode(&head)?, file_bytes })
}

fn encode_lsh(e: &LshIndexExport, w: &mut BinWriter) {
    w.put_u32(e.cfg.num_perm as u32);
    w.put_u32(e.cfg.num_bands as u32);
    w.put_u32(e.cfg.num_partitions as u32);
    w.put_u64(e.cfg.seed);
    w.put_u32(e.cfg.min_column_size as u32);

    w.put_u32(e.columns.len() as u32);
    for c in &e.columns {
        w.put_u32(c.posting.table);
        w.put_u16(c.posting.column);
        w.put_u64(c.size);
        for &slot in &c.slots {
            w.put_u64(slot);
        }
    }

    w.put_u32(e.partitions.len() as u32);
    for p in &e.partitions {
        w.put_u32(p.members.len() as u32);
        for &m in &p.members {
            w.put_u32(m);
        }
        w.put_u64(p.max_size);
        for band in &p.buckets {
            w.put_u32(band.len() as u32);
            for (hash, members) in band {
                w.put_u64(*hash);
                w.put_u32(members.len() as u32);
                for &m in members {
                    w.put_u32(m);
                }
            }
        }
    }
}

fn decode_lsh(r: &mut BinReader<'_>) -> Result<LshIndexExport, StoreError> {
    let num_perm = r.get_u32()? as usize;
    let num_bands = r.get_u32()? as usize;
    let num_partitions = r.get_u32()? as usize;
    let seed = r.get_u64()?;
    let min_column_size = r.get_u32()? as usize;
    let cfg = LshConfig { num_perm, num_bands, num_partitions, seed, min_column_size };
    if num_perm == 0 || num_perm > 1 << 20 {
        return Err(StoreError::Corrupt(format!("implausible LSH num_perm {num_perm}")));
    }
    if num_bands == 0 || num_bands > num_perm {
        return Err(StoreError::Corrupt(format!("implausible LSH num_bands {num_bands}")));
    }

    // As in `load`: never size an allocation from an on-disk count without
    // checking the bytes are actually there (each entry costs ≥ 1 byte).
    let guard = |n: usize, left: usize, what: &str| -> Result<(), StoreError> {
        if n > left {
            Err(StoreError::Corrupt(format!(
                "LSH section claims {n} {what} with {left} bytes left"
            )))
        } else {
            Ok(())
        }
    };

    let n_columns = r.get_u32()? as usize;
    guard(n_columns, r.remaining(), "columns")?;
    let mut columns = Vec::with_capacity(n_columns);
    for _ in 0..n_columns {
        let table = r.get_u32()?;
        let column = r.get_u16()?;
        let size = r.get_u64()?;
        let slots = r.get_u64s(num_perm)?;
        columns.push(LshColumnExport { posting: Posting { table, column }, size, slots });
    }

    let n_parts = r.get_u32()? as usize;
    guard(n_parts, r.remaining(), "partitions")?;
    let mut partitions = Vec::with_capacity(n_parts);
    for _ in 0..n_parts {
        let n_members = r.get_u32()? as usize;
        guard(n_members, r.remaining(), "members")?;
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            members.push(r.get_u32()?);
        }
        let max_size = r.get_u64()?;
        let mut buckets = Vec::with_capacity(num_bands);
        for _ in 0..num_bands {
            let n_buckets = r.get_u32()? as usize;
            guard(n_buckets, r.remaining(), "buckets")?;
            let mut band = Vec::with_capacity(n_buckets);
            for _ in 0..n_buckets {
                let hash = r.get_u64()?;
                let n = r.get_u32()? as usize;
                guard(n, r.remaining(), "bucket members")?;
                let mut ms = Vec::with_capacity(n);
                for _ in 0..n {
                    ms.push(r.get_u32()?);
                }
                band.push((hash, ms));
            }
            buckets.push(band);
        }
        partitions.push(LshPartitionExport { members, max_size, buckets });
    }

    Ok(LshIndexExport { cfg, columns, partitions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gent_table::{Table, Value as V};
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gent-store-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    fn lake() -> DataLake {
        let a = Table::build(
            "customers",
            &["id", "name"],
            &[],
            (0..40).map(|i| vec![V::Int(i), V::str(format!("c{i}"))]).collect(),
        )
        .unwrap();
        let b = Table::build(
            "orders",
            &["oid", "cust"],
            &[],
            (0..25).map(|i| vec![V::Int(1000 + i), V::Int(i % 7)]).collect(),
        )
        .unwrap();
        DataLake::from_tables(vec![a, b])
    }

    #[test]
    fn save_load_round_trip() {
        let l = lake();
        let path = scratch("roundtrip.gentlake");
        save(&path, &l, None).unwrap();
        let loaded = load(&path).unwrap();
        assert!(loaded.lsh.force().unwrap().is_none());
        assert_eq!(loaded.lake.len(), l.len());
        assert_eq!(loaded.lake.index_len(), l.index_len());
        for probe in [V::Int(3), V::Int(1005), V::str("c7"), V::str("nope")] {
            assert_eq!(loaded.lake.postings(&probe), l.postings(&probe), "postings({probe})");
        }
        assert_eq!(
            loaded.lake.get_by_name("orders").unwrap().rows(),
            l.get_by_name("orders").unwrap().rows()
        );
    }

    /// The acceptance property of the zero-copy open: loading decodes *no*
    /// table cells and no LSH bands; metadata and posting lookups work on
    /// the undecoded lake; touching one table decodes exactly that table.
    #[test]
    fn lazy_open_decodes_nothing_until_touched() {
        let l = lake();
        let lsh = LshEnsembleIndex::build(&l, LshConfig::default());
        let path = scratch("lazy.gentlake");
        save(&path, &l, Some(&lsh)).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.lake.tables_decoded(), 0, "open must not decode tables");
        assert!(!loaded.lsh.is_decoded(), "open must not decode LSH bands");
        assert!(loaded.lsh.n_columns() > 0, "column count available without decode");

        // Metadata + index lookups leave everything undecoded.
        assert_eq!(loaded.lake.len(), 2);
        assert_eq!(loaded.lake.name_of(0), Some("customers"));
        assert_eq!(loaded.lake.slots()[1].n_rows(), 25);
        assert_eq!(loaded.lake.postings(&V::Int(3)), l.postings(&V::Int(3)));
        assert_eq!(loaded.lake.tables_decoded(), 0);

        // Touching one table decodes exactly one.
        let orders = loaded.lake.get_by_name("orders").unwrap();
        assert_eq!(orders.rows(), l.get_by_name("orders").unwrap().rows());
        assert_eq!(loaded.lake.tables_decoded(), 1);

        // decode_all restores the eager world.
        loaded.lake.decode_all(2).unwrap();
        assert_eq!(loaded.lake.tables_decoded(), 2);
        let warm = loaded.lsh.force().unwrap().expect("lsh present");
        assert_eq!(warm.export(), lsh.export());
    }

    #[test]
    fn save_load_with_lsh() {
        let l = lake();
        let lsh = LshEnsembleIndex::build(&l, LshConfig::default());
        let path = scratch("with-lsh.gentlake");
        save(&path, &l, Some(&lsh)).unwrap();
        let loaded = load(&path).unwrap();
        let warm = loaded.lsh.force().unwrap().expect("lsh present");
        assert_eq!(warm.export(), lsh.export());
    }

    /// v1 files (no section directory) stay readable, and answer exactly
    /// like the v2 open of the same lake.
    #[test]
    fn legacy_v1_snapshot_still_loads() {
        let l = lake();
        let lsh = LshEnsembleIndex::build(&l, LshConfig::default());
        let p1 = scratch("legacy-v1.gentlake");
        let p2 = scratch("current-v2.gentlake");
        save_legacy_v1(&p1, &l, Some(&lsh)).unwrap();
        save(&p2, &l, Some(&lsh)).unwrap();
        let v1 = load(&p1).unwrap();
        let v2 = load(&p2).unwrap();
        assert_eq!(stat(&p1).unwrap().header.version, SNAPSHOT_FORMAT_V1);
        // v1 decodes eagerly by construction.
        assert_eq!(v1.lake.tables_decoded(), v1.lake.len());
        assert_eq!(v1.lake.index_len(), v2.lake.index_len());
        for probe in [V::Int(3), V::Int(1005), V::str("c7")] {
            assert_eq!(v1.lake.postings(&probe), v2.lake.postings(&probe), "postings({probe})");
        }
        assert_eq!(
            v1.lake.get_by_name("customers").unwrap().rows(),
            v2.lake.get_by_name("customers").unwrap().rows()
        );
        assert_eq!(
            v1.lsh.force().unwrap().unwrap().export(),
            v2.lsh.force().unwrap().unwrap().export()
        );
    }

    /// Resaving a lazily-opened lake reproduces the file byte-for-byte:
    /// lazy decode is lossless and the buffer-backed index re-encodes via
    /// the bulk-copy path.
    #[test]
    fn resave_of_lazy_lake_is_byte_identical() {
        let l = lake();
        let lsh = LshEnsembleIndex::build(&l, LshConfig::default());
        let p1 = scratch("resave-1.gentlake");
        let p2 = scratch("resave-2.gentlake");
        save(&p1, &l, Some(&lsh)).unwrap();
        let loaded = load(&p1).unwrap();
        let relsh = loaded.lsh.force().unwrap().cloned();
        save(&p2, &loaded.lake, relsh.as_ref()).unwrap();
        assert_eq!(fs::read(&p1).unwrap(), fs::read(&p2).unwrap());
    }

    #[test]
    fn stat_reads_header_only() {
        let l = lake();
        let path = scratch("stat.gentlake");
        save(&path, &l, None).unwrap();
        let s = stat(&path).unwrap();
        assert_eq!(s.header.version, SNAPSHOT_FORMAT_VERSION);
        assert_eq!(s.header.n_tables, 2);
        assert_eq!(s.header.total_rows, 65);
        assert_eq!(s.header.total_cols, 4);
        assert!(!s.header.has_lsh());
        assert_eq!(s.header.n_index_entries as usize, l.index_len());
        assert!(s.file_bytes > (HEADER_LEN + TRAILER_LEN) as u64);
    }

    #[test]
    fn identical_lakes_produce_identical_bytes() {
        let p1 = scratch("stable-1.gentlake");
        let p2 = scratch("stable-2.gentlake");
        save(&p1, &lake(), None).unwrap();
        save(&p2, &lake(), None).unwrap();
        assert_eq!(fs::read(&p1).unwrap(), fs::read(&p2).unwrap());
    }

    #[test]
    fn corruption_detected_on_first_touch() {
        let path = scratch("corrupt.gentlake");
        save(&path, &lake(), None).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        // v3 verifies per section, on first decode: the open itself may
        // succeed, but forcing everything it deferred must surface the
        // flip as a structured error — corrupt bytes are never served.
        let surfaced = match load(&path) {
            Err(e) => matches!(e, StoreError::Corrupt(_)),
            Ok(loaded) => {
                loaded.lake.decode_all(1).is_err()
                    || loaded.lake.ensure_index().is_err()
                    || loaded.lsh.force().is_err()
            }
        };
        assert!(surfaced, "a flipped byte must fail a fully forced open");
    }

    #[test]
    fn non_snapshot_file_rejected() {
        let path = scratch("not-a-snapshot.txt");
        fs::write(&path, b"hello,world\n1,2\n").unwrap();
        assert!(matches!(load(&path), Err(StoreError::Corrupt(_))));
        assert!(matches!(stat(&path), Err(StoreError::Corrupt(_))));
    }
}
