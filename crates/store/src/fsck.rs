//! Offline integrity checking and repair for GENTLAKE snapshots.
//!
//! [`fsck`] walks a snapshot the way a paranoid open would — header, v3
//! directory meta checksum, every section checksum, every delta frame —
//! and reports *all* problems instead of stopping at the first. It never
//! decodes cells, so it runs in O(file) fold64 time regardless of how
//! corrupt the file is, and it never panics on hostile input.
//!
//! [`fsck_repair`] is the recovery half: open the file in degraded mode
//! (quarantining whatever fails its checksum), then rewrite a clean v3
//! base atomically. Quarantined tables persist as empty placeholders so
//! table indices — and therefore the inverted index's postings — stay
//! stable; their data is gone, which is exactly what the checksums said.
//!
//! Pre-v3 files get the only check their format supports: the whole-file
//! checksum.

use std::fs;
use std::path::Path;

use gent_table::binary::{decode_table_preamble, fold64, BinReader};

use crate::error::StoreError;
use crate::format::{
    verify_section, SectionDirV3, SnapshotHeader, HEADER_LEN, SNAPSHOT_FORMAT_VERSION, TRAILER_LEN,
};
use crate::snapshot::QuarantinedTable;

/// One thing wrong with the file, located as precisely as the walk can.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckProblem {
    /// Which structure failed: `"header"`, `"directory"`, `"strtab"`,
    /// `"table 3 (movies)"`, `"index"`, `"lsh"`, `"frame 2"`, …
    pub what: String,
    /// What failed about it (checksum mismatch, bad magic, …).
    pub detail: String,
}

/// Everything [`fsck`] learned about one snapshot file.
#[derive(Debug, Clone)]
pub struct FsckReport {
    /// Format version from the header (0 when the header itself is
    /// unreadable).
    pub version: u16,
    /// Base tables promised by the header.
    pub n_tables: usize,
    /// Committed delta frames after the body (v3 only).
    pub n_frames: usize,
    /// Whether an uncommitted (torn) tail frame follows the committed
    /// log. Not a problem — it is the expected shape of a crash mid-append
    /// and recovery drops it — but worth surfacing.
    pub torn_tail: bool,
    /// Every detected corruption. Empty means the file is clean.
    pub problems: Vec<FsckProblem>,
}

impl FsckReport {
    /// True when no corruption was detected (a torn tail alone is clean).
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }
}

fn problem(problems: &mut Vec<FsckProblem>, what: impl Into<String>, detail: impl ToString) {
    problems.push(FsckProblem { what: what.into(), detail: detail.to_string() });
}

/// Check every checksum in `path` and report all failures.
///
/// Only I/O errors (file missing, unreadable) surface as `Err`; corruption
/// of any severity — including an unreadable header — comes back as
/// problems in the report.
pub fn fsck(path: &Path) -> Result<FsckReport, StoreError> {
    let bytes = fs::read(path).map_err(|e| StoreError::io(path, e))?;
    let mut report =
        FsckReport { version: 0, n_tables: 0, n_frames: 0, torn_tail: false, problems: Vec::new() };
    let header = match SnapshotHeader::decode(&bytes) {
        Ok(h) => h,
        Err(e) => {
            problem(&mut report.problems, "header", e);
            return Ok(report);
        }
    };
    report.version = header.version;
    report.n_tables = header.n_tables as usize;
    if header.version != SNAPSHOT_FORMAT_VERSION {
        // v1/v2: one whole-file checksum is all the format offers.
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            problem(&mut report.problems, "trailer", "file too short for a checksum trailer");
            return Ok(report);
        }
        let body = &bytes[..bytes.len() - TRAILER_LEN];
        let stored = u64::from_le_bytes(bytes[bytes.len() - TRAILER_LEN..].try_into().unwrap());
        let computed = fold64(body);
        if stored != computed {
            problem(
                &mut report.problems,
                "whole-file checksum",
                format!("stored {stored:#018x}, computed {computed:#018x}"),
            );
        }
        return Ok(report);
    }

    let (dir, body_end) = match SectionDirV3::decode(&bytes, report.n_tables, header.has_lsh()) {
        Ok(d) => d,
        Err(e) => {
            // Without a trustworthy directory every offset downstream
            // is a guess; stop here.
            problem(&mut report.problems, "directory", e);
            return Ok(report);
        }
    };

    if let Err(e) = verify_section(&bytes, &dir.strtab, "strtab") {
        problem(&mut report.problems, "strtab", e);
    }
    for (i, entry) in dir.tables.iter().enumerate() {
        if let Err(e) = verify_section(&bytes, entry, "table") {
            let mut r = BinReader::new(&bytes[entry.range.range()]);
            let what = match decode_table_preamble(&mut r) {
                Ok(p) => format!("table {i} ({})", p.name),
                Err(_) => format!("table {i}"),
            };
            problem(&mut report.problems, what, e);
        }
    }
    if let Err(e) = verify_section(&bytes, &dir.index, "index") {
        problem(&mut report.problems, "index", e);
    }
    if let Some(entry) = &dir.lsh {
        if let Err(e) = verify_section(&bytes, entry, "lsh") {
            problem(&mut report.problems, "lsh", e);
        }
    }

    // Frames: the degraded scan records per-frame corruption instead of
    // failing, which is exactly the walk fsck wants.
    match crate::delta::scan_frames(&bytes, body_end, header.n_tables, true) {
        Ok(scan) => {
            report.n_frames = scan.frames.len();
            report.torn_tail = scan.torn_tail.is_some();
            for (k, frame) in scan.frames.iter().enumerate() {
                if let Some(reason) = &frame.corrupt {
                    problem(&mut report.problems, format!("frame {k}"), reason);
                }
            }
            if let Some(reason) = &scan.dropped {
                problem(&mut report.problems, "frame log", reason);
            }
        }
        Err(e) => problem(&mut report.problems, "frame log", e),
    }
    Ok(report)
}

/// Repair `path` in place: degraded open (corrupt tables → empty
/// placeholders, corrupt frames dropped from the index, torn tail
/// discarded), then an atomic rewrite of a clean v3 base with no frames.
///
/// Returns the tables that were quarantined — their slots survive as empty
/// stand-ins so table numbering stays stable, but their rows are
/// unrecoverable. A clean file round-trips unchanged (modulo compaction of
/// any frames into the base).
pub fn fsck_repair(path: &Path) -> Result<Vec<QuarantinedTable>, StoreError> {
    let loaded = crate::snapshot::load_degraded(path)?;
    let lsh = loaded.lsh.force()?.cloned();
    crate::snapshot::save(path, &loaded.lake, lsh.as_ref())?;
    Ok(loaded.quarantined)
}
