//! Append-only delta frames: how a v3 snapshot grows without a rewrite.
//!
//! A frame is a self-delimiting record appended after the base body:
//!
//! ```text
//! frame    := FRAME_MAGIC "GENTFRM1" (8)
//!           | payload_len u64
//!           | payload
//!           | checksum u64 = fold64(payload)
//!           | FRAME_COMMIT "GENTCMT1" (8)
//! payload  := first_table u32 | n_tables u32
//!           | strtab                       -- frame-local string table
//!           | (table_len u64 | table) × n_tables
//!           | n_entries u32 | entry × n_entries
//! entry    := canonical value (self-delimiting)
//!           | n_postings u32 | (table u32 | column u16) × n_postings
//! ```
//!
//! The commit marker is the durability pivot of the append protocol
//! (write frame sans marker → `sync_all` → write marker → `sync_all` →
//! parent-dir fsync): a frame is **acknowledged** exactly when its marker
//! is durable, so recovery can classify any tail state —
//!
//! * bytes past the last intact frame that do not finish with a commit
//!   marker at end-of-file are a **torn tail**: a crash mid-append.
//!   Nothing acknowledged lives there; the tail is dropped (logically at
//!   open, physically at the next append or `fsck --repair`).
//! * a damaged frame *followed by more committed data* (or one whose
//!   marker survives at end-of-file while its checksum does not) was
//!   acknowledged and then corrupted: a structured [`StoreError`] on a
//!   normal open, a per-table quarantine on a degraded one.
//!
//! Frames carry their own string table, so they decode independently of
//! the base strtab; their index entries hold only the *new* postings
//! (tables at `first_table..`), merged over the frozen base by
//! [`gent_discovery::DataLake::from_slots_with_delta`]. Appended tables
//! are covered by the exact inverted index immediately; the LSH bands
//! cover them after the next compaction (documented degradation —
//! approximate retrieval simply does not see frame tables yet).

use std::fs;
use std::io::{Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

use gent_discovery::lake::Posting;
use gent_table::binary::{
    decode_string_table, decode_value, encode_table_columnar, encode_value_canonical, fold64,
    BinReader, BinWriter, StringTableBuilder,
};
use gent_table::{FxHashMap, FxHashSet, Table, Value};

use crate::error::StoreError;
use crate::format::{SectionDirV3, SnapshotHeader, FRAME_COMMIT, FRAME_MAGIC, HEADER_LEN};

/// Byte overhead of a frame around its payload: magic + length prefix +
/// checksum + commit marker.
pub const FRAME_OVERHEAD: usize = 8 + 8 + 8 + 8;

/// One committed frame as the scanner saw it.
#[derive(Debug, Clone)]
pub(crate) struct ScannedFrame {
    /// Absolute lake index of the frame's first table.
    pub first_table: u32,
    /// Number of tables the frame appends.
    pub n_tables: u32,
    /// Absolute byte range of each table's columnar payload.
    pub tables: Vec<Range<usize>>,
    /// The frame-local string table (empty for a corrupt frame).
    pub strings: Arc<[Arc<str>]>,
    /// The frame's index delta: value → *new* postings. Empty for a
    /// corrupt frame — quarantined tables must not be discoverable.
    pub entries: Vec<(Value, Vec<Posting>)>,
    /// `Some(reason)` when the frame was committed but failed its
    /// checksum (degraded scans only; a normal scan errors instead).
    pub corrupt: Option<String>,
}

/// What a walk over the frame region found.
#[derive(Debug, Clone, Default)]
pub(crate) struct FrameScan {
    pub frames: Vec<ScannedFrame>,
    /// Byte offset of a torn (uncommitted) tail, when one exists.
    pub torn_tail: Option<usize>,
    /// End of the last committed frame — where the next append writes.
    pub committed_len: usize,
    /// Degraded scans only: reason the remaining bytes after a
    /// structurally unparseable frame were dropped.
    pub dropped: Option<String>,
}

/// Walk the frame region of `bytes` starting at `body_end`. In normal
/// mode any committed-but-damaged frame is a hard [`StoreError`]; in
/// degraded mode it becomes a [`ScannedFrame`] with `corrupt` set (when
/// its structure still parses) or stops the walk with `dropped`.
pub(crate) fn scan_frames(
    bytes: &[u8],
    body_end: usize,
    base_tables: u32,
    degraded: bool,
) -> Result<FrameScan, StoreError> {
    let mut scan = FrameScan { committed_len: body_end, ..FrameScan::default() };
    let mut next_table = base_tables;
    // Does the file end with a commit marker? If so, everything up to
    // that marker was acknowledged — parse failures before it are
    // corruption, not a torn tail.
    let tail_committed = bytes.len() >= body_end + FRAME_OVERHEAD
        && &bytes[bytes.len() - 8..] == FRAME_COMMIT.as_slice();
    let mut p = body_end;
    while p < bytes.len() {
        let fail = |msg: String| -> StoreError {
            StoreError::Corrupt(format!("delta frame at byte {p}: {msg}"))
        };
        let torn = |scan: &mut FrameScan| {
            scan.torn_tail = Some(p);
        };
        let rest = &bytes[p..];
        if rest.len() < 16 || &rest[..8] != FRAME_MAGIC.as_slice() {
            if tail_committed {
                let msg = "bytes are not a frame but the file ends with a commit marker".into();
                if degraded {
                    scan.dropped = Some(msg);
                    return Ok(scan);
                }
                return Err(fail(msg));
            }
            torn(&mut scan);
            return Ok(scan);
        }
        let payload_len = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes")) as usize;
        let frame_len = payload_len
            .checked_add(FRAME_OVERHEAD)
            .filter(|l| p.checked_add(*l).is_some_and(|end| end <= bytes.len()));
        let Some(frame_len) = frame_len else {
            if tail_committed {
                let msg = format!("frame of {payload_len} payload bytes overruns the file");
                if degraded {
                    scan.dropped = Some(msg);
                    return Ok(scan);
                }
                return Err(fail(msg));
            }
            torn(&mut scan);
            return Ok(scan);
        };
        let frame_end = p + frame_len;
        if &bytes[frame_end - 8..frame_end] != FRAME_COMMIT.as_slice() {
            if frame_end == bytes.len() {
                // The expected crash shape: a fully-written frame whose
                // marker never landed. Never acknowledged — drop it.
                torn(&mut scan);
                return Ok(scan);
            }
            let msg = "commit marker corrupted mid-log".to_string();
            if degraded {
                scan.dropped = Some(msg);
                return Ok(scan);
            }
            return Err(fail(msg));
        }
        let payload = &bytes[p + 16..p + 16 + payload_len];
        let stored =
            u64::from_le_bytes(bytes[frame_end - 16..frame_end - 8].try_into().expect("8 bytes"));
        let computed = fold64(payload);
        let corrupt = if stored == computed {
            None
        } else {
            Some(format!(
                "frame checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ))
        };
        if let Some(reason) = &corrupt {
            if !degraded {
                return Err(fail(reason.clone()));
            }
        }
        match parse_payload(payload, p + 16, next_table, corrupt) {
            Ok(frame) => {
                next_table += frame.n_tables;
                scan.frames.push(frame);
                scan.committed_len = frame_end;
                p = frame_end;
            }
            Err(e) => {
                if degraded {
                    scan.dropped = Some(e.to_string());
                    return Ok(scan);
                }
                return Err(fail(e.to_string()));
            }
        }
    }
    Ok(scan)
}

/// Parse one frame payload. When `corrupt` is set (degraded scan of an
/// acknowledged-but-damaged frame) the table *ranges* are still recovered
/// so the loader can quarantine them by name, but the index entries are
/// discarded — a quarantined table must not be discoverable.
fn parse_payload(
    payload: &[u8],
    payload_base: usize,
    expected_first: u32,
    corrupt: Option<String>,
) -> Result<ScannedFrame, StoreError> {
    let mut r = BinReader::new(payload);
    let first_table = r.get_u32()?;
    let n_tables = r.get_u32()?;
    if first_table != expected_first {
        return Err(StoreError::Corrupt(format!(
            "frame numbers its tables from {first_table}, expected {expected_first}"
        )));
    }
    if n_tables as usize > r.remaining() {
        return Err(StoreError::Corrupt(format!(
            "frame claims {n_tables} tables with {} bytes left",
            r.remaining()
        )));
    }
    let strings: Arc<[Arc<str>]> = decode_string_table(&mut r)?.into();
    let mut tables = Vec::with_capacity(n_tables as usize);
    for i in 0..n_tables {
        let len = r.get_u64()? as usize;
        let start = payload_base + r.position();
        r.take(len).map_err(|_| {
            StoreError::Corrupt(format!("frame table {i} of {len} bytes overruns the frame"))
        })?;
        tables.push(start..start + len);
    }
    let mut entries = Vec::new();
    let n_entries = r.get_u32()? as usize;
    if n_entries > r.remaining() {
        return Err(StoreError::Corrupt(format!(
            "frame claims {n_entries} index entries with {} bytes left",
            r.remaining()
        )));
    }
    for _ in 0..n_entries {
        let value = decode_value(&mut r)?;
        let n_postings = r.get_u32()? as usize;
        if n_postings.saturating_mul(6) > r.remaining() {
            return Err(StoreError::Corrupt(format!(
                "frame entry claims {n_postings} postings with {} bytes left",
                r.remaining()
            )));
        }
        let mut postings = Vec::with_capacity(n_postings);
        for _ in 0..n_postings {
            let table = r.get_u32()?;
            let column = r.get_u16()?;
            if table < first_table || table >= first_table + n_tables {
                return Err(StoreError::Corrupt(format!(
                    "frame posting references table {table}, outside the frame's \
                     {first_table}..{}",
                    first_table + n_tables
                )));
            }
            postings.push(Posting { table, column });
        }
        entries.push((value, postings));
    }
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after the frame payload",
            r.remaining()
        )));
    }
    if corrupt.is_some() {
        entries.clear();
    }
    Ok(ScannedFrame { first_table, n_tables, tables, strings, entries, corrupt })
}

/// Encode one frame (magic through commit marker) appending `tables`
/// starting at absolute lake index `first_table`. Deterministic: index
/// entries are sorted by canonical key bytes, like the frozen index.
pub(crate) fn encode_frame(first_table: u32, tables: &[Table]) -> Vec<u8> {
    let mut strings = StringTableBuilder::new();
    let mut encoded: Vec<Vec<u8>> = Vec::with_capacity(tables.len());
    for t in tables {
        let mut w = BinWriter::new();
        encode_table_columnar(t, &mut w, &mut strings);
        encoded.push(w.into_bytes());
    }
    let mut payload = BinWriter::new();
    payload.put_u32(first_table);
    payload.put_u32(tables.len() as u32);
    strings.encode(&mut payload);
    for t in &encoded {
        payload.put_u64(t.len() as u64);
        payload.put_raw(t);
    }

    // The index delta: exactly what `DataLake::push_table` would have
    // inserted — per-column distinct non-null values.
    let mut delta: FxHashMap<Value, Vec<Posting>> = FxHashMap::default();
    for (ti, t) in tables.iter().enumerate() {
        let table = first_table + ti as u32;
        for (ci, _) in t.schema().columns().enumerate() {
            let mut seen: FxHashSet<&Value> = FxHashSet::default();
            for v in t.column(ci) {
                if !v.is_null_like() && seen.insert(v) {
                    delta.entry(v.clone()).or_default().push(Posting { table, column: ci as u16 });
                }
            }
        }
    }
    let mut entries: Vec<(Vec<u8>, Vec<Posting>)> = delta
        .into_iter()
        .map(|(v, p)| {
            let mut w = BinWriter::new();
            encode_value_canonical(&v, &mut w);
            (w.into_bytes(), p)
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    payload.put_u32(entries.len() as u32);
    for (key, postings) in &entries {
        payload.put_raw(key);
        payload.put_u32(postings.len() as u32);
        for p in postings {
            payload.put_u32(p.table);
            payload.put_u16(p.column);
        }
    }

    let payload = payload.into_bytes();
    let mut frame = BinWriter::new();
    frame.put_raw(FRAME_MAGIC);
    frame.put_u64(payload.len() as u64);
    let checksum = fold64(&payload);
    frame.put_raw(&payload);
    frame.put_u64(checksum);
    frame.put_raw(FRAME_COMMIT);
    frame.into_bytes()
}

/// What [`append_tables`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Absolute lake index assigned to the first appended table.
    pub first_table: u32,
    /// Committed frames in the file after this append.
    pub frames_after: usize,
    /// A torn tail from an earlier crash was physically truncated first.
    pub truncated_torn_tail: bool,
}

/// Append `tables` to the v3 snapshot at `path` as one delta frame, under
/// the crash-safe protocol: any torn tail is truncated, the frame is
/// written **without** its commit marker and fsynced, then the marker is
/// written and fsynced, then the parent directory is fsynced. The append
/// is acknowledged (returns `Ok`) only once the marker is durable; a
/// crash at any earlier point leaves a torn tail the next open drops.
///
/// Fault sites (`gent-faults`): `store.append.write`, `store.append.sync`,
/// `store.append.commit`.
pub fn append_tables(path: &Path, tables: &[Table]) -> Result<AppendOutcome, StoreError> {
    if tables.is_empty() {
        return Err(StoreError::Corrupt("refusing to append an empty delta frame".into()));
    }
    let bytes = fs::read(path).map_err(|e| StoreError::io(path, e))?;
    let header = SnapshotHeader::decode(&bytes)?;
    if header.version != crate::format::SNAPSHOT_FORMAT_VERSION {
        return Err(StoreError::Corrupt(format!(
            "delta append requires a v{} snapshot, found v{} — re-save it with the current \
             writer first",
            crate::format::SNAPSHOT_FORMAT_VERSION,
            header.version
        )));
    }
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Corrupt("file too short for a snapshot".into()));
    }
    let (_, body_end) = SectionDirV3::decode(&bytes, header.n_tables as usize, header.has_lsh())?;
    let scan = scan_frames(&bytes, body_end, header.n_tables, false)?;
    let first_table = header.n_tables + scan.frames.iter().map(|f| f.n_tables).sum::<u32>();
    let frame = encode_frame(first_table, tables);

    let truncating = scan.committed_len < bytes.len();
    if truncating {
        crate::telemetry::instruments().torn_tails.inc();
        gent_obs::log(
            gent_obs::Level::Warn,
            "gent_store::delta",
            "torn tail frame dropped before append",
            &[
                ("path", gent_obs::Value::from(path.display().to_string())),
                ("committed_len", gent_obs::Value::from(scan.committed_len as u64)),
                ("file_len", gent_obs::Value::from(bytes.len() as u64)),
            ],
        );
    }

    if let Some(e) = gent_faults::fail_io!("store.append.write") {
        return Err(StoreError::io(path, e));
    }
    let mut file = fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(|e| StoreError::io(path, e))?;
    file.set_len(scan.committed_len as u64).map_err(|e| StoreError::io(path, e))?;
    file.seek(SeekFrom::Start(scan.committed_len as u64)).map_err(|e| StoreError::io(path, e))?;
    let (body, marker) = frame.split_at(frame.len() - 8);
    file.write_all(body).map_err(|e| StoreError::io(path, e))?;
    if let Some(e) = gent_faults::fail_io!("store.append.sync") {
        return Err(StoreError::io(path, e));
    }
    file.sync_all().map_err(|e| StoreError::io(path, e))?;
    if let Some(e) = gent_faults::fail_io!("store.append.commit") {
        return Err(StoreError::io(path, e));
    }
    file.write_all(marker).map_err(|e| StoreError::io(path, e))?;
    file.sync_all().map_err(|e| StoreError::io(path, e))?;
    drop(file);
    crate::snapshot::sync_parent_dir(path)?;
    crate::telemetry::instruments().delta_appends.inc();
    Ok(AppendOutcome {
        first_table,
        frames_after: scan.frames.len() + 1,
        truncated_torn_tail: truncating,
    })
}

/// How many committed frames the snapshot at `path` currently carries
/// (and whether a torn tail trails them) — the serve tier's compaction
/// trigger reads this without building a lake.
pub fn frame_count(path: &Path) -> Result<(usize, bool), StoreError> {
    let bytes = fs::read(path).map_err(|e| StoreError::io(path, e))?;
    let header = SnapshotHeader::decode(&bytes)?;
    if header.version != crate::format::SNAPSHOT_FORMAT_VERSION {
        return Ok((0, false));
    }
    let (_, body_end) = SectionDirV3::decode(&bytes, header.n_tables as usize, header.has_lsh())?;
    let scan = scan_frames(&bytes, body_end, header.n_tables, false)?;
    Ok((scan.frames.len(), scan.torn_tail.is_some()))
}

/// Fold every delta frame back into a clean v3 base file: load the lake
/// (frames and all), re-freeze the merged index, and atomically rewrite
/// `path` via the `write_atomic` protocol. Returns the number of frames
/// folded. The rewrite also re-derives nothing from quarantined state —
/// compaction of a corrupt file is `fsck --repair`'s job, and this
/// function loads in normal (strict) mode.
///
/// Fault site: `store.compact.save` (via the shared `store.save.*` sites
/// inside `write_atomic`).
pub fn compact(path: &Path) -> Result<usize, StoreError> {
    let loaded = crate::snapshot::load(path)?;
    if loaded.n_frames == 0 {
        return Ok(0);
    }
    if let Some(e) = gent_faults::fail_io!("store.compact.save") {
        return Err(StoreError::io(path, e));
    }
    let lsh = loaded.lsh.force()?.cloned();
    crate::snapshot::save(path, &loaded.lake, lsh.as_ref())?;
    crate::telemetry::instruments().compactions.inc();
    Ok(loaded.n_frames)
}
