//! The on-disk snapshot container format.
//!
//! This module owns the fixed header and (since version 2) the
//! section-offset table; the full byte-level specification — section
//! layouts, column tags, the canonical value encoding, evolution rules —
//! lives in `docs/gentlake-format.md` and must be updated in the same
//! change as any codec edit. The 10,000-foot view (all integers
//! little-endian, no padding between sections):
//!
//! ```text
//! file    := header | dir | body | fold64(header‖dir‖body) u64
//! header  := MAGIC "GENTLAKE" (8) | version u16 | flags u16
//!          | n_tables u32 | total_rows u64 | total_cols u64
//!          | n_index_entries u64 | n_lsh_columns u32 | reserved u32
//!          (48 bytes total — `HEADER_LEN`)
//! dir     := (offset u64 | len u64) × (3 + n_tables)   -- v2 only:
//!            strtab, index, lsh (0/0 when absent), then one per table;
//!            absolute file offsets, contiguous, in body order
//! body    := strtab | tables | index | [lsh]   (lsh iff flags bit 0)
//! strtab  := deduplicated strings shared by all tables
//!            (gent_table::binary::StringTableBuilder)
//! tables  := columnar table payload × n_tables
//!            (gent_table::binary::encode_table_columnar: per-column tag,
//!            packed int/float payloads behind presence bitmaps, u32
//!            string-table ids, tagged cells only for mixed columns)
//! index   := the FrozenIndex arrays, verbatim: buckets u32[], hashes
//!            u64[], value_offsets u32[], blob_len u64 + blob bytes,
//!            posting_offsets u32[], arena (u32[] tables ‖ u16[] columns)
//!            — entries sorted by canonical key bytes, so equal lakes
//!            produce byte-identical snapshots
//! lsh     := cfg | columns (bulk signature slots) | partitions
//! ```
//!
//! The design goal of v1 was an *open path at memory-copy speed*; v2 goes
//! further: a **zero-copy, zero-decode open**. The section-offset table
//! ([`SectionDir`]) frames every section, so `load` reads the file once
//! into a shared `LakeBuf`, anchors the [`gent_discovery::FrozenIndex`]
//! arrays as views into it, and defers each table's cell payload to a lazy
//! [`gent_table::binary::TableSlot`] — opening a lake decodes table
//! *preambles* (name, schema, row count) and the posting arena, nothing
//! else. Version 1 files (no directory) remain readable via the legacy
//! eager decoder. The single trailing checksum covers header, directory
//! and body, so any bit flip anywhere in the file is detected at open time.
//!
//! Evolvability contract (see `docs/gentlake-format.md` for the details):
//! readers hard-reject unknown versions and must reject unknown `flags`
//! bits rather than skip bytes; new optional sections claim the next flag
//! bit and append after `index` (gaining a directory entry after the fixed
//! three); `reserved` grows the header only for zero-defaulting fields;
//! and counts or offsets that size allocations or build views are always
//! validated against the bytes actually present.

use crate::error::StoreError;
use gent_table::binary::{BinReader, BinWriter};

/// Magic prefix of a lake snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"GENTLAKE";

/// Current container format version: v2, the zero-copy layout with a
/// section-offset table between header and body.
pub const SNAPSHOT_FORMAT_VERSION: u16 = 2;

/// The legacy eager layout (no section directory). Still decoded, never
/// written (except by tests pinning back-compatibility).
pub const SNAPSHOT_FORMAT_V1: u16 = 1;

/// Header flag: the snapshot carries a serialized LSH Ensemble index.
pub const FLAG_HAS_LSH: u16 = 1 << 0;

/// All flag bits this build understands. Unknown bits are rejected at
/// decode time: sections are not length-framed, so a reader that cannot
/// parse a section cannot skip it either (see `docs/gentlake-format.md`).
pub const KNOWN_FLAGS: u16 = FLAG_HAS_LSH;

/// Byte length of the fixed header.
pub const HEADER_LEN: usize = 8 + 2 + 2 + 4 + 8 + 8 + 8 + 4 + 4;

/// Byte length of the trailing checksum.
pub const TRAILER_LEN: usize = 8;

/// The decoded fixed header — also the payload of `lake stat`, which reads
/// only these bytes and the file length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Container format version.
    pub version: u16,
    /// Feature flags ([`FLAG_HAS_LSH`]).
    pub flags: u16,
    /// Number of tables in the lake.
    pub n_tables: u32,
    /// Total rows across all tables.
    pub total_rows: u64,
    /// Total columns across all tables.
    pub total_cols: u64,
    /// Distinct values in the inverted index.
    pub n_index_entries: u64,
    /// Columns summarised by the LSH index (0 when absent).
    pub n_lsh_columns: u32,
}

impl SnapshotHeader {
    /// True when the snapshot carries an LSH index.
    pub fn has_lsh(&self) -> bool {
        self.flags & FLAG_HAS_LSH != 0
    }

    /// Append the header to `w`.
    pub fn encode(&self, w: &mut BinWriter) {
        w.put_raw(SNAPSHOT_MAGIC);
        w.put_u16(self.version);
        w.put_u16(self.flags);
        w.put_u32(self.n_tables);
        w.put_u64(self.total_rows);
        w.put_u64(self.total_cols);
        w.put_u64(self.n_index_entries);
        w.put_u32(self.n_lsh_columns);
        w.put_u32(0); // reserved
    }

    /// Decode and validate a header from the front of `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Corrupt(format!(
                "file too short for a snapshot header ({} bytes, need {HEADER_LEN})",
                bytes.len()
            )));
        }
        let mut r = BinReader::new(bytes);
        let magic = r.take(8).expect("length checked");
        if magic != SNAPSHOT_MAGIC {
            return Err(StoreError::Corrupt(format!(
                "bad magic {magic:02x?}: not a gent lake snapshot"
            )));
        }
        let version = r.get_u16().expect("length checked");
        if version != SNAPSHOT_FORMAT_VERSION && version != SNAPSHOT_FORMAT_V1 {
            return Err(StoreError::Version { found: version, supported: SNAPSHOT_FORMAT_VERSION });
        }
        let flags = r.get_u16().expect("length checked");
        if flags & !KNOWN_FLAGS != 0 {
            return Err(StoreError::Corrupt(format!(
                "unknown feature flags {:#06x}: snapshot uses sections this build cannot parse",
                flags & !KNOWN_FLAGS
            )));
        }
        let n_tables = r.get_u32().expect("length checked");
        let total_rows = r.get_u64().expect("length checked");
        let total_cols = r.get_u64().expect("length checked");
        let n_index_entries = r.get_u64().expect("length checked");
        let n_lsh_columns = r.get_u32().expect("length checked");
        let _reserved = r.get_u32().expect("length checked");
        Ok(SnapshotHeader {
            version,
            flags,
            n_tables,
            total_rows,
            total_cols,
            n_index_entries,
            n_lsh_columns,
        })
    }
}

/// One section's placement: absolute file offset + byte length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionRange {
    /// Absolute byte offset of the section's first byte.
    pub offset: u64,
    /// Section length in bytes.
    pub len: u64,
}

impl SectionRange {
    /// The section as a `usize` range (valid after [`SectionDir::decode`]'s
    /// bounds checks).
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset as usize..(self.offset + self.len) as usize
    }
}

/// The v2 section-offset table: where each body section lives, so a reader
/// can address any table (or skip the LSH export entirely) without
/// sequentially decoding everything before it. Entries are absolute file
/// offsets in body order; the directory itself sits between the fixed
/// header and the first section and is covered by the trailing checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionDir {
    /// The shared string table.
    pub strtab: SectionRange,
    /// The frozen inverted index.
    pub index: SectionRange,
    /// The LSH export; `None` when the header's LSH flag is clear
    /// (serialized as offset 0 / length 0).
    pub lsh: Option<SectionRange>,
    /// One columnar frame per table, in table order.
    pub tables: Vec<SectionRange>,
}

impl SectionDir {
    /// Encoded directory size for `n_tables` tables.
    pub fn encoded_len(n_tables: usize) -> usize {
        16 * (3 + n_tables)
    }

    /// Append the directory to `w` (fixed entries first, then tables).
    pub fn encode(&self, w: &mut BinWriter) {
        let mut put = |s: &SectionRange| {
            w.put_u64(s.offset);
            w.put_u64(s.len);
        };
        put(&self.strtab);
        put(&self.index);
        put(&self.lsh.unwrap_or(SectionRange { offset: 0, len: 0 }));
        for t in &self.tables {
            put(t);
        }
    }

    /// Decode and validate a directory for a file of `file_len` bytes with
    /// `n_tables` tables. Every offset is checked before any view is built:
    /// sections must tile the body **contiguously in body order** (strtab,
    /// tables, index, then LSH) from the byte after the directory to the
    /// byte before the trailer — the v2 equivalent of v1's "reader must
    /// consume every byte" rule, so corrupt offsets surface as a structured
    /// error here, never as a panicking slice downstream.
    pub fn decode(
        r: &mut BinReader<'_>,
        n_tables: usize,
        has_lsh: bool,
        file_len: usize,
    ) -> Result<Self, StoreError> {
        let body_start = (HEADER_LEN + Self::encoded_len(n_tables)) as u64;
        let body_end = (file_len - TRAILER_LEN) as u64;
        let read_pair = |r: &mut BinReader<'_>| -> Result<(u64, u64), StoreError> {
            Ok((r.get_u64()?, r.get_u64()?))
        };
        let check = |(offset, len): (u64, u64), what: &str| -> Result<SectionRange, StoreError> {
            let end = offset.checked_add(len).ok_or_else(|| {
                StoreError::Corrupt(format!("{what} section {offset}+{len} overflows"))
            })?;
            if offset < body_start || end > body_end {
                return Err(StoreError::Corrupt(format!(
                    "{what} section {offset}..{end} outside the body ({body_start}..{body_end})"
                )));
            }
            Ok(SectionRange { offset, len })
        };
        let strtab = check(read_pair(r)?, "strtab")?;
        let index = check(read_pair(r)?, "index")?;
        let lsh_raw = read_pair(r)?;
        let mut tables = Vec::with_capacity(n_tables);
        for i in 0..n_tables {
            tables.push(check(read_pair(r)?, &format!("table {i}"))?);
        }
        let lsh = if has_lsh {
            Some(check(lsh_raw, "lsh")?)
        } else {
            if lsh_raw != (0, 0) {
                return Err(StoreError::Corrupt(format!(
                    "lsh directory entry {}+{} set but the LSH flag is clear",
                    lsh_raw.0, lsh_raw.1
                )));
            }
            None
        };
        // Contiguity: the sections tile the body exactly, in body order.
        let mut cursor = body_start;
        let mut advance = |s: &SectionRange, what: &str| -> Result<(), StoreError> {
            if s.offset != cursor {
                return Err(StoreError::Corrupt(format!(
                    "{what} section starts at {} but the previous section ends at {cursor}",
                    s.offset
                )));
            }
            cursor += s.len;
            Ok(())
        };
        advance(&strtab, "strtab")?;
        for (i, t) in tables.iter().enumerate() {
            advance(t, &format!("table {i}"))?;
        }
        advance(&index, "index")?;
        if let Some(l) = &lsh {
            advance(l, "lsh")?;
        }
        if cursor != body_end {
            return Err(StoreError::Corrupt(format!(
                "sections end at {cursor} but the body ends at {body_end}"
            )));
        }
        Ok(SectionDir { strtab, index, lsh, tables })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotHeader {
        SnapshotHeader {
            version: SNAPSHOT_FORMAT_VERSION,
            flags: FLAG_HAS_LSH,
            n_tables: 3,
            total_rows: 120,
            total_cols: 9,
            n_index_entries: 450,
            n_lsh_columns: 9,
        }
    }

    #[test]
    fn header_round_trip() {
        let h = sample();
        let mut w = BinWriter::new();
        h.encode(&mut w);
        assert_eq!(w.len(), HEADER_LEN);
        assert_eq!(SnapshotHeader::decode(w.as_bytes()).unwrap(), h);
        assert!(h.has_lsh());
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut w = BinWriter::new();
        sample().encode(&mut w);
        let mut bytes = w.into_bytes();
        bytes[0] = b'X';
        assert!(matches!(SnapshotHeader::decode(&bytes), Err(StoreError::Corrupt(_))));

        let mut w = BinWriter::new();
        let mut h = sample();
        h.version = 99;
        h.encode(&mut w);
        assert!(matches!(
            SnapshotHeader::decode(w.as_bytes()),
            Err(StoreError::Version { found: 99, .. })
        ));
    }

    #[test]
    fn short_file_rejected() {
        assert!(matches!(SnapshotHeader::decode(b"GENT"), Err(StoreError::Corrupt(_))));
    }

    /// Sections are not length-framed, so a reader must refuse flags it
    /// does not implement instead of trying to skip their sections.
    #[test]
    fn unknown_flags_rejected() {
        let mut h = sample();
        h.flags |= 1 << 7;
        let mut w = BinWriter::new();
        h.encode(&mut w);
        let err = SnapshotHeader::decode(w.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown feature flags"), "{err}");
    }
}
