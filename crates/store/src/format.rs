//! The on-disk snapshot container format.
//!
//! This module owns the fixed header; the full byte-level specification —
//! section layouts, column tags, the canonical value encoding, evolution
//! rules — lives in `docs/gentlake-format.md` and must be updated in the
//! same change as any codec edit. The 10,000-foot view (all integers
//! little-endian, no padding between sections):
//!
//! ```text
//! file    := header | body | fold64(header‖body) u64
//! header  := MAGIC "GENTLAKE" (8) | version u16 | flags u16
//!          | n_tables u32 | total_rows u64 | total_cols u64
//!          | n_index_entries u64 | n_lsh_columns u32 | reserved u32
//!          (48 bytes total — `HEADER_LEN`)
//! body    := strtab | tables | index | [lsh]   (lsh iff flags bit 0)
//! strtab  := deduplicated strings shared by all tables
//!            (gent_table::binary::StringTableBuilder)
//! tables  := columnar table payload × n_tables
//!            (gent_table::binary::encode_table_columnar: per-column tag,
//!            packed int/float payloads behind presence bitmaps, u32
//!            string-table ids, tagged cells only for mixed columns)
//! index   := the FrozenIndex arrays, verbatim: buckets u32[], hashes
//!            u64[], value_offsets u32[], blob_len u64 + blob bytes,
//!            posting_offsets u32[], arena (u32[] tables ‖ u16[] columns)
//!            — entries sorted by canonical key bytes, so equal lakes
//!            produce byte-identical snapshots
//! lsh     := cfg | columns (bulk signature slots) | partitions
//! ```
//!
//! The design goal is an *open path at memory-copy speed*: the inverted
//! index is persisted in its serving layout ([`gent_discovery::FrozenIndex`]
//! — no per-value hash-map inserts on load), table columns are packed (no
//! per-cell tags for homogeneous columns), and strings are interned once per
//! snapshot (a cell costs a refcount bump, not an allocation). Everything
//! reuses the little-endian primitives of [`gent_table::binary`]; the single
//! trailing checksum covers header and body, so any bit flip anywhere in the
//! file is detected at open time.
//!
//! Evolvability contract (see `docs/gentlake-format.md` for the details):
//! readers hard-reject unknown versions and must reject unknown `flags`
//! bits rather than skip bytes (sections are not length-framed); new
//! optional sections claim the next flag bit and append after `index`;
//! `reserved` grows the header only for zero-defaulting fields; and counts
//! that size allocations are always validated against the bytes remaining.

use crate::error::StoreError;
use gent_table::binary::{BinReader, BinWriter};

/// Magic prefix of a lake snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"GENTLAKE";

/// Current container format version.
pub const SNAPSHOT_FORMAT_VERSION: u16 = 1;

/// Header flag: the snapshot carries a serialized LSH Ensemble index.
pub const FLAG_HAS_LSH: u16 = 1 << 0;

/// All flag bits this build understands. Unknown bits are rejected at
/// decode time: sections are not length-framed, so a reader that cannot
/// parse a section cannot skip it either (see `docs/gentlake-format.md`).
pub const KNOWN_FLAGS: u16 = FLAG_HAS_LSH;

/// Byte length of the fixed header.
pub const HEADER_LEN: usize = 8 + 2 + 2 + 4 + 8 + 8 + 8 + 4 + 4;

/// Byte length of the trailing checksum.
pub const TRAILER_LEN: usize = 8;

/// The decoded fixed header — also the payload of `lake stat`, which reads
/// only these bytes and the file length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Container format version.
    pub version: u16,
    /// Feature flags ([`FLAG_HAS_LSH`]).
    pub flags: u16,
    /// Number of tables in the lake.
    pub n_tables: u32,
    /// Total rows across all tables.
    pub total_rows: u64,
    /// Total columns across all tables.
    pub total_cols: u64,
    /// Distinct values in the inverted index.
    pub n_index_entries: u64,
    /// Columns summarised by the LSH index (0 when absent).
    pub n_lsh_columns: u32,
}

impl SnapshotHeader {
    /// True when the snapshot carries an LSH index.
    pub fn has_lsh(&self) -> bool {
        self.flags & FLAG_HAS_LSH != 0
    }

    /// Append the header to `w`.
    pub fn encode(&self, w: &mut BinWriter) {
        w.put_raw(SNAPSHOT_MAGIC);
        w.put_u16(self.version);
        w.put_u16(self.flags);
        w.put_u32(self.n_tables);
        w.put_u64(self.total_rows);
        w.put_u64(self.total_cols);
        w.put_u64(self.n_index_entries);
        w.put_u32(self.n_lsh_columns);
        w.put_u32(0); // reserved
    }

    /// Decode and validate a header from the front of `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Corrupt(format!(
                "file too short for a snapshot header ({} bytes, need {HEADER_LEN})",
                bytes.len()
            )));
        }
        let mut r = BinReader::new(bytes);
        let magic = r.take(8).expect("length checked");
        if magic != SNAPSHOT_MAGIC {
            return Err(StoreError::Corrupt(format!(
                "bad magic {magic:02x?}: not a gent lake snapshot"
            )));
        }
        let version = r.get_u16().expect("length checked");
        if version != SNAPSHOT_FORMAT_VERSION {
            return Err(StoreError::Version { found: version, supported: SNAPSHOT_FORMAT_VERSION });
        }
        let flags = r.get_u16().expect("length checked");
        if flags & !KNOWN_FLAGS != 0 {
            return Err(StoreError::Corrupt(format!(
                "unknown feature flags {:#06x}: snapshot uses sections this build cannot parse",
                flags & !KNOWN_FLAGS
            )));
        }
        let n_tables = r.get_u32().expect("length checked");
        let total_rows = r.get_u64().expect("length checked");
        let total_cols = r.get_u64().expect("length checked");
        let n_index_entries = r.get_u64().expect("length checked");
        let n_lsh_columns = r.get_u32().expect("length checked");
        let _reserved = r.get_u32().expect("length checked");
        Ok(SnapshotHeader {
            version,
            flags,
            n_tables,
            total_rows,
            total_cols,
            n_index_entries,
            n_lsh_columns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotHeader {
        SnapshotHeader {
            version: SNAPSHOT_FORMAT_VERSION,
            flags: FLAG_HAS_LSH,
            n_tables: 3,
            total_rows: 120,
            total_cols: 9,
            n_index_entries: 450,
            n_lsh_columns: 9,
        }
    }

    #[test]
    fn header_round_trip() {
        let h = sample();
        let mut w = BinWriter::new();
        h.encode(&mut w);
        assert_eq!(w.len(), HEADER_LEN);
        assert_eq!(SnapshotHeader::decode(w.as_bytes()).unwrap(), h);
        assert!(h.has_lsh());
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut w = BinWriter::new();
        sample().encode(&mut w);
        let mut bytes = w.into_bytes();
        bytes[0] = b'X';
        assert!(matches!(SnapshotHeader::decode(&bytes), Err(StoreError::Corrupt(_))));

        let mut w = BinWriter::new();
        let mut h = sample();
        h.version = 99;
        h.encode(&mut w);
        assert!(matches!(
            SnapshotHeader::decode(w.as_bytes()),
            Err(StoreError::Version { found: 99, .. })
        ));
    }

    #[test]
    fn short_file_rejected() {
        assert!(matches!(SnapshotHeader::decode(b"GENT"), Err(StoreError::Corrupt(_))));
    }

    /// Sections are not length-framed, so a reader must refuse flags it
    /// does not implement instead of trying to skip their sections.
    #[test]
    fn unknown_flags_rejected() {
        let mut h = sample();
        h.flags |= 1 << 7;
        let mut w = BinWriter::new();
        h.encode(&mut w);
        let err = SnapshotHeader::decode(w.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown feature flags"), "{err}");
    }
}
