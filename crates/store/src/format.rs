//! The on-disk snapshot container format.
//!
//! This module owns the fixed header and (since version 2) the
//! section-offset table; the full byte-level specification — section
//! layouts, column tags, the canonical value encoding, evolution rules —
//! lives in `docs/gentlake-format.md` and must be updated in the same
//! change as any codec edit. The 10,000-foot view (all integers
//! little-endian, no padding between sections):
//!
//! ```text
//! file    := header | dir | body | fold64(header‖dir‖body) u64
//! header  := MAGIC "GENTLAKE" (8) | version u16 | flags u16
//!          | n_tables u32 | total_rows u64 | total_cols u64
//!          | n_index_entries u64 | n_lsh_columns u32 | reserved u32
//!          (48 bytes total — `HEADER_LEN`)
//! dir     := (offset u64 | len u64) × (3 + n_tables)   -- v2 only:
//!            strtab, index, lsh (0/0 when absent), then one per table;
//!            absolute file offsets, contiguous, in body order
//! body    := strtab | tables | index | [lsh]   (lsh iff flags bit 0)
//! strtab  := deduplicated strings shared by all tables
//!            (gent_table::binary::StringTableBuilder)
//! tables  := columnar table payload × n_tables
//!            (gent_table::binary::encode_table_columnar: per-column tag,
//!            packed int/float payloads behind presence bitmaps, u32
//!            string-table ids, tagged cells only for mixed columns)
//! index   := the FrozenIndex arrays, verbatim: buckets u32[], hashes
//!            u64[], value_offsets u32[], blob_len u64 + blob bytes,
//!            posting_offsets u32[], arena (u32[] tables ‖ u16[] columns)
//!            — entries sorted by canonical key bytes, so equal lakes
//!            produce byte-identical snapshots
//! lsh     := cfg | columns (bulk signature slots) | partitions
//! ```
//!
//! The design goal of v1 was an *open path at memory-copy speed*; v2 goes
//! further: a **zero-copy, zero-decode open**. The section-offset table
//! ([`SectionDir`]) frames every section, so `load` reads the file once
//! into a shared `LakeBuf`, anchors the [`gent_discovery::FrozenIndex`]
//! arrays as views into it, and defers each table's cell payload to a lazy
//! [`gent_table::binary::TableSlot`] — opening a lake decodes table
//! *preambles* (name, schema, row count) and the posting arena, nothing
//! else. Version 1 files (no directory) remain readable via the legacy
//! eager decoder. The single trailing checksum covers header, directory
//! and body, so any bit flip anywhere in the file is detected at open time.
//!
//! Evolvability contract (see `docs/gentlake-format.md` for the details):
//! readers hard-reject unknown versions and must reject unknown `flags`
//! bits rather than skip bytes; new optional sections claim the next flag
//! bit and append after `index` (gaining a directory entry after the fixed
//! three); `reserved` grows the header only for zero-defaulting fields;
//! and counts or offsets that size allocations or build views are always
//! validated against the bytes actually present.

use crate::error::StoreError;
use gent_table::binary::{fold64, BinReader, BinWriter};

/// Magic prefix of a lake snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"GENTLAKE";

/// Current container format version: v3, the durable live-lake layout —
/// per-section checksums in the directory (verified on first decode of
/// each section instead of one O(file) pass at open) plus append-only
/// delta frames after the body.
pub const SNAPSHOT_FORMAT_VERSION: u16 = 3;

/// The zero-copy layout with a section-offset table and one whole-file
/// trailing checksum. Still decoded (and writable via
/// `snapshot::save_v2` for the open-cost comparison bench), no longer
/// the default.
pub const SNAPSHOT_FORMAT_V2: u16 = 2;

/// The legacy eager layout (no section directory). Still decoded, never
/// written (except by tests pinning back-compatibility).
pub const SNAPSHOT_FORMAT_V1: u16 = 1;

/// Magic prefix of a v3 delta frame.
pub const FRAME_MAGIC: &[u8; 8] = b"GENTFRM1";

/// Commit marker sealing a v3 delta frame. A frame without its marker is
/// a torn tail: recovery drops it (it was never acknowledged).
pub const FRAME_COMMIT: &[u8; 8] = b"GENTCMT1";

/// Header flag: the snapshot carries a serialized LSH Ensemble index.
pub const FLAG_HAS_LSH: u16 = 1 << 0;

/// All flag bits this build understands. Unknown bits are rejected at
/// decode time: sections are not length-framed, so a reader that cannot
/// parse a section cannot skip it either (see `docs/gentlake-format.md`).
pub const KNOWN_FLAGS: u16 = FLAG_HAS_LSH;

/// Byte length of the fixed header.
pub const HEADER_LEN: usize = 8 + 2 + 2 + 4 + 8 + 8 + 8 + 4 + 4;

/// Byte length of the trailing checksum.
pub const TRAILER_LEN: usize = 8;

/// The decoded fixed header — also the payload of `lake stat`, which reads
/// only these bytes and the file length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Container format version.
    pub version: u16,
    /// Feature flags ([`FLAG_HAS_LSH`]).
    pub flags: u16,
    /// Number of tables in the lake.
    pub n_tables: u32,
    /// Total rows across all tables.
    pub total_rows: u64,
    /// Total columns across all tables.
    pub total_cols: u64,
    /// Distinct values in the inverted index.
    pub n_index_entries: u64,
    /// Columns summarised by the LSH index (0 when absent).
    pub n_lsh_columns: u32,
}

impl SnapshotHeader {
    /// True when the snapshot carries an LSH index.
    pub fn has_lsh(&self) -> bool {
        self.flags & FLAG_HAS_LSH != 0
    }

    /// Append the header to `w`.
    pub fn encode(&self, w: &mut BinWriter) {
        w.put_raw(SNAPSHOT_MAGIC);
        w.put_u16(self.version);
        w.put_u16(self.flags);
        w.put_u32(self.n_tables);
        w.put_u64(self.total_rows);
        w.put_u64(self.total_cols);
        w.put_u64(self.n_index_entries);
        w.put_u32(self.n_lsh_columns);
        w.put_u32(0); // reserved
    }

    /// Decode and validate a header from the front of `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Corrupt(format!(
                "file too short for a snapshot header ({} bytes, need {HEADER_LEN})",
                bytes.len()
            )));
        }
        let mut r = BinReader::new(bytes);
        let magic = r.take(8).expect("length checked");
        if magic != SNAPSHOT_MAGIC {
            return Err(StoreError::Corrupt(format!(
                "bad magic {magic:02x?}: not a gent lake snapshot"
            )));
        }
        let version = r.get_u16().expect("length checked");
        if version != SNAPSHOT_FORMAT_VERSION
            && version != SNAPSHOT_FORMAT_V2
            && version != SNAPSHOT_FORMAT_V1
        {
            return Err(StoreError::Version { found: version, supported: SNAPSHOT_FORMAT_VERSION });
        }
        let flags = r.get_u16().expect("length checked");
        if flags & !KNOWN_FLAGS != 0 {
            return Err(StoreError::Corrupt(format!(
                "unknown feature flags {:#06x}: snapshot uses sections this build cannot parse",
                flags & !KNOWN_FLAGS
            )));
        }
        let n_tables = r.get_u32().expect("length checked");
        let total_rows = r.get_u64().expect("length checked");
        let total_cols = r.get_u64().expect("length checked");
        let n_index_entries = r.get_u64().expect("length checked");
        let n_lsh_columns = r.get_u32().expect("length checked");
        let _reserved = r.get_u32().expect("length checked");
        Ok(SnapshotHeader {
            version,
            flags,
            n_tables,
            total_rows,
            total_cols,
            n_index_entries,
            n_lsh_columns,
        })
    }
}

/// One section's placement: absolute file offset + byte length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionRange {
    /// Absolute byte offset of the section's first byte.
    pub offset: u64,
    /// Section length in bytes.
    pub len: u64,
}

impl SectionRange {
    /// The section as a `usize` range (valid after [`SectionDir::decode`]'s
    /// bounds checks).
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset as usize..(self.offset + self.len) as usize
    }
}

/// The v2 section-offset table: where each body section lives, so a reader
/// can address any table (or skip the LSH export entirely) without
/// sequentially decoding everything before it. Entries are absolute file
/// offsets in body order; the directory itself sits between the fixed
/// header and the first section and is covered by the trailing checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionDir {
    /// The shared string table.
    pub strtab: SectionRange,
    /// The frozen inverted index.
    pub index: SectionRange,
    /// The LSH export; `None` when the header's LSH flag is clear
    /// (serialized as offset 0 / length 0).
    pub lsh: Option<SectionRange>,
    /// One columnar frame per table, in table order.
    pub tables: Vec<SectionRange>,
}

impl SectionDir {
    /// Encoded directory size for `n_tables` tables.
    pub fn encoded_len(n_tables: usize) -> usize {
        16 * (3 + n_tables)
    }

    /// Append the directory to `w` (fixed entries first, then tables).
    pub fn encode(&self, w: &mut BinWriter) {
        let mut put = |s: &SectionRange| {
            w.put_u64(s.offset);
            w.put_u64(s.len);
        };
        put(&self.strtab);
        put(&self.index);
        put(&self.lsh.unwrap_or(SectionRange { offset: 0, len: 0 }));
        for t in &self.tables {
            put(t);
        }
    }

    /// Decode and validate a directory for a file of `file_len` bytes with
    /// `n_tables` tables. Every offset is checked before any view is built:
    /// sections must tile the body **contiguously in body order** (strtab,
    /// tables, index, then LSH) from the byte after the directory to the
    /// byte before the trailer — the v2 equivalent of v1's "reader must
    /// consume every byte" rule, so corrupt offsets surface as a structured
    /// error here, never as a panicking slice downstream.
    pub fn decode(
        r: &mut BinReader<'_>,
        n_tables: usize,
        has_lsh: bool,
        file_len: usize,
    ) -> Result<Self, StoreError> {
        let body_start = (HEADER_LEN + Self::encoded_len(n_tables)) as u64;
        let body_end = (file_len - TRAILER_LEN) as u64;
        let read_pair = |r: &mut BinReader<'_>| -> Result<(u64, u64), StoreError> {
            Ok((r.get_u64()?, r.get_u64()?))
        };
        let check = |(offset, len): (u64, u64), what: &str| -> Result<SectionRange, StoreError> {
            let end = offset.checked_add(len).ok_or_else(|| {
                StoreError::Corrupt(format!("{what} section {offset}+{len} overflows"))
            })?;
            if offset < body_start || end > body_end {
                return Err(StoreError::Corrupt(format!(
                    "{what} section {offset}..{end} outside the body ({body_start}..{body_end})"
                )));
            }
            Ok(SectionRange { offset, len })
        };
        let strtab = check(read_pair(r)?, "strtab")?;
        let index = check(read_pair(r)?, "index")?;
        let lsh_raw = read_pair(r)?;
        let mut tables = Vec::with_capacity(n_tables);
        for i in 0..n_tables {
            tables.push(check(read_pair(r)?, &format!("table {i}"))?);
        }
        let lsh = if has_lsh {
            Some(check(lsh_raw, "lsh")?)
        } else {
            if lsh_raw != (0, 0) {
                return Err(StoreError::Corrupt(format!(
                    "lsh directory entry {}+{} set but the LSH flag is clear",
                    lsh_raw.0, lsh_raw.1
                )));
            }
            None
        };
        // Contiguity: the sections tile the body exactly, in body order.
        let mut cursor = body_start;
        let mut advance = |s: &SectionRange, what: &str| -> Result<(), StoreError> {
            if s.offset != cursor {
                return Err(StoreError::Corrupt(format!(
                    "{what} section starts at {} but the previous section ends at {cursor}",
                    s.offset
                )));
            }
            cursor += s.len;
            Ok(())
        };
        advance(&strtab, "strtab")?;
        for (i, t) in tables.iter().enumerate() {
            advance(t, &format!("table {i}"))?;
        }
        advance(&index, "index")?;
        if let Some(l) = &lsh {
            advance(l, "lsh")?;
        }
        if cursor != body_end {
            return Err(StoreError::Corrupt(format!(
                "sections end at {cursor} but the body ends at {body_end}"
            )));
        }
        Ok(SectionDir { strtab, index, lsh, tables })
    }
}

/// One v3 directory entry: where the section lives plus the fold64 of its
/// bytes, verified on the section's *first decode* rather than in one
/// whole-file pass at open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// The section's placement.
    pub range: SectionRange,
    /// fold64 of the section's bytes.
    pub checksum: u64,
}

/// The v3 section directory: the v2 offset table with a per-entry
/// checksum, sealed by a **meta checksum** (fold64 of header‖directory)
/// so a flipped offset or checksum is caught before any view is built.
/// Unlike v2 there is no whole-file trailer and the body need not reach
/// the end of the file — append-only delta frames may follow it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionDirV3 {
    /// The shared string table (checksum verified at open — the strtab is
    /// decoded eagerly anyway).
    pub strtab: SectionEntry,
    /// The frozen inverted index. A strict open verifies the checksum on
    /// the index's first posting lookup (the deferred thaw); a degraded
    /// open verifies it eagerly, because quarantine filtering has to
    /// materialize the posting arena anyway.
    pub index: SectionEntry,
    /// The LSH export; checksum verified on first [`crate::LshSlot`]
    /// decode. `None` when the LSH flag is clear (serialized as zeros).
    pub lsh: Option<SectionEntry>,
    /// One columnar frame per table; each checksum is verified on the
    /// table's first cell decode (`TableSlot::force`).
    pub tables: Vec<SectionEntry>,
}

impl SectionDirV3 {
    /// Encoded directory size for `n_tables` tables, **including** the
    /// trailing meta checksum. `HEADER_LEN + encoded_len(n)` is where the
    /// body starts.
    pub fn encoded_len(n_tables: usize) -> usize {
        24 * (3 + n_tables) + 8
    }

    /// Append the directory to `w` (fixed entries first, then tables),
    /// then seal it with the meta checksum over everything written so far
    /// — `w` must already hold the header and nothing else before it.
    pub fn encode(&self, w: &mut BinWriter) {
        let mut put = |e: &SectionEntry| {
            w.put_u64(e.range.offset);
            w.put_u64(e.range.len);
            w.put_u64(e.checksum);
        };
        let zero = SectionEntry { range: SectionRange { offset: 0, len: 0 }, checksum: 0 };
        put(&self.strtab);
        put(&self.index);
        put(&self.lsh.unwrap_or(zero));
        for t in &self.tables {
            put(t);
        }
        let meta = fold64(w.as_bytes());
        w.put_u64(meta);
    }

    /// Decode and validate a v3 directory from `bytes` (the whole file).
    /// Verifies the meta checksum over header‖directory, then applies the
    /// same contiguous-tiling rule as v2 — except the body ends wherever
    /// the last section does, not at the end of the file: the returned
    /// `usize` is that body end, i.e. where delta frames begin.
    pub fn decode(
        bytes: &[u8],
        n_tables: usize,
        has_lsh: bool,
    ) -> Result<(Self, usize), StoreError> {
        let meta_end = HEADER_LEN + Self::encoded_len(n_tables);
        if bytes.len() < meta_end {
            return Err(StoreError::Corrupt(format!(
                "file too short for a v3 directory ({} bytes, need {meta_end})",
                bytes.len()
            )));
        }
        let stored_meta =
            u64::from_le_bytes(bytes[meta_end - 8..meta_end].try_into().expect("8 bytes"));
        let computed_meta = fold64(&bytes[..meta_end - 8]);
        if stored_meta != computed_meta {
            return Err(StoreError::Corrupt(format!(
                "directory meta checksum mismatch: stored {stored_meta:#018x}, \
                 computed {computed_meta:#018x}"
            )));
        }
        let body_start = meta_end as u64;
        let body_cap = bytes.len() as u64;
        let mut r = BinReader::new(&bytes[HEADER_LEN..meta_end - 8]);
        let read_entry = |r: &mut BinReader<'_>| -> Result<(u64, u64, u64), StoreError> {
            Ok((r.get_u64()?, r.get_u64()?, r.get_u64()?))
        };
        let check = |(offset, len, checksum): (u64, u64, u64),
                     what: &str|
         -> Result<SectionEntry, StoreError> {
            let end = offset.checked_add(len).ok_or_else(|| {
                StoreError::Corrupt(format!("{what} section {offset}+{len} overflows"))
            })?;
            if offset < body_start || end > body_cap {
                return Err(StoreError::Corrupt(format!(
                    "{what} section {offset}..{end} outside the file body \
                         ({body_start}..{body_cap})"
                )));
            }
            Ok(SectionEntry { range: SectionRange { offset, len }, checksum })
        };
        let strtab = check(read_entry(&mut r)?, "strtab")?;
        let index = check(read_entry(&mut r)?, "index")?;
        let lsh_raw = read_entry(&mut r)?;
        let mut tables = Vec::with_capacity(n_tables);
        for i in 0..n_tables {
            tables.push(check(read_entry(&mut r)?, &format!("table {i}"))?);
        }
        let lsh = if has_lsh {
            Some(check(lsh_raw, "lsh")?)
        } else {
            if lsh_raw != (0, 0, 0) {
                return Err(StoreError::Corrupt(format!(
                    "lsh directory entry {}+{} set but the LSH flag is clear",
                    lsh_raw.0, lsh_raw.1
                )));
            }
            None
        };
        // Contiguity: the sections tile the body exactly, in body order
        // (strtab, tables, index, lsh); frames may follow the last one.
        let mut cursor = body_start;
        let mut advance = |e: &SectionEntry, what: &str| -> Result<(), StoreError> {
            if e.range.offset != cursor {
                return Err(StoreError::Corrupt(format!(
                    "{what} section starts at {} but the previous section ends at {cursor}",
                    e.range.offset
                )));
            }
            cursor += e.range.len;
            Ok(())
        };
        advance(&strtab, "strtab")?;
        for (i, t) in tables.iter().enumerate() {
            advance(t, &format!("table {i}"))?;
        }
        advance(&index, "index")?;
        if let Some(l) = &lsh {
            advance(l, "lsh")?;
        }
        Ok((SectionDirV3 { strtab, index, lsh, tables }, cursor as usize))
    }
}

/// Verify one section's bytes against its directory entry. The error
/// names the section so a quarantine report can carry the reason through.
pub fn verify_section(bytes: &[u8], entry: &SectionEntry, what: &str) -> Result<(), StoreError> {
    let computed = fold64(&bytes[entry.range.range()]);
    if computed != entry.checksum {
        return Err(StoreError::Corrupt(format!(
            "{what} section checksum mismatch: stored {:#018x}, computed {computed:#018x}",
            entry.checksum
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotHeader {
        SnapshotHeader {
            version: SNAPSHOT_FORMAT_VERSION,
            flags: FLAG_HAS_LSH,
            n_tables: 3,
            total_rows: 120,
            total_cols: 9,
            n_index_entries: 450,
            n_lsh_columns: 9,
        }
    }

    #[test]
    fn header_round_trip() {
        let h = sample();
        let mut w = BinWriter::new();
        h.encode(&mut w);
        assert_eq!(w.len(), HEADER_LEN);
        assert_eq!(SnapshotHeader::decode(w.as_bytes()).unwrap(), h);
        assert!(h.has_lsh());
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut w = BinWriter::new();
        sample().encode(&mut w);
        let mut bytes = w.into_bytes();
        bytes[0] = b'X';
        assert!(matches!(SnapshotHeader::decode(&bytes), Err(StoreError::Corrupt(_))));

        let mut w = BinWriter::new();
        let mut h = sample();
        h.version = 99;
        h.encode(&mut w);
        assert!(matches!(
            SnapshotHeader::decode(w.as_bytes()),
            Err(StoreError::Version { found: 99, .. })
        ));
    }

    #[test]
    fn short_file_rejected() {
        assert!(matches!(SnapshotHeader::decode(b"GENT"), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn v3_dir_round_trips_and_meta_checksum_guards_it() {
        let h = SnapshotHeader { n_tables: 2, n_lsh_columns: 0, flags: 0, ..sample() };
        let body = HEADER_LEN as u64 + SectionDirV3::encoded_len(2) as u64;
        let dir = SectionDirV3 {
            strtab: SectionEntry { range: SectionRange { offset: body, len: 10 }, checksum: 0xAA },
            tables: vec![
                SectionEntry { range: SectionRange { offset: body + 10, len: 5 }, checksum: 1 },
                SectionEntry { range: SectionRange { offset: body + 15, len: 7 }, checksum: 2 },
            ],
            index: SectionEntry {
                range: SectionRange { offset: body + 22, len: 4 },
                checksum: 0xBB,
            },
            lsh: None,
        };
        let mut w = BinWriter::new();
        h.encode(&mut w);
        dir.encode(&mut w);
        let mut bytes = w.into_bytes();
        bytes.resize(body as usize + 26 + 3, 0); // body + trailing frame bytes
        let (decoded, body_end) = SectionDirV3::decode(&bytes, 2, false).unwrap();
        assert_eq!(decoded, dir);
        assert_eq!(body_end, body as usize + 26);

        // Any flip inside header‖dir trips the meta checksum.
        bytes[HEADER_LEN + 3] ^= 0x40;
        let err = SectionDirV3::decode(&bytes, 2, false).unwrap_err();
        assert!(err.to_string().contains("meta checksum"), "{err}");
    }

    /// Sections are not length-framed, so a reader must refuse flags it
    /// does not implement instead of trying to skip their sections.
    #[test]
    fn unknown_flags_rejected() {
        let mut h = sample();
        h.flags |= 1 << 7;
        let mut w = BinWriter::new();
        h.encode(&mut w);
        let err = SnapshotHeader::decode(w.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown feature flags"), "{err}");
    }
}
